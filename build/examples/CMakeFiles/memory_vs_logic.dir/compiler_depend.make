# Empty compiler generated dependencies file for memory_vs_logic.
# This may be replaced when dependencies are built.
