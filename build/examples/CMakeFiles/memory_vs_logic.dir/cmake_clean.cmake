file(REMOVE_RECURSE
  "CMakeFiles/memory_vs_logic.dir/memory_vs_logic.cpp.o"
  "CMakeFiles/memory_vs_logic.dir/memory_vs_logic.cpp.o.d"
  "memory_vs_logic"
  "memory_vs_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_vs_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
