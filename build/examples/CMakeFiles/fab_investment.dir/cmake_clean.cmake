file(REMOVE_RECURSE
  "CMakeFiles/fab_investment.dir/fab_investment.cpp.o"
  "CMakeFiles/fab_investment.dir/fab_investment.cpp.o.d"
  "fab_investment"
  "fab_investment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fab_investment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
