# Empty dependencies file for fab_investment.
# This may be replaced when dependencies are built.
