# Empty compiler generated dependencies file for industry_phases.
# This may be replaced when dependencies are built.
