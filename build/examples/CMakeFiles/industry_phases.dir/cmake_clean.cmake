file(REMOVE_RECURSE
  "CMakeFiles/industry_phases.dir/industry_phases.cpp.o"
  "CMakeFiles/industry_phases.dir/industry_phases.cpp.o.d"
  "industry_phases"
  "industry_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industry_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
