file(REMOVE_RECURSE
  "CMakeFiles/cost_performance.dir/cost_performance.cpp.o"
  "CMakeFiles/cost_performance.dir/cost_performance.cpp.o.d"
  "cost_performance"
  "cost_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
