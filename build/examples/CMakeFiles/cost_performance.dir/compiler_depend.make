# Empty compiler generated dependencies file for cost_performance.
# This may be replaced when dependencies are built.
