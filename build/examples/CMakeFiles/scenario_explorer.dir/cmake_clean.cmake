file(REMOVE_RECURSE
  "CMakeFiles/scenario_explorer.dir/scenario_explorer.cpp.o"
  "CMakeFiles/scenario_explorer.dir/scenario_explorer.cpp.o.d"
  "scenario_explorer"
  "scenario_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
