# Empty dependencies file for system_partitioning.
# This may be replaced when dependencies are built.
