file(REMOVE_RECURSE
  "CMakeFiles/system_partitioning.dir/system_partitioning.cpp.o"
  "CMakeFiles/system_partitioning.dir/system_partitioning.cpp.o.d"
  "system_partitioning"
  "system_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
