file(REMOVE_RECURSE
  "CMakeFiles/yield_learning.dir/yield_learning.cpp.o"
  "CMakeFiles/yield_learning.dir/yield_learning.cpp.o.d"
  "yield_learning"
  "yield_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
