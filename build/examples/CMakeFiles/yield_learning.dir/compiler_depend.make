# Empty compiler generated dependencies file for yield_learning.
# This may be replaced when dependencies are built.
