# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_yield[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
