file(REMOVE_RECURSE
  "CMakeFiles/test_cost.dir/cost/test_assembly.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_assembly.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_fabline.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_fabline.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_investment.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_investment.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_mcm.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_mcm.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_ownership.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_ownership.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_product_mix.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_product_mix.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_test_cost.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_test_cost.cpp.o.d"
  "CMakeFiles/test_cost.dir/cost/test_wafer_cost.cpp.o"
  "CMakeFiles/test_cost.dir/cost/test_wafer_cost.cpp.o.d"
  "test_cost"
  "test_cost.pdb"
  "test_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
