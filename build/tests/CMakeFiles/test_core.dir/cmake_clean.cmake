file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_cost_drivers.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_drivers.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_study.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_study.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dft_case.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dft_case.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_forecast.cpp.o"
  "CMakeFiles/test_core.dir/core/test_forecast.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scenario.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scenario.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_shrink.cpp.o"
  "CMakeFiles/test_core.dir/core/test_shrink.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_specs.cpp.o"
  "CMakeFiles/test_core.dir/core/test_specs.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system_optimizer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system_optimizer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_table3.cpp.o"
  "CMakeFiles/test_core.dir/core/test_table3.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
