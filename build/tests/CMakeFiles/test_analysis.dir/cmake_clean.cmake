file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_ascii_chart.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_ascii_chart.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_contour.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_contour.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_markdown.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_markdown.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_series.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_series.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_svg_chart.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_svg_chart.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_sweep.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_sweep.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
