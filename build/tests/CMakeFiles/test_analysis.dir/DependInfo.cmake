
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/test_ascii_chart.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/analysis/test_contour.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_contour.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_contour.cpp.o.d"
  "/root/repo/tests/analysis/test_markdown.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_markdown.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_markdown.cpp.o.d"
  "/root/repo/tests/analysis/test_series.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_series.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_series.cpp.o.d"
  "/root/repo/tests/analysis/test_stats.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_stats.cpp.o.d"
  "/root/repo/tests/analysis/test_svg_chart.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_svg_chart.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_svg_chart.cpp.o.d"
  "/root/repo/tests/analysis/test_sweep.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_sweep.cpp.o.d"
  "/root/repo/tests/analysis/test_table.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silicon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/silicon_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/silicon_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/silicon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/silicon_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/silicon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
