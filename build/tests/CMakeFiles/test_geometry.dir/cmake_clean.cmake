file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/geometry/test_die.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_die.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_gross_die.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_gross_die.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_reticle.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_reticle.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_wafer.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_wafer.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_wafer_map.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_wafer_map.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
  "test_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
