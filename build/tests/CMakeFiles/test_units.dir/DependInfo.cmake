
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_units.cpp" "tests/CMakeFiles/test_units.dir/core/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_units.dir/core/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silicon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/silicon_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/silicon_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/silicon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/silicon_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/silicon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
