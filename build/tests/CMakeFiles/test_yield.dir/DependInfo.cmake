
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/yield/test_critical_area.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_critical_area.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_critical_area.cpp.o.d"
  "/root/repo/tests/yield/test_defect.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_defect.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_defect.cpp.o.d"
  "/root/repo/tests/yield/test_distribution_properties.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_distribution_properties.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_distribution_properties.cpp.o.d"
  "/root/repo/tests/yield/test_extraction.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_extraction.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_extraction.cpp.o.d"
  "/root/repo/tests/yield/test_mc_determinism.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_mc_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_mc_determinism.cpp.o.d"
  "/root/repo/tests/yield/test_memory_design.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_memory_design.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_memory_design.cpp.o.d"
  "/root/repo/tests/yield/test_models.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_models.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_models.cpp.o.d"
  "/root/repo/tests/yield/test_monte_carlo.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_monte_carlo.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_monte_carlo.cpp.o.d"
  "/root/repo/tests/yield/test_parametric.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_parametric.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_parametric.cpp.o.d"
  "/root/repo/tests/yield/test_redundancy.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_redundancy.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_redundancy.cpp.o.d"
  "/root/repo/tests/yield/test_scaled.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_scaled.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_scaled.cpp.o.d"
  "/root/repo/tests/yield/test_spatial.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_spatial.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_spatial.cpp.o.d"
  "/root/repo/tests/yield/test_wafer_sim.cpp" "tests/CMakeFiles/test_yield.dir/yield/test_wafer_sim.cpp.o" "gcc" "tests/CMakeFiles/test_yield.dir/yield/test_wafer_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/silicon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/silicon_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/silicon_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/silicon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/silicon_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/silicon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
