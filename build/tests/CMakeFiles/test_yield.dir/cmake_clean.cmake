file(REMOVE_RECURSE
  "CMakeFiles/test_yield.dir/yield/test_critical_area.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_critical_area.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_defect.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_defect.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_distribution_properties.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_distribution_properties.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_extraction.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_extraction.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_mc_determinism.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_mc_determinism.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_memory_design.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_memory_design.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_models.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_models.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_monte_carlo.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_monte_carlo.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_parametric.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_parametric.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_redundancy.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_redundancy.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_scaled.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_scaled.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_spatial.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_spatial.cpp.o.d"
  "CMakeFiles/test_yield.dir/yield/test_wafer_sim.cpp.o"
  "CMakeFiles/test_yield.dir/yield/test_wafer_sim.cpp.o.d"
  "test_yield"
  "test_yield.pdb"
  "test_yield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
