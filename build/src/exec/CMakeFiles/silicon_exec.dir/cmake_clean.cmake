file(REMOVE_RECURSE
  "CMakeFiles/silicon_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/silicon_exec.dir/thread_pool.cpp.o.d"
  "libsilicon_exec.a"
  "libsilicon_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
