file(REMOVE_RECURSE
  "libsilicon_exec.a"
)
