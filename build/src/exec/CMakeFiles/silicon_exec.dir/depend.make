# Empty dependencies file for silicon_exec.
# This may be replaced when dependencies are built.
