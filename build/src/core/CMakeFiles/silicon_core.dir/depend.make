# Empty dependencies file for silicon_core.
# This may be replaced when dependencies are built.
