
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_drivers.cpp" "src/core/CMakeFiles/silicon_core.dir/cost_drivers.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/cost_drivers.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/silicon_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/cost_study.cpp" "src/core/CMakeFiles/silicon_core.dir/cost_study.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/cost_study.cpp.o.d"
  "/root/repo/src/core/dft_case.cpp" "src/core/CMakeFiles/silicon_core.dir/dft_case.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/dft_case.cpp.o.d"
  "/root/repo/src/core/forecast.cpp" "src/core/CMakeFiles/silicon_core.dir/forecast.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/forecast.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/silicon_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/shrink.cpp" "src/core/CMakeFiles/silicon_core.dir/shrink.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/shrink.cpp.o.d"
  "/root/repo/src/core/specs.cpp" "src/core/CMakeFiles/silicon_core.dir/specs.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/specs.cpp.o.d"
  "/root/repo/src/core/system_optimizer.cpp" "src/core/CMakeFiles/silicon_core.dir/system_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/system_optimizer.cpp.o.d"
  "/root/repo/src/core/table3.cpp" "src/core/CMakeFiles/silicon_core.dir/table3.cpp.o" "gcc" "src/core/CMakeFiles/silicon_core.dir/table3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/silicon_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/yield/CMakeFiles/silicon_yield.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/silicon_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/silicon_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/silicon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
