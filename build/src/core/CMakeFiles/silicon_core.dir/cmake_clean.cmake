file(REMOVE_RECURSE
  "CMakeFiles/silicon_core.dir/cost_drivers.cpp.o"
  "CMakeFiles/silicon_core.dir/cost_drivers.cpp.o.d"
  "CMakeFiles/silicon_core.dir/cost_model.cpp.o"
  "CMakeFiles/silicon_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/silicon_core.dir/cost_study.cpp.o"
  "CMakeFiles/silicon_core.dir/cost_study.cpp.o.d"
  "CMakeFiles/silicon_core.dir/dft_case.cpp.o"
  "CMakeFiles/silicon_core.dir/dft_case.cpp.o.d"
  "CMakeFiles/silicon_core.dir/forecast.cpp.o"
  "CMakeFiles/silicon_core.dir/forecast.cpp.o.d"
  "CMakeFiles/silicon_core.dir/scenario.cpp.o"
  "CMakeFiles/silicon_core.dir/scenario.cpp.o.d"
  "CMakeFiles/silicon_core.dir/shrink.cpp.o"
  "CMakeFiles/silicon_core.dir/shrink.cpp.o.d"
  "CMakeFiles/silicon_core.dir/specs.cpp.o"
  "CMakeFiles/silicon_core.dir/specs.cpp.o.d"
  "CMakeFiles/silicon_core.dir/system_optimizer.cpp.o"
  "CMakeFiles/silicon_core.dir/system_optimizer.cpp.o.d"
  "CMakeFiles/silicon_core.dir/table3.cpp.o"
  "CMakeFiles/silicon_core.dir/table3.cpp.o.d"
  "libsilicon_core.a"
  "libsilicon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
