file(REMOVE_RECURSE
  "libsilicon_core.a"
)
