file(REMOVE_RECURSE
  "libsilicon_tech.a"
)
