file(REMOVE_RECURSE
  "CMakeFiles/silicon_tech.dir/density.cpp.o"
  "CMakeFiles/silicon_tech.dir/density.cpp.o.d"
  "CMakeFiles/silicon_tech.dir/process.cpp.o"
  "CMakeFiles/silicon_tech.dir/process.cpp.o.d"
  "CMakeFiles/silicon_tech.dir/roadmap.cpp.o"
  "CMakeFiles/silicon_tech.dir/roadmap.cpp.o.d"
  "libsilicon_tech.a"
  "libsilicon_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
