# Empty compiler generated dependencies file for silicon_tech.
# This may be replaced when dependencies are built.
