
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/density.cpp" "src/tech/CMakeFiles/silicon_tech.dir/density.cpp.o" "gcc" "src/tech/CMakeFiles/silicon_tech.dir/density.cpp.o.d"
  "/root/repo/src/tech/process.cpp" "src/tech/CMakeFiles/silicon_tech.dir/process.cpp.o" "gcc" "src/tech/CMakeFiles/silicon_tech.dir/process.cpp.o.d"
  "/root/repo/src/tech/roadmap.cpp" "src/tech/CMakeFiles/silicon_tech.dir/roadmap.cpp.o" "gcc" "src/tech/CMakeFiles/silicon_tech.dir/roadmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
