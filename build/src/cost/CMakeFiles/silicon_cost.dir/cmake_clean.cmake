file(REMOVE_RECURSE
  "CMakeFiles/silicon_cost.dir/assembly.cpp.o"
  "CMakeFiles/silicon_cost.dir/assembly.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/fabline.cpp.o"
  "CMakeFiles/silicon_cost.dir/fabline.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/investment.cpp.o"
  "CMakeFiles/silicon_cost.dir/investment.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/mcm.cpp.o"
  "CMakeFiles/silicon_cost.dir/mcm.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/ownership.cpp.o"
  "CMakeFiles/silicon_cost.dir/ownership.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/product_mix.cpp.o"
  "CMakeFiles/silicon_cost.dir/product_mix.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/test_cost.cpp.o"
  "CMakeFiles/silicon_cost.dir/test_cost.cpp.o.d"
  "CMakeFiles/silicon_cost.dir/wafer_cost.cpp.o"
  "CMakeFiles/silicon_cost.dir/wafer_cost.cpp.o.d"
  "libsilicon_cost.a"
  "libsilicon_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
