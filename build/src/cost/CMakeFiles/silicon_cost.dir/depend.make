# Empty dependencies file for silicon_cost.
# This may be replaced when dependencies are built.
