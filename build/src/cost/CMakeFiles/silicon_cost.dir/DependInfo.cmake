
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/assembly.cpp" "src/cost/CMakeFiles/silicon_cost.dir/assembly.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/assembly.cpp.o.d"
  "/root/repo/src/cost/fabline.cpp" "src/cost/CMakeFiles/silicon_cost.dir/fabline.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/fabline.cpp.o.d"
  "/root/repo/src/cost/investment.cpp" "src/cost/CMakeFiles/silicon_cost.dir/investment.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/investment.cpp.o.d"
  "/root/repo/src/cost/mcm.cpp" "src/cost/CMakeFiles/silicon_cost.dir/mcm.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/mcm.cpp.o.d"
  "/root/repo/src/cost/ownership.cpp" "src/cost/CMakeFiles/silicon_cost.dir/ownership.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/ownership.cpp.o.d"
  "/root/repo/src/cost/product_mix.cpp" "src/cost/CMakeFiles/silicon_cost.dir/product_mix.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/product_mix.cpp.o.d"
  "/root/repo/src/cost/test_cost.cpp" "src/cost/CMakeFiles/silicon_cost.dir/test_cost.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/test_cost.cpp.o.d"
  "/root/repo/src/cost/wafer_cost.cpp" "src/cost/CMakeFiles/silicon_cost.dir/wafer_cost.cpp.o" "gcc" "src/cost/CMakeFiles/silicon_cost.dir/wafer_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/silicon_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
