file(REMOVE_RECURSE
  "libsilicon_cost.a"
)
