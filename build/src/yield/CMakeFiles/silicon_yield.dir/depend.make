# Empty dependencies file for silicon_yield.
# This may be replaced when dependencies are built.
