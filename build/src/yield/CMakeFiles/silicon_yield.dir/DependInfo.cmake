
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yield/critical_area.cpp" "src/yield/CMakeFiles/silicon_yield.dir/critical_area.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/critical_area.cpp.o.d"
  "/root/repo/src/yield/defect.cpp" "src/yield/CMakeFiles/silicon_yield.dir/defect.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/defect.cpp.o.d"
  "/root/repo/src/yield/extraction.cpp" "src/yield/CMakeFiles/silicon_yield.dir/extraction.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/extraction.cpp.o.d"
  "/root/repo/src/yield/memory_design.cpp" "src/yield/CMakeFiles/silicon_yield.dir/memory_design.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/memory_design.cpp.o.d"
  "/root/repo/src/yield/models.cpp" "src/yield/CMakeFiles/silicon_yield.dir/models.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/models.cpp.o.d"
  "/root/repo/src/yield/monte_carlo.cpp" "src/yield/CMakeFiles/silicon_yield.dir/monte_carlo.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/yield/parametric.cpp" "src/yield/CMakeFiles/silicon_yield.dir/parametric.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/parametric.cpp.o.d"
  "/root/repo/src/yield/redundancy.cpp" "src/yield/CMakeFiles/silicon_yield.dir/redundancy.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/redundancy.cpp.o.d"
  "/root/repo/src/yield/scaled.cpp" "src/yield/CMakeFiles/silicon_yield.dir/scaled.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/scaled.cpp.o.d"
  "/root/repo/src/yield/spatial.cpp" "src/yield/CMakeFiles/silicon_yield.dir/spatial.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/spatial.cpp.o.d"
  "/root/repo/src/yield/wafer_sim.cpp" "src/yield/CMakeFiles/silicon_yield.dir/wafer_sim.cpp.o" "gcc" "src/yield/CMakeFiles/silicon_yield.dir/wafer_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/silicon_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/silicon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
