file(REMOVE_RECURSE
  "libsilicon_yield.a"
)
