file(REMOVE_RECURSE
  "CMakeFiles/silicon_yield.dir/critical_area.cpp.o"
  "CMakeFiles/silicon_yield.dir/critical_area.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/defect.cpp.o"
  "CMakeFiles/silicon_yield.dir/defect.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/extraction.cpp.o"
  "CMakeFiles/silicon_yield.dir/extraction.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/memory_design.cpp.o"
  "CMakeFiles/silicon_yield.dir/memory_design.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/models.cpp.o"
  "CMakeFiles/silicon_yield.dir/models.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/monte_carlo.cpp.o"
  "CMakeFiles/silicon_yield.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/parametric.cpp.o"
  "CMakeFiles/silicon_yield.dir/parametric.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/redundancy.cpp.o"
  "CMakeFiles/silicon_yield.dir/redundancy.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/scaled.cpp.o"
  "CMakeFiles/silicon_yield.dir/scaled.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/spatial.cpp.o"
  "CMakeFiles/silicon_yield.dir/spatial.cpp.o.d"
  "CMakeFiles/silicon_yield.dir/wafer_sim.cpp.o"
  "CMakeFiles/silicon_yield.dir/wafer_sim.cpp.o.d"
  "libsilicon_yield.a"
  "libsilicon_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
