file(REMOVE_RECURSE
  "CMakeFiles/silicon_geometry.dir/die.cpp.o"
  "CMakeFiles/silicon_geometry.dir/die.cpp.o.d"
  "CMakeFiles/silicon_geometry.dir/gross_die.cpp.o"
  "CMakeFiles/silicon_geometry.dir/gross_die.cpp.o.d"
  "CMakeFiles/silicon_geometry.dir/reticle.cpp.o"
  "CMakeFiles/silicon_geometry.dir/reticle.cpp.o.d"
  "CMakeFiles/silicon_geometry.dir/wafer.cpp.o"
  "CMakeFiles/silicon_geometry.dir/wafer.cpp.o.d"
  "CMakeFiles/silicon_geometry.dir/wafer_map.cpp.o"
  "CMakeFiles/silicon_geometry.dir/wafer_map.cpp.o.d"
  "libsilicon_geometry.a"
  "libsilicon_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
