file(REMOVE_RECURSE
  "libsilicon_geometry.a"
)
