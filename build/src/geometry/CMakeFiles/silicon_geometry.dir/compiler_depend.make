# Empty compiler generated dependencies file for silicon_geometry.
# This may be replaced when dependencies are built.
