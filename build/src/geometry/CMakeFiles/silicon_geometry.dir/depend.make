# Empty dependencies file for silicon_geometry.
# This may be replaced when dependencies are built.
