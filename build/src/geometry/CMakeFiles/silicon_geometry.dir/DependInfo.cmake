
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/die.cpp" "src/geometry/CMakeFiles/silicon_geometry.dir/die.cpp.o" "gcc" "src/geometry/CMakeFiles/silicon_geometry.dir/die.cpp.o.d"
  "/root/repo/src/geometry/gross_die.cpp" "src/geometry/CMakeFiles/silicon_geometry.dir/gross_die.cpp.o" "gcc" "src/geometry/CMakeFiles/silicon_geometry.dir/gross_die.cpp.o.d"
  "/root/repo/src/geometry/reticle.cpp" "src/geometry/CMakeFiles/silicon_geometry.dir/reticle.cpp.o" "gcc" "src/geometry/CMakeFiles/silicon_geometry.dir/reticle.cpp.o.d"
  "/root/repo/src/geometry/wafer.cpp" "src/geometry/CMakeFiles/silicon_geometry.dir/wafer.cpp.o" "gcc" "src/geometry/CMakeFiles/silicon_geometry.dir/wafer.cpp.o.d"
  "/root/repo/src/geometry/wafer_map.cpp" "src/geometry/CMakeFiles/silicon_geometry.dir/wafer_map.cpp.o" "gcc" "src/geometry/CMakeFiles/silicon_geometry.dir/wafer_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
