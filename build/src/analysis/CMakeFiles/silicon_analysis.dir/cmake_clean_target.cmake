file(REMOVE_RECURSE
  "libsilicon_analysis.a"
)
