# Empty dependencies file for silicon_analysis.
# This may be replaced when dependencies are built.
