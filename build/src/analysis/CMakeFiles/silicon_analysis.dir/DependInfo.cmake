
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_chart.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/ascii_chart.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/analysis/contour.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/contour.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/contour.cpp.o.d"
  "/root/repo/src/analysis/markdown.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/markdown.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/markdown.cpp.o.d"
  "/root/repo/src/analysis/series.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/series.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/series.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/svg_chart.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/svg_chart.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/svg_chart.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/sweep.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/sweep.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/silicon_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/silicon_analysis.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/silicon_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
