file(REMOVE_RECURSE
  "CMakeFiles/silicon_analysis.dir/ascii_chart.cpp.o"
  "CMakeFiles/silicon_analysis.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/contour.cpp.o"
  "CMakeFiles/silicon_analysis.dir/contour.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/markdown.cpp.o"
  "CMakeFiles/silicon_analysis.dir/markdown.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/series.cpp.o"
  "CMakeFiles/silicon_analysis.dir/series.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/stats.cpp.o"
  "CMakeFiles/silicon_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/svg_chart.cpp.o"
  "CMakeFiles/silicon_analysis.dir/svg_chart.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/sweep.cpp.o"
  "CMakeFiles/silicon_analysis.dir/sweep.cpp.o.d"
  "CMakeFiles/silicon_analysis.dir/table.cpp.o"
  "CMakeFiles/silicon_analysis.dir/table.cpp.o.d"
  "libsilicon_analysis.a"
  "libsilicon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
