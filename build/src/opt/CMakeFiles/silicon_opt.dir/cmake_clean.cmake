file(REMOVE_RECURSE
  "CMakeFiles/silicon_opt.dir/minimize.cpp.o"
  "CMakeFiles/silicon_opt.dir/minimize.cpp.o.d"
  "CMakeFiles/silicon_opt.dir/pareto.cpp.o"
  "CMakeFiles/silicon_opt.dir/pareto.cpp.o.d"
  "CMakeFiles/silicon_opt.dir/partition.cpp.o"
  "CMakeFiles/silicon_opt.dir/partition.cpp.o.d"
  "CMakeFiles/silicon_opt.dir/sensitivity.cpp.o"
  "CMakeFiles/silicon_opt.dir/sensitivity.cpp.o.d"
  "libsilicon_opt.a"
  "libsilicon_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
