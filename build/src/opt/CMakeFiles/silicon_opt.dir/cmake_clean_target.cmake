file(REMOVE_RECURSE
  "libsilicon_opt.a"
)
