# Empty dependencies file for silicon_opt.
# This may be replaced when dependencies are built.
