
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/minimize.cpp" "src/opt/CMakeFiles/silicon_opt.dir/minimize.cpp.o" "gcc" "src/opt/CMakeFiles/silicon_opt.dir/minimize.cpp.o.d"
  "/root/repo/src/opt/pareto.cpp" "src/opt/CMakeFiles/silicon_opt.dir/pareto.cpp.o" "gcc" "src/opt/CMakeFiles/silicon_opt.dir/pareto.cpp.o.d"
  "/root/repo/src/opt/partition.cpp" "src/opt/CMakeFiles/silicon_opt.dir/partition.cpp.o" "gcc" "src/opt/CMakeFiles/silicon_opt.dir/partition.cpp.o.d"
  "/root/repo/src/opt/sensitivity.cpp" "src/opt/CMakeFiles/silicon_opt.dir/sensitivity.cpp.o" "gcc" "src/opt/CMakeFiles/silicon_opt.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
