file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_yield.dir/bench_ablate_yield.cpp.o"
  "CMakeFiles/bench_ablate_yield.dir/bench_ablate_yield.cpp.o.d"
  "bench_ablate_yield"
  "bench_ablate_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
