# Empty dependencies file for bench_ablate_yield.
# This may be replaced when dependencies are built.
