file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_steps_defects.dir/bench_fig4_steps_defects.cpp.o"
  "CMakeFiles/bench_fig4_steps_defects.dir/bench_fig4_steps_defects.cpp.o.d"
  "bench_fig4_steps_defects"
  "bench_fig4_steps_defects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_steps_defects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
