# Empty compiler generated dependencies file for bench_fig4_steps_defects.
# This may be replaced when dependencies are built.
