# Empty dependencies file for bench_forecast.
# This may be replaced when dependencies are built.
