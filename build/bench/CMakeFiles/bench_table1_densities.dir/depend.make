# Empty dependencies file for bench_table1_densities.
# This may be replaced when dependencies are built.
