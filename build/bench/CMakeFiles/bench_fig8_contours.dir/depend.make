# Empty dependencies file for bench_fig8_contours.
# This may be replaced when dependencies are built.
