file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_contours.dir/bench_fig8_contours.cpp.o"
  "CMakeFiles/bench_fig8_contours.dir/bench_fig8_contours.cpp.o.d"
  "bench_fig8_contours"
  "bench_fig8_contours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_contours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
