# Empty dependencies file for bench_fig1_feature_size.
# This may be replaced when dependencies are built.
