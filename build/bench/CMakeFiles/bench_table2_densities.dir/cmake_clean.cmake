file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_densities.dir/bench_table2_densities.cpp.o"
  "CMakeFiles/bench_table2_densities.dir/bench_table2_densities.cpp.o.d"
  "bench_table2_densities"
  "bench_table2_densities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_densities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
