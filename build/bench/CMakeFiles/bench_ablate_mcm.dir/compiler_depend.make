# Empty compiler generated dependencies file for bench_ablate_mcm.
# This may be replaced when dependencies are built.
