file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_mcm.dir/bench_ablate_mcm.cpp.o"
  "CMakeFiles/bench_ablate_mcm.dir/bench_ablate_mcm.cpp.o.d"
  "bench_ablate_mcm"
  "bench_ablate_mcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
