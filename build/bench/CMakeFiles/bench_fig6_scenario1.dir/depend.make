# Empty dependencies file for bench_fig6_scenario1.
# This may be replaced when dependencies are built.
