file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_mix.dir/bench_ablate_mix.cpp.o"
  "CMakeFiles/bench_ablate_mix.dir/bench_ablate_mix.cpp.o.d"
  "bench_ablate_mix"
  "bench_ablate_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
