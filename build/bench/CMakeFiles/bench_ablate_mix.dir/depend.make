# Empty dependencies file for bench_ablate_mix.
# This may be replaced when dependencies are built.
