# Empty compiler generated dependencies file for bench_ablate_mc_yield.
# This may be replaced when dependencies are built.
