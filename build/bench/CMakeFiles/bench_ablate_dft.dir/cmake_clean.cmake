file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dft.dir/bench_ablate_dft.cpp.o"
  "CMakeFiles/bench_ablate_dft.dir/bench_ablate_dft.cpp.o.d"
  "bench_ablate_dft"
  "bench_ablate_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
