# Empty compiler generated dependencies file for bench_ablate_dft.
# This may be replaced when dependencies are built.
