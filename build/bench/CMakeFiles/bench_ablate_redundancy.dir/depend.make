# Empty dependencies file for bench_ablate_redundancy.
# This may be replaced when dependencies are built.
