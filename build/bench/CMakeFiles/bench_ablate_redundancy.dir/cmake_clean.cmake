file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_redundancy.dir/bench_ablate_redundancy.cpp.o"
  "CMakeFiles/bench_ablate_redundancy.dir/bench_ablate_redundancy.cpp.o.d"
  "bench_ablate_redundancy"
  "bench_ablate_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
