# Empty dependencies file for bench_fig5_defect_dist.
# This may be replaced when dependencies are built.
