# Empty dependencies file for bench_ablate_shrink.
# This may be replaced when dependencies are built.
