file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_shrink.dir/bench_ablate_shrink.cpp.o"
  "CMakeFiles/bench_ablate_shrink.dir/bench_ablate_shrink.cpp.o.d"
  "bench_ablate_shrink"
  "bench_ablate_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
