file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_extraction.dir/bench_ablate_extraction.cpp.o"
  "CMakeFiles/bench_ablate_extraction.dir/bench_ablate_extraction.cpp.o.d"
  "bench_ablate_extraction"
  "bench_ablate_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
