# Empty dependencies file for bench_ablate_wafer_size.
# This may be replaced when dependencies are built.
