file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_sensitivity.dir/bench_ablate_sensitivity.cpp.o"
  "CMakeFiles/bench_ablate_sensitivity.dir/bench_ablate_sensitivity.cpp.o.d"
  "bench_ablate_sensitivity"
  "bench_ablate_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
