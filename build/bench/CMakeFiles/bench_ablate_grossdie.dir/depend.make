# Empty dependencies file for bench_ablate_grossdie.
# This may be replaced when dependencies are built.
