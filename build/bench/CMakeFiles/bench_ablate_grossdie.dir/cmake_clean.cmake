file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_grossdie.dir/bench_ablate_grossdie.cpp.o"
  "CMakeFiles/bench_ablate_grossdie.dir/bench_ablate_grossdie.cpp.o.d"
  "bench_ablate_grossdie"
  "bench_ablate_grossdie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_grossdie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
