# Empty dependencies file for bench_ablate_overhead.
# This may be replaced when dependencies are built.
