file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_overhead.dir/bench_ablate_overhead.cpp.o"
  "CMakeFiles/bench_ablate_overhead.dir/bench_ablate_overhead.cpp.o.d"
  "bench_ablate_overhead"
  "bench_ablate_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
