file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_clustering.dir/bench_ablate_clustering.cpp.o"
  "CMakeFiles/bench_ablate_clustering.dir/bench_ablate_clustering.cpp.o.d"
  "bench_ablate_clustering"
  "bench_ablate_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
