# Empty dependencies file for bench_ablate_clustering.
# This may be replaced when dependencies are built.
