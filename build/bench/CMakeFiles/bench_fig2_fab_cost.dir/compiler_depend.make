# Empty compiler generated dependencies file for bench_fig2_fab_cost.
# This may be replaced when dependencies are built.
