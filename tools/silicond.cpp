// silicond — the silicon cost-query server.
//
// Speaks the serve JSONL protocol (one request per line, one response
// per line, same order — see DESIGN.md §8) over two transports:
//
//   * stdin/stdout (default): read requests, answer them, exit at EOF.
//     Lines are collected into batches of --batch and fanned across
//     the exec thread pool; output order always matches input order
//     and is bit-identical for every --threads value, which is what
//     the golden smoke test pins down.
//
//       echo '{"op":"scenario1","lambda_um":0.5}' | silicond
//
//   * TCP (--port N): accept connections and serve each one the same
//     JSONL protocol, one thread per connection over a shared engine
//     (the memoization cache and metrics are process-wide; the exec
//     pool serializes batch submissions).  Intended for driving the
//     engine from long-lived clients; determinism per connection is
//     the same as stdin mode.
//
// Flags:
//   --threads N         batch fan-out width (0 = hardware, 1 = serial)
//   --batch N           max lines per engine batch (default 1024)
//   --cache-capacity N  memoization entries (0 disables; default 65536)
//   --cache-shards N    cache shard count (default 16)
//   --port N            serve TCP on 127.0.0.1:N instead of stdin
//   --metrics           dump the metrics/cache JSON to stderr on exit
//   --help

#include "serve/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

struct options {
    unsigned threads = 0;
    std::size_t batch = 1024;
    std::size_t cache_capacity = 65536;
    std::size_t cache_shards = 16;
    int port = -1;
    bool metrics = false;
};

void usage(std::ostream& out) {
    out << "silicond - Maly silicon cost model query server (JSONL)\n"
           "\n"
           "  silicond [--threads N] [--batch N] [--cache-capacity N]\n"
           "           [--cache-shards N] [--port N] [--metrics]\n"
           "\n"
           "Reads one JSON request per line from stdin (or a TCP\n"
           "connection with --port) and writes one JSON response per\n"
           "line in the same order.  Example:\n"
           "\n"
           "  echo '{\"op\":\"scenario1\",\"lambda_um\":0.5}' | silicond\n"
           "\n"
           "Endpoints: cost_tr gross_die yield scenario1 scenario2\n"
           "           table3 mc_yield sweep stats\n";
}

bool parse_size(const char* text, std::size_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        return false;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

bool parse_options(int argc, char** argv, options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        std::size_t v = 0;
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg == "--threads") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.threads = static_cast<unsigned>(v);
        } else if (arg == "--batch") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.batch = v;
        } else if (arg == "--cache-capacity") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.cache_capacity = v;
        } else if (arg == "--cache-shards") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.cache_shards = v;
        } else if (arg == "--port") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v > 65535) {
                return false;
            }
            opt.port = static_cast<int>(v);
        } else {
            return false;
        }
    }
    return true;
}

void flush_batch(silicon::serve::engine& engine,
                 std::vector<std::string>& lines, std::ostream& out) {
    if (lines.empty()) {
        return;
    }
    for (const std::string& response : engine.handle_batch(lines)) {
        out << response << '\n';
    }
    out.flush();
    lines.clear();
}

int run_stdio(silicon::serve::engine& engine, const options& opt) {
    std::vector<std::string> lines;
    lines.reserve(opt.batch);
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty()) {
            continue;  // blank lines are keep-alives, not requests
        }
        lines.push_back(std::move(line));
        if (lines.size() >= opt.batch) {
            flush_batch(engine, lines, std::cout);
        }
    }
    flush_batch(engine, lines, std::cout);
    return 0;
}

/// Serve one TCP connection: buffer bytes, split on '\n', answer every
/// complete batch of lines currently available.
void serve_connection(silicon::serve::engine& engine, int fd,
                      std::size_t batch) {
    std::string buffer;
    std::vector<std::string> lines;
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got <= 0) {
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
        std::size_t begin = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', begin);
            if (nl == std::string::npos) {
                break;
            }
            if (nl > begin) {
                lines.emplace_back(buffer.substr(begin, nl - begin));
            }
            begin = nl + 1;
            if (lines.size() >= batch) {
                break;
            }
        }
        buffer.erase(0, begin);
        if (!lines.empty()) {
            std::string out;
            for (const std::string& response : engine.handle_batch(lines)) {
                out += response;
                out += '\n';
            }
            lines.clear();
            std::size_t sent = 0;
            while (sent < out.size()) {
                const ssize_t n =
                    ::write(fd, out.data() + sent, out.size() - sent);
                if (n <= 0) {
                    ::close(fd);
                    return;
                }
                sent += static_cast<std::size_t>(n);
            }
        }
    }
    ::close(fd);
}

int run_tcp(silicon::serve::engine& engine, const options& opt) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        std::cerr << "silicond: socket: " << std::strerror(errno) << "\n";
        return 1;
    }
    const int enable = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listener, 64) != 0) {
        std::cerr << "silicond: bind/listen on port " << opt.port << ": "
                  << std::strerror(errno) << "\n";
        ::close(listener);
        return 1;
    }
    std::cerr << "silicond: listening on 127.0.0.1:" << opt.port << "\n";

    for (;;) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        std::thread{[&engine, fd, batch = opt.batch] {
            serve_connection(engine, fd, batch);
        }}.detach();
    }
    ::close(listener);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    options opt;
    if (!parse_options(argc, argv, opt)) {
        usage(std::cerr);
        return 2;
    }

    std::ios::sync_with_stdio(false);

    silicon::serve::engine_config config;
    config.parallelism = opt.threads;
    config.cache_capacity = opt.cache_capacity;
    config.cache_shards = opt.cache_shards;
    silicon::serve::engine engine{config};

    const int status =
        opt.port >= 0 ? run_tcp(engine, opt) : run_stdio(engine, opt);

    if (opt.metrics) {
        silicon::serve::json::object dump;
        dump.set("endpoints", engine.metrics().to_json());
        const silicon::serve::memo_cache::stats c = engine.cache_stats();
        silicon::serve::json::object cache;
        cache.set("hits", static_cast<double>(c.hits));
        cache.set("misses", static_cast<double>(c.misses));
        cache.set("evictions", static_cast<double>(c.evictions));
        cache.set("entries", static_cast<double>(c.entries));
        dump.set("cache", silicon::serve::json::value{std::move(cache)});
        std::cerr << silicon::serve::json::dump(
                         silicon::serve::json::value{std::move(dump)})
                  << "\n";
    }
    return status;
}
