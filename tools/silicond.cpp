// silicond — the silicon cost-query server.
//
// Speaks the serve JSONL protocol (one request per line, one response
// per line, same order — see DESIGN.md §8) over two transports:
//
//   * stdin/stdout (default): read requests, answer them, exit at EOF.
//     Lines are collected into batches of --batch and fanned across
//     the exec thread pool; output order always matches input order
//     and is bit-identical for every --threads value, which is what
//     the golden smoke test pins down.
//
//       echo '{"op":"scenario1","lambda_um":0.5}' | silicond
//
//   * TCP (--port N): accept connections and serve each one the same
//     JSONL protocol, one thread per connection over a shared engine
//     (the memoization cache and metrics are process-wide; the exec
//     pool serializes batch submissions).  Intended for driving the
//     engine from long-lived clients; determinism per connection is
//     the same as stdin mode.
//
// Observability (DESIGN.md §9): a line starting with `GET /metrics`
// answers with the Prometheus text exposition instead of JSONL (over
// TCP it is a minimal HTTP response, so `curl localhost:N/metrics`
// works); `--metrics-interval S` dumps the same exposition to stderr
// every S seconds; `--trace FILE` enables the span tracer and writes a
// Chrome trace_event JSON file at shutdown (load it in chrome://tracing
// or https://ui.perfetto.dev).  Operational events are structured JSONL
// on stderr (obs/log) — stdout carries protocol bytes only.  SIGINT /
// SIGTERM shut down cleanly: pending metrics and the trace file are
// flushed before exit.
//
// Flags:
//   --threads N           batch fan-out width (0 = hardware, 1 = serial)
//   --batch N             max lines per engine batch (default 1024)
//   --cache-capacity N    memoization entries (0 disables; default 65536)
//   --cache-shards N      cache shard count (default 16)
//   --port N              serve TCP on 127.0.0.1:N instead of stdin
//   --metrics             dump the metrics/cache JSON to stderr on exit
//   --metrics-interval S  dump Prometheus text to stderr every S seconds
//   --trace FILE          enable tracing; write Chrome trace JSON on exit
//   --log-level LEVEL     trace|debug|info|warn|error (default info)
//   --help

#include "exec/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef SILICON_VERSION
#define SILICON_VERSION "dev"
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Install SIGINT/SIGTERM handlers WITHOUT SA_RESTART so blocking
/// reads/accepts return EINTR and the main loops can exit cleanly.
void install_signal_handlers() {
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

struct options {
    unsigned threads = 0;
    std::size_t batch = 1024;
    std::size_t cache_capacity = 65536;
    std::size_t cache_shards = 16;
    int port = -1;
    bool metrics = false;
    unsigned metrics_interval = 0;  ///< seconds; 0 = off
    std::string trace_path;         ///< empty = tracing off
};

void usage(std::ostream& out) {
    out << "silicond - Maly silicon cost model query server (JSONL)\n"
           "\n"
           "  silicond [--threads N] [--batch N] [--cache-capacity N]\n"
           "           [--cache-shards N] [--port N] [--metrics]\n"
           "           [--metrics-interval S] [--trace FILE]\n"
           "           [--log-level LEVEL]\n"
           "\n"
           "Reads one JSON request per line from stdin (or a TCP\n"
           "connection with --port) and writes one JSON response per\n"
           "line in the same order.  Example:\n"
           "\n"
           "  echo '{\"op\":\"scenario1\",\"lambda_um\":0.5}' | silicond\n"
           "\n"
           "A line starting with 'GET /metrics' answers with the\n"
           "Prometheus text exposition (an HTTP response over TCP, so\n"
           "curl works).  --trace FILE writes a Chrome trace_event\n"
           "JSON file at shutdown.\n"
           "\n"
           "Endpoints: cost_tr gross_die yield scenario1 scenario2\n"
           "           table3 mc_yield sweep stats\n";
}

bool parse_size(const char* text, std::size_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        return false;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

bool parse_log_level(const std::string& name, silicon::obs::log_level& out) {
    using silicon::obs::log_level;
    for (const log_level level :
         {log_level::trace, log_level::debug, log_level::info,
          log_level::warn, log_level::error}) {
        if (silicon::obs::to_string(level) == name) {
            out = level;
            return true;
        }
    }
    return false;
}

bool parse_options(int argc, char** argv, options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        std::size_t v = 0;
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg == "--threads") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.threads = static_cast<unsigned>(v);
        } else if (arg == "--batch") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.batch = v;
        } else if (arg == "--cache-capacity") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.cache_capacity = v;
        } else if (arg == "--cache-shards") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.cache_shards = v;
        } else if (arg == "--port") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v > 65535) {
                return false;
            }
            opt.port = static_cast<int>(v);
        } else if (arg == "--metrics-interval") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.metrics_interval = static_cast<unsigned>(v);
        } else if (arg == "--trace") {
            const char* t = next();
            if (t == nullptr || *t == '\0') {
                return false;
            }
            opt.trace_path = t;
        } else if (arg == "--log-level") {
            const char* t = next();
            silicon::obs::log_level level{};
            if (t == nullptr || !parse_log_level(t, level)) {
                return false;
            }
            silicon::obs::set_log_threshold(level);
        } else {
            return false;
        }
    }
    return true;
}

[[nodiscard]] bool is_metrics_request(std::string_view line) {
    return line.rfind("GET /metrics", 0) == 0;
}

silicon::obs::counter& flushes_counter() {
    static silicon::obs::counter& c =
        silicon::obs::metrics_registry::global().get_counter(
            "silicond_flushes_total",
            "Gathered response flushes written to the transport");
    return c;
}

silicon::obs::counter& flushed_bytes_counter() {
    static silicon::obs::counter& c =
        silicon::obs::metrics_registry::global().get_counter(
            "silicond_flushed_bytes_total",
            "Response bytes written through gathered flushes");
    return c;
}

/// Gather a batch's responses (and their newlines) into one buffer and
/// write it with a single stream write + flush — a writev-style flush
/// instead of one small write per line, which is where stdio time went
/// on cache-hot batches.  The buffer is reused across batches.
void flush_batch(silicon::serve::engine& engine,
                 std::vector<std::string>& lines, std::string& gather,
                 std::ostream& out) {
    if (lines.empty()) {
        return;
    }
    gather.clear();
    for (const std::string& response : engine.handle_batch(lines)) {
        gather += response;
        gather += '\n';
    }
    out.write(gather.data(),
              static_cast<std::streamsize>(gather.size()));
    out.flush();
    flushes_counter().add(1);
    flushed_bytes_counter().add(gather.size());
    lines.clear();
}

int run_stdio(silicon::serve::engine& engine, const options& opt) {
    std::vector<std::string> lines;
    lines.reserve(opt.batch);
    std::string gather;
    std::string line;
    while (g_stop == 0 && std::getline(std::cin, line)) {
        if (line.empty()) {
            continue;  // blank lines are keep-alives, not requests
        }
        if (is_metrics_request(line)) {
            // Scrape op: answer everything pending first so the
            // exposition reflects it, then emit the text inline.
            flush_batch(engine, lines, gather, std::cout);
            std::cout << engine.prometheus_text();
            std::cout.flush();
            continue;
        }
        lines.push_back(std::move(line));
        if (lines.size() >= opt.batch) {
            flush_batch(engine, lines, gather, std::cout);
        }
    }
    flush_batch(engine, lines, gather, std::cout);
    return 0;
}

/// Serve one TCP connection: buffer bytes, split on '\n', answer every
/// complete batch of lines currently available.  A `GET /metrics` line
/// turns the connection into a one-shot HTTP metrics scrape.
void serve_connection(silicon::serve::engine& engine, int fd,
                      std::size_t batch) {
    const auto send_all = [fd](std::string_view bytes) {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t n =
                ::write(fd, bytes.data() + sent, bytes.size() - sent);
            if (n <= 0) {
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    };

    std::string buffer;
    std::vector<std::string> lines;
    char chunk[4096];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got <= 0) {
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
        std::size_t begin = 0;
        bool scrape = false;
        for (;;) {
            const std::size_t nl = buffer.find('\n', begin);
            if (nl == std::string::npos) {
                break;
            }
            if (nl > begin) {
                std::string line = buffer.substr(begin, nl - begin);
                if (!line.empty() && line.back() == '\r') {
                    line.pop_back();  // tolerate HTTP-style CRLF
                }
                if (is_metrics_request(line)) {
                    scrape = true;
                    begin = nl + 1;
                    break;
                }
                lines.push_back(std::move(line));
            }
            begin = nl + 1;
            if (lines.size() >= batch) {
                break;
            }
        }
        buffer.erase(0, begin);
        if (!lines.empty()) {
            std::string out;
            for (const std::string& response : engine.handle_batch(lines)) {
                out += response;
                out += '\n';
            }
            lines.clear();
            if (!send_all(out)) {
                ::close(fd);
                return;
            }
            flushes_counter().add(1);
            flushed_bytes_counter().add(out.size());
        }
        if (scrape) {
            const std::string body = engine.prometheus_text();
            std::string response =
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                "Content-Length: " +
                std::to_string(body.size()) + "\r\n\r\n";
            response += body;
            send_all(response);
            break;  // one-shot scrape connection
        }
    }
    ::close(fd);
}

int run_tcp(silicon::serve::engine& engine, const options& opt) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        silicon::obs::log_error("silicond.socket",
                                {{"error", std::strerror(errno)}});
        return 1;
    }
    const int enable = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listener, 64) != 0) {
        silicon::obs::log_error("silicond.bind",
                                {{"port", opt.port},
                                 {"error", std::strerror(errno)}});
        ::close(listener);
        return 1;
    }
    silicon::obs::log_info("silicond.listening",
                           {{"address", "127.0.0.1"}, {"port", opt.port}});

    while (g_stop == 0) {
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR && g_stop == 0) {
                continue;
            }
            break;
        }
        std::thread{[&engine, fd, batch = opt.batch] {
            serve_connection(engine, fd, batch);
        }}.detach();
    }
    ::close(listener);
    return 0;
}

/// Background Prometheus dumper: one stderr exposition every
/// `interval` seconds until stopped (condition variable so shutdown
/// never waits out a full period).
class metrics_dumper {
public:
    metrics_dumper(silicon::serve::engine& engine, unsigned interval)
        : engine_{engine}, interval_{interval} {
        if (interval_ > 0) {
            thread_ = std::thread{[this] { loop(); }};
        }
    }

    ~metrics_dumper() { stop(); }

    void stop() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (done_) {
                return;
            }
            done_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) {
            thread_.join();
        }
        if (interval_ > 0) {
            dump();  // final flush so shutdown always records totals
        }
    }

private:
    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock, std::chrono::seconds{interval_},
                             [this] { return done_; })) {
            lock.unlock();
            dump();
            lock.lock();
        }
    }

    void dump() {
        const std::string text = engine_.prometheus_text();
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
    }

    silicon::serve::engine& engine_;
    unsigned interval_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
};

}  // namespace

int main(int argc, char** argv) {
    options opt;
    if (!parse_options(argc, argv, opt)) {
        usage(std::cerr);
        return 2;
    }

    std::ios::sync_with_stdio(false);
    install_signal_handlers();

    namespace obs = silicon::obs;
    if (!opt.trace_path.empty()) {
        obs::tracer::instance().enable();
    }

    silicon::serve::engine_config config;
    config.parallelism = opt.threads;
    config.cache_capacity = opt.cache_capacity;
    config.cache_shards = opt.cache_shards;
    silicon::serve::engine engine{config};

    obs::log_info(
        "silicond.start",
        {{"version", SILICON_VERSION},
         {"threads",
          silicon::exec::resolve_parallelism(opt.threads)},
         {"batch", opt.batch},
         {"cache_capacity", opt.cache_capacity},
         {"cache_shards", opt.cache_shards},
         {"mode", opt.port >= 0 ? "tcp" : "stdio"},
         {"port", opt.port},
         {"trace", !opt.trace_path.empty()},
         {"metrics_interval", opt.metrics_interval}});

    metrics_dumper dumper{engine, opt.metrics_interval};

    const int status =
        opt.port >= 0 ? run_tcp(engine, opt) : run_stdio(engine, opt);

    // Clean shutdown (EOF or SIGINT/SIGTERM): stop the periodic dumper
    // (which flushes a final exposition), write the trace, then the
    // legacy JSON metrics dump.
    dumper.stop();

    if (!opt.trace_path.empty()) {
        obs::tracer::instance().disable();
        if (obs::tracer::instance().write_chrome_json(opt.trace_path)) {
            const obs::tracer::stats t = obs::tracer::instance().snapshot();
            obs::log_info("silicond.trace_written",
                          {{"path", opt.trace_path},
                           {"events", t.recorded},
                           {"dropped", t.dropped}});
        } else {
            obs::log_error("silicond.trace_write_failed",
                           {{"path", opt.trace_path}});
        }
    }

    if (opt.metrics) {
        silicon::serve::json::object dump;
        dump.set("endpoints", engine.metrics().to_json());
        const silicon::serve::memo_cache::stats c = engine.cache_stats();
        silicon::serve::json::object cache;
        cache.set("hits", static_cast<double>(c.hits));
        cache.set("misses", static_cast<double>(c.misses));
        cache.set("evictions", static_cast<double>(c.evictions));
        cache.set("entries", static_cast<double>(c.entries));
        dump.set("cache", silicon::serve::json::value{std::move(cache)});
        std::cerr << silicon::serve::json::dump(
                         silicon::serve::json::value{std::move(dump)})
                  << "\n";
    }

    obs::log_info("silicond.stop",
                  {{"signal", g_stop != 0}, {"status", status}});
    return status;
}
