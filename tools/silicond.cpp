// silicond — the silicon cost-query server.
//
// Speaks the serve JSONL protocol (one request per line, one response
// per line, same order — see DESIGN.md §8) over two transports:
//
//   * stdin/stdout (default): read requests, answer them, exit at EOF.
//     Lines are collected into batches of --batch and fanned across
//     the exec thread pool; output order always matches input order
//     and is bit-identical for every --threads value, which is what
//     the golden smoke test pins down.
//
//       echo '{"op":"scenario1","lambda_um":0.5}' | silicond
//
//   * TCP (--port N): a single-threaded epoll event loop (serve/
//     event_loop) multiplexes every connection over a shared engine —
//     no thread per client, so thousands of concurrent connections
//     cost file descriptors, not stacks.  Each connection batches its
//     lines through the engine exactly like stdin mode (responses stay
//     in order and bit-identical per connection for every --threads
//     value); parallelism lives in the exec pool the batches fan
//     across.  --port 0 binds an ephemeral port and logs the chosen
//     one.  Slow readers are backpressured (the loop stops reading a
//     connection whose write queue passes its high watermark) and
//     bounded by --max-conns / --idle-timeout-ms / --write-timeout-ms.
//
// Overload behavior (DESIGN.md §11): both transports frame lines
// through a bounded splitter (serve/io) — a line over --max-line-bytes
// is answered with a `too_large` envelope after the pending batch
// flushes (replies stay in order); over TCP the connection then
// closes.  --max-batch-lines / --max-sweep-points / --max-mc-dies /
// --max-inflight-bytes / --deadline-ms / --shed-on-overload configure
// the engine's admission control and deadline budgets.  All writes
// retry EINTR and short writes; SIGPIPE is ignored, so a vanished
// client costs one connection, never the process.  --faults SPEC (or
// the SILICON_FAULTS environment variable) arms the deterministic
// fault-injection switchboard (serve/faults) for chaos testing.
//
// Observability (DESIGN.md §9): over TCP the port also speaks real
// HTTP/1.1 with keep-alive — `GET /metrics HTTP/1.1` (what Prometheus
// and `curl localhost:N/metrics` send) answers the text exposition and
// keeps the connection open for the next scrape *or* the next JSONL
// line; the PR 5 one-shot `GET /metrics` bare line still answers and
// closes.  Over stdin a `GET /metrics` line emits the exposition
// inline; `--metrics-interval S` dumps the same exposition to stderr
// every S seconds; `--trace FILE` enables the span tracer and writes a
// Chrome trace_event JSON file at shutdown (load it in chrome://tracing
// or https://ui.perfetto.dev).  Operational events are structured JSONL
// on stderr (obs/log) — stdout carries protocol bytes only.  SIGINT /
// SIGTERM shut down cleanly: pending metrics and the trace file are
// flushed before exit.
//
// Flags:
//   --threads N           batch fan-out width (0 = hardware, 1 = serial)
//   --batch N             max lines per engine batch (default 1024)
//   --cache-capacity N    memoization entries (0 disables; default 65536)
//   --cache-shards N      cache shard count (default 16)
//   --cache-snapshot PATH persist the cache to PATH (restored at boot,
//                         written atomically on clean shutdown, on
//                         SIGUSR2, and every --snapshot-interval)
//   --snapshot-interval S periodic snapshot cadence in seconds
//                         (0 = only shutdown/SIGUSR2 writes)
//   --fast-math           vector-math sweep/partition kernels (ULP-
//                         bounded drift; off = bit-exact scalar)
//   --port N              serve TCP on 127.0.0.1:N instead of stdin
//                         (0 = ephemeral; the chosen port is logged)
//   --max-conns N         most simultaneous TCP connections; beyond it
//                         accepts are closed immediately (0 = unlimited)
//   --idle-timeout-ms N   close connections idle this long (0 = never)
//   --write-timeout-ms N  close connections whose replies a slow reader
//                         leaves unread this long (0 = never)
//   --max-line-bytes N    per-line byte bound (default 16 MiB; 0 = off)
//   --max-batch-lines N   per-batch line bound (default 0 = off)
//   --max-sweep-points N  largest accepted sweep grid (0 = off)
//   --max-mc-dies N       largest accepted Monte-Carlo die count (0 = off)
//   --max-inflight-bytes N  admission byte budget (0 = off)
//   --deadline-ms N       default per-batch deadline (0 = off)
//   --shed-on-overload    shed cache shards on overloaded rejections
//   --faults SPEC         arm fault injection (see serve/faults.hpp)
//   --metrics             dump the metrics/cache JSON to stderr on exit
//   --metrics-interval S  dump Prometheus text to stderr every S seconds
//   --trace FILE          enable tracing; write Chrome trace JSON on exit
//   --flight-records N    per-thread flight-recorder ring capacity
//                         (default 4096; 0 disables recording)
//   --flight-dump FILE    write the flight-recorder JSONL to FILE on the
//                         first anomaly (deadline_exceeded / overloaded /
//                         internal_error), on SIGUSR1, and at shutdown
//   --flight-deterministic  zero record timings so a fixed corpus dumps
//                         byte-identically at any --threads value
//   --log-level LEVEL     trace|debug|info|warn|error (default info)
//   --help
//
// SIGUSR1 dumps the flight recorder on demand: to --flight-dump FILE
// when given, to stderr otherwise.  `GET /flightz` over the TCP port
// answers the same JSONL without touching the filesystem.  SIGUSR2
// writes a cache snapshot to --cache-snapshot on demand (crash-safe
// warm restarts, DESIGN.md §16); snapshot age/bytes/duration show up
// in /statusz and the Prometheus exposition.

#include "exec/thread_pool.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/event_loop.hpp"
#include "serve/faults.hpp"
#include "serve/io.hpp"
#include "serve/limits.hpp"
#include "serve/snapshot.hpp"
#include "simd/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef SILICON_VERSION
#define SILICON_VERSION "dev"
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump_flight = 0;
volatile std::sig_atomic_t g_snapshot_now = 0;

void on_signal(int) { g_stop = 1; }
void on_sigusr1(int) { g_dump_flight = 1; }
void on_sigusr2(int) { g_snapshot_now = 1; }

/// Install SIGINT/SIGTERM handlers WITHOUT SA_RESTART so blocking
/// reads/accepts return EINTR and the main loops can exit cleanly.
/// SIGUSR1 (flight-recorder dump request) is handled the same way: the
/// EINTR wakes the transport loop, which performs the dump outside
/// signal context.  SIGPIPE is ignored: a client that vanishes
/// mid-reply must surface as an EPIPE write error on that connection,
/// not kill the server.
void install_signal_handlers() {
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    struct sigaction usr1{};
    usr1.sa_handler = on_sigusr1;
    sigemptyset(&usr1.sa_mask);
    usr1.sa_flags = 0;
    sigaction(SIGUSR1, &usr1, nullptr);
    struct sigaction usr2{};
    usr2.sa_handler = on_sigusr2;
    sigemptyset(&usr2.sa_mask);
    usr2.sa_flags = 0;
    sigaction(SIGUSR2, &usr2, nullptr);
    std::signal(SIGPIPE, SIG_IGN);
}

/// The --flight-dump path (empty = dump to stderr on SIGUSR1).
std::string g_flight_dump_path;  // NOLINT: set once in main

/// Honor a pending SIGUSR1 outside signal context.  Called from the
/// transport loops' wakeup points.
void process_flight_dump_request() {
    if (g_dump_flight == 0) {
        return;
    }
    g_dump_flight = 0;
    silicon::obs::flight_recorder& flight =
        silicon::obs::flight_recorder::instance();
    if (!g_flight_dump_path.empty()) {
        if (flight.write_jsonl(g_flight_dump_path)) {
            silicon::obs::log_info("silicond.flight_dump",
                                   {{"path", g_flight_dump_path}});
        } else {
            silicon::obs::log_error("silicond.flight_dump_failed",
                                    {{"path", g_flight_dump_path}});
        }
    } else {
        std::string text;
        flight.export_jsonl(text);
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
    }
}

/// Snapshot plumbing: set once in main before any transport thread
/// starts, then read-only.  Empty path = snapshots disabled.
std::string g_snapshot_path;                      // NOLINT
silicon::serve::engine* g_snapshot_engine = nullptr;  // NOLINT

/// Write a cache snapshot to --cache-snapshot and log the outcome.
/// Safe from any thread (the engine serializes writers internally);
/// a failed write leaves any previous snapshot file intact.
void write_snapshot(const char* why) {
    if (g_snapshot_path.empty() || g_snapshot_engine == nullptr) {
        return;
    }
    const silicon::serve::snapshot::write_result r =
        g_snapshot_engine->snapshot_write(g_snapshot_path);
    if (r.ok) {
        silicon::obs::log_info("silicond.snapshot_written",
                               {{"path", g_snapshot_path},
                                {"reason", why},
                                {"entries", r.entries},
                                {"bytes", r.bytes}});
    } else {
        silicon::obs::log_error("silicond.snapshot_failed",
                                {{"path", g_snapshot_path},
                                 {"reason", why},
                                 {"error", r.error}});
    }
}

/// Honor a pending SIGUSR2 (manual snapshot trigger) outside signal
/// context.  Called from the transport loops' wakeup points.
void process_snapshot_request() {
    if (g_snapshot_now == 0) {
        return;
    }
    g_snapshot_now = 0;
    write_snapshot("sigusr2");
}

struct options {
    unsigned threads = 0;
    std::size_t batch = 1024;
    std::size_t cache_capacity = 65536;
    std::size_t cache_shards = 16;
    std::string cache_snapshot;     ///< empty = snapshots off
    unsigned snapshot_interval = 0;  ///< seconds; 0 = no periodic writes
    int port = -1;
    std::size_t max_conns = 0;           ///< 0 = unlimited
    std::size_t idle_timeout_ms = 0;     ///< 0 = never
    std::size_t write_timeout_ms = 0;    ///< 0 = never
    std::size_t max_line_bytes = 16u << 20;  ///< 16 MiB; 0 = unbounded
    std::size_t max_batch_lines = 0;
    std::size_t max_sweep_points = 0;
    std::size_t max_mc_dies = 0;
    std::size_t max_inflight_bytes = 0;
    std::size_t deadline_ms = 0;
    bool shed_on_overload = false;
    bool fast_math = false;
    std::string faults_spec;
    bool metrics = false;
    unsigned metrics_interval = 0;  ///< seconds; 0 = off
    std::string trace_path;         ///< empty = tracing off
    std::size_t flight_records =
        silicon::obs::flight_recorder::default_capacity;  ///< 0 = off
    std::string flight_dump;        ///< empty = no dump file
    bool flight_deterministic = false;
};

void usage(std::ostream& out) {
    out << "silicond - Maly silicon cost model query server (JSONL)\n"
           "\n"
           "  silicond [--threads N] [--batch N] [--cache-capacity N]\n"
           "           [--cache-shards N] [--cache-snapshot PATH]\n"
           "           [--snapshot-interval S]\n"
           "           [--port N] [--max-conns N]\n"
           "           [--idle-timeout-ms N] [--write-timeout-ms N]\n"
           "           [--max-line-bytes N] [--max-batch-lines N]\n"
           "           [--max-sweep-points N] [--max-mc-dies N]\n"
           "           [--max-inflight-bytes N] [--deadline-ms N]\n"
           "           [--shed-on-overload] [--fast-math]\n"
           "           [--faults SPEC] [--metrics]\n"
           "           [--metrics-interval S] [--trace FILE]\n"
           "           [--flight-records N] [--flight-dump FILE]\n"
           "           [--flight-deterministic] [--log-level LEVEL]\n"
           "\n"
           "Reads one JSON request per line from stdin (or a TCP\n"
           "connection with --port) and writes one JSON response per\n"
           "line in the same order.  Example:\n"
           "\n"
           "  echo '{\"op\":\"scenario1\",\"lambda_um\":0.5}' | silicond\n"
           "\n"
           "A line starting with 'GET /metrics' answers with the\n"
           "Prometheus text exposition; over TCP the port speaks\n"
           "HTTP/1.1 with keep-alive too, so curl and Prometheus\n"
           "scrape it directly.  --trace FILE writes a Chrome trace\n"
           "JSON file at shutdown.  Lines over --max-line-bytes are\n"
           "answered with a too_large error envelope (and the\n"
           "connection closes over TCP); requests over the sweep/MC/\n"
           "byte budgets get too_large or overloaded envelopes; every\n"
           "accepted line still gets exactly one reply.\n"
           "\n"
           "A request may carry a \"trace_id\" string; it is echoed in\n"
           "the response envelope (success and error alike) and shows\n"
           "up in the flight recorder, the Prometheus tail exemplars,\n"
           "and /flightz.  The flight recorder keeps the last\n"
           "--flight-records requests per thread (0 disables) and\n"
           "dumps JSONL to --flight-dump on the first anomaly\n"
           "(deadline_exceeded / overloaded / internal_error), on\n"
           "SIGUSR1, and at shutdown; --flight-deterministic zeroes\n"
           "timings so fixed corpora dump byte-identically at any\n"
           "--threads.  Over TCP the port also answers GET /healthz\n"
           "(liveness; 503 when over the admission budget),\n"
           "GET /statusz (config/limits/cache/flight JSON) and\n"
           "GET /flightz (recent flight records, JSONL).\n"
           "\n"
           "--cache-snapshot PATH makes restarts warm: the memoization\n"
           "cache is restored from PATH at boot (a missing, corrupt, or\n"
           "mismatched snapshot degrades to a counted cold start, never\n"
           "a crash) and written back atomically (tmp + fsync + rename)\n"
           "on clean shutdown, on SIGUSR2, and every\n"
           "--snapshot-interval seconds.\n"
           "\n"
           "--fast-math routes sweep and partition_explore kernels\n"
           "through runtime-dispatched vector math (AVX2/NEON; see the\n"
           "simd_target field in the start banner and /statusz).\n"
           "Curve values may drift from the scalar library within the\n"
           "documented ULP bounds (DESIGN.md section 15), so leave it\n"
           "off for golden/bit-exact workflows; point queries and\n"
           "error/null lanes are unaffected, and responses remain\n"
           "deterministic at every --threads value.\n"
           "\n"
           "Endpoints: cost_tr gross_die yield scenario1 scenario2\n"
           "           table3 mc_yield sweep chiplet partition_explore\n"
           "           stats\n";
}

bool parse_size(const char* text, std::size_t& out) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0') {
        return false;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

bool parse_log_level(const std::string& name, silicon::obs::log_level& out) {
    using silicon::obs::log_level;
    for (const log_level level :
         {log_level::trace, log_level::debug, log_level::info,
          log_level::warn, log_level::error}) {
        if (silicon::obs::to_string(level) == name) {
            out = level;
            return true;
        }
    }
    return false;
}

bool parse_options(int argc, char** argv, options& opt) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        std::size_t v = 0;
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg == "--shed-on-overload") {
            opt.shed_on_overload = true;
        } else if (arg == "--fast-math") {
            opt.fast_math = true;
        } else if (arg == "--threads") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.threads = static_cast<unsigned>(v);
        } else if (arg == "--batch") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.batch = v;
        } else if (arg == "--cache-capacity") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.cache_capacity = v;
        } else if (arg == "--cache-shards") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.cache_shards = v;
        } else if (arg == "--cache-snapshot") {
            const char* t = next();
            if (t == nullptr || *t == '\0') {
                return false;
            }
            opt.cache_snapshot = t;
        } else if (arg == "--snapshot-interval") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.snapshot_interval = static_cast<unsigned>(v);
        } else if (arg == "--port") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v > 65535) {
                return false;
            }
            opt.port = static_cast<int>(v);
        } else if (arg == "--max-conns") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_conns = v;
        } else if (arg == "--idle-timeout-ms") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.idle_timeout_ms = v;
        } else if (arg == "--write-timeout-ms") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.write_timeout_ms = v;
        } else if (arg == "--max-line-bytes") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_line_bytes = v;
        } else if (arg == "--max-batch-lines") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_batch_lines = v;
        } else if (arg == "--max-sweep-points") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_sweep_points = v;
        } else if (arg == "--max-mc-dies") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_mc_dies = v;
        } else if (arg == "--max-inflight-bytes") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.max_inflight_bytes = v;
        } else if (arg == "--deadline-ms") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.deadline_ms = v;
        } else if (arg == "--faults") {
            const char* t = next();
            if (t == nullptr || *t == '\0') {
                return false;
            }
            opt.faults_spec = t;
        } else if (arg == "--metrics-interval") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v) || v == 0) {
                return false;
            }
            opt.metrics_interval = static_cast<unsigned>(v);
        } else if (arg == "--trace") {
            const char* t = next();
            if (t == nullptr || *t == '\0') {
                return false;
            }
            opt.trace_path = t;
        } else if (arg == "--flight-records") {
            const char* t = next();
            if (t == nullptr || !parse_size(t, v)) {
                return false;
            }
            opt.flight_records = v;
        } else if (arg == "--flight-dump") {
            const char* t = next();
            if (t == nullptr || *t == '\0') {
                return false;
            }
            opt.flight_dump = t;
        } else if (arg == "--flight-deterministic") {
            opt.flight_deterministic = true;
        } else if (arg == "--log-level") {
            const char* t = next();
            silicon::obs::log_level level{};
            if (t == nullptr || !parse_log_level(t, level)) {
                return false;
            }
            silicon::obs::set_log_threshold(level);
        } else {
            return false;
        }
    }
    return true;
}

[[nodiscard]] bool is_metrics_request(std::string_view line) {
    return line.rfind("GET /metrics", 0) == 0;
}

silicon::obs::counter& flushes_counter() {
    static silicon::obs::counter& c =
        silicon::obs::metrics_registry::global().get_counter(
            "silicond_flushes_total",
            "Gathered response flushes written to the transport");
    return c;
}

silicon::obs::counter& flushed_bytes_counter() {
    static silicon::obs::counter& c =
        silicon::obs::metrics_registry::global().get_counter(
            "silicond_flushed_bytes_total",
            "Response bytes written through gathered flushes");
    return c;
}

silicon::obs::counter& oversized_lines_counter() {
    static silicon::obs::counter& c =
        silicon::obs::metrics_registry::global().get_counter(
            "silicond_oversized_lines_total",
            "Transport lines rejected by the max-line-bytes bound");
    return c;
}

namespace io = silicon::serve::io;
namespace faults = silicon::serve::faults;

/// One read attempt with EINTR retry (real — a signal without
/// SA_RESTART — or injected via the `silicond.read` fault site).
/// Returns bytes read, 0 on EOF or shutdown, negative on a dead
/// stream.
long read_some(int fd, char* buf, std::size_t cap) {
    for (;;) {
        if (faults::enabled() && faults::take_eintr("silicond.read")) {
            continue;  // simulated EINTR storm: retry
        }
        const ssize_t got = ::read(fd, buf, cap);
        if (got < 0 && errno == EINTR) {
            if (g_stop != 0) {
                return 0;  // interrupted by shutdown: drain and exit
            }
            process_flight_dump_request();  // SIGUSR1 woke the read
            process_snapshot_request();     // SIGUSR2: snapshot now
            continue;
        }
        return static_cast<long>(got);
    }
}

/// Gather a batch's responses (and their newlines) into one buffer and
/// write it with a single EINTR-safe gathered write — a writev-style
/// flush instead of one small write per line.  The buffer is reused
/// across batches.  Returns false when the peer is gone.
bool flush_batch(silicon::serve::engine& engine,
                 std::vector<std::string>& lines, std::string& gather,
                 int fd, bool is_socket) {
    if (lines.empty()) {
        return true;
    }
    gather.clear();
    for (const std::string& response : engine.handle_batch(lines)) {
        gather += response;
        gather += '\n';
    }
    lines.clear();
    if (!io::write_all_fd(fd, gather, is_socket)) {
        return false;
    }
    flushes_counter().add(1);
    flushed_bytes_counter().add(gather.size());
    return true;
}

/// Shared per-connection/per-stream line loop: frame bytes through the
/// bounded splitter, batch complete lines, answer oversized lines with
/// a `too_large` envelope *after* the pending batch (replies stay in
/// request order).  Transport-specific behavior (metrics scrape shape,
/// close-on-oversize) is parameterized.
struct line_loop {
    silicon::serve::engine& engine;
    int in_fd;
    int out_fd;
    bool is_socket;
    std::size_t batch;
    std::size_t max_line_bytes;
    bool close_on_oversize;
    bool close_on_scrape;

    io::line_splitter splitter{0};
    std::vector<std::string> lines;
    std::string gather;
    std::string reject;
    bool dead = false;  ///< write failed or close requested

    void run() {
        splitter = io::line_splitter{max_line_bytes};
        lines.reserve(batch);
        char chunk[4096];
        const auto on_line = [this](std::string_view line, bool oversized) {
            handle(line, oversized);
        };
        while (!dead && g_stop == 0) {
            const long got = read_some(in_fd, chunk, sizeof chunk);
            if (got <= 0) {
                break;
            }
            splitter.feed({chunk, static_cast<std::size_t>(got)}, on_line);
            // Answer everything complete in this chunk: a client that
            // sends one request and waits must not stall behind the
            // batch-size threshold.
            if (!dead &&
                !flush_batch(engine, lines, gather, out_fd, is_socket)) {
                dead = true;
            }
        }
        if (!dead) {
            splitter.finish(on_line);
        }
        if (!dead) {
            flush_batch(engine, lines, gather, out_fd, is_socket);
        }
    }

private:
    void handle(std::string_view line, bool oversized) {
        if (dead) {
            return;
        }
        if (oversized) {
            // Answer pending work first so the rejection lands at the
            // position the oversized line occupied.
            if (!flush_batch(engine, lines, gather, out_fd, is_socket)) {
                dead = true;
                return;
            }
            oversized_lines_counter().add(1);
            reject.clear();
            silicon::serve::append_line_too_large(max_line_bytes, reject);
            reject += '\n';
            if (!io::write_all_fd(out_fd, reject, is_socket)) {
                dead = true;
                return;
            }
            if (close_on_oversize) {
                dead = true;  // protocol framing is suspect: drop the peer
            }
            return;
        }
        if (line.empty()) {
            return;  // blank lines are keep-alives, not requests
        }
        if (is_metrics_request(line)) {
            // Scrape: answer pending work first, then the exposition
            // (an HTTP one-shot over TCP, inline text over stdio).
            if (!flush_batch(engine, lines, gather, out_fd, is_socket)) {
                dead = true;
                return;
            }
            emit_metrics();
            if (close_on_scrape) {
                dead = true;
            }
            return;
        }
        lines.emplace_back(line);
        if (lines.size() >= batch) {
            if (!flush_batch(engine, lines, gather, out_fd, is_socket)) {
                dead = true;
            }
        }
    }

    void emit_metrics() {
        const std::string body = engine.prometheus_text();
        if (is_socket) {
            // One-shot HTTP response so `curl :port/metrics` works.
            std::string response =
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                "Content-Length: " +
                std::to_string(body.size()) + "\r\n\r\n";
            response += body;
            io::write_all_fd(out_fd, response, is_socket);
        } else {
            io::write_all_fd(out_fd, body, is_socket);
        }
    }
};

int run_stdio(silicon::serve::engine& engine, const options& opt) {
    // stdio is a long-lived session: an oversized line is answered and
    // discarded, the stream continues; a metrics line emits the
    // exposition inline and the loop resumes.
    line_loop loop{engine,
                   STDIN_FILENO,
                   STDOUT_FILENO,
                   /*is_socket=*/false,
                   opt.batch,
                   opt.max_line_bytes,
                   /*close_on_oversize=*/false,
                   /*close_on_scrape=*/false};
    loop.run();
    return 0;
}

int run_tcp(silicon::serve::engine& engine, const options& opt) {
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        silicon::obs::log_error("silicond.socket",
                                {{"error", std::strerror(errno)}});
        return 1;
    }
    const int enable = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
               sizeof address) != 0 ||
        ::listen(listener, 64) != 0) {
        silicon::obs::log_error("silicond.bind",
                                {{"port", opt.port},
                                 {"error", std::strerror(errno)}});
        ::close(listener);
        return 1;
    }
    // --port 0 binds an ephemeral port; report the one the kernel chose
    // so test harnesses (tools/chaosclient) can parse it from the log.
    int bound_port = opt.port;
    {
        sockaddr_in actual{};
        socklen_t len = sizeof actual;
        if (::getsockname(listener, reinterpret_cast<sockaddr*>(&actual),
                          &len) == 0) {
            bound_port = static_cast<int>(ntohs(actual.sin_port));
        }
    }
    silicon::obs::log_info("silicond.listening",
                           {{"address", "127.0.0.1"}, {"port", bound_port}});

    silicon::serve::event_loop_config loop_config;
    loop_config.max_conns = opt.max_conns;
    loop_config.idle_timeout_ms = opt.idle_timeout_ms;
    loop_config.write_timeout_ms = opt.write_timeout_ms;
    loop_config.conn.batch = opt.batch;
    loop_config.conn.max_line_bytes = opt.max_line_bytes;
    loop_config.conn.close_on_oversize = true;
    if (opt.snapshot_interval > 0 && !opt.cache_snapshot.empty()) {
        // Periodic snapshots ride the loop's timerfd tick; the write
        // serializes the cache shard-by-shard and the file I/O is a
        // local rename, so the pause is bounded and connections keep
        // their kernel buffers meanwhile.
        loop_config.periodic_ms =
            static_cast<std::uint64_t>(opt.snapshot_interval) * 1000u;
        loop_config.on_periodic = [] { write_snapshot("interval"); };
    }
    try {
        // The loop owns the listener from here on.  SIGINT/SIGTERM
        // interrupt epoll_wait (no SA_RESTART) and the should_stop
        // check exits the loop, dropping open connections.
        silicon::serve::event_loop loop{engine, listener,
                                        std::move(loop_config)};
        loop.run([] {
            // Piggyback on the loop's wakeup check: SIGUSR1/SIGUSR2
            // interrupt epoll_wait, the dump/snapshot happens here,
            // serving continues.
            process_flight_dump_request();
            process_snapshot_request();
            return g_stop != 0;
        });
    } catch (const std::system_error& e) {
        silicon::obs::log_error("silicond.event_loop",
                                {{"error", e.what()}});
        return 1;
    }
    return 0;
}

/// Background Prometheus dumper: one stderr exposition every
/// `interval` seconds until stopped (condition variable so shutdown
/// never waits out a full period).
class metrics_dumper {
public:
    metrics_dumper(silicon::serve::engine& engine, unsigned interval)
        : engine_{engine}, interval_{interval} {
        if (interval_ > 0) {
            thread_ = std::thread{[this] { loop(); }};
        }
    }

    ~metrics_dumper() { stop(); }

    void stop() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (done_) {
                return;
            }
            done_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) {
            thread_.join();
        }
        if (interval_ > 0) {
            dump();  // final flush so shutdown always records totals
        }
    }

private:
    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock, std::chrono::seconds{interval_},
                             [this] { return done_; })) {
            lock.unlock();
            dump();
            lock.lock();
        }
    }

    void dump() {
        const std::string text = engine_.prometheus_text();
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
    }

    silicon::serve::engine& engine_;
    unsigned interval_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
};

/// Background periodic snapshot writer for stdio mode (TCP mode rides
/// the event loop's timerfd instead).  The engine serializes snapshot
/// writers, so this thread and a SIGUSR2-triggered write never tear.
class snapshot_ticker {
public:
    explicit snapshot_ticker(unsigned interval)
        : interval_{interval} {
        if (interval_ > 0) {
            thread_ = std::thread{[this] { loop(); }};
        }
    }

    ~snapshot_ticker() { stop(); }

    void stop() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (done_) {
                return;
            }
            done_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) {
            thread_.join();
        }
    }

private:
    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!cv_.wait_for(lock, std::chrono::seconds{interval_},
                             [this] { return done_; })) {
            lock.unlock();
            write_snapshot("interval");
            lock.lock();
        }
    }

    unsigned interval_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
};

}  // namespace

int main(int argc, char** argv) {
    options opt;
    if (!parse_options(argc, argv, opt)) {
        usage(std::cerr);
        return 2;
    }

    std::ios::sync_with_stdio(false);
    install_signal_handlers();

    try {
        if (!opt.faults_spec.empty()) {
            faults::configure(opt.faults_spec);
        } else {
            faults::configure_from_env();
        }
    } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    namespace obs = silicon::obs;
    if (!opt.trace_path.empty()) {
        obs::tracer::instance().enable();
    }

    silicon::serve::engine_config config;
    config.parallelism = opt.threads;
    config.cache_capacity = opt.cache_capacity;
    config.cache_shards = opt.cache_shards;
    // max_line_bytes is enforced by the transport's bounded splitter;
    // mirroring it into the engine costs one compare per line and keeps
    // direct library users of this config equally bounded.
    config.limits.max_line_bytes = opt.max_line_bytes;
    config.limits.max_batch_lines = opt.max_batch_lines;
    config.limits.max_sweep_points = opt.max_sweep_points;
    config.limits.max_mc_dies = opt.max_mc_dies;
    config.limits.max_inflight_bytes = opt.max_inflight_bytes;
    config.limits.default_deadline_ms = opt.deadline_ms;
    config.limits.shed_on_overload = opt.shed_on_overload;
    config.fast_math = opt.fast_math;
    silicon::serve::engine engine{config};

    if (!opt.cache_snapshot.empty()) {
        g_snapshot_path = opt.cache_snapshot;
        g_snapshot_engine = &engine;
        const silicon::serve::snapshot::restore_result restored =
            engine.snapshot_restore(opt.cache_snapshot);
        using silicon::serve::snapshot::restore_outcome;
        switch (restored.outcome) {
            case restore_outcome::restored:
                obs::log_info("silicond.snapshot_restored",
                              {{"path", opt.cache_snapshot},
                               {"entries", restored.entries},
                               {"bytes", restored.bytes}});
                break;
            case restore_outcome::cold_missing:
                obs::log_info("silicond.snapshot_cold",
                              {{"path", opt.cache_snapshot},
                               {"reason", "missing"}});
                break;
            case restore_outcome::cold_corrupt:
                obs::log_warn("silicond.snapshot_cold",
                              {{"path", opt.cache_snapshot},
                               {"reason", restored.reason}});
                break;
        }
    }

    // Flight recorder: configured while still single-threaded (ring
    // capacity is fixed at a thread's first append).
    obs::flight_recorder& flight = obs::flight_recorder::instance();
    flight.configure(opt.flight_records);
    flight.set_enabled(opt.flight_records != 0);
    flight.set_deterministic(opt.flight_deterministic);
    g_flight_dump_path = opt.flight_dump;
    if (!opt.flight_dump.empty()) {
        flight.arm_dump(opt.flight_dump);
    }

    obs::log_info(
        "silicond.start",
        {{"version", SILICON_VERSION},
         {"threads",
          silicon::exec::resolve_parallelism(opt.threads)},
         {"batch", opt.batch},
         {"cache_capacity", opt.cache_capacity},
         {"cache_shards", opt.cache_shards},
         {"cache_snapshot", opt.cache_snapshot},
         {"snapshot_interval", opt.snapshot_interval},
         {"mode", opt.port >= 0 ? "tcp" : "stdio"},
         {"simd_target",
          silicon::simd::to_string(silicon::simd::active_target())},
         {"fast_math", opt.fast_math},
         {"port", opt.port},
         {"max_line_bytes", opt.max_line_bytes},
         {"deadline_ms", opt.deadline_ms},
         {"faults", faults::enabled()},
         {"trace", !opt.trace_path.empty()},
         {"metrics_interval", opt.metrics_interval},
         {"flight_records", opt.flight_records},
         {"flight_dump", opt.flight_dump}});

    metrics_dumper dumper{engine, opt.metrics_interval};
    // stdio has no event loop to carry the periodic tick, so it gets a
    // dedicated thread; TCP snapshots ride the loop's timerfd.
    snapshot_ticker ticker{opt.port < 0 ? opt.snapshot_interval : 0u};

    const int status =
        opt.port >= 0 ? run_tcp(engine, opt) : run_stdio(engine, opt);

    // Clean shutdown (EOF or SIGINT/SIGTERM): stop the periodic dumper
    // (which flushes a final exposition), write a final cache snapshot,
    // the flight dump and the trace, then the legacy JSON metrics dump.
    dumper.stop();
    ticker.stop();
    write_snapshot("shutdown");

    process_flight_dump_request();  // a SIGUSR1 racing shutdown still dumps
    if (!opt.flight_dump.empty()) {
        if (flight.write_jsonl(opt.flight_dump)) {
            const obs::flight_recorder::stats f = flight.snapshot();
            obs::log_info("silicond.flight_written",
                          {{"path", opt.flight_dump},
                           {"appended", f.appended},
                           {"dropped", f.dropped},
                           {"anomalies", f.anomalies}});
        } else {
            obs::log_error("silicond.flight_write_failed",
                           {{"path", opt.flight_dump}});
        }
    }

    if (!opt.trace_path.empty()) {
        obs::tracer::instance().disable();
        if (obs::tracer::instance().write_chrome_json(opt.trace_path)) {
            const obs::tracer::stats t = obs::tracer::instance().snapshot();
            obs::log_info("silicond.trace_written",
                          {{"path", opt.trace_path},
                           {"events", t.recorded},
                           {"dropped", t.dropped}});
        } else {
            obs::log_error("silicond.trace_write_failed",
                           {{"path", opt.trace_path}});
        }
    }

    if (opt.metrics) {
        silicon::serve::json::object dump;
        dump.set("endpoints", engine.metrics().to_json());
        const silicon::serve::memo_cache::stats c = engine.cache_stats();
        silicon::serve::json::object cache;
        cache.set("hits", static_cast<double>(c.hits));
        cache.set("misses", static_cast<double>(c.misses));
        cache.set("evictions", static_cast<double>(c.evictions));
        cache.set("entries", static_cast<double>(c.entries));
        dump.set("cache", silicon::serve::json::value{std::move(cache)});
        std::cerr << silicon::serve::json::dump(
                         silicon::serve::json::value{std::move(dump)})
                  << "\n";
    }

    obs::log_info("silicond.stop",
                  {{"signal", g_stop != 0}, {"status", status}});
    return status;
}
