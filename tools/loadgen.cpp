// loadgen — open-loop load harness for silicond's TCP transport.
//
// Closed-loop clients (send, wait, send) hide overload: when the server
// slows down, the client slows down with it and the measured latency
// stays flat — the coordinated-omission trap.  This harness is
// open-loop: requests are *scheduled* by a Poisson arrival process at a
// target rate (seeded SplitMix64, so a run is reproducible), and every
// latency sample is measured from the request's scheduled arrival time,
// not from when the socket finally accepted it.  Queueing delay under
// overload therefore shows up in the percentiles, which is the point.
//
// Protocol: the request mix is drawn from the golden corpus
// (tests/serve/golden_requests.jsonl) filtered to the requests whose
// paired golden response is ok — a realistic spread of cheap and
// expensive ops with deterministic replies.  Responses are matched to
// requests positionally per connection (the serve protocol guarantees
// per-connection FIFO order).
//
// Procedure:
//   1. spawn `silicond --port 0` (parsing the bound port from the
//      structured stderr log, same as tools/chaosclient);
//   2. calibrate capacity with a short closed-loop, pipelined burst
//      (this is the one thing closed-loop is good at: measuring the
//      server's saturated throughput);
//   3. run open-loop levels at 0.5x, 1x and 2x the calibrated
//      capacity, each over a fleet of persistent connections;
//   4. write BENCH_load.json: per-level offered/achieved/goodput rates,
//      p50/p99/p999 latency, error-code breakdown, and a gate.
//
// The gate (also enforced by tools/validate_bench_json.py and the CI
// load-smoke stage) requires finite percentiles at every level and
// goodput under 2x overload of at least 70% of calibrated capacity —
// i.e. overload must shed or queue, never collapse.  SILICON_BENCH_TINY=1
// shrinks the run to ~2 s for CI smoke; the gate still applies.
//
// Usage: loadgen /path/to/silicond [--requests F] [--responses F]
//                [--out F] [--seed N] [--conns N] [--level-s X]
//
// Exit code 0 = ran and gate passed (or sampled cleanly in tiny mode).

#include "analysis/stats.hpp"
#include "yield/defect.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

using silicon::yield::splitmix64;

constexpr int kStartupTimeoutMs = 30000;

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

using clock_type = std::chrono::steady_clock;

std::uint64_t now_ns(clock_type::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock_type::now() - t0)
            .count());
}

// ---------------------------------------------------------------------------
// Server child (same spawn/await-port pattern as tools/chaosclient)
// ---------------------------------------------------------------------------

struct server {
    pid_t pid = -1;
    int stderr_fd = -1;
    int port = 0;
};

server spawn_silicond(const char* binary,
                      const std::vector<std::string>& extra) {
    server s;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        std::perror("pipe");
        return s;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("fork");
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        return s;
    }
    if (pid == 0) {
        ::close(pipe_fds[0]);
        ::dup2(pipe_fds[1], STDERR_FILENO);
        ::close(pipe_fds[1]);
        std::vector<std::string> args{binary, "--port", "0"};
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) {
            argv.push_back(a.data());
        }
        argv.push_back(nullptr);
        ::execv(binary, argv.data());
        std::perror("execv");
        std::_Exit(127);
    }
    ::close(pipe_fds[1]);
    s.pid = pid;
    s.stderr_fd = pipe_fds[0];
    return s;
}

int await_port(server& s) {
    std::string log;
    char buf[512];
    const auto deadline = clock_type::now() +
                          std::chrono::milliseconds{kStartupTimeoutMs};
    while (clock_type::now() < deadline) {
        pollfd p{s.stderr_fd, POLLIN, 0};
        if (::poll(&p, 1, 100) <= 0) {
            continue;
        }
        const ssize_t got = ::read(s.stderr_fd, buf, sizeof buf);
        if (got <= 0) {
            break;
        }
        log.append(buf, static_cast<std::size_t>(got));
        const std::size_t at = log.find("silicond.listening");
        if (at == std::string::npos) {
            continue;
        }
        const std::size_t key = log.find("\"port\":", at);
        if (key == std::string::npos) {
            continue;
        }
        int port = 0;
        std::size_t i = key + 7;
        while (i < log.size() && log[i] >= '0' && log[i] <= '9') {
            port = port * 10 + (log[i] - '0');
            ++i;
        }
        if (i < log.size() && port > 0) {
            return port;
        }
    }
    std::cerr << "loadgen: server never reported a port; stderr:\n"
              << log << "\n";
    return 0;
}

void stop_silicond(server& s) {
    if (s.pid > 0) {
        ::kill(s.pid, SIGTERM);
        int status = 0;
        for (int i = 0; i < 100; ++i) {
            if (::waitpid(s.pid, &status, WNOHANG) == s.pid) {
                s.pid = -1;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds{50});
        }
        if (s.pid > 0) {
            ::kill(s.pid, SIGKILL);
            ::waitpid(s.pid, &status, 0);
            s.pid = -1;
        }
    }
    if (s.stderr_fd >= 0) {
        ::close(s.stderr_fd);
        s.stderr_fd = -1;
    }
}

// ---------------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------------

int connect_nonblocking(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    for (int attempt = 0; attempt < 50; ++attempt) {
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof address) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return fd;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
    }
    ::close(fd);
    return -1;
}

/// One corpus request plus the index of its endpoint (top-level "op")
/// in the shared op-name table, so every reply can be attributed to a
/// per-endpoint latency series.
struct corpus_entry {
    std::string line;
    std::uint32_t op = 0;
};

struct corpus_set {
    std::vector<corpus_entry> entries;
    std::vector<std::string> ops;  ///< distinct endpoint names, by index
};

/// One in-flight request: when it was scheduled to arrive (open-loop
/// latency is measured from the schedule, not the send) and which
/// endpoint it targets.
struct pending_req {
    std::uint64_t scheduled_ns = 0;
    std::uint32_t op = 0;
};

/// One persistent load connection: a pending send buffer, an inbound
/// line splitter, and the FIFO of in-flight requests whose replies
/// have not come back yet.
struct lconn {
    int fd = -1;
    std::string out;
    std::size_t out_off = 0;
    std::string in;
    std::deque<pending_req> pending_ns;
    bool dead = false;

    void queue(const corpus_entry& entry, std::uint64_t scheduled_ns) {
        out.append(entry.line.data(), entry.line.size());
        out += '\n';
        pending_ns.push_back(pending_req{scheduled_ns, entry.op});
    }

    /// Send as much buffered output as the socket takes right now.
    void pump_out() {
        while (out_off < out.size()) {
            const ssize_t n =
                ::send(fd, out.data() + out_off, out.size() - out_off,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
            if (n > 0) {
                out_off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR) {
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                break;
            }
            dead = true;
            break;
        }
        if (out_off == out.size()) {
            out.clear();
            out_off = 0;
        }
    }
};

/// Per-level sample accumulator.
struct level_result {
    double target_ratio = 0.0;
    double offered_req_per_s = 0.0;
    std::uint64_t sent = 0;
    std::uint64_t answered = 0;
    std::uint64_t ok = 0;
    /// Ok replies whose bytes arrived inside the level window — the
    /// goodput numerator.  Backlog answered during the drain phase is
    /// completed work, but not work the server sustained at the
    /// offered rate, so it must not flatter the overload levels.
    std::uint64_t ok_in_window = 0;
    std::uint64_t unanswered = 0;
    std::uint64_t window_ns = 0;  ///< level window (set by run_level)
    double window_s = 0.0;        ///< goodput denominator
    double duration_s = 0.0;      ///< total wall time incl. drain
    std::vector<double> latencies_ms;
    /// Same samples split by endpoint (indexed like corpus_set::ops);
    /// the per-endpoint tables expose which op carries the tail.
    std::vector<std::vector<double>> endpoint_latencies_ms;
    std::map<std::string, std::uint64_t> error_codes;
};

/// Classify one reply line: "" for ok, the envelope code otherwise.
std::string reply_code(std::string_view line) {
    if (line.find("\"ok\":true") != std::string_view::npos) {
        return "";
    }
    const std::size_t at = line.find("\"code\":\"");
    if (at == std::string_view::npos) {
        return "unparseable";
    }
    const std::size_t begin = at + 8;
    const std::size_t end = line.find('"', begin);
    if (end == std::string_view::npos) {
        return "unparseable";
    }
    return std::string{line.substr(begin, end - begin)};
}

/// Drain replies available on `c` right now; record one latency sample
/// per complete line against the connection's pending FIFO.
void pump_in(lconn& c, clock_type::time_point t0, level_result& r) {
    char chunk[16384];
    for (;;) {
        const ssize_t got =
            ::recv(c.fd, chunk, sizeof chunk, MSG_DONTWAIT);
        if (got < 0) {
            if (errno == EINTR) {
                continue;
            }
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                c.dead = true;
            }
            return;
        }
        if (got == 0) {
            c.dead = true;
            return;
        }
        c.in.append(chunk, static_cast<std::size_t>(got));
        std::size_t begin = 0;
        const std::uint64_t now = now_ns(t0);
        for (std::size_t nl = c.in.find('\n', begin);
             nl != std::string::npos; nl = c.in.find('\n', begin)) {
            const std::string_view line{c.in.data() + begin, nl - begin};
            begin = nl + 1;
            if (c.pending_ns.empty()) {
                continue;  // protocol violation; surfaces as unanswered
            }
            const pending_req pending = c.pending_ns.front();
            c.pending_ns.pop_front();
            ++r.answered;
            const double latency_ms =
                static_cast<double>(now - pending.scheduled_ns) / 1e6;
            r.latencies_ms.push_back(latency_ms);
            if (r.endpoint_latencies_ms.size() <= pending.op) {
                r.endpoint_latencies_ms.resize(pending.op + 1);
            }
            r.endpoint_latencies_ms[pending.op].push_back(latency_ms);
            const std::string code = reply_code(line);
            if (code.empty()) {
                ++r.ok;
                if (now <= r.window_ns) {
                    ++r.ok_in_window;
                }
            } else {
                ++r.error_codes[code];
            }
        }
        c.in.erase(0, begin);
        if (static_cast<std::size_t>(got) < sizeof chunk) {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Closed-loop, pipelined capacity probe: keep `window` requests
/// outstanding per connection for `seconds`, return replies/second.
double calibrate_capacity(int port, const corpus_set& corpus,
                          std::size_t conns, std::size_t window,
                          double seconds, splitmix64& rng) {
    std::vector<lconn> fleet(conns);
    for (lconn& c : fleet) {
        c.fd = connect_nonblocking(port);
        if (c.fd < 0) {
            return 0.0;
        }
    }
    const auto t0 = clock_type::now();
    level_result r;
    const std::uint64_t duration_ns =
        static_cast<std::uint64_t>(seconds * 1e9);
    for (lconn& c : fleet) {
        for (std::size_t i = 0; i < window; ++i) {
            c.queue(corpus.entries[rng.next() % corpus.entries.size()], 0);
            ++r.sent;
        }
        c.pump_out();
    }
    std::vector<pollfd> pfds(conns);
    while (now_ns(t0) < duration_ns) {
        for (std::size_t i = 0; i < conns; ++i) {
            pfds[i].fd = fleet[i].fd;
            pfds[i].events = static_cast<short>(
                POLLIN | (fleet[i].out_off < fleet[i].out.size() ? POLLOUT
                                                                 : 0));
            pfds[i].revents = 0;
        }
        if (::poll(pfds.data(), pfds.size(), 50) <= 0) {
            continue;
        }
        for (lconn& c : fleet) {
            if (c.dead) {
                continue;
            }
            const std::uint64_t before = r.answered;
            pump_in(c, t0, r);
            // Closed loop: one fresh request per reply keeps the
            // window full.
            const std::uint64_t replies = r.answered - before;
            for (std::uint64_t i = 0; i < replies; ++i) {
                c.queue(corpus.entries[rng.next() % corpus.entries.size()],
                        0);
                ++r.sent;
            }
            c.pump_out();
        }
    }
    const double elapsed =
        static_cast<double>(now_ns(t0)) / 1e9;
    for (lconn& c : fleet) {
        ::close(c.fd);
    }
    return static_cast<double>(r.answered) / elapsed;
}

/// One open-loop level: Poisson arrivals at `rate` req/s for `seconds`,
/// then a bounded drain of the in-flight tail.
level_result run_level(int port, const corpus_set& corpus,
                       std::size_t conns, double rate, double seconds,
                       double drain_limit_s, splitmix64& rng) {
    level_result r;
    r.offered_req_per_s = rate;
    r.window_s = seconds;
    r.window_ns = static_cast<std::uint64_t>(seconds * 1e9);
    r.duration_s = seconds;
    std::vector<lconn> fleet(conns);
    for (lconn& c : fleet) {
        c.fd = connect_nonblocking(port);
        if (c.fd < 0) {
            return r;
        }
    }
    const auto t0 = clock_type::now();
    const std::uint64_t duration_ns =
        static_cast<std::uint64_t>(seconds * 1e9);
    const std::uint64_t drain_ns =
        duration_ns + static_cast<std::uint64_t>(drain_limit_s * 1e9);
    // First arrival offset so rate spikes do not all start at t=0.
    double next_arrival_ns =
        -std::log(1.0 - rng.next_double()) / rate * 1e9;
    std::size_t rr = 0;  // round-robin connection cursor
    std::vector<pollfd> pfds(conns);
    for (;;) {
        std::uint64_t now = now_ns(t0);
        // Generate every arrival that is due (open loop: the schedule
        // does not care whether the server keeps up).
        while (now < duration_ns &&
               static_cast<double>(now) >= next_arrival_ns) {
            lconn& c = fleet[rr++ % conns];
            if (!c.dead) {
                c.queue(corpus.entries[rng.next() % corpus.entries.size()],
                        static_cast<std::uint64_t>(next_arrival_ns));
                ++r.sent;
            }
            next_arrival_ns +=
                -std::log(1.0 - rng.next_double()) / rate * 1e9;
        }
        bool outstanding = false;
        for (std::size_t i = 0; i < conns; ++i) {
            lconn& c = fleet[i];
            if (!c.dead && (c.out_off < c.out.size())) {
                c.pump_out();
            }
            outstanding = outstanding ||
                          (!c.dead && !c.pending_ns.empty());
            pfds[i].fd = c.fd;
            pfds[i].events = static_cast<short>(
                (c.dead ? 0 : POLLIN) |
                (!c.dead && c.out_off < c.out.size() ? POLLOUT : 0));
            pfds[i].revents = 0;
        }
        now = now_ns(t0);
        if (now >= duration_ns && !outstanding) {
            break;  // level over and every reply accounted for
        }
        if (now >= drain_ns) {
            break;  // drain budget exhausted: leftovers are unanswered
        }
        int wait_ms = 1;
        if (now < duration_ns &&
            static_cast<double>(now) < next_arrival_ns) {
            const double until_ms =
                (next_arrival_ns - static_cast<double>(now)) / 1e6;
            wait_ms = std::max(0, std::min(wait_ms,
                                           static_cast<int>(until_ms)));
        }
        (void)::poll(pfds.data(), pfds.size(), wait_ms);
        for (lconn& c : fleet) {
            if (!c.dead) {
                pump_in(c, t0, r);
            }
        }
    }
    // Rate denominators use real wall time including the drain: a
    // backlogged level that needed extra seconds to answer must not
    // report a goodput above what the server actually sustained.
    r.duration_s =
        std::max(seconds, static_cast<double>(now_ns(t0)) / 1e9);
    for (lconn& c : fleet) {
        r.unanswered += c.pending_ns.size();
        ::close(c.fd);
    }
    return r;
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// Endpoint of a request line: the first (top-level) "op" member.  The
/// corpus is the golden request file, so a raw scan is reliable —
/// nested ops (a sweep target) always come after the outer one.
std::string request_op(std::string_view line) {
    const std::size_t at = line.find("\"op\":\"");
    if (at == std::string_view::npos) {
        return "unknown";
    }
    const std::size_t begin = at + 6;
    const std::size_t end = line.find('"', begin);
    if (end == std::string_view::npos) {
        return "unknown";
    }
    return std::string{line.substr(begin, end - begin)};
}

/// Requests whose paired golden response is ok: a realistic op mix with
/// known-good replies, so goodput means "useful work completed".
corpus_set load_corpus(const std::string& requests_path,
                       const std::string& responses_path) {
    std::ifstream requests{requests_path};
    std::ifstream responses{responses_path};
    corpus_set corpus;
    std::map<std::string, std::uint32_t> op_index;
    std::string request_line;
    std::string response_line;
    while (std::getline(requests, request_line) &&
           std::getline(responses, response_line)) {
        if (response_line.find("\"ok\":true") == std::string::npos) {
            continue;
        }
        const std::string op = request_op(request_line);
        const auto [it, fresh] =
            op_index.emplace(op, static_cast<std::uint32_t>(
                                     corpus.ops.size()));
        if (fresh) {
            corpus.ops.push_back(op);
        }
        corpus.entries.push_back(corpus_entry{request_line, it->second});
    }
    return corpus;
}

// ---------------------------------------------------------------------------
// JSON output (hand-rolled here: the tool must not drag in the serve
// library just to print a dozen fields; non-finite values become null
// so the schema validator's numeric type check enforces finiteness)
// ---------------------------------------------------------------------------

void json_number(std::ostream& out, double v) {
    if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        out << buf;
    } else {
        out << "null";
    }
}

double quantile_ms(const std::vector<double>& samples, double q) {
    if (samples.empty()) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    return silicon::analysis::quantile(samples, q);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: loadgen /path/to/silicond [--requests F] "
                     "[--responses F] [--out F] [--seed N] [--conns N] "
                     "[--level-s X]\n";
        return 2;
    }
    const bool tiny = tiny_mode();
    std::string requests_path = "tests/serve/golden_requests.jsonl";
    std::string responses_path = "tests/serve/golden_responses.jsonl";
    std::string out_path = "BENCH_load.json";
    std::uint64_t seed = 20260808;
    std::size_t conns = tiny ? 8 : 32;
    double level_s = tiny ? 0.35 : 4.0;
    double calibrate_s = tiny ? 0.3 : 2.0;
    double drain_s = tiny ? 2.0 : 12.0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char* value = nullptr;
        if (arg == "--requests" && (value = next()) != nullptr) {
            requests_path = value;
        } else if (arg == "--responses" && (value = next()) != nullptr) {
            responses_path = value;
        } else if (arg == "--out" && (value = next()) != nullptr) {
            out_path = value;
        } else if (arg == "--seed" && (value = next()) != nullptr) {
            seed = std::strtoull(value, nullptr, 10);
        } else if (arg == "--conns" && (value = next()) != nullptr) {
            conns = std::strtoull(value, nullptr, 10);
        } else if (arg == "--level-s" && (value = next()) != nullptr) {
            level_s = std::strtod(value, nullptr);
        } else {
            std::cerr << "loadgen: bad argument '" << arg << "'\n";
            return 2;
        }
    }

    std::signal(SIGPIPE, SIG_IGN);

    corpus_set corpus = load_corpus(requests_path, responses_path);
    if (corpus.entries.empty()) {
        std::cerr << "loadgen: corpus empty (looked in " << requests_path
                  << "); falling back to a fixed request\n";
        corpus.ops.push_back("scenario1");
        corpus.entries.push_back(corpus_entry{
            "{\"op\":\"scenario1\",\"lambda_um\":0.5}", 0});
    }

    server s = spawn_silicond(argv[1], {});
    if (s.pid < 0) {
        return 2;
    }
    s.port = await_port(s);
    if (s.port == 0) {
        stop_silicond(s);
        return 2;
    }
    std::cerr << "loadgen: server on port " << s.port << ", corpus "
              << corpus.entries.size() << " requests across "
              << corpus.ops.size() << " endpoints, "
              << (tiny ? "tiny" : "full") << " mode\n";

    splitmix64 rng{seed};
    const double capacity =
        calibrate_capacity(s.port, corpus, conns, 64, calibrate_s, rng);
    std::cerr << "loadgen: calibrated capacity "
              << static_cast<std::uint64_t>(capacity) << " req/s\n";
    if (capacity <= 0.0) {
        stop_silicond(s);
        std::cerr << "loadgen: calibration failed\n";
        return 1;
    }

    const double ratios[] = {0.5, 1.0, 2.0};
    std::vector<level_result> levels;
    for (const double ratio : ratios) {
        level_result r = run_level(s.port, corpus, conns, ratio * capacity,
                                   level_s, drain_s, rng);
        r.target_ratio = ratio;
        std::cerr << "loadgen: level " << ratio << "x sent " << r.sent
                  << " answered " << r.answered << " unanswered "
                  << r.unanswered << "\n";
        levels.push_back(std::move(r));
    }
    stop_silicond(s);

    // --- Gate ----------------------------------------------------------
    bool gate_pass = true;
    double goodput_2x = 0.0;
    for (const level_result& r : levels) {
        const double p999 = quantile_ms(r.latencies_ms, 0.999);
        if (!std::isfinite(p999)) {
            gate_pass = false;
        }
        if (r.target_ratio == 2.0) {
            goodput_2x = static_cast<double>(r.ok_in_window) / r.window_s;
        }
    }
    // Overload must degrade gracefully: at 2x offered load the server
    // still completes >= 70% of its calibrated capacity.
    const double required_goodput_ratio = 0.7;
    if (goodput_2x < required_goodput_ratio * capacity) {
        gate_pass = false;
    }

    // --- BENCH_load.json ----------------------------------------------
    std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
    out << "{\"bench\":\"bench_load\",\"tiny\":"
        << (tiny ? "true" : "false") << ",\"seed\":" << seed
        << ",\"connections\":" << conns
        << ",\"capacity_req_per_s\":";
    json_number(out, capacity);
    out << ",\"levels\":[";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const level_result& r = levels[i];
        if (i != 0) {
            out << ",";
        }
        out << "{\"target_ratio\":";
        json_number(out, r.target_ratio);
        out << ",\"offered_req_per_s\":";
        json_number(out, r.offered_req_per_s);
        out << ",\"achieved_req_per_s\":";
        json_number(out, static_cast<double>(r.answered) / r.duration_s);
        out << ",\"goodput_req_per_s\":";
        json_number(out, static_cast<double>(r.ok_in_window) / r.window_s);
        out << ",\"sent\":" << r.sent << ",\"answered\":" << r.answered
            << ",\"unanswered\":" << r.unanswered << ",\"p50_ms\":";
        json_number(out, quantile_ms(r.latencies_ms, 0.50));
        out << ",\"p99_ms\":";
        json_number(out, quantile_ms(r.latencies_ms, 0.99));
        out << ",\"p999_ms\":";
        json_number(out, quantile_ms(r.latencies_ms, 0.999));
        // Per-endpoint percentile table: which op carries the tail at
        // this level.  Only endpoints that got at least one reply are
        // listed (a quantile of nothing is not a number).
        out << ",\"endpoints\":{";
        bool first_ep = true;
        for (std::size_t op = 0; op < r.endpoint_latencies_ms.size();
             ++op) {
            const std::vector<double>& samples =
                r.endpoint_latencies_ms[op];
            if (samples.empty()) {
                continue;
            }
            if (!first_ep) {
                out << ",";
            }
            first_ep = false;
            out << "\"" << corpus.ops[op]
                << "\":{\"count\":" << samples.size() << ",\"p50_ms\":";
            json_number(out, quantile_ms(samples, 0.50));
            out << ",\"p99_ms\":";
            json_number(out, quantile_ms(samples, 0.99));
            out << ",\"p999_ms\":";
            json_number(out, quantile_ms(samples, 0.999));
            out << "}";
        }
        out << "},\"errors\":{";
        bool first = true;
        for (const auto& [code, count] : r.error_codes) {
            if (!first) {
                out << ",";
            }
            first = false;
            out << "\"" << code << "\":" << count;
        }
        out << "}}";
    }
    out << "],\"gate\":{\"skipped\":false,\"pass\":"
        << (gate_pass ? "true" : "false")
        << ",\"required_goodput_ratio\":";
    json_number(out, required_goodput_ratio);
    out << ",\"goodput_2x_req_per_s\":";
    json_number(out, goodput_2x);
    out << "}}\n";
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    for (const level_result& r : levels) {
        std::printf(
            "  %.1fx offered %8.0f/s answered %8.0f/s goodput %8.0f/s "
            "p50 %8.2fms p99 %8.2fms p999 %8.2fms\n",
            r.target_ratio, r.offered_req_per_s,
            static_cast<double>(r.answered) / r.duration_s,
            static_cast<double>(r.ok_in_window) / r.window_s,
            quantile_ms(r.latencies_ms, 0.50),
            quantile_ms(r.latencies_ms, 0.99),
            quantile_ms(r.latencies_ms, 0.999));
    }
    if (!gate_pass) {
        std::printf("FAIL: load gate (goodput@2x %.0f/s, need %.0f/s)\n",
                    goodput_2x, required_goodput_ratio * capacity);
        return 1;
    }
    std::printf("OK%s\n", tiny ? " (tiny mode)" : "");
    return 0;
}
