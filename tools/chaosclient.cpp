// chaosclient — adversarial smoke driver for silicond's TCP transport.
//
// Spawns a silicond child on an ephemeral port (--port 0, parsing the
// chosen port out of the structured `silicond.listening` log line on
// the child's stderr), then plays a battery of hostile-client
// scenarios against it and asserts the one protocol invariant that
// matters under fire (DESIGN.md §11):
//
//     every accepted line gets exactly one well-formed JSON reply,
//     in order — or the connection closes cleanly.  Never a hang,
//     never a torn line, never a dead server.
//
// Scenarios:
//   1. valid burst        — 100 requests, 100 ok replies, ids in order
//   2. malformed garbage  — junk lines still get one error envelope each
//   3. oversized line     — answered `too_large`, then connection close
//   4. slow loris         — a request dribbled one byte at a time is
//                           still answered (framing is stateful)
//   5. over-budget work   — sweep/mc/partition_explore beyond
//                           --max-sweep-points / --max-mc-dies answered
//                           `too_large` (explore grids charge
//                           count x splits cells against the budget)
//   6. zero deadline      — deadline_ms:0 answered `deadline_exceeded`
//                           on mc_yield, chiplet and partition_explore
//   7. half line + close  — a torn request aborts that connection only;
//                           the server must answer the next connection
//   8. metrics scrape     — `GET /metrics` gets an HTTP 200 exposition
//
// A second battery runs against a fresh server with `--max-conns 32`
// and the fault switchboard armed on the epoll transport sites
// (`eintr@silicond.read`, `short_write@silicond.write`), so every
// read/write below takes injected faults while the invariant holds:
//   9.  valid burst under faults — same 100-in-order contract as #1
//   10. connection flood   — accepts beyond --max-conns are closed
//                            immediately; admitted ones still serve
//   11. half-close mid-batch — shutdown(SHUT_WR) right behind a batch;
//                            every reply still arrives, then clean EOF
//   12. chiplet burst under faults — alternating chiplet and
//                            partition_explore replies (the largest the
//                            server emits) through the short-write cap
//   13. abrupt close, pending write — RST while replies are queued
//                            (short writes keep the queue non-empty);
//                            the server must survive to the next conn
//
// A fourth battery exercises cache-snapshot persistence end to end:
//   14. SIGUSR2 snapshot trigger — a warmed server takes the signal,
//                            the snapshot file appears, and the write
//                            surfaces on /statusz and /metrics
//   15. kill mid-snapshot    — SIGKILL during a (fault-slowed) snapshot
//                            write; the replacement server on the same
//                            path boots from the intact previous image
//                            and answers the corpus byte-identically
//
// Replies are validated with the real serve JSON parser (an invalid
// byte stream fails the run, not just a string compare).  Exit code 0
// = every scenario held; anything else prints the first violation.
// Run under ASan in CI to double as a leak/UB probe of the transport.
//
// Usage: chaosclient /path/to/silicond [extra silicond args...]

#include "serve/json.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace json = silicon::serve::json;

constexpr int kReplyTimeoutMs = 30000;  // generous: CI + ASan are slow

int g_failures = 0;

void fail(const std::string& scenario, const std::string& what) {
    std::cerr << "FAIL [" << scenario << "] " << what << "\n";
    ++g_failures;
}

// ---------------------------------------------------------------------------
// Child process management
// ---------------------------------------------------------------------------

struct server {
    pid_t pid = -1;
    int stderr_fd = -1;  ///< read side of the child's stderr
    int port = 0;
};

/// Spawn `silicond --port 0 <extra...>` with stderr piped back to us.
server spawn_silicond(const char* binary,
                      const std::vector<std::string>& extra) {
    server s;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        std::perror("pipe");
        return s;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("fork");
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        return s;
    }
    if (pid == 0) {
        ::close(pipe_fds[0]);
        ::dup2(pipe_fds[1], STDERR_FILENO);
        ::close(pipe_fds[1]);
        std::vector<std::string> args{binary, "--port", "0"};
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) {
            argv.push_back(a.data());
        }
        argv.push_back(nullptr);
        ::execv(binary, argv.data());
        std::perror("execv");
        std::_Exit(127);
    }
    ::close(pipe_fds[1]);
    s.pid = pid;
    s.stderr_fd = pipe_fds[0];
    return s;
}

/// Read the child's stderr until the `silicond.listening` log line
/// appears and extract the bound port from its `"port":N` field.
int await_port(server& s) {
    std::string log;
    char buf[512];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds{kReplyTimeoutMs};
    while (std::chrono::steady_clock::now() < deadline) {
        pollfd p{s.stderr_fd, POLLIN, 0};
        const int ready = ::poll(&p, 1, 100);
        if (ready <= 0) {
            continue;
        }
        const ssize_t got = ::read(s.stderr_fd, buf, sizeof buf);
        if (got <= 0) {
            break;
        }
        log.append(buf, static_cast<std::size_t>(got));
        const std::size_t at = log.find("silicond.listening");
        if (at == std::string::npos) {
            continue;
        }
        const std::size_t key = log.find("\"port\":", at);
        if (key == std::string::npos) {
            continue;  // field not fully received yet
        }
        int port = 0;
        std::size_t i = key + 7;
        while (i < log.size() && log[i] >= '0' && log[i] <= '9') {
            port = port * 10 + (log[i] - '0');
            ++i;
        }
        if (i < log.size() && port > 0) {
            return port;
        }
    }
    std::cerr << "chaosclient: server never reported a port; stderr so far:\n"
              << log << "\n";
    return 0;
}

void stop_silicond(server& s) {
    if (s.pid <= 0) {
        return;
    }
    ::kill(s.pid, SIGTERM);
    int status = 0;
    for (int i = 0; i < 100; ++i) {
        if (::waitpid(s.pid, &status, WNOHANG) == s.pid) {
            s.pid = -1;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{50});
    }
    if (s.pid > 0) {
        std::cerr << "chaosclient: server ignored SIGTERM, killing\n";
        ::kill(s.pid, SIGKILL);
        ::waitpid(s.pid, &status, 0);
        s.pid = -1;
        ++g_failures;
    }
    if (s.stderr_fd >= 0) {
        ::close(s.stderr_fd);
        s.stderr_fd = -1;
    }
}

// ---------------------------------------------------------------------------
// Client-side socket helpers
// ---------------------------------------------------------------------------

int connect_to(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return -1;
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(port));
    for (int attempt = 0; attempt < 50; ++attempt) {
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof address) == 0) {
            return fd;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
    }
    ::close(fd);
    return -1;
}

bool send_bytes(int fd, std::string_view data) {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return false;
    }
    return true;
}

struct reply_stream {
    std::vector<std::string> lines;
    bool closed = false;
    std::string partial;  ///< trailing bytes without a newline
};

/// Read reply lines until `expected` lines arrived, the peer closed,
/// or the timeout expired.
reply_stream read_replies(int fd, std::size_t expected,
                          int timeout_ms = kReplyTimeoutMs) {
    reply_stream out;
    std::string buffer;
    char chunk[4096];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds{timeout_ms};
    while (out.lines.size() < expected) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            break;
        }
        const int wait = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count());
        pollfd p{fd, POLLIN, 0};
        const int ready = ::poll(&p, 1, wait);
        if (ready <= 0) {
            continue;
        }
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got == 0) {
            out.closed = true;
            break;
        }
        if (got < 0) {
            if (errno == EINTR) {
                continue;
            }
            out.closed = true;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(got));
        std::size_t begin = 0;
        for (std::size_t nl = buffer.find('\n', begin);
             nl != std::string::npos; nl = buffer.find('\n', begin)) {
            out.lines.emplace_back(buffer.substr(begin, nl - begin));
            begin = nl + 1;
        }
        buffer.erase(0, begin);
    }
    out.partial = buffer;
    return out;
}

/// Parse one reply line with the real serve JSON parser and check the
/// envelope shape.  Returns the error code ("" for ok replies,
/// "<invalid>" when the line is not a valid envelope at all).
std::string envelope_code(const std::string& scenario,
                          const std::string& line) {
    try {
        json::value v = json::parse(line);
        if (!v.is_object()) {
            fail(scenario, "reply is not a JSON object: " + line);
            return "<invalid>";
        }
        const json::value* ok = v.as_object().find("ok");
        if (ok == nullptr || !ok->is_bool()) {
            fail(scenario, "reply lacks boolean 'ok': " + line);
            return "<invalid>";
        }
        if (ok->as_bool()) {
            return "";
        }
        const json::value* error = v.as_object().find("error");
        if (error == nullptr || !error->is_object()) {
            fail(scenario, "error reply lacks 'error' object: " + line);
            return "<invalid>";
        }
        const json::value* code = error->as_object().find("code");
        if (code == nullptr || !code->is_string()) {
            fail(scenario, "error reply lacks 'error.code': " + line);
            return "<invalid>";
        }
        return std::string{code->as_string()};
    } catch (const std::exception& e) {
        fail(scenario,
             std::string{"reply is not valid JSON ("} + e.what() +
                 "): " + line);
        return "<invalid>";
    }
}

/// Expect exactly `count` replies on `fd`; returns their error codes.
std::vector<std::string> expect_replies(const std::string& scenario, int fd,
                                        std::size_t count) {
    const reply_stream replies = read_replies(fd, count);
    std::vector<std::string> codes;
    if (replies.lines.size() != count) {
        fail(scenario, "expected " + std::to_string(count) + " replies, got " +
                           std::to_string(replies.lines.size()) +
                           (replies.closed ? " (connection closed)" : ""));
        return codes;
    }
    if (!replies.partial.empty()) {
        fail(scenario, "torn reply line: " + replies.partial);
    }
    codes.reserve(count);
    for (const std::string& line : replies.lines) {
        codes.push_back(envelope_code(scenario, line));
    }
    return codes;
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

void scenario_valid_burst(int port) {
    const std::string name = "valid burst";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    constexpr int kCount = 100;
    std::string payload;
    for (int i = 0; i < kCount; ++i) {
        payload += "{\"op\":\"scenario1\",\"lambda_um\":0.5,\"id\":" +
                   std::to_string(i) + "}\n";
    }
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    const reply_stream replies = read_replies(fd, kCount);
    if (replies.lines.size() != kCount) {
        fail(name, "expected 100 replies, got " +
                       std::to_string(replies.lines.size()));
    }
    for (std::size_t i = 0; i < replies.lines.size(); ++i) {
        if (!envelope_code(name, replies.lines[i]).empty()) {
            fail(name, "reply " + std::to_string(i) + " not ok: " +
                           replies.lines[i]);
            break;
        }
        const std::string id = "\"id\":" + std::to_string(i);
        if (replies.lines[i].find(id) == std::string::npos) {
            fail(name, "reply " + std::to_string(i) +
                           " out of order: " + replies.lines[i]);
            break;
        }
    }
    ::close(fd);
}

void scenario_malformed(int port) {
    const std::string name = "malformed garbage";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    const std::vector<std::string> garbage{
        "not json at all",
        "{\"op\":",
        "[]",
        "{\"op\":\"no_such_op\"}",
        "{\"op\":\"scenario1\",\"lambda_um\":\"NaN\"}",
        "\x01\x02\x03",
    };
    std::string payload;
    for (const std::string& g : garbage) {
        payload += g;
        payload += '\n';
    }
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    for (const std::string& code :
         expect_replies(name, fd, garbage.size())) {
        if (code.empty() || code == "<invalid>") {
            fail(name, "garbage line answered ok or with a bad envelope");
            break;
        }
    }
    ::close(fd);
}

void scenario_oversized(int port, std::size_t max_line_bytes) {
    const std::string name = "oversized line";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    // One in-budget request first: its reply must come back *before*
    // the rejection, proving order is preserved around the oversize.
    std::string payload = "{\"op\":\"scenario1\",\"id\":\"pre\"}\n";
    payload += std::string(max_line_bytes * 2, 'x');
    payload += '\n';
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    const reply_stream replies = read_replies(fd, 2);
    if (replies.lines.size() != 2) {
        fail(name, "expected 2 replies, got " +
                       std::to_string(replies.lines.size()));
        ::close(fd);
        return;
    }
    if (replies.lines[0].find("\"id\":\"pre\"") == std::string::npos ||
        !envelope_code(name, replies.lines[0]).empty()) {
        fail(name, "in-budget request not answered first: " +
                       replies.lines[0]);
    }
    if (envelope_code(name, replies.lines[1]) != "too_large") {
        fail(name, "oversized line not answered too_large: " +
                       replies.lines[1]);
    }
    // The server must then drop the connection (framing is suspect).
    const reply_stream rest = read_replies(fd, 1, 5000);
    if (!rest.closed || !rest.lines.empty()) {
        fail(name, "connection not closed after oversized line");
    }
    ::close(fd);
}

void scenario_slow_loris(int port) {
    const std::string name = "slow loris";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    const std::string request =
        "{\"op\":\"scenario1\",\"lambda_um\":0.5,\"id\":\"drip\"}\n";
    for (const char byte : request) {
        if (!send_bytes(fd, {&byte, 1})) {
            fail(name, "send failed mid-drip");
            ::close(fd);
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
    const std::vector<std::string> codes = expect_replies(name, fd, 1);
    if (codes.size() == 1 && !codes[0].empty()) {
        fail(name, "dripped request not answered ok (code '" + codes[0] +
                       "')");
    }
    ::close(fd);
}

void scenario_over_budget(int port) {
    const std::string name = "over-budget work";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    // 3 splits x 30 grid points = 90 cells, past --max-sweep-points 64.
    const std::string payload =
        "{\"op\":\"sweep\",\"param\":\"lambda_um\",\"from\":0.1,\"to\":1.0,"
        "\"count\":1000,\"target\":{\"op\":\"scenario1\"},\"id\":\"sw\"}\n"
        "{\"op\":\"mc_yield\",\"dies\":100000000,\"seed\":1,\"id\":\"mc\"}\n"
        "{\"op\":\"partition_explore\",\"splits\":\"1,2,4\",\"count\":30,"
        "\"id\":\"pe\"}\n";
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    for (const std::string& code : expect_replies(name, fd, 3)) {
        if (code != "too_large") {
            fail(name, "over-budget request answered '" + code +
                           "', want too_large");
        }
    }
    ::close(fd);
}

void scenario_zero_deadline(int port) {
    const std::string name = "zero deadline";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    const std::string payload =
        "{\"op\":\"mc_yield\",\"dies\":1000,\"seed\":7,\"deadline_ms\":0,"
        "\"id\":\"dl\"}\n"
        "{\"op\":\"chiplet\",\"deadline_ms\":0,\"id\":\"cd\"}\n"
        "{\"op\":\"partition_explore\",\"splits\":\"1,2\",\"count\":4,"
        "\"deadline_ms\":0,\"id\":\"pd\"}\n";
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    for (const std::string& code : expect_replies(name, fd, 3)) {
        if (code != "deadline_exceeded") {
            fail(name, "deadline_ms:0 answered '" + code +
                           "', want deadline_exceeded");
        }
    }
    ::close(fd);
}

void scenario_half_line_close(int port) {
    const std::string name = "half line + close";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    // A torn line at EOF is still a (complete-as-far-as-we-know) line:
    // the server answers its parse error before closing.
    send_bytes(fd, "{\"op\":\"scena");
    ::shutdown(fd, SHUT_WR);
    const reply_stream replies = read_replies(fd, 1, 10000);
    if (replies.lines.size() == 1) {
        const std::string code = envelope_code(name, replies.lines[0]);
        if (code.empty() || code == "<invalid>") {
            fail(name, "torn line answered ok or malformed: " +
                           replies.lines[0]);
        }
    } else if (!replies.closed) {
        fail(name, "torn line neither answered nor closed");
    }
    ::close(fd);

    // Whatever happened to that connection, the server must survive it.
    const int fd2 = connect_to(port);
    if (fd2 < 0) {
        fail(name, "server dead after torn connection");
        return;
    }
    if (!send_bytes(fd2, "{\"op\":\"scenario1\",\"id\":\"alive\"}\n")) {
        fail(name, "send failed after torn connection");
        ::close(fd2);
        return;
    }
    const std::vector<std::string> codes = expect_replies(name, fd2, 1);
    if (codes.size() == 1 && !codes[0].empty()) {
        fail(name, "server unhealthy after torn connection");
    }
    ::close(fd2);
}

void scenario_metrics_scrape(int port) {
    const std::string name = "metrics scrape";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    if (!send_bytes(fd, "GET /metrics HTTP/1.0\r\n\r\n")) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    // Read until close; the response must be an HTTP 200 carrying the
    // rejection counters this run has been generating.
    std::string body;
    char chunk[4096];
    for (;;) {
        pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, kReplyTimeoutMs) <= 0) {
            break;
        }
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got <= 0) {
            break;
        }
        body.append(chunk, static_cast<std::size_t>(got));
    }
    // The multiplexed transport answers HTTP/1.1 (with Connection:
    // close for a 1.0 client); only the status matters here.
    if (body.rfind("HTTP/1.", 0) != 0 ||
        body.find(" 200 OK") == std::string::npos ||
        body.find(" 200 OK") > 10) {
        fail(name, "scrape did not return HTTP 200");
    }
    if (body.find("silicon_serve_rejected_total") == std::string::npos) {
        fail(name, "exposition lacks silicon_serve_rejected_total");
    }
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Fault-armed battery (epoll transport under the switchboard)
// ---------------------------------------------------------------------------

void scenario_connection_flood(int port, std::size_t max_conns) {
    const std::string name = "connection flood";
    // Let the loop reap connections closed by earlier scenarios; a
    // straggler would otherwise occupy a slot and skew the count.
    std::this_thread::sleep_for(std::chrono::milliseconds{200});
    // Open well past the accept limit while holding every fd: the
    // event loop must close the surplus accepts immediately (no reply,
    // no hang) and keep serving the admitted ones.
    const std::size_t total = max_conns + 16;
    std::vector<int> fds;
    fds.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        const int fd = connect_to(port);
        if (fd < 0) {
            fail(name, "connect " + std::to_string(i) + " failed");
            break;
        }
        fds.push_back(fd);
    }
    // Give the loop a beat to accept (and shed) the whole backlog.
    std::this_thread::sleep_for(std::chrono::milliseconds{200});
    std::size_t dropped = 0;
    std::vector<int> admitted;
    for (const int fd : fds) {
        pollfd p{fd, POLLIN, 0};
        char byte = 0;
        if (::poll(&p, 1, 0) > 0 &&
            ::recv(fd, &byte, 1, MSG_DONTWAIT) == 0) {
            ++dropped;
            ::close(fd);
        } else {
            admitted.push_back(fd);
        }
    }
    // At least the surplus must be shed; a couple extra are legal if a
    // prior scenario's close raced the flood into the same epoll batch.
    if (dropped < total - max_conns || dropped > total - max_conns + 2) {
        fail(name, "expected ~" + std::to_string(total - max_conns) +
                       " shed accepts, saw " + std::to_string(dropped));
    }
    // Every admitted connection still gets real service.
    for (std::size_t i = 0; i < admitted.size(); ++i) {
        if (!send_bytes(admitted[i],
                        "{\"op\":\"scenario1\",\"id\":\"flood\"}\n")) {
            fail(name, "send failed on admitted conn " + std::to_string(i));
            break;
        }
    }
    for (std::size_t i = 0; i < admitted.size(); ++i) {
        const std::vector<std::string> codes =
            expect_replies(name, admitted[i], 1);
        if (codes.size() == 1 && !codes[0].empty()) {
            fail(name, "admitted conn " + std::to_string(i) +
                           " answered '" + codes[0] + "'");
            break;
        }
    }
    for (const int fd : admitted) {
        ::close(fd);
    }
}

void scenario_half_close_mid_batch(int port) {
    const std::string name = "half-close mid-batch";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    constexpr int kCount = 50;
    std::string payload;
    for (int i = 0; i < kCount; ++i) {
        payload += "{\"op\":\"scenario1\",\"lambda_um\":0.5,\"id\":" +
                   std::to_string(i) + "}\n";
    }
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    // EOF lands while the batch is still being evaluated: the server
    // must flush all 50 replies in order and only then close.
    ::shutdown(fd, SHUT_WR);
    const reply_stream replies = read_replies(fd, kCount);
    if (replies.lines.size() != kCount) {
        fail(name, "expected 50 replies after half-close, got " +
                       std::to_string(replies.lines.size()));
        ::close(fd);
        return;
    }
    for (std::size_t i = 0; i < replies.lines.size(); ++i) {
        if (!envelope_code(name, replies.lines[i]).empty() ||
            replies.lines[i].find("\"id\":" + std::to_string(i)) ==
                std::string::npos) {
            fail(name, "reply " + std::to_string(i) +
                           " wrong after half-close: " + replies.lines[i]);
            break;
        }
    }
    const reply_stream rest = read_replies(fd, 1, 10000);
    if (!rest.closed || !rest.lines.empty()) {
        fail(name, "connection not closed after half-close batch");
    }
    ::close(fd);
}

void scenario_chiplet_burst_under_faults(int port) {
    const std::string name = "chiplet burst under faults";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    // partition_explore replies are the largest the server emits (grid
    // rows per split), so the armed short-write cap forces dozens of
    // resumption passes per reply while order must still hold.
    constexpr int kCount = 20;
    std::string payload;
    for (int i = 0; i < kCount; ++i) {
        if (i % 2 == 0) {
            payload += "{\"op\":\"chiplet\",\"chiplets\":4,\"id\":" +
                       std::to_string(i) + "}\n";
        } else {
            payload += "{\"op\":\"partition_explore\",\"splits\":\"1,2,4\","
                       "\"count\":9,\"id\":" +
                       std::to_string(i) + "}\n";
        }
    }
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }
    const reply_stream replies = read_replies(fd, kCount);
    if (replies.lines.size() != kCount) {
        fail(name, "expected 20 replies, got " +
                       std::to_string(replies.lines.size()));
        ::close(fd);
        return;
    }
    for (std::size_t i = 0; i < replies.lines.size(); ++i) {
        if (!envelope_code(name, replies.lines[i]).empty() ||
            replies.lines[i].find("\"id\":" + std::to_string(i)) ==
                std::string::npos) {
            fail(name, "reply " + std::to_string(i) + " wrong: " +
                           replies.lines[i]);
            break;
        }
    }
    ::close(fd);
}

void scenario_abrupt_close_pending_write(int port) {
    const std::string name = "abrupt close, pending write";
    // The armed short_write cap guarantees replies are still queued in
    // the event loop when the RST arrives (EPOLLHUP/ECONNRESET with a
    // non-empty write queue — the nastiest teardown ordering).
    for (int round = 0; round < 4; ++round) {
        const int fd = connect_to(port);
        if (fd < 0) {
            fail(name, "connect failed on round " + std::to_string(round));
            return;
        }
        std::string payload;
        for (int i = 0; i < 20; ++i) {
            payload += "{\"op\":\"scenario1\",\"id\":" + std::to_string(i) +
                       "}\n";
        }
        send_bytes(fd, payload);
        const linger hard{1, 0};  // close() sends RST, not FIN
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
        ::close(fd);
    }
    // The server must have shrugged all four off.
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "server dead after aborted connections");
        return;
    }
    if (!send_bytes(fd, "{\"op\":\"scenario1\",\"id\":\"alive\"}\n")) {
        fail(name, "send failed after aborted connections");
        ::close(fd);
        return;
    }
    const std::vector<std::string> codes = expect_replies(name, fd, 1);
    if (codes.size() == 1 && !codes[0].empty()) {
        fail(name, "server unhealthy after aborted connections");
    }
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Observability battery (debug surface under a shedding burst)
// ---------------------------------------------------------------------------

/// GET `target` and read to close.  Returns the raw response ("" on
/// transport failure) and reports the wall time via `elapsed_ms`.
std::string http_get(const std::string& scenario, int port,
                     const std::string& target, double& elapsed_ms) {
    elapsed_ms = -1.0;
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(scenario, "connect failed for GET " + target);
        return "";
    }
    const auto start = std::chrono::steady_clock::now();
    if (!send_bytes(fd, "GET " + target +
                            " HTTP/1.1\r\nConnection: close\r\n\r\n")) {
        fail(scenario, "send failed for GET " + target);
        ::close(fd);
        return "";
    }
    std::string response;
    char chunk[16384];
    for (;;) {
        pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, kReplyTimeoutMs) <= 0) {
            break;
        }
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got <= 0) {
            break;
        }
        response.append(chunk, static_cast<std::size_t>(got));
    }
    elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    ::close(fd);
    return response;
}

/// A heavy burst must shed (tight --deadline-ms budget, expensive
/// mc_yield lines) while a bystander /healthz answers within a hard
/// deadline: liveness must not queue behind the work it reports on.
void scenario_health_under_shedding_burst(int port) {
    const std::string name = "health under shedding burst";
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(name, "connect failed");
        return;
    }
    constexpr int kCount = 60;
    std::string payload;
    for (int i = 0; i < kCount; ++i) {
        // Unique seeds defeat the cache; every line costs real work.
        payload += "{\"op\":\"mc_yield\",\"dies\":90000,\"seed\":" +
                   std::to_string(i) + ",\"trace_id\":\"burst-" +
                   std::to_string(i) + "\",\"id\":" + std::to_string(i) +
                   "}\n";
    }
    if (!send_bytes(fd, payload)) {
        fail(name, "send failed");
        ::close(fd);
        return;
    }

    // Probe liveness while the burst is queued/executing.
    constexpr double kHealthDeadlineMs = 2000.0;
    double health_ms = -1.0;
    const std::string health = http_get(name, port, "/healthz", health_ms);
    if (health.rfind("HTTP/1.1 200 OK\r\n", 0) != 0 &&
        health.rfind("HTTP/1.1 503 ", 0) != 0) {
        fail(name, "/healthz answered neither 200 nor 503: " +
                       health.substr(0, 40));
    } else if (health.find("\r\n\r\nok\n") == std::string::npos &&
               health.find("\r\n\r\noverloaded\n") == std::string::npos) {
        fail(name, "/healthz body is neither ok nor overloaded");
    }
    if (health_ms < 0.0 || health_ms > kHealthDeadlineMs) {
        fail(name, "/healthz took " + std::to_string(health_ms) +
                       " ms, deadline " + std::to_string(kHealthDeadlineMs));
    }

    // Every burst line is answered — and the tight budget sheds work.
    std::size_t shed = 0;
    for (const std::string& code : expect_replies(name, fd, kCount)) {
        if (code == "deadline_exceeded") {
            ++shed;
        } else if (!code.empty()) {
            fail(name, "burst line answered '" + code +
                           "', want ok or deadline_exceeded");
            break;
        }
    }
    if (shed == 0) {
        fail(name, "no burst line was shed under a 5 ms budget");
    }
    ::close(fd);
}

/// After the shedding burst, the debug surface must tell the story:
/// /flightz carries anomaly records with the burst's trace IDs and
/// /statusz counts the anomalies.
void scenario_flightz_records_sheds(int port) {
    const std::string name = "flightz records sheds";
    double elapsed_ms = -1.0;
    const std::string response =
        http_get(name, port, "/flightz", elapsed_ms);
    if (response.rfind("HTTP/1.1 200 OK\r\n", 0) != 0 ||
        response.find("Content-Type: application/x-ndjson") ==
            std::string::npos) {
        fail(name, "/flightz is not a 200 x-ndjson response");
        return;
    }
    const std::size_t body_at = response.find("\r\n\r\n");
    const std::string body =
        body_at == std::string::npos ? "" : response.substr(body_at + 4);
    if (body.find("{\"seq\":") != 0) {
        fail(name, "/flightz body does not start with a record");
    }
    for (const char* marker :
         {"\"code\":\"deadline_exceeded\"", "\"anomaly\":true",
          "\"trace_id\":\"burst-"}) {
        if (body.find(marker) == std::string::npos) {
            fail(name, std::string{"/flightz lacks "} + marker);
        }
    }

    const std::string status =
        http_get(name, port, "/statusz", elapsed_ms);
    if (status.rfind("HTTP/1.1 200 OK\r\n", 0) != 0 ||
        status.find("\"flight\":") == std::string::npos ||
        status.find("\"anomalies\":") == std::string::npos) {
        fail(name, "/statusz lacks the flight-recorder section");
    }
}

// ---------------------------------------------------------------------------
// Snapshot battery (SIGUSR2 trigger, kill-mid-snapshot warm restart)
// ---------------------------------------------------------------------------

/// Deterministic, cacheable corpus shared by the snapshot scenarios:
/// the same lines must produce the same reply bytes whether the cache
/// started cold, was restored from a snapshot, or survived a crash.
constexpr std::size_t kSnapshotCorpusLines = 6;
std::string snapshot_corpus() {
    return "{\"id\":1,\"op\":\"scenario1\"}\n"
           "{\"id\":2,\"op\":\"scenario1\",\"lambda_um\":0.5}\n"
           "{\"id\":3,\"op\":\"scenario2\",\"lambda_um\":0.6,\"y0\":0.8}\n"
           "{\"id\":4,\"op\":\"chiplet\",\"chiplets\":2}\n"
           "{\"id\":5,\"op\":\"chiplet\",\"chiplets\":4,\"logic_area_mm2\":500}\n"
           "{\"id\":6,\"op\":\"gross_die\",\"die_width_mm\":7.5,"
           "\"die_height_mm\":9}\n";
}

/// Play the snapshot corpus and return the raw reply lines (empty on
/// any transport or envelope failure — failures are already reported).
std::vector<std::string> play_snapshot_corpus(const std::string& scenario,
                                              int port) {
    const int fd = connect_to(port);
    if (fd < 0) {
        fail(scenario, "connect failed");
        return {};
    }
    if (!send_bytes(fd, snapshot_corpus())) {
        fail(scenario, "send failed");
        ::close(fd);
        return {};
    }
    const reply_stream replies = read_replies(fd, kSnapshotCorpusLines);
    ::close(fd);
    if (replies.lines.size() != kSnapshotCorpusLines) {
        fail(scenario, "expected " + std::to_string(kSnapshotCorpusLines) +
                           " replies, got " +
                           std::to_string(replies.lines.size()));
        return {};
    }
    for (const std::string& line : replies.lines) {
        if (envelope_code(scenario, line) != "") {
            fail(scenario, "corpus line not answered ok: " + line);
            return {};
        }
    }
    return replies.lines;
}

/// Pull the integer value of `"key":N` out of the `"snapshot"` object
/// embedded in a /statusz body.  Returns -1 when absent.
long statusz_snapshot_field(const std::string& body, const std::string& key) {
    const std::size_t section = body.find("\"snapshot\":");
    if (section == std::string::npos) {
        return -1;
    }
    const std::size_t at = body.find("\"" + key + "\":", section);
    if (at == std::string::npos) {
        return -1;
    }
    long value = 0;
    std::size_t i = at + key.size() + 3;
    if (i >= body.size() || body[i] < '0' || body[i] > '9') {
        return -1;
    }
    while (i < body.size() && body[i] >= '0' && body[i] <= '9') {
        value = value * 10 + (body[i] - '0');
        ++i;
    }
    return value;
}

/// SIGUSR2 is the manual snapshot trigger: after a warmed cache takes
/// the signal, a snapshot file must appear on disk and the write must
/// surface on /statusz (snapshot.writes, last_bytes) and /metrics.
void scenario_sigusr2_snapshot(server& s, const std::string& snap_path) {
    const std::string name = "sigusr2 snapshot trigger";
    if (play_snapshot_corpus(name, s.port).empty()) {
        return;
    }
    if (::kill(s.pid, SIGUSR2) != 0) {
        fail(name, "kill(SIGUSR2) failed");
        return;
    }
    // The signal wakes the event loop; poll the debug surface until the
    // write lands (each GET also nudges the loop awake).
    long writes = 0;
    long last_bytes = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds{kReplyTimeoutMs};
    while (std::chrono::steady_clock::now() < deadline) {
        double elapsed_ms = -1.0;
        const std::string status =
            http_get(name, s.port, "/statusz", elapsed_ms);
        writes = statusz_snapshot_field(status, "writes");
        last_bytes = statusz_snapshot_field(status, "last_bytes");
        if (writes >= 1) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
    }
    if (writes < 1) {
        fail(name, "/statusz never reported snapshot.writes >= 1");
        return;
    }
    if (last_bytes <= 0) {
        fail(name, "/statusz snapshot.last_bytes not positive after write");
    }
    if (::access(snap_path.c_str(), F_OK) != 0) {
        fail(name, "snapshot file " + snap_path + " missing after SIGUSR2");
    }
    double elapsed_ms = -1.0;
    const std::string metrics =
        http_get(name, s.port, "/metrics", elapsed_ms);
    if (metrics.find("silicon_cache_snapshot_writes_total") ==
        std::string::npos) {
        fail(name, "/metrics lacks silicon_cache_snapshot_writes_total");
    }
}

/// Crash-safety contract: SIGKILL in the middle of a snapshot write
/// must never poison the warm restart.  The first server takes a clean
/// snapshot, then is killed mid-write of a second one (slow_task on
/// serve.snapshot_write holds the window open); the replacement server
/// on the same path must boot — restoring the intact previous image —
/// and answer the same corpus with byte-identical replies.
void scenario_kill_mid_snapshot(const char* binary,
                                const std::string& snap_path) {
    const std::string name = "kill mid-snapshot, warm restart";
    std::remove(snap_path.c_str());
    std::remove((snap_path + ".tmp").c_str());

    const std::vector<std::string> slow_writer{
        "--threads", "2",
        "--cache-snapshot", snap_path,
        "--faults", "slow_task@serve.snapshot_write:100",
    };
    server a = spawn_silicond(binary, slow_writer);
    if (a.pid < 0) {
        fail(name, "spawn failed");
        return;
    }
    a.port = await_port(a);
    if (a.port == 0) {
        fail(name, "first server never reported a port");
        stop_silicond(a);
        return;
    }
    const std::vector<std::string> baseline =
        play_snapshot_corpus(name, a.port);
    if (baseline.empty()) {
        stop_silicond(a);
        return;
    }

    // First snapshot: trigger and wait for the file to land on disk.
    ::kill(a.pid, SIGUSR2);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds{kReplyTimeoutMs};
    while (::access(snap_path.c_str(), F_OK) != 0 &&
           std::chrono::steady_clock::now() < deadline) {
        // Connecting wakes the event loop in case the signal landed
        // between epoll waits; no reply is awaited.
        const int nudge = connect_to(a.port);
        if (nudge >= 0) {
            ::close(nudge);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
    }
    if (::access(snap_path.c_str(), F_OK) != 0) {
        fail(name, "first snapshot never appeared at " + snap_path);
        stop_silicond(a);
        return;
    }

    // Second snapshot: trigger, give the slow write time to start, and
    // SIGKILL the server mid-write.  Whether the kill lands during
    // serialization or the file write, the previous snapshot must stay
    // intact (the tmp-write + rename protocol never touches it).
    ::kill(a.pid, SIGUSR2);
    const int nudge = connect_to(a.port);
    std::this_thread::sleep_for(std::chrono::milliseconds{150});
    ::kill(a.pid, SIGKILL);
    int status = 0;
    ::waitpid(a.pid, &status, 0);
    a.pid = -1;
    if (nudge >= 0) {
        ::close(nudge);
    }
    if (a.stderr_fd >= 0) {
        ::close(a.stderr_fd);
        a.stderr_fd = -1;
    }

    // The replacement must boot (a leftover .tmp or torn image must not
    // crash it) and answer the same corpus byte-for-byte.
    const std::vector<std::string> replacement{
        "--threads", "2",
        "--cache-snapshot", snap_path,
    };
    server b = spawn_silicond(binary, replacement);
    if (b.pid < 0) {
        fail(name, "replacement spawn failed");
        return;
    }
    b.port = await_port(b);
    if (b.port == 0) {
        fail(name, "replacement server never came up after the kill");
        stop_silicond(b);
        return;
    }
    const std::vector<std::string> warm = play_snapshot_corpus(name, b.port);
    if (warm.size() == baseline.size()) {
        for (std::size_t i = 0; i < warm.size(); ++i) {
            if (warm[i] != baseline[i]) {
                fail(name, "reply " + std::to_string(i + 1) +
                               " differs after warm restart:\n  before: " +
                               baseline[i] + "\n  after:  " + warm[i]);
            }
        }
    }
    stop_silicond(b);
    std::remove(snap_path.c_str());
    std::remove((snap_path + ".tmp").c_str());
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::cerr << "usage: chaosclient /path/to/silicond [extra args...]\n";
        return 2;
    }
    constexpr std::size_t kMaxLineBytes = 2048;
    std::vector<std::string> extra{
        "--threads",         "2",
        "--max-line-bytes",  std::to_string(kMaxLineBytes),
        "--max-sweep-points", "64",
        "--max-mc-dies",     "100000",
    };
    for (int i = 2; i < argc; ++i) {
        extra.emplace_back(argv[i]);
    }

    server s = spawn_silicond(argv[1], extra);
    if (s.pid < 0) {
        return 2;
    }
    s.port = await_port(s);
    if (s.port == 0) {
        stop_silicond(s);
        return 2;
    }
    std::cerr << "chaosclient: server up on port " << s.port << "\n";

    scenario_valid_burst(s.port);
    scenario_malformed(s.port);
    scenario_oversized(s.port, kMaxLineBytes);
    scenario_slow_loris(s.port);
    scenario_over_budget(s.port);
    scenario_zero_deadline(s.port);
    scenario_half_line_close(s.port);
    scenario_metrics_scrape(s.port);

    stop_silicond(s);

    // Second battery: a capped server with the fault switchboard armed
    // on the epoll transport sites, so every scenario below exercises
    // the injected-EINTR retry and short-write resumption paths.
    constexpr std::size_t kMaxConns = 32;
    const std::vector<std::string> armed{
        "--threads", "2",
        "--max-conns", std::to_string(kMaxConns),
        "--faults", "eintr@silicond.read:3,short_write@silicond.write:7",
    };
    server s2 = spawn_silicond(argv[1], armed);
    if (s2.pid < 0) {
        return 2;
    }
    s2.port = await_port(s2);
    if (s2.port == 0) {
        stop_silicond(s2);
        return 2;
    }
    std::cerr << "chaosclient: fault-armed server up on port " << s2.port
              << "\n";

    scenario_valid_burst(s2.port);
    scenario_connection_flood(s2.port, kMaxConns);
    scenario_half_close_mid_batch(s2.port);
    scenario_chiplet_burst_under_faults(s2.port);
    scenario_abrupt_close_pending_write(s2.port);

    stop_silicond(s2);

    // Third battery: a tight per-request deadline budget forces a heavy
    // burst to shed while the debug surface (/healthz, /flightz,
    // /statusz) stays live and records the sheds.
    const std::vector<std::string> shedding{
        "--threads", "2",
        "--deadline-ms", "5",
        "--max-mc-dies", "100000",
    };
    server s3 = spawn_silicond(argv[1], shedding);
    if (s3.pid < 0) {
        return 2;
    }
    s3.port = await_port(s3);
    if (s3.port == 0) {
        stop_silicond(s3);
        return 2;
    }
    std::cerr << "chaosclient: shedding server up on port " << s3.port
              << "\n";

    scenario_health_under_shedding_burst(s3.port);
    scenario_flightz_records_sheds(s3.port);

    stop_silicond(s3);

    // Fourth battery: cache snapshot persistence.  SIGUSR2 must take a
    // manual snapshot whose write surfaces on /statusz and /metrics;
    // SIGKILL in the middle of a snapshot write must leave the previous
    // image intact so the replacement server answers the same corpus
    // byte-identically.
    const std::string snap_path =
        "chaosclient_snapshot_" + std::to_string(::getpid()) + ".snap";
    std::remove(snap_path.c_str());
    const std::vector<std::string> snapshotting{
        "--threads", "2",
        "--cache-snapshot", snap_path,
    };
    server s4 = spawn_silicond(argv[1], snapshotting);
    if (s4.pid < 0) {
        return 2;
    }
    s4.port = await_port(s4);
    if (s4.port == 0) {
        stop_silicond(s4);
        return 2;
    }
    std::cerr << "chaosclient: snapshotting server up on port " << s4.port
              << "\n";

    scenario_sigusr2_snapshot(s4, snap_path);

    stop_silicond(s4);
    std::remove(snap_path.c_str());

    scenario_kill_mid_snapshot(argv[1], snap_path);

    if (g_failures != 0) {
        std::cerr << "chaosclient: " << g_failures << " failure(s)\n";
        return 1;
    }
    std::cerr << "chaosclient: all scenarios passed\n";
    return 0;
}
