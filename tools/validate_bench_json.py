#!/usr/bin/env python3
"""Schema check for the machine-readable bench artifacts.

Usage: validate_bench_json.py BENCH_serve.json BENCH_kernels.json ...

Each file must be valid JSON with the fields the perf quickstart
(README) documents.  CI runs this after the tiny bench-smoke pass; it
is intentionally dependency-free (stdlib json only).
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def require(doc, path, key, kind):
    if key not in doc:
        return fail(path, f"missing key '{key}'")
    if not isinstance(doc[key], kind):
        return fail(path, f"key '{key}' should be {kind}, got "
                          f"{type(doc[key]).__name__}")
    return 0


def check_gate(doc, path):
    errors = require(doc, path, "gate", dict)
    if errors:
        return errors
    gate = doc["gate"]
    errors += require(gate, path, "skipped", bool)
    errors += require(gate, path, "pass", bool)
    if not gate.get("skipped", False) and not gate.get("pass", True):
        errors += fail(path, "gate ran and did not pass")
    return errors


def check_serve(doc, path):
    errors = 0
    errors += require(doc, path, "memoization", dict)
    errors += require(doc, path, "cold_batch_ablation", dict)
    if errors:
        return errors
    for key in ("serial_cold_req_per_s", "cache_warm_req_per_s",
                "warm_speedup_vs_serial", "required_speedup"):
        errors += require(doc["memoization"], path, key, (int, float))
    cold = doc["cold_batch_ablation"]
    for key in ("flags_off_req_per_s", "flags_on_req_per_s", "speedup",
                "required_speedup", "dedup_hits", "arena_bytes"):
        errors += require(cold, path, key, (int, float))
    errors += require(cold, path, "responses_identical", bool)
    if cold.get("responses_identical") is False:
        errors += fail(path, "ablation responses were not byte-identical")
    return errors


def check_kernels(doc, path):
    errors = require(doc, path, "kernels", list)
    errors += require(doc, path, "simd_target", str)
    if errors:
        return errors
    if not doc["kernels"]:
        return fail(path, "no kernel rows")
    # The fast-path speedup floor only applies when the host actually
    # dispatches a vector variant and the bench ran at full size; on
    # scalar hosts (or tiny smoke runs) the fast columns are recorded
    # but not gated.  ULP bounds are deterministic, so they hold on
    # every host regardless of target.
    vector_host = doc["simd_target"] != "scalar"
    full_run = doc.get("tiny") is False
    for row in doc["kernels"]:
        for key in ("kernel_lanes_per_s", "library_scalar_lanes_per_s",
                    "engine_perpoint_lanes_per_s", "speedup_vs_engine",
                    "fast_lanes_per_s", "fast_speedup_vs_library",
                    "fast_max_ulp"):
            errors += require(row, path, key, (int, float))
        errors += require(row, path, "name", str)
        errors += require(row, path, "bit_exact", bool)
        errors += require(row, path, "fast_ulp_gated", bool)
        errors += require(row, path, "fast_speedup_gated", bool)
        name = row.get("name")
        if row.get("bit_exact") is False:
            errors += fail(path, f"kernel {name} not bit-exact")
        if row.get("fast_ulp_gated") and row.get("fast_max_ulp", 0) > 4:
            errors += fail(path, f"kernel {name} fast path drifts "
                                 f"{row['fast_max_ulp']} ULP, want <= 4")
        if (vector_host and full_run and row.get("fast_speedup_gated")
                and row.get("fast_speedup_vs_library", 0.0) < 2.0):
            errors += fail(path, f"kernel {name} fast speedup "
                                 f"{row['fast_speedup_vs_library']:.2f}x "
                                 f"vs library, want >= 2x on "
                                 f"{doc['simd_target']}")
    return errors


def check_chiplet(doc, path):
    errors = require(doc, path, "kernel", dict)
    errors += require(doc, path, "crossover", dict)
    if errors:
        return errors
    kernel = doc["kernel"]
    for key in ("kernel_lanes_per_s", "library_scalar_lanes_per_s",
                "engine_perpoint_lanes_per_s", "speedup_vs_engine"):
        errors += require(kernel, path, key, (int, float))
    errors += require(kernel, path, "bit_exact", bool)
    if kernel.get("bit_exact") is False:
        errors += fail(path, "chiplet kernel not bit-exact")
    # The crossover is deterministic, so it is enforced even when the
    # timing gate is skipped: monolithic wins the low end, a split the
    # high end, and every thread-count/kernel-flag combination agrees
    # bytewise.
    crossover = doc["crossover"]
    errors += require(crossover, path, "area_mm2", (int, float))
    if crossover.get("area_mm2", 0) <= 0:
        errors += fail(path, "no die-size crossover found")
    for key in ("monolithic_wins_low_end", "split_wins_high_end",
                "responses_identical"):
        errors += require(crossover, path, key, bool)
        if crossover.get(key) is False:
            errors += fail(path, f"crossover check '{key}' failed")
    return errors


def check_overload(doc, path):
    errors = require(doc, path, "rejections", dict)
    if errors:
        return errors
    rejections = doc["rejections"]
    for key in ("line_too_large_ns", "overloaded_ns", "batch_too_large_ns",
                "served_warm_ns", "allocs_per_line_reject",
                "allocs_per_overload_reject", "reject_speedup_vs_served",
                "required_speedup"):
        errors += require(rejections, path, key, (int, float))
    # The zero-allocation reject contract is deterministic: it must hold
    # even when the timing gate is skipped (tiny mode).
    for key in ("allocs_per_line_reject", "allocs_per_overload_reject"):
        if rejections.get(key, 0) != 0:
            errors += fail(path, f"{key} is {rejections[key]}, want 0")
    return errors


def check_load(doc, path):
    errors = require(doc, path, "capacity_req_per_s", (int, float))
    errors += require(doc, path, "levels", list)
    if errors:
        return errors
    if not doc["levels"]:
        return fail(path, "no load levels")
    for level in doc["levels"]:
        for key in ("target_ratio", "offered_req_per_s",
                    "achieved_req_per_s", "goodput_req_per_s",
                    "p50_ms", "p99_ms", "p999_ms"):
            # Percentiles must be numbers: loadgen writes non-finite
            # values as null, so this type check is the finiteness gate.
            errors += require(level, path, key, (int, float))
        for key in ("sent", "answered", "unanswered"):
            errors += require(level, path, key, int)
        errors += require(level, path, "errors", dict)
        errors += require(level, path, "endpoints", dict)
        if not level.get("endpoints"):
            errors += fail(path, "level has an empty endpoints table")
        for name, table in level.get("endpoints", {}).items():
            if not isinstance(table, dict):
                errors += fail(path, f"endpoint {name!r} is not an object")
                continue
            errors += require(table, path, "count", int)
            if table.get("count", 0) < 1:
                errors += fail(path, f"endpoint {name!r} has no samples")
            for key in ("p50_ms", "p99_ms", "p999_ms"):
                errors += require(table, path, key, (int, float))
    ratios = [level.get("target_ratio") for level in doc["levels"]]
    if 2.0 not in ratios:
        errors += fail(path, "missing the 2x overload level")
    return errors


def check_flight(doc, path):
    """BENCH_flight.json: flight-recorder hot-path overhead."""
    errors = require(doc, path, "flight", dict)
    if errors:
        return errors
    flight = doc["flight"]
    for key in ("baseline_req_per_s", "recording_req_per_s",
                "ns_per_request_baseline", "ns_per_append",
                "overhead_fraction", "max_overhead_fraction"):
        errors += require(flight, path, key, (int, float))
    errors += require(flight, path, "records_appended", int)
    if flight.get("records_appended", 0) < 1:
        errors += fail(path, "bench appended no flight records")
    return errors


def check_warmstart(doc, path):
    """BENCH_warmstart.json: snapshot restore vs cold-start economics."""
    errors = require(doc, path, "warmstart", dict)
    if errors:
        return errors
    ws = doc["warmstart"]
    for key in ("requests", "distinct_keys", "warm_hit_ratio",
                "warm_req_per_s", "restored_hit_ratio", "restored_req_per_s",
                "cold_hit_ratio", "cold_req_per_s", "restored_ratio_vs_warm",
                "min_restored_ratio_vs_warm", "snapshot_entries",
                "snapshot_bytes", "snapshot_write_seconds",
                "snapshot_restore_seconds"):
        errors += require(ws, path, key, (int, float))
    errors += require(ws, path, "truncated_restore_cold", bool)
    errors += require(ws, path, "ladder", list)
    if errors:
        return errors
    # Both gates are deterministic, so they hold even in tiny mode: a
    # restored cache must preserve the warm hit ratio and a truncated
    # snapshot must degrade to a clean cold start.
    floor = ws["min_restored_ratio_vs_warm"]
    if floor < 0.90:
        errors += fail(path, f"restored-ratio floor {floor} below 0.90")
    if ws["restored_ratio_vs_warm"] < floor:
        errors += fail(path, f"restored hit ratio is "
                             f"{ws['restored_ratio_vs_warm']:.3f}x warm, "
                             f"want >= {floor}x")
    if ws.get("truncated_restore_cold") is False:
        errors += fail(path, "truncated snapshot did not restore cold")
    if not ws["ladder"]:
        errors += fail(path, "snapshot latency ladder is empty")
    for row in ws["ladder"]:
        if not isinstance(row, dict):
            errors += fail(path, "ladder row is not an object")
            continue
        for key in ("entries", "bytes", "write_seconds", "restore_seconds"):
            errors += require(row, path, key, (int, float))
        if row.get("bytes", 0) <= 0:
            errors += fail(path, "ladder row has no snapshot bytes")
    return errors


CHECKS = {
    "bench_serve_throughput": check_serve,
    "bench_batch_kernels": check_kernels,
    "bench_chiplet": check_chiplet,
    "bench_overload": check_overload,
    "bench_load": check_load,
    "bench_flight": check_flight,
    "bench_warmstart": check_warmstart,
}


def main(paths):
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors += fail(path, str(e))
            continue
        name = doc.get("bench")
        if name not in CHECKS:
            errors += fail(path, f"unknown bench name {name!r}")
            continue
        errors += require(doc, path, "tiny", bool)
        errors += CHECKS[name](doc, path)
        errors += check_gate(doc, path)
        if not errors:
            print(f"{path}: ok ({name}, tiny={doc.get('tiny')})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
