// Rejection-path performance: how cheap is saying "no"?
//
// Admission control only protects an overloaded server if the reject
// path costs almost nothing — a rejection that parses JSON or allocates
// per line would itself be a resource-exhaustion vector.  This bench
// measures the three fast-reject shapes (DESIGN.md §11):
//
//   * line_too_large — the pre-parse byte-bound check in serve_line
//   * overloaded     — an admission refusal against the in-flight
//                      byte budget
//   * batch_too_large — an over-count batch, every line answered
//
// and, with the same counting-allocator trick as the warm-hit gate
// (tests/serve/test_hotpath.cpp), counts heap allocations per steady-
// state rejection.  The gate: both single-line reject shapes perform
// ZERO allocations into a reused response buffer, and a rejection is
// at least 5x cheaper than serving the cheapest real request.  A
// served baseline is measured for that ratio.
//
// Results land in BENCH_overload.json (machine readable, git-tracked;
// schema-checked by tools/validate_bench_json.py).  SILICON_BENCH_TINY=1
// shrinks the loops and skips the gate (the allocation counts are still
// measured and reported).  Lives in its own binary: it replaces the
// global allocation functions.

#include "serve/engine.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

// ---------------------------------------------------------------------------
// Counting allocator (deallocation deliberately not counted: returning
// memory on the reject path is allowed, taking it is not).
// ---------------------------------------------------------------------------

namespace {

thread_local std::uint64_t t_allocations = 0;

void* counted_alloc(std::size_t n) {
    ++t_allocations;
    if (void* p = std::malloc(n == 0 ? 1 : n)) {
        return p;
    }
    throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t n, std::size_t alignment) {
    ++t_allocations;
    void* p = nullptr;
    if (posix_memalign(&p,
                       alignment < sizeof(void*) ? sizeof(void*) : alignment,
                       n == 0 ? 1 : n) != 0) {
        throw std::bad_alloc{};
    }
    return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
    ++t_allocations;
    return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
    ++t_allocations;
    return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t al) {
    return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// ns/op for `iters` calls of `fn(out)` into a reused buffer, plus the
/// steady-state allocation count of the final call.
struct measured {
    double ns_per_op = 0.0;
    std::uint64_t allocs_last = 0;
};

template <typename Fn>
measured measure(std::size_t iters, std::string& out, Fn&& fn) {
    measured m;
    // Warm-up: let every lazily-grown buffer reach steady state.
    for (int i = 0; i < 64; ++i) {
        fn(out);
    }
    const auto start = clock_type::now();
    for (std::size_t i = 0; i < iters; ++i) {
        fn(out);
    }
    m.ns_per_op = seconds_since(start) * 1e9 / static_cast<double>(iters);
    const std::uint64_t before = t_allocations;
    fn(out);
    m.allocs_last = t_allocations - before;
    return m;
}

}  // namespace

int main() {
    const bool tiny = tiny_mode();
    const std::size_t kIters = tiny ? 2000 : 2000000;

    serve::engine_config config;
    config.parallelism = 1;
    config.limits.max_line_bytes = 256;
    serve::engine engine{config};

    // --- line_too_large: pre-parse byte bound --------------------------
    const std::string long_line = "{\"op\":\"scenario1\",\"note\":\"" +
                                  std::string(512, 'x') + "\"}";
    std::string out;
    const measured line_reject = measure(
        kIters, out, [&](std::string& o) { engine.handle_line_into(long_line, o); });

    // --- overloaded: admission refusal ---------------------------------
    // A lone request is always admitted (budgets shed load, they do not
    // ban inputs), so a single-threaded loop cannot drive the engine's
    // refusal branch.  Hold the ledger with a raw controller admission
    // and measure the refusal + envelope against it.
    const std::string line = "{\"op\":\"scenario1\"}";
    serve::admission_controller controller;
    const auto held = controller.admit(1024, 1024);
    const measured overload_reject =
        measure(kIters, out, [&](std::string& o) {
            const auto refused = controller.admit(line.size(), 1024);
            if (refused) {
                std::abort();  // the bench premise broke
            }
            o.clear();
            serve::append_overloaded({}, o);
        });

    // --- batch_too_large ----------------------------------------------
    serve::engine_config batch_config;
    batch_config.parallelism = 1;
    batch_config.limits.max_batch_lines = 4;
    serve::engine batch_engine{batch_config};
    const std::vector<std::string> big_batch(16, line);
    const std::size_t batch_iters = tiny ? 200 : 20000;
    const auto batch_start = clock_type::now();
    for (std::size_t i = 0; i < batch_iters; ++i) {
        (void)batch_engine.handle_batch(big_batch);
    }
    const double batch_reject_ns = seconds_since(batch_start) * 1e9 /
                                   static_cast<double>(batch_iters *
                                                       big_batch.size());

    // --- served baseline: the cheapest real request, fully warm --------
    const measured served = measure(
        kIters, out, [&](std::string& o) { engine.handle_line_into(line, o); });

    const double reject_vs_served = served.ns_per_op / line_reject.ns_per_op;

    std::printf("bench_overload (%zu rejects per shape)\n", kIters);
    std::printf("  %-26s %10.1f ns  %3llu allocs/op\n", "line_too_large",
                line_reject.ns_per_op,
                static_cast<unsigned long long>(line_reject.allocs_last));
    std::printf("  %-26s %10.1f ns  %3llu allocs/op\n", "overloaded reject",
                overload_reject.ns_per_op,
                static_cast<unsigned long long>(
                    overload_reject.allocs_last));
    std::printf("  %-26s %10.1f ns\n", "batch_too_large (per line)",
                batch_reject_ns);
    std::printf("  %-26s %10.1f ns  %3llu allocs/op\n", "served warm hit",
                served.ns_per_op,
                static_cast<unsigned long long>(served.allocs_last));
    std::printf("  reject is %.1fx cheaper than a warm serve\n",
                reject_vs_served);

    // --- Machine-readable results --------------------------------------
    json::object rejections;
    rejections.set("line_too_large_ns", json::value{line_reject.ns_per_op});
    rejections.set("overloaded_ns",
                   json::value{overload_reject.ns_per_op});
    rejections.set("batch_too_large_ns", json::value{batch_reject_ns});
    rejections.set("served_warm_ns", json::value{served.ns_per_op});
    rejections.set(
        "allocs_per_line_reject",
        json::value{static_cast<double>(line_reject.allocs_last)});
    rejections.set(
        "allocs_per_overload_reject",
        json::value{static_cast<double>(overload_reject.allocs_last)});
    rejections.set("reject_speedup_vs_served",
                   json::value{reject_vs_served});
    rejections.set("required_speedup", json::value{5.0});

    // The allocation gate is deterministic, so it holds in tiny mode
    // too; only the timing ratio is skipped there.
    bool gate_pass = line_reject.allocs_last == 0 &&
                     overload_reject.allocs_last == 0;
    if (!tiny) {
        gate_pass = gate_pass && reject_vs_served >= 5.0;
    }

    json::object doc;
    doc.set("bench", json::value{std::string{"bench_overload"}});
    doc.set("tiny", json::value{tiny});
    doc.set("rejections", json::value{std::move(rejections)});
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass", json::value{gate_pass});
    doc.set("gate", json::value{std::move(gate)});

    const std::string path = "BENCH_overload.json";
    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("wrote %s\n", path.c_str());

    if (!gate_pass) {
        std::printf("FAIL: rejection gate (allocs %llu/%llu, ratio %.1fx)\n",
                    static_cast<unsigned long long>(line_reject.allocs_last),
                    static_cast<unsigned long long>(
                        overload_reject.allocs_last),
                    reject_vs_served);
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, timing gate skipped\n");
    } else {
        std::printf("OK\n");
    }
    return 0;
}
