// bench_fig4_steps_defects — reproduces Fig. 4: the number of
// manufacturing steps and the defect density required for subsequent IC
// technology generations.
//
// Steps come from the synthesized per-generation CMOS recipes (validated
// against the roadmap's step column); the required defect density D is
// *derived* by inverting Eq. (7): the D that keeps the generation's
// microprocessor die at a constant 60% yield.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "tech/process.hpp"
#include "tech/roadmap.hpp"
#include "yield/scaled.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 4 - process steps and required defect density");

    constexpr double p = 4.07;          // Fig. 8 calibration exponent
    const probability target_yield{0.6};

    analysis::text_table table;
    table.add_column("feature [um]", analysis::align::right, 2);
    table.add_column("roadmap steps");
    table.add_column("synthesized steps");
    table.add_column("uP die [cm^2]", analysis::align::right, 2);
    table.add_column("required D [1/cm^2 @1um]", analysis::align::right, 4);
    table.add_column("D_eff at lambda [1/cm^2]", analysis::align::right, 2);

    analysis::series steps{"process steps"};
    analysis::series density{"required defect density"};
    for (const tech::technology_generation& g : tech::standard_roadmap()) {
        if (g.feature_um > 3.0) {
            continue;  // Fig. 4 covers the VLSI era
        }
        const tech::process_recipe recipe = tech::synthesize_cmos_recipe(
            microns{g.feature_um}, g.mask_layers / 4);
        const square_centimeters die =
            tech::microprocessor_die_area(microns{g.feature_um});
        const double d_required = yield::scaled_poisson_model::required_d(
            target_yield, die, microns{g.feature_um}, p);
        const yield::scaled_poisson_model model{d_required, p};
        table.begin_row();
        table.add_number(g.feature_um);
        table.add_integer(g.process_steps);
        table.add_integer(recipe.step_count());
        table.add_number(die.value());
        table.add_number(d_required);
        table.add_number(
            model.effective_defect_density(microns{g.feature_um}));
        steps.add(g.feature_um, g.process_steps);
        density.add(g.feature_um, d_required);
    }
    std::cout << table.to_string() << "\n";
    std::cout << "shape check (paper Fig. 4): steps rise and the required\n"
                 "defect density falls as the feature size shrinks --\n"
                 "\"an increase in the scale of integration ... requires a\n"
                 "drastic decrease in defect density D\" (Sec. III.C).\n\n";

    analysis::ascii_chart_options options;
    options.title =
        "Fig. 4: steps (*) and required D (o) vs feature size [um]";
    options.y_scale = analysis::scale::log10;
    options.x_label = "minimum feature size [um]";
    std::cout << analysis::render_ascii_chart({steps, density}, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 4 reproduction: steps and required defect density";
    svg.x_label = "minimum feature size [um]";
    svg.y_label = "steps / defects per cm^2";
    svg.y_log = true;
    bench::save_svg("fig4_steps_defects.svg",
                    analysis::render_svg_line_chart({steps, density}, svg));
    return 0;
}
