// bench_fig8_contours — reproduces Fig. 8: constant-cost contours of the
// full Eq. (1)/(3)/(4)/(7) model in the (lambda x N_tr) plane with the
// paper's calibration X = 1.4, C_0 = $500, R_w = 7.5 cm, d_d = 152,
// D = 1.72, p = 4.07, plus the Sec. IV.B conclusion: lambda_opt per die
// size, and the count of local optima along lambda slices.

#include "analysis/contour.hpp"
#include "analysis/sweep.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/cost_model.hpp"
#include "opt/minimize.hpp"

#include <cmath>
#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 8 - iso-cost contours in the (lambda x N_tr) plane");

    core::process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const core::cost_model model{process};

    const auto cost_micro = [&](double lambda, double n_tr) {
        core::product_spec p;
        p.name = "fig8";
        p.transistors = n_tr;
        p.design_density = 152.0;
        p.feature_size = microns{lambda};
        try {
            return model.cost_per_transistor(p).value() * 1e6;
        } catch (const std::domain_error&) {
            return 1e9;  // infeasible corner of the plane
        }
    };

    // The paper plots the sub-micron design window.
    const std::vector<double> lambdas = analysis::linspace(0.5, 1.0, 81);
    const std::vector<double> transistor_counts =
        analysis::logspace(2e4, 1e6, 81);
    const analysis::grid g =
        analysis::evaluate_grid(lambdas, transistor_counts, cost_micro);

    // Contour levels spanning the observed cost range geometrically.
    const double lo = g.min_value();
    std::vector<double> levels;
    for (double f : {1.2, 1.6, 2.2, 3.0, 4.5, 7.0, 12.0}) {
        levels.push_back(lo * f);
    }

    std::cout << "cost surface: min " << lo << " u$/tr, levels at";
    for (double level : levels) {
        std::cout << " " << analysis::format_number(level, 2);
    }
    std::cout << " u$/tr\n";
    const auto all_lines = analysis::extract_contours(g, levels);
    std::cout << "extracted " << all_lines.size()
              << " contour polylines across " << levels.size()
              << " levels\n\n";

    // Sec. IV.B: lambda_opt per die size (transistor count).
    analysis::text_table table;
    table.add_column("N_tr", analysis::align::right, 0);
    table.add_column("lambda_opt [um]", analysis::align::right, 3);
    table.add_column("C_tr at opt [u$/tr]", analysis::align::right, 3);
    table.add_column("die at opt [mm^2]", analysis::align::right, 1);
    table.add_column("local minima in window");

    for (double n_tr : {2e4, 5e4, 1e5, 2e5, 5e5, 1e6}) {
        core::product_spec p;
        p.name = "fig8";
        p.transistors = n_tr;
        p.design_density = 152.0;
        const microns best =
            model.optimal_feature_size(p, microns{0.5}, microns{1.0});
        p.feature_size = best;
        const core::cost_breakdown at_best = model.evaluate(p);
        const auto minima = opt::local_minima_on_grid(
            [&](double lambda) { return cost_micro(lambda, n_tr); }, 0.5,
            1.0, 300);
        table.begin_row();
        table.add_number(n_tr);
        table.add_number(best.value());
        table.add_number(at_best.cost_per_transistor_micro_dollars());
        table.add_number(at_best.die_area.value());
        table.add_integer(static_cast<long>(minima.size()));
    }
    std::cout << table.to_string() << "\n";
    std::cout << "paper claims reproduced: \"there are a number of local "
                 "optima\" (die-count quantization) and \"for each die\n"
                 "size there is different lambda_opt which minimizes the "
                 "cost per transistor.\"\n";

    analysis::svg_chart_options svg;
    svg.title = "Fig. 8 reproduction: iso-cost contours (u$/transistor)";
    svg.x_label = "minimum feature size [um]";
    svg.y_label = "transistors per die";
    svg.y_log = true;
    bench::save_svg("fig8_contours.svg",
                    analysis::render_svg_contour_chart(g, levels, svg));
    return 0;
}
