// Serving throughput: requests/second through serve::engine for a
// mixed batch of unique queries, measured three ways:
//
//   serial cold  - parallelism 1, empty cache (every request computed)
//   pooled cold  - parallelism 0 (hardware), empty cache
//   cache warm   - same engine as "pooled cold", same batch again, so
//                  every request is a memoization hit
//
// The warm pass exercises the cache splice path only (canonicalize,
// lookup, envelope) and should beat the serial cold pass by >= 5x.

#include "serve/engine.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace {

std::string num(double v) { return silicon::serve::json::format_number(v); }

/// A deterministic mixed workload: every line unique, every endpoint
/// except stats represented.  Weighted toward evaluation-heavy
/// requests (Monte-Carlo yield, multi-point sweeps) — the realistic
/// serving mix, and the work memoization actually saves.  `n` should
/// be a multiple of 8.
std::vector<std::string> make_requests(std::size_t n) {
    std::vector<std::string> lines;
    lines.reserve(n);
    for (std::size_t i = 0; lines.size() < n; ++i) {
        const double lambda = 0.35 + 0.0001 * static_cast<double>(i);
        switch (i % 8) {
        case 0:
            lines.push_back(R"({"op":"scenario1","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 1:
            lines.push_back(R"({"op":"scenario2","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 2:
            lines.push_back(R"({"op":"cost_tr","product":{"transistors":)" +
                            num(1e6 + static_cast<double>(i)) + "}}");
            break;
        case 3:
            lines.push_back(R"({"op":"gross_die","die_width_mm":)" +
                            num(5.0 + 0.001 * static_cast<double>(i)) +
                            R"(,"die_height_mm":8.0})");
            break;
        case 4:
            lines.push_back(R"({"op":"yield","model":"murphy","die_area_cm2":)" +
                            num(0.5 + 0.0001 * static_cast<double>(i)) +
                            R"(,"defects_per_cm2":0.8})");
            break;
        case 5:
            lines.push_back(R"({"op":"mc_yield","dies":1500,"seed":)" +
                            std::to_string(i) + "}");
            break;
        case 6:
            lines.push_back(R"({"op":"mc_yield","dies":1500,"line_count":)" +
                            std::to_string(10 + i % 20) + R"(,"seed":)" +
                            std::to_string(i) + "}");
            break;
        default:
            lines.push_back(
                R"({"op":"sweep","param":"lambda_um","from":)" + num(lambda) +
                R"(,"to":)" + num(lambda + 0.4) +
                R"(,"count":16,"target":{"op":"scenario2"}})");
            break;
        }
    }
    return lines;
}

double run_pass(silicon::serve::engine& engine,
                const std::vector<std::string>& lines) {
    const auto start = std::chrono::steady_clock::now();
    const std::vector<std::string> responses = engine.handle_batch(lines);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(responses.size()) / seconds;
}

}  // namespace

int main() {
    constexpr std::size_t kRequests = 8192;
    const std::vector<std::string> lines = make_requests(kRequests);

    silicon::serve::engine_config serial_config;
    serial_config.parallelism = 1;
    silicon::serve::engine serial_engine{serial_config};
    const double serial_cold = run_pass(serial_engine, lines);

    silicon::serve::engine_config pooled_config;
    pooled_config.parallelism = 0;
    silicon::serve::engine pooled_engine{pooled_config};
    const double pooled_cold = run_pass(pooled_engine, lines);
    const double cache_warm = run_pass(pooled_engine, lines);

    const silicon::serve::memo_cache::stats cache =
        pooled_engine.cache_stats();

    std::printf("bench_serve_throughput (%zu unique mixed requests)\n",
                kRequests);
    std::printf("  %-22s %12.0f req/s\n", "serial cold", serial_cold);
    std::printf("  %-22s %12.0f req/s  (%.2fx serial)\n", "pooled cold",
                pooled_cold, pooled_cold / serial_cold);
    std::printf("  %-22s %12.0f req/s  (%.2fx serial)\n", "cache warm",
                cache_warm, cache_warm / serial_cold);
    std::printf("  cache: %zu hits / %zu misses / %zu entries\n",
                static_cast<std::size_t>(cache.hits),
                static_cast<std::size_t>(cache.misses),
                static_cast<std::size_t>(cache.entries));

    if (cache.hits < kRequests) {
        std::printf("FAIL: warm pass was not fully cached\n");
        return 1;
    }
    if (cache_warm < 5.0 * serial_cold) {
        std::printf("FAIL: cache warm %.2fx serial, want >= 5x\n",
                    cache_warm / serial_cold);
        return 1;
    }
    std::printf("OK: cache warm >= 5x serial cold\n");
    return 0;
}
