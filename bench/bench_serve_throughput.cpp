// Serving throughput: requests/second through serve::engine, measured
// two ways.
//
// 1. The memoization gate (unchanged from the first serve bench): a
//    mixed batch of unique queries served cold, then the same batch
//    again fully warm.  The warm pass exercises only the zero-allocation
//    hot path (arena parse, canonical probe, envelope splice) and must
//    beat the serial cold pass by >= 5x.
//
// 2. The cold-batch ablation gate (the perf target of the batch
//    execution work): a sweep-heavy, duplicate-heavy batch served by a
//    fresh engine with the batch machinery ON (hot path, intra-batch
//    dedup, SoA sweep kernels) versus a fresh engine with all three
//    flags OFF.  Responses must be byte-identical; throughput must be
//    >= 3x.  This is an apples-to-apples single-process A/B — the same
//    binary, the same workload, only the engine_config flags differ.
//
// Results land in BENCH_serve.json (machine readable, git-tracked).
// SILICON_BENCH_TINY=1 shrinks the workload and skips both gates so CI
// smoke runs stay cheap and unflaky.

#include "serve/engine.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

std::string num(double v) { return json::format_number(v); }

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// A deterministic mixed workload: every line unique, every endpoint
/// except stats represented.  Weighted toward evaluation-heavy
/// requests (Monte-Carlo yield, multi-point sweeps) — the realistic
/// serving mix, and the work memoization actually saves.  `n` should
/// be a multiple of 8.
std::vector<std::string> make_requests(std::size_t n) {
    std::vector<std::string> lines;
    lines.reserve(n);
    for (std::size_t i = 0; lines.size() < n; ++i) {
        const double lambda = 0.35 + 0.0001 * static_cast<double>(i);
        switch (i % 8) {
        case 0:
            lines.push_back(R"({"op":"scenario1","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 1:
            lines.push_back(R"({"op":"scenario2","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 2:
            lines.push_back(R"({"op":"cost_tr","product":{"transistors":)" +
                            num(1e6 + static_cast<double>(i)) + "}}");
            break;
        case 3:
            lines.push_back(R"({"op":"gross_die","die_width_mm":)" +
                            num(5.0 + 0.001 * static_cast<double>(i)) +
                            R"(,"die_height_mm":8.0})");
            break;
        case 4:
            lines.push_back(R"({"op":"yield","model":"murphy","die_area_cm2":)" +
                            num(0.5 + 0.0001 * static_cast<double>(i)) +
                            R"(,"defects_per_cm2":0.8})");
            break;
        case 5:
            lines.push_back(R"({"op":"mc_yield","dies":1500,"seed":)" +
                            std::to_string(i) + "}");
            break;
        case 6:
            lines.push_back(R"({"op":"mc_yield","dies":1500,"line_count":)" +
                            std::to_string(10 + i % 20) + R"(,"seed":)" +
                            std::to_string(i) + "}");
            break;
        default:
            lines.push_back(
                R"({"op":"sweep","param":"lambda_um","from":)" + num(lambda) +
                R"(,"to":)" + num(lambda + 0.4) +
                R"(,"count":16,"target":{"op":"scenario2"}})");
            break;
        }
    }
    return lines;
}

/// The cold-batch ablation workload: half multi-point sweeps (the SoA
/// kernel surface), half point queries repeated `dup` times each (the
/// intra-batch dedup surface).  `n` lines total.
std::vector<std::string> make_batch_workload(std::size_t n,
                                             std::size_t sweep_count,
                                             std::size_t dup) {
    std::vector<std::string> lines;
    lines.reserve(n);
    std::size_t unique = 0;
    while (lines.size() < n) {
        const double lambda = 0.4 + 0.001 * static_cast<double>(unique);
        if (unique % 2 == 0) {
            // Sweeps over the kernel-eligible targets.
            const char* target = (unique % 4 == 0)
                                     ? R"({"op":"scenario2"})"
                                     : R"({"op":"scenario1"})";
            lines.push_back(R"({"op":"sweep","param":"lambda_um","from":)" +
                            num(lambda) + R"(,"to":)" + num(lambda + 0.6) +
                            R"(,"count":)" + std::to_string(sweep_count) +
                            R"(,"target":)" + target + "}");
        } else {
            // Point queries, each duplicated across the batch.
            const std::string line =
                R"({"op":"scenario1","lambda_um":)" + num(lambda) + "}";
            for (std::size_t d = 0; d < dup && lines.size() < n; ++d) {
                lines.push_back(line);
            }
        }
        ++unique;
    }
    return lines;
}

double run_pass(serve::engine& engine, const std::vector<std::string>& lines,
                std::vector<std::string>* responses_out = nullptr) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::string> responses = engine.handle_batch(lines);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double rate = static_cast<double>(responses.size()) / seconds;
    if (responses_out != nullptr) {
        *responses_out = std::move(responses);
    }
    return rate;
}

}  // namespace

int main() {
    const bool tiny = tiny_mode();
    const std::size_t kRequests = tiny ? 64 : 8192;
    const std::size_t kBatchLines = tiny ? 64 : 2048;
    const std::size_t kSweepCount = tiny ? 8 : 64;
    const std::size_t kDup = 8;
    const std::vector<std::string> lines = make_requests(kRequests);

    // --- Pass set 1: the memoization gate ------------------------------
    serve::engine_config serial_config;
    serial_config.parallelism = 1;
    serve::engine serial_engine{serial_config};
    const double serial_cold = run_pass(serial_engine, lines);

    serve::engine_config pooled_config;
    pooled_config.parallelism = 0;
    serve::engine pooled_engine{pooled_config};
    const double pooled_cold = run_pass(pooled_engine, lines);
    const double cache_warm = run_pass(pooled_engine, lines);

    const serve::memo_cache::stats cache = pooled_engine.cache_stats();

    std::printf("bench_serve_throughput (%zu unique mixed requests)\n",
                kRequests);
    std::printf("  %-22s %12.0f req/s\n", "serial cold", serial_cold);
    std::printf("  %-22s %12.0f req/s  (%.2fx serial)\n", "pooled cold",
                pooled_cold, pooled_cold / serial_cold);
    std::printf("  %-22s %12.0f req/s  (%.2fx serial)\n", "cache warm",
                cache_warm, cache_warm / serial_cold);
    std::printf("  cache: %zu hits / %zu misses / %zu entries\n",
                static_cast<std::size_t>(cache.hits),
                static_cast<std::size_t>(cache.misses),
                static_cast<std::size_t>(cache.entries));

    // --- Pass set 2: the cold-batch ablation gate ----------------------
    const std::vector<std::string> batch =
        make_batch_workload(kBatchLines, kSweepCount, kDup);

    serve::engine_config on_config;
    on_config.parallelism = 0;
    serve::engine on_engine{on_config};

    serve::engine_config off_config;
    off_config.parallelism = 0;
    off_config.hot_path = false;
    off_config.batch_dedup = false;
    off_config.sweep_kernels = false;
    serve::engine off_engine{off_config};

    std::vector<std::string> on_responses;
    std::vector<std::string> off_responses;
    const double batch_on = run_pass(on_engine, batch, &on_responses);
    const double batch_off = run_pass(off_engine, batch, &off_responses);
    const bool identical = on_responses == off_responses;

    std::printf(
        "cold batch ablation (%zu lines: %zu-point sweeps + x%zu dups)\n",
        kBatchLines, kSweepCount, kDup);
    std::printf("  %-22s %12.0f req/s\n", "flags off", batch_off);
    std::printf("  %-22s %12.0f req/s  (%.2fx off)\n", "flags on", batch_on,
                batch_on / batch_off);
    std::printf("  dedup hits %zu, arena bytes %zu, responses %s\n",
                static_cast<std::size_t>(on_engine.dedup_hits()),
                static_cast<std::size_t>(on_engine.arena_bytes()),
                identical ? "byte-identical" : "DIFFER");

    // --- Machine-readable results --------------------------------------
    json::object doc;
    doc.set("bench", json::value{std::string{"bench_serve_throughput"}});
    doc.set("tiny", json::value{tiny});
    json::object warm;
    warm.set("requests", json::value{static_cast<double>(kRequests)});
    warm.set("serial_cold_req_per_s", json::value{serial_cold});
    warm.set("pooled_cold_req_per_s", json::value{pooled_cold});
    warm.set("cache_warm_req_per_s", json::value{cache_warm});
    warm.set("warm_speedup_vs_serial", json::value{cache_warm / serial_cold});
    warm.set("required_speedup", json::value{5.0});
    doc.set("memoization", json::value{std::move(warm)});
    json::object cold;
    cold.set("lines", json::value{static_cast<double>(kBatchLines)});
    cold.set("sweep_count", json::value{static_cast<double>(kSweepCount)});
    cold.set("dup_factor", json::value{static_cast<double>(kDup)});
    cold.set("flags_off_req_per_s", json::value{batch_off});
    cold.set("flags_on_req_per_s", json::value{batch_on});
    cold.set("speedup", json::value{batch_on / batch_off});
    cold.set("required_speedup", json::value{3.0});
    cold.set("responses_identical", json::value{identical});
    cold.set("dedup_hits",
             json::value{static_cast<double>(on_engine.dedup_hits())});
    cold.set("arena_bytes",
             json::value{static_cast<double>(on_engine.arena_bytes())});
    doc.set("cold_batch_ablation", json::value{std::move(cold)});

    bool gate_pass = identical && cache.hits >= kRequests;
    if (!tiny) {
        gate_pass = gate_pass && cache_warm >= 5.0 * serial_cold &&
                    batch_on >= 3.0 * batch_off;
    }
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass", json::value{gate_pass});
    doc.set("gate", json::value{std::move(gate)});

    const std::string path = "BENCH_serve.json";
    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    // --- Gates ----------------------------------------------------------
    if (!identical) {
        std::printf("FAIL: ablation responses differ\n");
        return 1;
    }
    if (cache.hits < kRequests) {
        std::printf("FAIL: warm pass was not fully cached\n");
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, speedup gates skipped\n");
        return 0;
    }
    if (cache_warm < 5.0 * serial_cold) {
        std::printf("FAIL: cache warm %.2fx serial, want >= 5x\n",
                    cache_warm / serial_cold);
        return 1;
    }
    if (batch_on < 3.0 * batch_off) {
        std::printf("FAIL: cold batch %.2fx with flags on, want >= 3x\n",
                    batch_on / batch_off);
        return 1;
    }
    std::printf("OK: warm >= 5x serial cold, cold batch >= 3x flags-off\n");
    return 0;
}
