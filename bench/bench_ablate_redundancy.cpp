// bench_ablate_redundancy — ablation A12: how much redundancy should a
// memory carry?  Sweeps spare count across defect densities and reports
// the cost-optimal investment (assumption S.1.2's "appropriately
// designed redundant components"), plus the asymmetry that powers the
// paper's memory-vs-logic argument: logic gets none of this benefit.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "yield/memory_design.hpp"

#include <cmath>
#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A12 - optimal memory redundancy");

    yield::memory_design design;
    design.base_array_area = square_centimeters{1.2};
    design.periphery_area = square_centimeters{0.2};
    design.area_per_spare_fraction = 0.004;

    analysis::text_table table;
    table.add_column("D [1/cm^2]", analysis::align::right, 1);
    table.add_column("best spares");
    table.add_column("yield w/ spares", analysis::align::right, 3);
    table.add_column("yield w/o", analysis::align::right, 4);
    table.add_column("silicon/good die [cm^2]", analysis::align::right, 2);
    table.add_column("saved vs none", analysis::align::right, 3);
    table.add_column("equal-area logic Y", analysis::align::right, 4);

    for (double density : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const yield::redundancy_choice choice =
            yield::optimize_redundancy(design, density);
        // A logic die of the same total silicon: no repair possible.
        const double logic_yield =
            std::exp(-choice.best.total_area.value() * density);
        table.begin_row();
        table.add_number(density);
        table.add_integer(choice.best.spares);
        table.add_number(choice.best.yield.value());
        table.add_number(choice.none.yield.value());
        table.add_number(choice.best.area_per_good_die_cm2);
        table.add_number(choice.improvement);
        table.add_number(logic_yield);
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "findings: the optimal spare count rises with defect density "
           "(a few spares at mature\ndensities, dozens during a ramp) and "
           "saves up to ~90% of the silicon per good die at\nhigh D; the "
           "equal-area logic column shows what the paper means by \"only "
           "memories enjoy\nthe benefits of redundancy\" -- logic at D = "
           "4/cm^2 is essentially unmanufacturable while\nthe repaired "
           "memory still ships.\n";
    return 0;
}
