// Warm-restart economics: what a cache snapshot buys at boot.
//
// Measurements:
//
//   warm serve      - hit ratio and req/s of a fully warmed engine
//                     (the pre-restart steady state)
//   restored serve  - the same corpus on a FRESH engine that restored
//                     the warm engine's snapshot: the first pass after
//                     a restart
//   cold serve      - the same corpus on a fresh engine with no
//                     snapshot (what a restart costs without one)
//   snapshot ladder - write/restore latency and file size at
//                     representative cache populations
//
// Gate: the snapshot-restored first pass must reach >= 90% of the
// pre-restart warm hit ratio (deterministic — restore replays every
// entry — so the gate is enforced even under SILICON_BENCH_TINY=1),
// and a truncated snapshot must restore as a clean cold start.  The
// req/s columns are recorded for the ledger but not gated: absolute
// throughput jitters on shared machines, hit ratios do not.

#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/snapshot.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace {

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

std::string num(double v) { return json::format_number(v); }

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Deterministic cacheable corpus over `distinct` unique keys: the mix
/// silicond actually serves (cheap point endpoints), with every key
/// revisited `repeat` times so a warm cache answers the tail from
/// memory.
std::vector<std::string> make_requests(std::size_t distinct,
                                       std::size_t repeat) {
    std::vector<std::string> lines;
    lines.reserve(distinct * repeat);
    for (std::size_t pass = 0; pass < repeat; ++pass) {
        for (std::size_t i = 0; i < distinct; ++i) {
            const double lambda = 0.35 + 0.001 * static_cast<double>(i);
            switch (i % 4) {
            case 0:
                lines.push_back(R"({"op":"scenario1","lambda_um":)" +
                                num(lambda) + "}");
                break;
            case 1:
                lines.push_back(R"({"op":"scenario2","lambda_um":)" +
                                num(lambda) + "}");
                break;
            case 2:
                lines.push_back(
                    R"({"op":"yield","model":"murphy","die_area_cm2":)" +
                    num(0.5 + 0.001 * static_cast<double>(i)) +
                    R"(,"defects_per_cm2":0.8})");
                break;
            default:
                lines.push_back(R"({"op":"chiplet","chiplets":)" +
                                std::to_string(1 + i % 8) + "}");
                break;
            }
        }
    }
    return lines;
}

struct pass_result {
    double hit_ratio = 0.0;
    double req_per_s = 0.0;
};

/// Run one batch pass and report the pass's own hit ratio (hits taken
/// during this pass over lines served) and throughput.
pass_result run_pass(serve::engine& engine,
                     const std::vector<std::string>& lines) {
    const serve::memo_cache::stats before = engine.cache_stats();
    const double start = now_seconds();
    const std::vector<std::string> responses = engine.handle_batch(lines);
    const double seconds = now_seconds() - start;
    const serve::memo_cache::stats after = engine.cache_stats();
    pass_result r;
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t misses = after.misses - before.misses;
    if (hits + misses > 0) {
        r.hit_ratio = static_cast<double>(hits) /
                      static_cast<double>(hits + misses);
    }
    r.req_per_s = static_cast<double>(responses.size()) / seconds;
    return r;
}

/// Fill a standalone cache with `entries` synthetic key/value pairs
/// shaped like real memo entries (canonical-JSON key, response value).
void fill_cache(serve::memo_cache& cache, std::size_t entries) {
    for (std::size_t i = 0; i < entries; ++i) {
        const std::string key =
            R"({"lambda_um":)" + num(0.3 + 1e-6 * static_cast<double>(i)) +
            R"(,"op":"scenario1"})";
        const std::string value =
            R"({"id":null,"ok":true,"result":{"cost_per_yielded_cm2_usd":)" +
            num(10.0 + 1e-3 * static_cast<double>(i)) + "}}";
        cache.put(key, value);
    }
}

struct ladder_point {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    double write_seconds = 0.0;
    double restore_seconds = 0.0;
};

/// Snapshot write + restore latency for a cache of `entries` entries.
ladder_point measure_ladder(std::size_t entries, const std::string& path) {
    ladder_point p;
    const std::uint64_t fp = serve::snapshot::config_fingerprint(false);
    // Double the budget: per-shard capacity plus hash skew would
    // otherwise evict a few entries and skew the ladder's entry count.
    serve::memo_cache cache{entries * 2, 16};
    fill_cache(cache, entries);
    p.entries = cache.snapshot().entries;

    double start = now_seconds();
    const serve::snapshot::write_result w =
        serve::snapshot::write_file(cache, fp, path);
    p.write_seconds = now_seconds() - start;
    if (!w.ok) {
        std::fprintf(stderr, "ladder write failed: %s\n", w.error.c_str());
        std::exit(1);
    }
    p.bytes = w.bytes;

    serve::memo_cache fresh{entries * 2, 16};
    start = now_seconds();
    const serve::snapshot::restore_result r =
        serve::snapshot::restore_file(fresh, fp, path);
    p.restore_seconds = now_seconds() - start;
    if (r.outcome != serve::snapshot::restore_outcome::restored ||
        r.entries != p.entries) {
        std::fprintf(stderr, "ladder restore failed at %zu entries: %s\n",
                     entries, r.reason.c_str());
        std::exit(1);
    }
    std::remove(path.c_str());
    return p;
}

/// A snapshot cut off mid-file must restore as a clean cold start.
bool truncated_restore_is_cold(const std::string& path) {
    const std::uint64_t fp = serve::snapshot::config_fingerprint(false);
    serve::memo_cache cache{256, 4};
    fill_cache(cache, 64);
    const serve::snapshot::write_result w =
        serve::snapshot::write_file(cache, fp, path);
    if (!w.ok) {
        return false;
    }
    std::string image;
    {
        std::ifstream in{path, std::ios::binary};
        image.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out{path, std::ios::binary | std::ios::trunc};
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size() / 2));
    }
    serve::memo_cache fresh{256, 4};
    const serve::snapshot::restore_result r =
        serve::snapshot::restore_file(fresh, fp, path);
    std::remove(path.c_str());
    return r.outcome == serve::snapshot::restore_outcome::cold_corrupt &&
           fresh.snapshot().entries == 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : "BENCH_warmstart.json";
    const bool tiny = tiny_mode();
    const std::size_t distinct = tiny ? 256 : 2048;
    const std::size_t repeat = 3;
    constexpr double kMinRestoredRatio = 0.90;
    const std::string scratch = "bench_warmstart_" +
                                std::to_string(::getpid()) + ".snap";

    const std::vector<std::string> lines = make_requests(distinct, repeat);

    // Pre-restart steady state: cold fill, then a fully warm pass.
    serve::engine warm_engine{{.parallelism = 0}};
    (void)warm_engine.handle_batch(lines);
    const pass_result warm = run_pass(warm_engine, lines);

    // Snapshot the warm cache (the shutdown write a real restart takes).
    const serve::snapshot::write_result w =
        warm_engine.snapshot_write(scratch);
    if (!w.ok) {
        std::fprintf(stderr, "snapshot write failed: %s\n", w.error.c_str());
        return 1;
    }
    const serve::engine::snapshot_stats ws = warm_engine.snapshot_info();

    // Restart: a fresh engine restores the snapshot, then serves the
    // same corpus.  Its first pass is the number the gate protects.
    serve::engine restored_engine{{.parallelism = 0}};
    const serve::snapshot::restore_result r =
        restored_engine.snapshot_restore(scratch);
    if (r.outcome != serve::snapshot::restore_outcome::restored) {
        std::fprintf(stderr, "snapshot restore failed: %s\n",
                     r.reason.c_str());
        return 1;
    }
    const serve::engine::snapshot_stats rs = restored_engine.snapshot_info();
    const pass_result restored = run_pass(restored_engine, lines);
    std::remove(scratch.c_str());

    // The restart without a snapshot: a fully cold first pass.
    serve::engine cold_engine{{.parallelism = 0}};
    const pass_result cold = run_pass(cold_engine, lines);

    // Snapshot latency ladder at representative cache populations.
    std::vector<std::size_t> sizes =
        tiny ? std::vector<std::size_t>{256, 1024}
             : std::vector<std::size_t>{256, 4096, 65536};
    std::vector<ladder_point> ladder;
    ladder.reserve(sizes.size());
    for (const std::size_t entries : sizes) {
        ladder.push_back(measure_ladder(entries, scratch));
    }

    const bool truncated_cold = truncated_restore_is_cold(scratch);
    const double ratio_vs_warm =
        warm.hit_ratio > 0.0 ? restored.hit_ratio / warm.hit_ratio : 0.0;
    const bool ratio_ok = ratio_vs_warm >= kMinRestoredRatio;

    std::printf("bench_warmstart (%zu requests, %zu distinct keys)\n",
                lines.size(), distinct);
    std::printf("  %-18s hit ratio %6.4f   %12.0f req/s\n", "warm",
                warm.hit_ratio, warm.req_per_s);
    std::printf("  %-18s hit ratio %6.4f   %12.0f req/s  (%.3fx warm ratio)\n",
                "snapshot-restored", restored.hit_ratio, restored.req_per_s,
                ratio_vs_warm);
    std::printf("  %-18s hit ratio %6.4f   %12.0f req/s\n", "cold",
                cold.hit_ratio, cold.req_per_s);
    std::printf("  snapshot: %llu entries, %llu bytes, write %.3f ms, "
                "restore %.3f ms\n",
                static_cast<unsigned long long>(w.entries),
                static_cast<unsigned long long>(w.bytes),
                ws.last_write_seconds * 1e3, rs.last_restore_seconds * 1e3);
    for (const ladder_point& p : ladder) {
        std::printf("  ladder %6zu entries: %9llu bytes, write %8.3f ms, "
                    "restore %8.3f ms\n",
                    p.entries, static_cast<unsigned long long>(p.bytes),
                    p.write_seconds * 1e3, p.restore_seconds * 1e3);
    }

    json::object doc;
    doc.set("bench", json::value{std::string{"bench_warmstart"}});
    doc.set("tiny", json::value{tiny});
    json::object ws_obj;
    ws_obj.set("requests", json::value{static_cast<double>(lines.size())});
    ws_obj.set("distinct_keys", json::value{static_cast<double>(distinct)});
    ws_obj.set("warm_hit_ratio", json::value{warm.hit_ratio});
    ws_obj.set("warm_req_per_s", json::value{warm.req_per_s});
    ws_obj.set("restored_hit_ratio", json::value{restored.hit_ratio});
    ws_obj.set("restored_req_per_s", json::value{restored.req_per_s});
    ws_obj.set("cold_hit_ratio", json::value{cold.hit_ratio});
    ws_obj.set("cold_req_per_s", json::value{cold.req_per_s});
    ws_obj.set("restored_ratio_vs_warm", json::value{ratio_vs_warm});
    ws_obj.set("min_restored_ratio_vs_warm", json::value{kMinRestoredRatio});
    ws_obj.set("snapshot_entries",
               json::value{static_cast<double>(w.entries)});
    ws_obj.set("snapshot_bytes", json::value{static_cast<double>(w.bytes)});
    ws_obj.set("snapshot_write_seconds",
               json::value{ws.last_write_seconds});
    ws_obj.set("snapshot_restore_seconds",
               json::value{rs.last_restore_seconds});
    ws_obj.set("truncated_restore_cold", json::value{truncated_cold});
    json::array ladder_arr;
    for (const ladder_point& p : ladder) {
        json::object lp;
        lp.set("entries", json::value{static_cast<double>(p.entries)});
        lp.set("bytes", json::value{static_cast<double>(p.bytes)});
        lp.set("write_seconds", json::value{p.write_seconds});
        lp.set("restore_seconds", json::value{p.restore_seconds});
        ladder_arr.push_back(json::value{std::move(lp)});
    }
    ws_obj.set("ladder", json::value{std::move(ladder_arr)});
    doc.set("warmstart", json::value{std::move(ws_obj)});
    json::object gate;
    // The hit-ratio and truncation checks are deterministic, so the
    // gate is never skipped — tiny mode only shrinks the corpus.
    gate.set("skipped", json::value{false});
    gate.set("pass", json::value{ratio_ok && truncated_cold});
    doc.set("gate", json::value{std::move(gate)});

    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    if (!truncated_cold) {
        std::printf("FAIL: truncated snapshot did not restore as a clean "
                    "cold start\n");
        return 1;
    }
    if (!ratio_ok) {
        std::printf("FAIL: restored hit ratio %.4f is %.3fx warm, "
                    "want >= %.2fx\n",
                    restored.hit_ratio, ratio_vs_warm, kMinRestoredRatio);
        return 1;
    }
    std::printf("OK: snapshot restore preserves >= %.0f%% of the warm hit "
                "ratio\n", kMinRestoredRatio * 100.0);
    return 0;
}
