// bench_ablate_yield — ablation A2: how would Table 3 change under
// different yield statistics?  Sweeps the classic model family (Poisson,
// Murphy, Seeds, Bose-Einstein, negative binomial) over expected fault
// counts and re-prices a Table-3-class die under each.

#include "analysis/ascii_chart.hpp"
#include "analysis/sweep.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "yield/models.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A2 - classic yield model family");

    const auto family = yield::standard_model_family();

    analysis::text_table table;
    table.add_column("A*D0 (faults/die)", analysis::align::right, 2);
    for (const auto& model : family) {
        table.add_column(model->name(), analysis::align::right, 4);
    }
    std::vector<analysis::series> curves;
    for (const auto& model : family) {
        curves.emplace_back(model->name());
    }
    for (double l : {0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0}) {
        table.begin_row();
        table.add_number(l);
        for (std::size_t i = 0; i < family.size(); ++i) {
            const double y = family[i]->yield(l).value();
            table.add_number(y);
            curves[i].add(l, y);
        }
    }
    std::cout << table.to_string() << "\n";

    // Re-price the Table 3 row 1 die (2.976 cm^2, Y_0 = 0.9 per cm^2
    // equivalent D0 = 0.105/cm^2) under each model.
    const double d0 = -std::log(0.9);
    const double area = 2.976;
    const double wafer_cost = 980.0;
    const double dies = 46.0;
    const double transistors = 3.1e6;
    analysis::text_table cost_table;
    cost_table.add_column("model", analysis::align::left);
    cost_table.add_column("Y(2.976 cm^2)", analysis::align::right, 4);
    cost_table.add_column("C_tr [u$/tr]", analysis::align::right, 2);
    for (const auto& model : family) {
        const double y = model->yield(area * d0).value();
        cost_table.begin_row();
        cost_table.add_cell(model->name());
        cost_table.add_number(y);
        cost_table.add_number(wafer_cost / (dies * transistors * y) * 1e6);
    }
    std::cout << cost_table.to_string() << "\n";
    std::cout << "finding: at Table-3 fault counts (~0.3/die) the model "
                 "choice moves C_tr by <10%;\nfor cm^2-class dies at high "
                 "defect densities (3+ faults) clustered models halve the\n"
                 "apparent cost vs Poisson -- the reason yield-model choice "
                 "matters for big-die pricing.\n\n";

    analysis::ascii_chart_options options;
    options.title = "yield vs expected faults per die";
    options.x_label = "A * D0";
    std::cout << analysis::render_ascii_chart(curves, options);

    analysis::svg_chart_options svg;
    svg.title = "Yield model family comparison";
    svg.x_label = "expected faults per die";
    svg.y_label = "yield";
    bench::save_svg("ablate_yield_models.svg",
                    analysis::render_svg_line_chart(curves, svg));
    return 0;
}
