// bench_table3_cost — reproduces Table 3, the paper's central exhibit:
// cost per transistor for 17 product/manufacturing scenarios, computed
// with the Eq. (1)+(3)+(4)+yield model and compared row by row against
// the printed values.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/table3.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Table 3 - cost per transistor across 17 scenarios");

    analysis::text_table table;
    table.add_column("#");
    table.add_column("IC type", analysis::align::left);
    table.add_column("# tr", analysis::align::right, 0);
    table.add_column("lam", analysis::align::right, 2);
    table.add_column("d_d", analysis::align::right, 0);
    table.add_column("R_w", analysis::align::right, 1);
    table.add_column("Y0", analysis::align::right, 1);
    table.add_column("C0", analysis::align::right, 0);
    table.add_column("X", analysis::align::right, 1);
    table.add_column("N_ch");
    table.add_column("Y", analysis::align::right, 3);
    table.add_column("paper C_tr", analysis::align::right, 2);
    table.add_column("model C_tr", analysis::align::right, 2);
    table.add_column("ratio", analysis::align::right, 3);

    for (const core::table3_comparison& c : core::reproduce_table3()) {
        table.begin_row();
        table.add_cell(std::to_string(c.row.index) +
                       (c.row.reconstructed ? "*" : ""));
        table.add_cell(c.row.ic_type);
        table.add_number(c.row.transistors);
        table.add_number(c.row.lambda_um);
        table.add_number(c.row.design_density);
        table.add_number(c.row.wafer_radius_cm);
        table.add_number(c.row.y0);
        table.add_number(c.row.c0_usd);
        table.add_number(c.row.x);
        table.add_integer(c.computed.gross_dies_per_wafer);
        table.add_number(c.computed.yield.value());
        table.add_number(c.row.printed_ctr_micro);
        table.add_number(c.computed_ctr_micro);
        table.add_number(c.ratio);
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "C_tr in micro-dollars per functioning transistor.\n"
           "* = the paper's N_tr column is illegible in the source scan; "
           "the value used is reconstructed (see EXPERIMENTS.md).\n\n"
           "memory/logic separation: cheapest logic row costs "
        << core::memory_logic_separation()
        << "x the most expensive memory row (paper Sec. IV.C: memory is\n"
           "\"very different and much lower than for all other IC "
           "types\").\n";
    return 0;
}
