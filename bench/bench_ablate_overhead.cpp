// bench_ablate_overhead — ablation A8: the Eq. (2) volume/overhead term.
// "The reported numbers may vary between $100K for ASIC products up to
// $100M [14] for microprocessors" (Sec. III.A.a).  Sweeps production
// volume for both overhead classes and shows where amortized overhead
// stops dominating the pure manufacturing cost — the economics that
// separate commodity parts from low-volume ASICs.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/cost_model.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A8 - overhead amortization vs volume (Eq. 2)");

    core::process_spec process{
        cost::wafer_cost_model{dollars{800.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
    const core::cost_model model{process};
    core::product_spec product;
    product.name = "1.5M-transistor part";
    product.transistors = 1.5e6;
    product.design_density = 180.0;
    product.feature_size = microns{0.65};

    analysis::text_table table;
    table.add_column("volume [wafers]", analysis::align::right, 0);
    table.add_column("ASIC ($100K) C_w", analysis::align::right, 0);
    table.add_column("ASIC C_tr [u$]", analysis::align::right, 2);
    table.add_column("uP ($100M) C_w", analysis::align::right, 0);
    table.add_column("uP C_tr [u$]", analysis::align::right, 2);

    analysis::series asic{"ASIC ($100K overhead)"};
    analysis::series up{"uP ($100M overhead)"};
    for (double volume : {100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0,
                          100000.0, 300000.0}) {
        core::economics_spec asic_econ;
        asic_econ.overhead = dollars{100e3};
        asic_econ.volume_wafers = volume;
        core::economics_spec up_econ;
        up_econ.overhead = dollars{100e6};
        up_econ.volume_wafers = volume;

        const core::cost_breakdown a = model.evaluate(product, asic_econ);
        const core::cost_breakdown u = model.evaluate(product, up_econ);
        table.begin_row();
        table.add_number(volume);
        table.add_number(a.wafer_cost.value());
        table.add_number(a.cost_per_transistor_micro_dollars());
        table.add_number(u.wafer_cost.value());
        table.add_number(u.cost_per_transistor_micro_dollars());
        asic.add(volume, a.cost_per_transistor_micro_dollars());
        up.add(volume, u.cost_per_transistor_micro_dollars());
    }
    std::cout << table.to_string() << "\n";

    // Break-even: volume at which overhead equals the pure wafer cost.
    const double pure =
        process.wafer_cost.pure_wafer_cost(product.feature_size).value();
    std::cout << "pure wafer cost C'_w: $" << pure << "\n";
    std::cout << "overhead = pure cost at " << 100e3 / pure
              << " wafers (ASIC) / " << 100e6 / pure << " wafers (uP)\n\n";
    std::cout << "finding: a $100M development bill needs ~10^4-10^5 "
                 "wafers before the silicon, not the\nR&D, dominates -- "
                 "why \"all other IC including some uPs will be "
                 "manufactured less\nefficiently\" (criticism of "
                 "assumption S.1.4).\n\n";

    analysis::ascii_chart_options options;
    options.title = "C_tr [u$] vs production volume (log-log)";
    options.x_scale = analysis::scale::log10;
    options.y_scale = analysis::scale::log10;
    options.x_label = "wafers over the product lifetime";
    std::cout << analysis::render_ascii_chart({asic, up}, options);

    analysis::svg_chart_options svg;
    svg.title = "Overhead amortization (Eq. 2)";
    svg.x_label = "volume [wafers]";
    svg.y_label = "C_tr [micro-dollars]";
    svg.x_log = true;
    svg.y_log = true;
    bench::save_svg("ablate_overhead.svg",
                    analysis::render_svg_line_chart({asic, up}, svg));
    return 0;
}
