// bench_ablate_mc_yield — ablation A3: Monte-Carlo defect injection vs
// the closed-form critical-area yield.  Validates the analytical chain
// (Fig. 5 distribution -> critical area -> Poisson yield) that Eq. (7)
// compresses into D/lambda^p, across defect densities and geometry
// shrinks.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "yield/critical_area.hpp"
#include "yield/monte_carlo.hpp"

#include <chrono>
#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A3 - Monte-Carlo vs analytic yield");

    const yield::defect_size_distribution sizes{0.6, 4.07};

    analysis::text_table table;
    table.add_column("lambda scale", analysis::align::right, 2);
    table.add_column("D [def/um^2]", analysis::align::right, 6);
    table.add_column("analytic Y", analysis::align::right, 4);
    table.add_column("MC Y", analysis::align::right, 4);
    table.add_column("MC std err", analysis::align::right, 4);
    table.add_column("|diff|/sigma", analysis::align::right, 2);
    table.add_column("defects thrown");

    for (double scale : {1.0, 0.8, 0.6}) {
        yield::wire_array_layout layout;
        layout.line_width = 1.0 * scale;
        layout.line_spacing = 1.2 * scale;
        layout.line_length = 150.0;
        layout.line_count = 15;
        for (double density : {1e-4, 3e-4}) {
            yield::monte_carlo_config config;
            config.dies = 30000;
            config.defects_per_um2 = density;
            config.seed = 1234;
            const yield::monte_carlo_result mc =
                yield::simulate_layout_yield(layout, sizes, config);
            const double analytic =
                yield::layout_yield(layout, sizes, density);
            const double sigma = mc.std_error > 0.0 ? mc.std_error : 1e-9;
            table.begin_row();
            table.add_number(scale);
            table.add_number(density);
            table.add_number(analytic);
            table.add_number(mc.yield);
            table.add_number(mc.std_error);
            table.add_number(std::abs(mc.yield - analytic) / sigma);
            table.add_integer(static_cast<long>(mc.defects_thrown));
        }
    }
    std::cout << table.to_string() << "\n";
    std::cout << "finding: the closed-form average-critical-area yield "
                 "matches defect-injection\nsimulation within a few "
                 "binomial sigma across densities and geometry shrinks,\n"
                 "validating the analytical chain behind Eq. (7).\n\n";

    // Serial vs parallel throughput of the 100k-die run on the exec
    // engine — results are bit-identical by contract, so only the
    // wall-clock differs.
    bench::banner("Monte-Carlo throughput: serial vs parallel");
    yield::wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 150.0;
    layout.line_count = 15;
    yield::monte_carlo_config config;
    config.dies = 100000;
    config.defects_per_um2 = 3e-4;
    config.seed = 1234;

    const auto time_run = [&](unsigned parallelism) {
        config.parallelism = parallelism;
        const auto start = std::chrono::steady_clock::now();
        const yield::monte_carlo_result r =
            yield::simulate_layout_yield(layout, sizes, config);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        return std::pair<double, yield::monte_carlo_result>{seconds, r};
    };
    // Warm up the shared pool so thread spawn cost is not billed to the
    // first timed run.
    (void)time_run(0);

    const unsigned hw = silicon::exec::thread_pool::hardware_threads();
    analysis::text_table perf;
    perf.add_column("threads", analysis::align::right, 0);
    perf.add_column("time [s]", analysis::align::right, 4);
    perf.add_column("dies/s", analysis::align::right, 0);
    perf.add_column("speedup", analysis::align::right, 2);
    perf.add_column("yield", analysis::align::right, 6);

    const auto [serial_s, serial_r] = time_run(1);
    for (unsigned threads : {1u, 2u, 4u, 8u, hw}) {
        const auto [seconds, r] = time_run(threads);
        perf.begin_row();
        perf.add_integer(static_cast<long>(threads));
        perf.add_number(seconds);
        perf.add_number(static_cast<double>(config.dies) / seconds);
        perf.add_number(serial_s / seconds);
        perf.add_number(r.yield);
        if (r.good_dies != serial_r.good_dies ||
            r.defects_thrown != serial_r.defects_thrown) {
            std::cout << "ERROR: parallel run diverged from serial!\n";
            return 1;
        }
    }
    std::cout << perf.to_string() << "\n";
    std::cout << "finding: the chunk-sharded engine reproduces the serial "
                 "counters bit-for-bit at\nevery thread count (hardware "
                 "reports "
              << hw << " thread(s) here); speedup scales with\nphysical "
                 "cores available to the process.\n";
    return 0;
}
