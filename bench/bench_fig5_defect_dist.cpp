// bench_fig5_defect_dist — reproduces Fig. 5: the defect size
// distribution, rising to R_0 and decaying as 1/R^p above it, for the
// paper's p range (4-5) plus the classic p = 3 for contrast, and shows
// the consequence the figure is there to make: shrinking the feature size
// rapidly increases the share of defects large enough to cause faults.

#include "analysis/ascii_chart.hpp"
#include "analysis/sweep.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "yield/defect.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 5 - defect size distribution");

    const double r0 = 0.5;  // um
    std::vector<analysis::series> curves;
    for (double p : {3.0, 4.07, 5.0}) {
        const yield::defect_size_distribution d{r0, p};
        curves.push_back(analysis::sweep(
            "p = " + analysis::format_number(p, 2),
            analysis::linspace(0.02, 4.0, 200),
            [&](double r) { return d.pdf(r); }));
    }

    analysis::ascii_chart_options options;
    options.title = "Fig. 5: defect size pdf f(R), R_0 = 0.5 um";
    options.x_label = "defect radius R [um]";
    std::cout << analysis::render_ascii_chart(curves, options) << "\n";

    // The figure's point: P(defect larger than the spacing it can short)
    // explodes as geometry shrinks.
    analysis::text_table table;
    table.add_column("spacing s [um]", analysis::align::right, 2);
    table.add_column("P(R > s/2), p=4.07", analysis::align::right, 5);
    table.add_column("relative to s=2.0", analysis::align::right, 1);
    const yield::defect_size_distribution d{r0, 4.07};
    const double base = d.survival(1.0);
    for (double s : {2.0, 1.6, 1.2, 1.0, 0.8, 0.5, 0.35, 0.25}) {
        table.begin_row();
        table.add_number(s);
        table.add_number(d.survival(s / 2.0));
        table.add_number(d.survival(s / 2.0) / base);
    }
    std::cout << table.to_string() << "\n";
    std::cout << "mean defect radius (p=4.07): " << d.mean()
              << " um; tail mass above R_0: " << d.tail_mass() << "\n";

    analysis::svg_chart_options svg;
    svg.title = "Fig. 5 reproduction: defect size distribution";
    svg.x_label = "defect radius [um]";
    svg.y_label = "probability density";
    bench::save_svg("fig5_defect_dist.svg",
                    analysis::render_svg_line_chart(curves, svg));
    return 0;
}
