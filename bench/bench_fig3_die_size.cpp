// bench_fig3_die_size — reproduces Fig. 3: die size growth per technology
// generation, and validates the analytical fit the paper extracts from it
// for Eq. (9): A_ch(lambda) = 16.5 * exp(-5.3 * lambda) [cm^2].

#include "analysis/ascii_chart.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "tech/roadmap.hpp"

#include <cmath>
#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 3 - die size vs. feature size");

    analysis::text_table table;
    table.add_column("feature [um]", analysis::align::right, 2);
    table.add_column("uP die [mm^2]", analysis::align::right, 0);
    table.add_column("DRAM die [mm^2]", analysis::align::right, 0);
    table.add_column("paper fit [mm^2]", analysis::align::right, 0);

    analysis::series up{"uP die (roadmap)"};
    analysis::series dram{"DRAM die (roadmap)"};
    analysis::series fit{"16.5 exp(-5.3 lambda) [cm^2]"};
    std::vector<double> lambdas;
    std::vector<double> up_areas_cm2;
    for (const tech::technology_generation& g : tech::standard_roadmap()) {
        const double paper_fit_mm2 =
            tech::microprocessor_die_area(microns{g.feature_um})
                .to_square_millimeters()
                .value();
        table.begin_row();
        table.add_number(g.feature_um);
        table.add_number(g.microprocessor_die_mm2);
        table.add_number(g.dram_die_mm2);
        table.add_number(paper_fit_mm2);
        up.add(g.feature_um, g.microprocessor_die_mm2);
        dram.add(g.feature_um, g.dram_die_mm2);
        fit.add(g.feature_um, paper_fit_mm2);
        if (g.feature_um <= 1.2) {  // the fit targets the sub-micron era
            lambdas.push_back(g.feature_um);
            up_areas_cm2.push_back(g.microprocessor_die_mm2 / 100.0);
        }
    }
    std::cout << table.to_string() << "\n";

    // Refit the exponential on the roadmap's sub-micron uP column and
    // compare with the paper's coefficients.
    const analysis::linear_fit refit =
        analysis::fit_exponential(lambdas, up_areas_cm2);
    std::cout << "roadmap refit: A_ch(lambda) = " << std::exp(refit.intercept)
              << " * exp(" << refit.slope
              << " * lambda) cm^2   (paper: 16.5 * exp(-5.3 lambda))\n\n";

    analysis::ascii_chart_options options;
    options.title = "Fig. 3: die size [mm^2] vs feature size [um]";
    options.y_scale = analysis::scale::log10;
    options.x_label = "minimum feature size [um]";
    std::cout << analysis::render_ascii_chart({up, dram, fit}, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 3 reproduction: die size vs feature size";
    svg.x_label = "minimum feature size [um]";
    svg.y_label = "die area [mm^2]";
    svg.y_log = true;
    bench::save_svg("fig3_die_size.svg",
                    analysis::render_svg_line_chart({up, dram, fit}, svg));
    return 0;
}
