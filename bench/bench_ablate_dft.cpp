// bench_ablate_dft — ablation A10 (Sec. VI): the DFT/BIST business case.
// Prices the full consequence of investing die area in testability:
// silicon up (bigger die, lower yield), tester time and field escapes
// down.  Sweeps the area overhead and the field cost per escape; the
// optimum overhead moving with escape cost is the "adequate procedure
// which quantifies the benefit" the paper says is missing.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/dft_case.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A10 - DFT/BIST area-vs-test-vs-escape trade");

    const core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
    core::product_spec product;
    product.name = "1.5M-transistor ASIC";
    product.transistors = 1.5e6;
    product.design_density = 200.0;
    product.feature_size = microns{0.65};

    cost::tester_spec tester;
    tester.rate_per_hour = dollars{1800.0};
    cost::test_program program;
    program.transistors = product.transistors;
    program.fault_coverage = 0.90;
    program.vectors_per_kilotransistor = 4.0;

    // Detailed sweep at one escape cost.
    const core::dft_case_result detail = core::evaluate_dft_case(
        process, product, tester, program, dollars{500.0});
    analysis::text_table table;
    table.add_column("overhead", analysis::align::right, 2);
    table.add_column("coverage", analysis::align::right, 4);
    table.add_column("compress", analysis::align::right, 1);
    table.add_column("silicon [$]", analysis::align::right, 2);
    table.add_column("test [$]", analysis::align::right, 2);
    table.add_column("escapes [$]", analysis::align::right, 2);
    table.add_column("total [$]", analysis::align::right, 2);
    table.add_column("DL [ppm]", analysis::align::right, 0);
    for (std::size_t i = 0; i < detail.sweep.size(); i += 2) {
        const core::dft_point& p = detail.sweep[i];
        table.begin_row();
        table.add_number(p.area_overhead);
        table.add_number(p.coverage);
        table.add_number(p.compression);
        table.add_number(p.silicon_per_good_die.value());
        table.add_number(p.test_per_shipped_die.value());
        table.add_number(p.escape_cost.value());
        table.add_number(p.total_per_shipped_die.value());
        table.add_number(p.shipped_defect_level.value() * 1e6);
    }
    std::cout << table.to_string() << "\n";
    std::cout << "field cost $500/escape: optimal overhead "
              << detail.best.area_overhead * 100.0 << "% saves "
              << detail.saving_fraction * 100.0
              << "% of total cost per shipped die\n\n";

    // Optimum vs escape cost.
    analysis::text_table optima;
    optima.add_column("field $/escape", analysis::align::right, 0);
    optima.add_column("best overhead", analysis::align::right, 2);
    optima.add_column("saving", analysis::align::right, 3);
    optima.add_column("shipped DL [ppm]", analysis::align::right, 0);
    for (double field : {0.0, 50.0, 200.0, 500.0, 2000.0, 10000.0}) {
        const core::dft_case_result r = core::evaluate_dft_case(
            process, product, tester, program, dollars{field});
        optima.begin_row();
        optima.add_number(field);
        optima.add_number(r.best.area_overhead);
        optima.add_number(r.saving_fraction);
        optima.add_number(r.best.shipped_defect_level.value() * 1e6);
    }
    std::cout << optima.to_string() << "\n";
    std::cout << "finding: the optimal DFT area investment is 0 when "
                 "escapes are free and grows with the\nfield cost of an "
                 "escape -- quantifying Sec. VI's missing procedure for "
                 "\"the benefit ...\nwhich any BIST or DFT technique "
                 "would provide in return.\"\n";
    return 0;
}
