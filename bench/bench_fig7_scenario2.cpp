// bench_fig7_scenario2 — reproduces Fig. 7: cost per transistor under the
// realistic Scenario #2 (custom uP, X = 1.8-2.4, die growing along the
// Fig. 3 trend, Y_0 = 70% per cm^2) with C_0 = $500, d_d = 200,
// R_w = 7.5 cm.  The paper's headline: C_tr *rises* as features shrink.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 7 - C_tr under Scenario #2 (X = 1.8, 2.1, 2.4)");

    const std::vector<double> xs = {1.8, 2.1, 2.4};
    std::vector<core::scenario2> scenarios;
    for (double x : xs) {
        core::scenario2 s;
        s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, x};
        scenarios.push_back(s);
    }

    analysis::text_table table;
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("die [cm^2]", analysis::align::right, 2);
    table.add_column("Y", analysis::align::right, 3);
    table.add_column("X=1.8 [u$/tr]", analysis::align::right, 2);
    table.add_column("X=2.1 [u$/tr]", analysis::align::right, 2);
    table.add_column("X=2.4 [u$/tr]", analysis::align::right, 2);

    std::vector<analysis::series> curves = {
        analysis::series{"X = 1.8"}, analysis::series{"X = 2.1"},
        analysis::series{"X = 2.4"}};
    for (double lambda = 0.9; lambda >= 0.249; lambda -= 0.05) {
        table.begin_row();
        table.add_number(lambda);
        table.add_number(scenarios[0].die_area(microns{lambda}).value());
        table.add_number(
            scenarios[0]
                .yield.yield(scenarios[0].die_area(microns{lambda}))
                .value());
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const double micro =
                scenarios[i].cost_per_transistor(microns{lambda}).value() *
                1e6;
            table.add_number(micro);
            curves[i].add(lambda, micro);
        }
    }
    std::cout << table.to_string() << "\n";

    for (const analysis::series& curve : curves) {
        const double rise = curve.points().back().y /
                            curve.points().front().y;
        std::cout << curve.name()
                  << ": C_tr(0.25 um) / C_tr(0.9 um) = " << rise
                  << " (rises as lambda shrinks: "
                  << (rise > 1.0 ? "YES" : "NO") << ")\n";
    }
    std::cout << "\npaper claim reproduced: \"A decrease in the feature "
                 "size causes an increase in the transistor cost!\"\n\n";

    analysis::ascii_chart_options options;
    options.title = "Fig. 7: C_tr [micro-$] vs lambda, Scenario #2";
    options.x_label = "minimum feature size [um]";
    options.y_scale = analysis::scale::log10;
    std::cout << analysis::render_ascii_chart(curves, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 7 reproduction: Scenario #2 cost per transistor";
    svg.x_label = "minimum feature size [um]";
    svg.y_label = "C_tr [micro-dollars]";
    svg.y_log = true;
    bench::save_svg("fig7_scenario2.svg",
                    analysis::render_svg_line_chart(curves, svg));
    return 0;
}
