// bench_ablate_extraction — ablation A7: recover the Fig. 8 calibration.
// The paper's D = 1.72, p = 4.07 were "extracted from a real
// manufacturing operation" [26]; here we run the extraction procedure on
// synthetic fab data (yields generated from the ground truth, with and
// without measurement noise) and report how well (D, p) come back.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "yield/defect.hpp"
#include "yield/extraction.hpp"
#include "yield/scaled.hpp"

#include <cmath>
#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A7 - extracting (D, p) from yield data");

    const yield::scaled_poisson_model truth =
        yield::scaled_poisson_model::fig8_calibration();
    const std::vector<double> lambdas = {1.0, 0.8, 0.65, 0.5, 0.35, 0.25};

    analysis::text_table data;
    data.add_column("lambda [um]", analysis::align::right, 2);
    data.add_column("die [cm^2]", analysis::align::right, 2);
    data.add_column("true Y", analysis::align::right, 4);
    data.add_column("noisy Y (lot of 500)", analysis::align::right, 4);

    std::vector<yield::yield_observation> clean;
    std::vector<yield::yield_observation> noisy;
    yield::splitmix64 rng{314159};
    for (double lambda : lambdas) {
        yield::yield_observation obs;
        obs.lambda = microns{lambda};
        obs.die_area = square_centimeters{0.05};
        obs.yield = truth.yield(obs.die_area, obs.lambda);
        clean.push_back(obs);

        // Sampling noise of a 500-die lot (binomial).
        const std::size_t lot = 500;
        std::size_t passed = 0;
        for (std::size_t i = 0; i < lot; ++i) {
            if (rng.next_double() < obs.yield.value()) {
                ++passed;
            }
        }
        yield::yield_observation noisy_obs = obs;
        noisy_obs.yield = probability{
            std::clamp(static_cast<double>(passed) / lot, 1e-4,
                       1.0 - 1e-4)};
        noisy.push_back(noisy_obs);

        data.begin_row();
        data.add_number(lambda);
        data.add_number(obs.die_area.value());
        data.add_number(obs.yield.value());
        data.add_number(noisy_obs.yield.value());
    }
    std::cout << data.to_string() << "\n";

    analysis::text_table fits;
    fits.add_column("dataset", analysis::align::left);
    fits.add_column("D", analysis::align::right, 4);
    fits.add_column("p", analysis::align::right, 4);
    fits.add_column("R^2", analysis::align::right, 5);
    const yield::scaled_model_fit clean_fit =
        yield::fit_scaled_poisson(clean);
    const yield::scaled_model_fit noisy_fit =
        yield::fit_scaled_poisson(noisy);
    fits.begin_row();
    fits.add_cell("ground truth");
    fits.add_number(1.72);
    fits.add_number(4.07);
    fits.add_cell("-");
    fits.begin_row();
    fits.add_cell("clean extraction");
    fits.add_number(clean_fit.d);
    fits.add_number(clean_fit.p);
    fits.add_number(clean_fit.r_squared);
    fits.begin_row();
    fits.add_cell("noisy extraction");
    fits.add_number(noisy_fit.d);
    fits.add_number(noisy_fit.p);
    fits.add_number(noisy_fit.r_squared);
    std::cout << fits.to_string() << "\n";
    std::cout << "finding: the log-log extraction behind the paper's "
                 "\"D = 1.72 and p = 4.07 ... extracted from a real\n"
                 "manufacturing operation\" is exact on clean data and "
                 "stays within a few percent under lot-level\nsampling "
                 "noise -- the paper's calibration procedure is sound and "
                 "practical.\n";
    return 0;
}
