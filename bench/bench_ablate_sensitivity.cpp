// bench_ablate_sensitivity — ablation A11: ranked cost drivers.
// Section III promises to "demonstrate the complexity of the IC
// manufacturing cost problem"; this bench ranks the elasticities
// d ln C_tr / d ln theta of every model input for a microprocessor and a
// DRAM, showing that different product classes are steered by different
// knobs — the quantitative backbone of Sec. IV.D's warning against
// extrapolating memory economics.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/cost_drivers.hpp"

#include <iostream>

namespace {

using namespace silicon;

void report(const std::string& title, const core::process_spec& process,
            const core::product_spec& product) {
    const core::cost_driver_report r =
        core::analyze_cost_drivers(process, product);
    std::cout << title << " (nominal C_tr = "
              << r.nominal.cost_per_transistor_micro_dollars()
              << " u$/tr):\n";
    analysis::text_table table;
    table.add_column("driver", analysis::align::left);
    table.add_column("nominal", analysis::align::right, 3);
    table.add_column("elasticity", analysis::align::right, 3);
    table.add_column("1% change moves C_tr by", analysis::align::right, 3);
    for (const opt::elasticity& e : r.drivers) {
        table.begin_row();
        table.add_cell(e.name);
        table.add_number(e.nominal);
        table.add_number(e.value);
        table.add_cell(analysis::format_number(e.value, 2) + " %");
    }
    std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
    using namespace silicon;
    bench::banner("Ablation A11 - ranked transistor-cost drivers");

    // Microprocessor: big die, mediocre yield (Table 3 row 2 flavor).
    core::process_spec up_process{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
    core::product_spec up;
    up.name = "uP";
    up.transistors = 3.1e6;
    up.design_density = 150.0;
    up.feature_size = microns{0.8};
    report("microprocessor, 0.8 um, 297 mm^2", up_process, up);

    // DRAM: dense, high effective yield (Table 3 row 12 flavor).
    core::process_spec dram_process{
        cost::wafer_cost_model{dollars{400.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.9}},
        geometry::gross_die_method::maly_rows};
    core::product_spec dram;
    dram.name = "DRAM";
    dram.transistors = 4.1e6;
    dram.design_density = 35.0;
    dram.feature_size = microns{0.6};
    report("DRAM, 0.6 um, 52 mm^2", dram_process, dram);

    std::cout
        << "finding: for the big uP die the yield reference Y_0 and the "
           "escalation rate X dominate\n(the die is deep into the "
           "exponential yield penalty); for the small high-yield DRAM "
           "the\ncost is driven almost entirely by C_0 and wafer "
           "geometry.  Different products, different\nlevers -- Sec. "
           "IV.D's point made quantitative.\n";
    return 0;
}
