// bench_table2_densities — reproduces Table 2: design densities across
// the IC spectrum of [23,24], with per-category summaries backing the
// paper's memory-vs-logic cost argument.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "tech/density.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Table 2 - design densities for a spectrum of ICs");

    analysis::text_table table;
    table.add_column("Type of IC", analysis::align::left);
    table.add_column("F. size [um]", analysis::align::right, 2);
    table.add_column("d_d [l^2/tr]", analysis::align::right, 2);
    table.add_column("category", analysis::align::left);

    for (const tech::ic_product& p : tech::table2_products()) {
        table.begin_row();
        table.add_cell(p.name);
        table.add_number(p.feature_um);
        table.add_number(p.printed_dd);
        table.add_cell(tech::to_string(p.category));
    }
    std::cout << table.to_string() << "\n";

    analysis::text_table summary;
    summary.add_column("category", analysis::align::left);
    summary.add_column("mean d_d", analysis::align::right, 1);
    for (const tech::ic_category c :
         {tech::ic_category::dram, tech::ic_category::sram,
          tech::ic_category::microprocessor,
          tech::ic_category::sea_of_gates, tech::ic_category::gate_array,
          tech::ic_category::pld}) {
        summary.begin_row();
        summary.add_cell(tech::to_string(c));
        summary.add_number(tech::mean_density(c));
    }
    std::cout << summary.to_string() << "\n";
    std::cout << "paper observation reproduced: \"the large difference "
                 "occurs between different designs\" -- DRAM cells pack\n"
                 "~20 lambda^2 per transistor while PLDs spend ~2600, a "
                 "factor of over 100 in silicon per function.\n";
    return 0;
}
