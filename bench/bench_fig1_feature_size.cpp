// bench_fig1_feature_size — reproduces Fig. 1: minimum feature size of
// production IC technology versus year, with the exponential trend fit.
//
// The paper plots survey data [1,6,7,8]; we regenerate the same trend
// from the roadmap substrate and report the fitted halving time.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "tech/roadmap.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 1 - minimum feature size vs. year");

    analysis::text_table table;
    table.add_column("year");
    table.add_column("DRAM", analysis::align::left);
    table.add_column("feature [um]", analysis::align::right, 2);
    table.add_column("trend fit [um]", analysis::align::right, 2);

    const tech::trend fit = tech::feature_size_trend();
    analysis::series data{"roadmap"};
    analysis::series fitted{"exponential fit"};
    for (const tech::technology_generation& g : tech::standard_roadmap()) {
        table.begin_row();
        table.add_integer(g.year);
        table.add_cell(g.dram_generation);
        table.add_number(g.feature_um);
        table.add_number(fit.at(g.year));
        data.add(g.year, g.feature_um);
        fitted.add(g.year, fit.at(g.year));
    }
    std::cout << table.to_string() << "\n";

    std::cout << "exponential fit: lambda(year) = " << fit.a
              << " um * exp(" << fit.b << " * (year - " << fit.year0
              << ")),  R^2 = " << fit.r_squared << "\n";
    std::cout << "feature size halves every " << fit.doubling_time_years()
              << " years (paper's Fig. 1 slope: ~6 years)\n\n";

    analysis::ascii_chart_options options;
    options.title = "Fig. 1: minimum feature size [um] vs year (log scale)";
    options.y_scale = analysis::scale::log10;
    options.x_label = "year";
    std::cout << analysis::render_ascii_chart({data, fitted}, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 1 reproduction: feature size vs year";
    svg.x_label = "year";
    svg.y_label = "minimum feature size [um]";
    svg.y_log = true;
    bench::save_svg("fig1_feature_size.svg",
                    analysis::render_svg_line_chart({data, fitted}, svg));
    return 0;
}
