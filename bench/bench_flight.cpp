// Flight-recorder overhead: what always-on request recording costs.
//
// Three measurements:
//
//   append          - ns per flight_recorder::append into a private
//                     ring (the fixed per-request cost: field copies
//                     plus one release store; no locks, no clock reads
//                     beyond what the serve path already takes)
//   serve baseline  - cache-warm serve throughput, recorder disabled
//   serve recording - the same pass with the recorder enabled,
//                     reported as a ratio for the record
//
// Gate: the measured per-append cost must be < 2% of the measured
// per-request time.  Projecting from the append microbench instead of
// diffing the two end-to-end runs keeps the gate meaningful: the
// append cost is deterministic, while back-to-back throughput runs
// jitter by more than 2% on a busy machine.  SILICON_BENCH_TINY=1
// shrinks the workload and skips the timing gate (the schema and the
// records-appended count are still checked).

#include "obs/flight.hpp"
#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace obs = silicon::obs;
namespace json = silicon::serve::json;

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

std::string num(double v) { return json::format_number(v); }

/// Cache-friendly mixed workload: cheap endpoints only, so the serve
/// envelope dominates and the append overhead is measured against the
/// path it actually taxes.  Every line carries a trace_id — the worst
/// case for record field copies.
std::vector<std::string> make_requests(std::size_t n) {
    std::vector<std::string> lines;
    lines.reserve(n);
    for (std::size_t i = 0; lines.size() < n; ++i) {
        const std::string trace =
            R"(,"trace_id":"bench-)" + std::to_string(i % 97) + "\"";
        const double lambda = 0.35 + 0.0001 * static_cast<double>(i);
        switch (i % 4) {
        case 0:
            lines.push_back(R"({"op":"scenario1","lambda_um":)" + num(lambda) +
                            trace + "}");
            break;
        case 1:
            lines.push_back(R"({"op":"scenario2","lambda_um":)" + num(lambda) +
                            trace + "}");
            break;
        case 2:
            lines.push_back(R"({"op":"yield","model":"murphy","die_area_cm2":)" +
                            num(0.5 + 0.0001 * static_cast<double>(i)) +
                            R"(,"defects_per_cm2":0.8)" + trace + "}");
            break;
        default:
            lines.push_back(R"({"op":"table3","row":)" + std::to_string(i % 6) +
                            trace + "}");
            break;
        }
    }
    return lines;
}

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// req/s for one warm batch pass.
double run_pass(silicon::serve::engine& engine,
                const std::vector<std::string>& lines) {
    const double start = now_seconds();
    const std::vector<std::string> responses = engine.handle_batch(lines);
    const double seconds = now_seconds() - start;
    return static_cast<double>(responses.size()) / seconds;
}

/// ns per flight_recorder::append (best of several tight-loop runs
/// against a private ring, so the shared instance's stats stay clean).
double append_cost_ns(std::uint64_t appends) {
    constexpr int kRuns = 5;
    obs::flight_recorder ring{1024};
    obs::flight_record rec;
    obs::assign_field(rec.endpoint, "scenario1");
    obs::assign_field(rec.id, "42");
    obs::assign_field(rec.trace, "bench-trace-id-1234567890");
    obs::assign_field(rec.code, "ok");
    rec.cache_hit = true;
    rec.total_us = 3;
    double best = 1e9;
    for (int r = 0; r < kRuns; ++r) {
        const double start = now_seconds();
        for (std::uint64_t i = 0; i < appends; ++i) {
            ring.append(rec);
        }
        const double seconds = now_seconds() - start;
        best = std::min(best, seconds * 1e9 / static_cast<double>(appends));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : "BENCH_flight.json";
    const bool tiny = tiny_mode();
    const std::size_t requests = tiny ? 2048 : 8192;
    const std::uint64_t appends = tiny ? 200'000 : 2'000'000;
    constexpr double kMaxOverhead = 0.02;

    const double append_ns = append_cost_ns(appends);

    obs::flight_recorder& flight = obs::flight_recorder::instance();
    flight.configure(obs::flight_recorder::default_capacity);
    flight.clear();

    const std::vector<std::string> lines = make_requests(requests);
    silicon::serve::engine engine{{.parallelism = 0}};
    flight.set_enabled(false);
    (void)engine.handle_batch(lines);  // cold pass: fill the cache

    double baseline_rps = 0.0;
    for (int i = 0; i < 3; ++i) {
        baseline_rps = std::max(baseline_rps, run_pass(engine, lines));
    }

    flight.set_enabled(true);
    double recording_rps = 0.0;
    for (int i = 0; i < 3; ++i) {
        recording_rps = std::max(recording_rps, run_pass(engine, lines));
    }
    flight.set_enabled(false);
    const obs::flight_recorder::stats stats = flight.snapshot();

    const double request_ns = 1e9 / baseline_rps;
    const double overhead = append_ns / request_ns;
    const double recording_ratio = recording_rps / baseline_rps;
    const bool overhead_ok = overhead < kMaxOverhead;

    std::printf("bench_flight (%zu warm mixed requests, all traced)\n",
                requests);
    std::printf("  %-26s %10.2f ns/append\n", "append", append_ns);
    std::printf("  %-26s %10.0f req/s  (%.0f ns/req)\n", "serve baseline",
                baseline_rps, request_ns);
    std::printf("  %-26s %10.0f req/s  (%.3fx baseline)\n", "serve recording",
                recording_rps, recording_ratio);
    std::printf("  %-26s %10.4f %%  (projected)\n", "recording overhead",
                overhead * 100.0);
    std::printf("  flight: %llu appended / %llu dropped / %zu threads\n",
                static_cast<unsigned long long>(stats.appended),
                static_cast<unsigned long long>(stats.dropped),
                stats.threads);

    json::object doc;
    doc.set("bench", json::value{std::string{"bench_flight"}});
    doc.set("tiny", json::value{tiny});
    json::object f;
    f.set("baseline_req_per_s", json::value{baseline_rps});
    f.set("recording_req_per_s", json::value{recording_rps});
    f.set("ns_per_request_baseline", json::value{request_ns});
    f.set("ns_per_append", json::value{append_ns});
    f.set("overhead_fraction", json::value{overhead});
    f.set("max_overhead_fraction", json::value{kMaxOverhead});
    f.set("records_appended", json::value{static_cast<double>(stats.appended)});
    doc.set("flight", json::value{std::move(f)});
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass", json::value{tiny || overhead_ok});
    doc.set("gate", json::value{std::move(gate)});

    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    if (stats.appended == 0) {
        std::printf("FAIL: recorder enabled but nothing was appended\n");
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, overhead gate skipped\n");
        return 0;
    }
    if (!overhead_ok) {
        std::printf("FAIL: append costs %.2f%% of request time, want < %.0f%%\n",
                    overhead * 100.0, kMaxOverhead * 100.0);
        return 1;
    }
    std::printf("OK: recording costs < %.0f%% of serve throughput\n",
                kMaxOverhead * 100.0);
    return 0;
}
