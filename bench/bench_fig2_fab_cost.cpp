// bench_fig2_fab_cost — reproduces Fig. 2: cost of a fabrication line and
// of a manufactured wafer versus year, plus the X-factor extraction the
// paper performs on these curves ("Value of X extracted from the data
// presented in Fig. 2 is between 1.2 - 1.4").

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "cost/wafer_cost.hpp"
#include "tech/process.hpp"
#include "tech/roadmap.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 2 - fabline and wafer cost vs. year");

    analysis::text_table table;
    table.add_column("year");
    table.add_column("feature [um]", analysis::align::right, 2);
    table.add_column("fab cost [M$]", analysis::align::right, 0);
    table.add_column("wafer cost [$]", analysis::align::right, 0);

    analysis::series fab{"fab cost [M$]"};
    analysis::series wafer{"wafer cost [$]"};
    for (const tech::technology_generation& g : tech::standard_roadmap()) {
        table.begin_row();
        table.add_integer(g.year);
        table.add_number(g.feature_um);
        table.add_number(g.fab_cost_musd);
        table.add_number(g.wafer_cost_usd);
        fab.add(g.year, g.fab_cost_musd);
        wafer.add(g.year, g.wafer_cost_usd);
    }
    std::cout << table.to_string() << "\n";

    const tech::trend fab_fit = tech::fab_cost_trend();
    std::cout << "fab cost doubles every " << fab_fit.doubling_time_years()
              << " years; reaches $1B around year "
              << static_cast<int>(
                     fab_fit.year0 +
                     std::log(1000.0 / fab_fit.a) / fab_fit.b)
              << " (paper Sec. I: \"soon to reach 1 billion dollars\")\n";

    // X extraction from the sub-micron span of the wafer-cost curve.
    const auto& roadmap = tech::standard_roadmap();
    const tech::technology_generation* a = nullptr;
    const tech::technology_generation* b = nullptr;
    for (const auto& g : roadmap) {
        if (g.feature_um == 0.8) a = &g;
        if (g.feature_um == 0.25) b = &g;
    }
    if (a != nullptr && b != nullptr) {
        const double x = cost::wafer_cost_model::extract_x(
            microns{a->feature_um}, dollars{a->wafer_cost_usd},
            microns{b->feature_um}, dollars{b->wafer_cost_usd});
        std::cout << "X extracted from wafer-cost curve (0.8 -> 0.25 um): "
                  << x << "  (paper: 1.2 - 1.4)\n";
    }
    std::cout << "quoted X calibration points (Sec. III.A.b):\n";
    for (const tech::x_calibration_point& q : tech::quoted_x_values()) {
        std::cout << "  " << q.source << ": " << q.x_low;
        if (q.x_high != q.x_low) {
            std::cout << " - " << q.x_high;
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    analysis::ascii_chart_options options;
    options.title = "Fig. 2: fab cost [M$] and wafer cost [$] (log scale)";
    options.y_scale = analysis::scale::log10;
    options.x_label = "year";
    std::cout << analysis::render_ascii_chart({fab, wafer}, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 2 reproduction: manufacturing cost trends";
    svg.x_label = "year";
    svg.y_label = "cost (fab M$, wafer $)";
    svg.y_log = true;
    bench::save_svg("fig2_fab_cost.svg",
                    analysis::render_svg_line_chart({fab, wafer}, svg));
    return 0;
}
