// bench_ablate_wafer_size — ablation A9: wafer size scaling
// (Sec. III.A.c and Table 3 rows 13/14).  "An increase in the wafer size
// is highly desirable from a productivity point of view.  The problem is
// that larger wafers are more difficult to process."  Generalizes the
// 256Mb DRAM rows: 6-inch vs 8-inch across die sizes and the yield hit
// the larger wafer takes during its learning period.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/cost_model.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A9 - 6-inch vs 8-inch wafers");

    const auto evaluate = [](const geometry::wafer& w, double y0,
                             double n_tr) {
        core::process_spec process{
            cost::wafer_cost_model{dollars{600.0}, 1.8},
            w, yield::reference_die_yield{probability{y0}},
            geometry::gross_die_method::maly_rows};
        core::product_spec product;
        product.name = "DRAM";
        product.transistors = n_tr;
        product.design_density = 29.0;
        product.feature_size = microns{0.25};
        return core::cost_model{process}.evaluate(product);
    };

    analysis::text_table table;
    table.add_column("N_tr", analysis::align::right, 0);
    table.add_column("die [mm^2]", analysis::align::right, 0);
    table.add_column("6\" N_ch");
    table.add_column("8\" N_ch");
    table.add_column("6\" C_tr @Y0=.9", analysis::align::right, 2);
    table.add_column("8\" C_tr @Y0=.9", analysis::align::right, 2);
    table.add_column("8\" C_tr @Y0=.7", analysis::align::right, 2);
    table.add_column("8\" wins at .9?", analysis::align::left);

    for (double n_tr : {64e6, 132e6, 264e6, 528e6}) {
        const auto six = evaluate(geometry::wafer::six_inch(), 0.9, n_tr);
        const auto eight_mature =
            evaluate(geometry::wafer::eight_inch(), 0.9, n_tr);
        const auto eight_ramp =
            evaluate(geometry::wafer::eight_inch(), 0.7, n_tr);
        table.begin_row();
        table.add_number(n_tr);
        table.add_number(six.die_area.value());
        table.add_integer(six.gross_dies_per_wafer);
        table.add_integer(eight_mature.gross_dies_per_wafer);
        table.add_number(six.cost_per_transistor_micro_dollars());
        table.add_number(
            eight_mature.cost_per_transistor_micro_dollars());
        table.add_number(eight_ramp.cost_per_transistor_micro_dollars());
        table.add_cell(eight_mature.cost_per_transistor.value() <
                               six.cost_per_transistor.value()
                           ? "yes"
                           : "no");
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "note: this bench charges both wafer sizes the same C_0 -- the "
           "cost premium of the larger\nwafer is assumed absorbed into X "
           "per the paper (\"We assume that any cost increase due to\nan "
           "increase in the wafer size is covered by the X factor\") -- "
           "so the mature-yield columns\nisolate the pure geometry gain "
           "(less edge waste for big dies), while the Y0=0.7 column\n"
           "shows Table 3's rows 13->14: during the ramp the 8-inch line "
           "costs 1.66x more per\ntransistor despite holding twice the "
           "dies.\n";
    return 0;
}
