// bench_forecast — the paper's question (a) in Sec. III, answered in
// calendar time: "determine whether transistor cost trends known from
// the past will continue into the future."  Composes the Fig. 1 feature
// size trend with Scenarios #1 and #2 and locates the logic-cost
// reversal year.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/forecast.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Forecast - cost per transistor vs calendar year");

    core::scenario1 memory;
    memory.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.2};
    core::scenario2 logic;
    logic.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 2.0};

    // X follows the paper's expectation: benign (1.3) through the 80s,
    // ramping to 2.2 across the early 90s.
    const core::x_schedule schedule;
    const core::transistor_cost_forecast f =
        core::forecast_transistor_cost(memory, logic, 1980, 2001,
                                       schedule);

    analysis::text_table table;
    table.add_column("year");
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("X", analysis::align::right, 2);
    table.add_column("memory C_tr [u$]", analysis::align::right, 3);
    table.add_column("logic C_tr [u$]", analysis::align::right, 2);
    analysis::series memory_curve{"memory (Scenario #1)"};
    analysis::series logic_curve{"logic (Scenario #2)"};
    for (const core::forecast_point& p : f.points) {
        if (p.year % 2 == 0) {
            table.begin_row();
            table.add_integer(p.year);
            table.add_number(p.lambda.value());
            table.add_number(schedule.at(p.year));
            table.add_number(p.memory_ctr.value() * 1e6);
            table.add_number(p.logic_ctr.value() * 1e6);
        }
        memory_curve.add(p.year, p.memory_ctr.value() * 1e6);
        logic_curve.add(p.year, p.logic_ctr.value() * 1e6);
    }
    std::cout << table.to_string() << "\n";

    std::cout << "memory C_tr CAGR: " << f.memory_cagr * 100.0
              << "% / year (keeps falling)\n";
    std::cout << "logic C_tr CAGR:  " << f.logic_cagr * 100.0
              << "% / year\n";
    if (f.logic_reversal_year.has_value()) {
        std::cout << "logic cost reversal year: " << *f.logic_reversal_year
                  << " -- the \"cost per transistor may no longer "
                     "decrease\" [10] moment, landing in the\nmid-90s "
                     "exactly when the paper (writing in 1994) warned it "
                     "would.\n";
    }
    std::cout << "\n";

    analysis::ascii_chart_options options;
    options.title = "C_tr [u$] vs year (log scale)";
    options.x_label = "year";
    options.y_scale = analysis::scale::log10;
    std::cout << analysis::render_ascii_chart(
        {memory_curve, logic_curve}, options);

    analysis::svg_chart_options svg;
    svg.title = "Transistor cost forecast (Scenarios #1 and #2 on the "
                "Fig. 1 timeline)";
    svg.x_label = "year";
    svg.y_label = "C_tr [micro-dollars]";
    svg.y_log = true;
    bench::save_svg("forecast.svg",
                    analysis::render_svg_line_chart(
                        {memory_curve, logic_curve}, svg));
    return 0;
}
