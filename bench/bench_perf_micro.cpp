// bench_perf_micro — google-benchmark microbenchmarks of the hot paths:
// model evaluation throughput matters because the optimizers and contour
// grids call them tens of thousands of times.

#include "analysis/contour.hpp"
#include "analysis/sweep.hpp"
#include "core/cost_model.hpp"
#include "core/table3.hpp"
#include "geometry/gross_die.hpp"
#include "yield/critical_area.hpp"
#include "yield/monte_carlo.hpp"
#include "yield/wafer_sim.hpp"
#include "opt/partition.hpp"
#include "opt/minimize.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

namespace {

using namespace silicon;

void bm_maly_row_count(benchmark::State& state) {
    const geometry::wafer w = geometry::wafer::six_inch();
    const geometry::die d = geometry::die::square(millimeters{10.0});
    for (auto _ : state) {
        benchmark::DoNotOptimize(geometry::maly_row_count(w, d));
    }
}
BENCHMARK(bm_maly_row_count);

void bm_exact_placement(benchmark::State& state) {
    const geometry::wafer w = geometry::wafer::six_inch();
    const geometry::die d = geometry::die::square(millimeters{10.0});
    for (auto _ : state) {
        benchmark::DoNotOptimize(geometry::exact_count(w, d).count);
    }
}
BENCHMARK(bm_exact_placement);

void bm_cost_model_evaluate(benchmark::State& state) {
    const core::process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const core::cost_model model{process};
    core::product_spec p;
    p.transistors = 5e5;
    p.design_density = 152.0;
    p.feature_size = microns{0.8};
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.evaluate(p).cost_per_transistor);
    }
}
BENCHMARK(bm_cost_model_evaluate);

void bm_table3_full_reproduction(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::reproduce_table3());
    }
}
BENCHMARK(bm_table3_full_reproduction);

void bm_average_critical_area(benchmark::State& state) {
    yield::wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 200.0;
    layout.line_count = 20;
    const yield::defect_size_distribution d{0.6, 4.07};
    for (auto _ : state) {
        benchmark::DoNotOptimize(yield::average_critical_area(
            layout, yield::fault_kind::short_circuit, d));
    }
}
BENCHMARK(bm_average_critical_area);

void bm_monte_carlo_1k_dies(benchmark::State& state) {
    yield::wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 100.0;
    layout.line_count = 10;
    const yield::defect_size_distribution sizes{0.6, 4.07};
    yield::monte_carlo_config config;
    config.dies = 1000;
    config.defects_per_um2 = 2e-4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            yield::simulate_layout_yield(layout, sizes, config));
    }
}
BENCHMARK(bm_monte_carlo_1k_dies);

// Serial-vs-parallel throughput of the 100k-die Monte-Carlo run on the
// exec engine; the range argument is the thread count (0 = hardware
// concurrency).  Results are bit-identical across thread counts by the
// determinism contract, so the rows differ only in wall-clock.
void bm_monte_carlo_100k_dies(benchmark::State& state) {
    yield::wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 100.0;
    layout.line_count = 10;
    const yield::defect_size_distribution sizes{0.6, 4.07};
    yield::monte_carlo_config config;
    config.dies = 100000;
    config.defects_per_um2 = 2e-4;
    config.parallelism = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            yield::simulate_layout_yield(layout, sizes, config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(config.dies));
}
BENCHMARK(bm_monte_carlo_100k_dies)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(0);

void bm_contour_extraction(benchmark::State& state) {
    const analysis::grid g = analysis::evaluate_grid(
        analysis::linspace(-2.0, 2.0, 101),
        analysis::linspace(-2.0, 2.0, 101),
        [](double x, double y) { return x * x + y * y; });
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::extract_contours(g, 1.7));
    }
}
BENCHMARK(bm_contour_extraction);

void bm_wafer_sim_100_wafers(benchmark::State& state) {
    const geometry::wafer w = geometry::wafer::six_inch();
    const geometry::die d = geometry::die::square(millimeters{12.0});
    yield::wafer_sim_config config;
    config.wafers = 100;
    config.defects_per_cm2 = 1.0;
    config.parallelism = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(yield::simulate_wafers(w, d, config));
    }
}
BENCHMARK(bm_wafer_sim_100_wafers)->Arg(1)->Arg(0);

void bm_grid_evaluate_101x101(benchmark::State& state) {
    const std::vector<double> xs = analysis::linspace(-2.0, 2.0, 101);
    const std::vector<double> ys = analysis::linspace(-2.0, 2.0, 101);
    const unsigned parallelism = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(analysis::grid::evaluate(
            xs, ys,
            [](double x, double y) {
                return std::exp(-x * x - y * y) * std::cos(4.0 * x * y);
            },
            parallelism));
    }
}
BENCHMARK(bm_grid_evaluate_101x101)->Arg(1)->Arg(0);

void bm_set_partitions_8(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(opt::set_partitions(8));
    }
}
BENCHMARK(bm_set_partitions_8);

void bm_optimal_feature_size(benchmark::State& state) {
    const core::process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const core::cost_model model{process};
    core::product_spec p;
    p.transistors = 5e5;
    p.design_density = 152.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.optimal_feature_size(p, microns{0.5}, microns{1.0}));
    }
}
BENCHMARK(bm_optimal_feature_size);

}  // namespace

BENCHMARK_MAIN();
