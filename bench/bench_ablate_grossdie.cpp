// bench_ablate_grossdie — ablation A1: how much does the dies-per-wafer
// estimator matter?  Compares the paper's Eq. (4) row formula against the
// area-ratio bound, the circumference correction, Ferris-Prabhu, and the
// exact offset-searched placement, across die sizes, and shows the cost
// error each closed form would induce in Table 3 row 1.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/table3.hpp"
#include "geometry/gross_die.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A1 - gross dies per wafer estimators");

    const geometry::wafer w = geometry::wafer::six_inch();
    analysis::text_table table;
    table.add_column("die edge [mm]", analysis::align::right, 1);
    table.add_column("area ratio");
    table.add_column("circumference");
    table.add_column("Ferris-Prabhu");
    table.add_column("Eq.(4) rows");
    table.add_column("exact grid");
    table.add_column("rows/exact", analysis::align::right, 3);

    for (double edge : {3.0, 5.0, 8.0, 12.0, 17.25, 22.0, 30.0}) {
        const geometry::die d = geometry::die::square(millimeters{edge});
        const long exact = geometry::exact_count(w, d).count;
        const long rows = geometry::maly_row_count(w, d);
        table.begin_row();
        table.add_number(edge);
        table.add_integer(geometry::area_ratio_bound(w, d));
        table.add_integer(geometry::circumference_corrected(w, d));
        table.add_integer(geometry::ferris_prabhu(w, d));
        table.add_integer(rows);
        table.add_integer(exact);
        table.add_number(exact > 0 ? static_cast<double>(rows) / exact
                                   : 0.0);
    }
    std::cout << table.to_string() << "\n";

    // Cost impact on Table 3 row 1.
    analysis::text_table cost_table;
    cost_table.add_column("method", analysis::align::left);
    cost_table.add_column("N_ch");
    cost_table.add_column("C_tr [u$/tr]", analysis::align::right, 2);
    cost_table.add_column("vs paper 9.40", analysis::align::right, 3);
    for (const geometry::gross_die_method method :
         {geometry::gross_die_method::area_ratio,
          geometry::gross_die_method::circumference,
          geometry::gross_die_method::ferris_prabhu,
          geometry::gross_die_method::maly_rows,
          geometry::gross_die_method::exact}) {
        core::table3_row row = core::table3_rows()[0];
        core::process_spec process{
            cost::wafer_cost_model{dollars{row.c0_usd}, row.x},
            geometry::wafer{centimeters{row.wafer_radius_cm}},
            yield::reference_die_yield{probability{row.y0}}, method};
        core::product_spec product;
        product.transistors = row.transistors;
        product.design_density = row.design_density;
        product.feature_size = microns{row.lambda_um};
        const core::cost_breakdown b =
            core::cost_model{process}.evaluate(product);
        cost_table.begin_row();
        cost_table.add_cell(geometry::to_string(method));
        cost_table.add_integer(b.gross_dies_per_wafer);
        cost_table.add_number(b.cost_per_transistor_micro_dollars());
        cost_table.add_number(b.cost_per_transistor_micro_dollars() /
                              row.printed_ctr_micro);
    }
    std::cout << cost_table.to_string() << "\n";
    std::cout << "finding: the paper's Table 3 values are consistent with "
                 "the Eq.(4) row formula;\nthe area-ratio bound would "
                 "understate big-die cost by ~25%.\n";
    return 0;
}
