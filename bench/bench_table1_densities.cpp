// bench_table1_densities — reproduces Table 1: design densities of the
// functional blocks of the 3.1M-transistor microprocessor of [22], and
// verifies the printed d_d column against Eq. (5) recomputation.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "tech/density.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Table 1 - design densities for uP functional blocks");

    analysis::text_table table;
    table.add_column("Funct. block", analysis::align::left);
    table.add_column("Area [mm^2]", analysis::align::right, 1);
    table.add_column("# of tr.", analysis::align::right, 0);
    table.add_column("d_d printed", analysis::align::right, 1);
    table.add_column("d_d recomputed", analysis::align::right, 1);
    table.add_column("ratio", analysis::align::right, 4);

    const microns lambda = tech::table1_feature_size();
    for (const tech::functional_block& block : tech::table1_blocks()) {
        const double recomputed = block.computed_dd(lambda);
        table.begin_row();
        table.add_cell(block.name);
        table.add_number(block.area_mm2);
        table.add_number(block.transistors);
        table.add_number(block.printed_dd);
        table.add_number(recomputed);
        table.add_number(recomputed / block.printed_dd);
    }
    std::cout << table.to_string() << "\n";
    std::cout << "feature size: " << lambda.value()
              << " um (the 0.8 um BiCMOS uP of [22])\n";
    std::cout << "observation the table carries: caches pack a transistor "
                 "into ~45 lambda^2,\nrandom logic needs 220-400 lambda^2 "
                 "-- design style changes silicon cost by ~10x.\n";
    return 0;
}
