// Observability overhead: what instrumentation costs the serve path.
//
// Three measurements:
//
//   span disabled   - ns per trace_span construct+destruct while
//                     tracing is off (the always-on cost every request
//                     pays; ~6 spans per served line)
//   serve disabled  - cache-warm serve throughput with tracing off
//   serve enabled   - the same pass with tracing on (ring writes +
//                     clock reads), reported as a ratio for the record
//
// Gate: the projected cost of the disabled-path spans must be < 2% of
// the measured per-request time — i.e. disabled-tracing throughput is
// >= 98% of an uninstrumented binary's.  Projecting from the measured
// per-span cost instead of diffing two noisy end-to-end runs keeps the
// gate meaningful: the span cost is deterministic (two relaxed loads),
// while back-to-back throughput runs jitter by more than 2% on a busy
// machine.

#include "obs/trace.hpp"
#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace {

namespace obs = silicon::obs;

std::string num(double v) { return silicon::serve::json::format_number(v); }

/// Cache-friendly mixed workload: cheap endpoints only, so the serve
/// envelope (parse, canonicalize, cache, serialize) dominates and the
/// span overhead is measured against the path it actually taxes.
std::vector<std::string> make_requests(std::size_t n) {
    std::vector<std::string> lines;
    lines.reserve(n);
    for (std::size_t i = 0; lines.size() < n; ++i) {
        const double lambda = 0.35 + 0.0001 * static_cast<double>(i);
        switch (i % 4) {
        case 0:
            lines.push_back(R"({"op":"scenario1","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 1:
            lines.push_back(R"({"op":"scenario2","lambda_um":)" + num(lambda) +
                            "}");
            break;
        case 2:
            lines.push_back(R"({"op":"yield","model":"murphy","die_area_cm2":)" +
                            num(0.5 + 0.0001 * static_cast<double>(i)) +
                            R"(,"defects_per_cm2":0.8})");
            break;
        default:
            lines.push_back(R"({"op":"table3","row":)" + std::to_string(i % 6) +
                            "}");
            break;
        }
    }
    return lines;
}

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// req/s for one warm batch pass.
double run_pass(silicon::serve::engine& engine,
                const std::vector<std::string>& lines) {
    const double start = now_seconds();
    const std::vector<std::string> responses = engine.handle_batch(lines);
    const double seconds = now_seconds() - start;
    return static_cast<double>(responses.size()) / seconds;
}

/// ns per disabled trace_span (median of several tight-loop runs).
double disabled_span_cost_ns() {
    constexpr int kRuns = 5;
    constexpr std::uint64_t kSpans = 2'000'000;
    double best = 1e9;
    for (int r = 0; r < kRuns; ++r) {
        const double start = now_seconds();
        for (std::uint64_t i = 0; i < kSpans; ++i) {
            const obs::trace_span span{"bench.noop", "bench"};
        }
        const double seconds = now_seconds() - start;
        best = std::min(best, seconds * 1e9 / static_cast<double>(kSpans));
    }
    return best;
}

}  // namespace

int main() {
    constexpr std::size_t kRequests = 8192;
    // Spans on the cache-warm path: handle_line, parse, canonicalize,
    // cache, serialize, plus exec.task amortized over the batch.
    constexpr double kSpansPerRequest = 6.0;

    obs::tracer::instance().disable();

    const double span_ns = disabled_span_cost_ns();

    const std::vector<std::string> lines = make_requests(kRequests);
    silicon::serve::engine engine{{.parallelism = 0}};
    (void)engine.handle_batch(lines);  // cold pass: fill the cache

    // Warm passes, tracing disabled (take the best of 3 per side).
    double disabled_rps = 0.0;
    for (int i = 0; i < 3; ++i) {
        disabled_rps = std::max(disabled_rps, run_pass(engine, lines));
    }

    obs::tracer::instance().enable();
    double enabled_rps = 0.0;
    for (int i = 0; i < 3; ++i) {
        enabled_rps = std::max(enabled_rps, run_pass(engine, lines));
    }
    obs::tracer::instance().disable();
    const obs::tracer::stats trace_stats = obs::tracer::instance().snapshot();
    obs::tracer::instance().clear();

    const double request_ns = 1e9 / disabled_rps;
    const double disabled_overhead =
        span_ns * kSpansPerRequest / request_ns;  // fraction of request time
    const double enabled_ratio = enabled_rps / disabled_rps;

    std::printf("bench_obs_overhead (%zu warm mixed requests)\n", kRequests);
    std::printf("  %-26s %10.2f ns/span\n", "span disabled", span_ns);
    std::printf("  %-26s %10.0f req/s  (%.0f ns/req)\n", "serve disabled",
                disabled_rps, request_ns);
    std::printf("  %-26s %10.0f req/s  (%.3fx disabled)\n", "serve enabled",
                enabled_rps, enabled_ratio);
    std::printf("  %-26s %10.4f %%  (projected, %.0f spans/req)\n",
                "disabled overhead", disabled_overhead * 100.0,
                kSpansPerRequest);
    std::printf("  trace: %llu recorded / %llu dropped / %zu threads\n",
                static_cast<unsigned long long>(trace_stats.recorded),
                static_cast<unsigned long long>(trace_stats.dropped),
                trace_stats.threads);

    if (disabled_overhead > 0.02) {
        std::printf("FAIL: disabled tracing costs %.2f%% of request time, "
                    "want < 2%%\n",
                    disabled_overhead * 100.0);
        return 1;
    }
    std::printf("OK: disabled tracing costs < 2%% of serve throughput\n");
    return 0;
}
