// bench_ablate_clustering — ablation A6: which classic yield model is
// "right"?  Whole-wafer Monte Carlo with uniform vs. gamma-clustered
// defects, compared against the Poisson and negative-binomial closed
// forms, plus pass/fail wafer maps.  Demonstrates why the compound
// models exist: clustering raises mean yield at equal defect density and
// widens wafer-to-wafer spread.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "yield/models.hpp"
#include "yield/wafer_sim.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A6 - defect clustering vs yield models");

    const geometry::wafer w = geometry::wafer::six_inch();
    const geometry::die d = geometry::die::square(millimeters{12.0});
    const double area_cm2 = d.area().to_square_centimeters().value();

    analysis::text_table table;
    table.add_column("D [1/cm^2]", analysis::align::right, 2);
    table.add_column("process", analysis::align::left);
    table.add_column("MC mean Y", analysis::align::right, 4);
    table.add_column("MC stddev", analysis::align::right, 4);
    table.add_column("Poisson", analysis::align::right, 4);
    table.add_column("NB(a=2)", analysis::align::right, 4);

    const yield::poisson_model poisson;
    const yield::negative_binomial_model nb{2.0};
    for (double density : {0.5, 1.0, 2.0}) {
        for (const yield::defect_process process :
             {yield::defect_process::uniform,
              yield::defect_process::clustered}) {
            yield::wafer_sim_config config;
            config.wafers = 400;
            config.defects_per_cm2 = density;
            config.process = process;
            config.cluster_alpha = 2.0;
            config.seed = 20260705;
            const yield::wafer_sim_result result =
                yield::simulate_wafers(w, d, config);
            table.begin_row();
            table.add_number(density);
            table.add_cell(process == yield::defect_process::uniform
                               ? "uniform"
                               : "clustered (a=2)");
            table.add_number(result.mean_yield);
            table.add_number(result.yield_stddev);
            table.add_number(poisson.yield(density * area_cm2).value());
            table.add_number(nb.yield(density * area_cm2).value());
        }
    }
    std::cout << table.to_string() << "\n";
    std::cout << "finding: uniform-defect wafers track the Poisson column; "
                 "clustered wafers track the\nnegative-binomial column -- "
                 "the compounding assumption, not the math, decides which\n"
                 "classic model prices a die correctly.\n\n";

    // Show one wafer of each flavor.
    yield::wafer_sim_config config;
    config.wafers = 1;
    config.defects_per_cm2 = 1.5;
    config.seed = 7;
    std::cout << "uniform-defect wafer ('#' good, 'x' bad):\n"
              << yield::simulate_wafers(w, d, config).last_wafer_map;
    config.process = yield::defect_process::clustered;
    config.cluster_alpha = 0.7;
    std::cout << "\nclustered wafer (same mean density, alpha=0.7):\n"
              << yield::simulate_wafers(w, d, config).last_wafer_map;
    return 0;
}
