// bench_ablate_mix — ablation A4: the product-mix wafer-cost penalty.
// Reproduces the Sec. III.A.d claim from [12] that a low-volume
// multi-product fabline can cost up to 7x more per wafer than a
// high-volume mono-product line, by sweeping mix diversity and volume.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "cost/product_mix.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A4 - mono vs multi-product wafer cost");

    const cost::fabline line = cost::fabline::generic_cmos();
    const cost::wafer_recipe mono = cost::fabline::generic_recipe(0.8, 2);
    const double mono_volume = 50000.0;

    analysis::text_table table;
    table.add_column("products");
    table.add_column("wafers each", analysis::align::right, 0);
    table.add_column("multi $/wafer", analysis::align::right, 0);
    table.add_column("mono $/wafer", analysis::align::right, 0);
    table.add_column("ratio", analysis::align::right, 2);
    table.add_column("multi avg util", analysis::align::right, 3);
    table.add_column("mono avg util", analysis::align::right, 3);

    for (int products : {2, 5, 10}) {
        for (double wafers : {8.0, 50.0, 500.0, 5000.0}) {
            const cost::mix_comparison cmp = cost::compare_mono_vs_multi(
                line, mono, mono_volume,
                cost::diverse_mix(products, wafers));
            table.begin_row();
            table.add_integer(products);
            table.add_number(wafers);
            table.add_number(cmp.multi.cost_per_wafer.value());
            table.add_number(cmp.mono.cost_per_wafer.value());
            table.add_number(cmp.cost_ratio);
            table.add_number(cmp.multi.average_utilization);
            table.add_number(cmp.mono.average_utilization);
        }
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "paper claim reproduced: \"the ratio of the cost of the wafer "
           "fabricated with low volume\nmulti-product fabline and high "
           "volume mono-product environment may reach as high value\n"
           "as 7\" [12] -- the ratio climbs toward and past 7x as volume "
           "per product falls, and\ncollapses toward 1x once every tool "
           "group is kept busy.\n";
    return 0;
}
