// bench_chiplet.cpp — throughput of the chiplet partition kernel
// (chiplet/batch.hpp) against the per-point serve path it lets
// `partition_explore` skip, plus the crossover-stability check that
// backs the partition_explore golden corpus.
//
// Two scalar baselines are measured, mirroring bench_batch_kernels:
//
//   engine per-point  - the generic sweep shape over the `chiplet`
//                       endpoint: per grid point, clone the target JSON
//                       doc, poke the area, re-canonicalize through
//                       parse_request, evaluate, dump, and re-parse to
//                       extract cost_per_good_system_usd.  This is the
//                       gated comparison (>= 4x).
//   library scalar    - scaled_to_total + evaluate_chiplet per lane.
//                       Not gated; it is the bit-exactness reference
//                       (the kernel calls the same scalar core, so any
//                       mismatch is a real defect, not rounding).
//
// The crossover check is deterministic and runs even in tiny mode: one
// partition_explore request is served at parallelism 1/4/0 with the
// sweep kernels on and off, all six responses must be byte-identical,
// monolithic must win the low end of the grid and a split the high end
// (Chiplet Actuary's die-size crossover, arXiv:2203.12268).
//
// Results land in BENCH_chiplet.json (machine readable, git-tracked);
// an optional argv[1] overrides the output path so the ctest smoke can
// write into the build tree.  SILICON_BENCH_TINY=1 shrinks the
// workload and skips the speedup gate.

#include "chiplet/batch.hpp"
#include "chiplet/model.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace chiplet = silicon::chiplet;
namespace serve = silicon::serve;
namespace json = silicon::serve::json;

namespace {

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Time `work()` repeatedly until `min_seconds` elapses; returns lanes
/// per second.
double rate_lanes_per_s(std::size_t lanes, double min_seconds,
                        const std::function<void()>& work) {
    using clock = std::chrono::steady_clock;
    std::size_t reps = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
        work();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < min_seconds);
    return static_cast<double>(lanes) * static_cast<double>(reps) / elapsed;
}

/// Linear total-area grid over the range the golden corpus sweeps.
std::vector<double> area_grid(std::size_t n) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = 40.0 + 960.0 * static_cast<double>(i) /
                           static_cast<double>(n > 1 ? n - 1 : 1);
    }
    return xs;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string path = argc > 1 ? argv[1] : "BENCH_chiplet.json";
    const bool tiny = tiny_mode();
    const std::size_t kernel_lanes = tiny ? 2048 : std::size_t{1} << 16;
    const std::size_t engine_lanes = tiny ? 128 : 8192;
    const double min_seconds = tiny ? 0.01 : 0.2;
    constexpr double required_speedup = 4.0;
    constexpr int kChiplets = 4;

    const chiplet::chiplet_spec base;  // the serve-layer defaults

    // Bit-exactness first: the speedup is only meaningful if the kernel
    // reproduces the scalar library bits lane for lane.
    bool bit_exact = true;
    {
        const std::vector<double> xs = area_grid(2048);
        std::vector<double> out(xs.size());
        chiplet::batch::cost_per_good_system(base, kChiplets, xs.data(),
                                             out.data(), xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            chiplet::chiplet_spec spec =
                chiplet::scaled_to_total(base, xs[i]);
            spec.chiplets = kChiplets;
            const double expected =
                chiplet::evaluate_chiplet(spec).cost_per_good_system_usd;
            if (std::memcmp(&expected, &out[i], sizeof expected) != 0) {
                bit_exact = false;
                std::printf("FAIL: chiplet kernel lane %zu differs\n", i);
                break;
            }
        }
    }

    // Kernel and library-scalar rates.
    const std::vector<double> xs = area_grid(kernel_lanes);
    std::vector<double> out(xs.size());
    const double kernel_rate = rate_lanes_per_s(kernel_lanes, min_seconds, [&] {
        chiplet::batch::cost_per_good_system(base, kChiplets, xs.data(),
                                             out.data(), xs.size());
    });
    const double library_rate =
        rate_lanes_per_s(kernel_lanes, min_seconds, [&] {
            for (std::size_t i = 0; i < xs.size(); ++i) {
                chiplet::chiplet_spec spec =
                    chiplet::scaled_to_total(base, xs[i]);
                spec.chiplets = kChiplets;
                out[i] = chiplet::evaluate_chiplet(spec)
                             .cost_per_good_system_usd;
            }
        });

    // The per-point path a naive explore would take: the generic sweep
    // shape over the `chiplet` endpoint, step for step (JSON clone ->
    // member poke -> parse_request -> evaluate -> dump -> re-parse ->
    // metric extraction).
    serve::engine_config config;
    config.parallelism = 1;
    config.cache_capacity = 0;  // honest cold per-point evaluation
    serve::engine engine{config};
    const json::value target_doc =
        json::parse("{\"op\":\"chiplet\",\"chiplets\":4}");
    const std::vector<double> exs = area_grid(engine_lanes);
    std::vector<double> eout(exs.size());
    const double engine_rate = rate_lanes_per_s(engine_lanes, min_seconds, [&] {
        for (std::size_t i = 0; i < exs.size(); ++i) {
            json::value doc = target_doc;
            doc.as_object().set("logic_area_mm2", json::value{exs[i]});
            const serve::request point = serve::parse_request(doc);
            const std::string result = json::dump(engine.evaluate(point));
            const json::value parsed = json::parse(result);
            eout[i] = parsed.as_object()
                          .find(serve::primary_metric(point.op))
                          ->as_number();
        }
    });

    std::printf(
        "chiplet kernel %12.0f lanes/s | library %12.0f (%5.1fx) | "
        "engine per-point %10.0f (%5.1fx) | bit-exact %s\n",
        kernel_rate, library_rate, kernel_rate / library_rate, engine_rate,
        kernel_rate / engine_rate, bit_exact ? "yes" : "NO");

    // Crossover stability: the same explore request must serialize
    // byte-identically at every thread count with the kernels on and
    // off, and the crossover must exist with monolithic winning the
    // low end.  Deterministic, so it runs even in tiny mode.
    const std::string explore_line =
        "{\"op\":\"partition_explore\",\"splits\":\"1,2,4\","
        "\"area_from_mm2\":40,\"area_to_mm2\":1000,\"count\":25}";
    std::string reference;
    bool responses_identical = true;
    for (const unsigned threads : {1u, 4u, 0u}) {
        for (const bool kernels : {true, false}) {
            serve::engine_config c;
            c.parallelism = threads;
            c.sweep_kernels = kernels;
            serve::engine e{c};
            const std::string response = e.handle_line(explore_line);
            if (reference.empty()) {
                reference = response;
            } else if (response != reference) {
                responses_identical = false;
                std::printf(
                    "FAIL: partition_explore differs at threads=%u "
                    "kernels=%d\n",
                    threads, kernels ? 1 : 0);
            }
        }
    }
    double crossover_area = 0.0;
    bool monolithic_wins_low = false;
    bool split_wins_high = false;
    try {
        const json::value parsed = json::parse(reference);
        const json::object& result =
            parsed.as_object().find("result")->as_object();
        const json::value* crossover = result.find("crossover_area_mm2");
        if (crossover != nullptr && crossover->is_number()) {
            crossover_area = crossover->as_number();
        }
        const json::array& best = result.find("best_split")->as_array();
        monolithic_wins_low =
            !best.empty() && best.front().is_number() &&
            best.front().as_number() == 1.0;
        split_wins_high = !best.empty() && best.back().is_number() &&
                          best.back().as_number() > 1.0;
    } catch (const std::exception& e) {
        std::printf("FAIL: explore response unparsable: %s\n", e.what());
        responses_identical = false;
    }
    const bool crossover_ok = responses_identical && crossover_area > 0.0 &&
                              monolithic_wins_low && split_wins_high;
    std::printf(
        "crossover %8.1f mm^2 | monolithic wins low end %s | split wins "
        "high end %s | responses identical %s\n",
        crossover_area, monolithic_wins_low ? "yes" : "NO",
        split_wins_high ? "yes" : "NO", responses_identical ? "yes" : "NO");

    const bool speedup_ok = kernel_rate >= required_speedup * engine_rate;

    // Machine-readable results.
    json::object doc;
    doc.set("bench", json::value{std::string{"bench_chiplet"}});
    doc.set("tiny", json::value{tiny});
    doc.set("required_speedup_vs_engine", json::value{required_speedup});
    json::object kernel;
    kernel.set("lanes", json::value{static_cast<double>(kernel_lanes)});
    kernel.set("chiplets", json::value{static_cast<double>(kChiplets)});
    kernel.set("kernel_lanes_per_s", json::value{kernel_rate});
    kernel.set("library_scalar_lanes_per_s", json::value{library_rate});
    kernel.set("engine_perpoint_lanes_per_s", json::value{engine_rate});
    kernel.set("speedup_vs_library", json::value{kernel_rate / library_rate});
    kernel.set("speedup_vs_engine", json::value{kernel_rate / engine_rate});
    kernel.set("bit_exact", json::value{bit_exact});
    doc.set("kernel", json::value{std::move(kernel)});
    json::object crossover;
    crossover.set("area_mm2", json::value{crossover_area});
    crossover.set("monolithic_wins_low_end", json::value{monolithic_wins_low});
    crossover.set("split_wins_high_end", json::value{split_wins_high});
    crossover.set("responses_identical", json::value{responses_identical});
    doc.set("crossover", json::value{std::move(crossover)});
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass",
             json::value{bit_exact && crossover_ok && (tiny || speedup_ok)});
    doc.set("gate", json::value{std::move(gate)});

    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    if (!bit_exact) {
        std::printf("FAIL: chiplet kernel not bit-exact\n");
        return 1;
    }
    if (!crossover_ok) {
        std::printf("FAIL: crossover missing or unstable\n");
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, speedup gate skipped\n");
        return 0;
    }
    if (!speedup_ok) {
        std::printf("FAIL: kernel < %.0fx engine per-point rate\n",
                    required_speedup);
        return 1;
    }
    std::printf("OK: kernel >= %.0fx the per-point path, crossover stable\n",
                required_speedup);
    return 0;
}
