// bench_batch_kernels.cpp — throughput of the SoA batch kernels
// (yield/batch.hpp, cost/batch.hpp) against the per-point paths they
// replaced, plus the bit-exactness check that makes the speedup
// meaningful.
//
// Two scalar baselines are measured for every kernel:
//
//   engine per-point  - the generic sweep path the kernels replaced
//                       (still present behind sweep_kernels=false, see
//                       engine::eval_sweep): per grid point, clone the
//                       target JSON doc, poke the swept member,
//                       re-canonicalize through parse_request, evaluate,
//                       dump the result, and re-parse it to extract the
//                       primary metric.  This is the gated comparison
//                       (>= 4x).
//   library scalar    - the scalar model API called per lane (model
//                       construction + unit-typed evaluation).  Not
//                       gated; reported for context, and used as the
//                       bit-exactness reference.
//
// The dispatched fast kernels (yield/batch.hpp `*_fast`, the fast_math
// sweep path) are measured alongside: lanes/s, speedup over the scalar
// library, and the max ULP drift against the row's accuracy reference.
// Most rows reference the scalar kernel (both paths feed identical
// argument bits into one final transcendental, so drift is the backend
// rounding difference, <= 4 ULP).  Murphy references a long-double
// truth instead: its scalar form (1-exp(-l))/l loses ~2/l ULP to
// cancellation as l->0, so the cancellation-free fast form measured
// against it would be charged for the *scalar* path's error.
// Scaled-poisson records its drift unGATED: exp(-u) amplifies pow
// rounding by u = A*D/lambda^p, which reaches ~230 on this grid, so a
// flat ULP bound is meaningless there (the conditioned bound is pinned
// in tests/yield/test_batch_ulp.cpp).
//
// Results land in BENCH_kernels.json (machine readable, git-tracked).
// SILICON_BENCH_TINY=1 shrinks the workload and skips the speedup gate
// so CI smoke runs stay cheap and unflaky.

#include "core/scenario.hpp"
#include "core/units.hpp"
#include "cost/batch.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/wafer.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "simd/dispatch.hpp"
#include "yield/batch.hpp"
#include "yield/models.hpp"
#include "yield/scaled.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace core = silicon::core;
namespace cost = silicon::cost;
namespace geometry = silicon::geometry;
namespace serve = silicon::serve;
namespace json = silicon::serve::json;
namespace yield = silicon::yield;
using silicon::centimeters;
using silicon::dollars;
using silicon::microns;
using silicon::probability;
using silicon::square_centimeters;

namespace {

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Time `work(lanes)` repeatedly until `min_seconds` elapses; returns
/// lanes per second.
double rate_lanes_per_s(std::size_t lanes, double min_seconds,
                        const std::function<void()>& work) {
    using clock = std::chrono::steady_clock;
    std::size_t reps = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
        work();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < min_seconds);
    return static_cast<double>(lanes) * static_cast<double>(reps) / elapsed;
}

/// Total-order key: adjacent representable doubles differ by 1, across
/// the signed-zero boundary too (same mapping as tests/simd).
std::uint64_t total_order_key(double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return (u >> 63) != 0 ? ~u : (u | 0x8000000000000000ull);
}

std::uint64_t ulp_distance(double a, double b) {
    if (std::isnan(a) || std::isnan(b)) {
        return (std::isnan(a) && std::isnan(b)) ? 0
                                                : ~std::uint64_t{0};
    }
    const std::uint64_t ka = total_order_key(a);
    const std::uint64_t kb = total_order_key(b);
    return ka > kb ? ka - kb : kb - ka;
}

/// One kernel under test: the SoA call, the per-lane library call, and
/// the serve target line + swept parameter for the engine baseline.
struct kernel_case {
    std::string name;
    std::function<void(const std::vector<double>& xs,
                       std::vector<double>& out)>
        kernel;
    std::function<double(double)> library_scalar;
    std::string target_line;  ///< serve request evaluated per point
    std::string param;        ///< numeric field swept over xs
    /// Dispatched fast-path call (same column bindings as `kernel`).
    std::function<void(const std::vector<double>& xs,
                       std::vector<double>& out)>
        fast_kernel;
    /// Accuracy reference for fast_max_ulp.  Unset -> the scalar
    /// kernel's output is the reference (valid when both paths feed
    /// identical argument bits into one final transcendental).
    std::function<double(double)> fast_truth;
    /// Whether the validator holds fast_max_ulp to the flat bound.
    bool fast_ulp_gated = true;
    /// Whether the validator holds fast_speedup_vs_library to the 2x
    /// floor on vector hosts.  Off only for scaled_poisson: its lane
    /// is two chained transcendentals (pow then exp) whose library
    /// baseline already pipelines well, so the vector win is real but
    /// smaller (~1.7x measured) and not part of the acceptance set.
    bool fast_speedup_gated = true;
};

std::vector<kernel_case> make_cases() {
    std::vector<kernel_case> cases;

    {
        kernel_case c;
        c.name = "scenario1";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.2);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 30.0);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cost::batch::scenario1_cost_per_transistor(cols, out.data(),
                                                       xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.2);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 30.0);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cost::batch::scenario1_cost_per_transistor_fast(
                cols, out.data(), xs.size());
        };
        c.library_scalar = [](double lambda) {
            core::scenario1 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.2};
            s.wafer = geometry::wafer{centimeters{7.5}};
            s.design_density = 30.0;
            return s.cost_per_transistor(microns{lambda}).value();
        };
        c.target_line = R"({"op":"scenario1"})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "scenario2";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.8);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 200.0);
            const std::vector<double> y0(xs.size(), 0.7);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cols.y0 = y0.data();
            cost::batch::scenario2_cost_per_transistor(cols, out.data(),
                                                       xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.8);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 200.0);
            const std::vector<double> y0(xs.size(), 0.7);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cols.y0 = y0.data();
            cost::batch::scenario2_cost_per_transistor_fast(
                cols, out.data(), xs.size());
        };
        c.library_scalar = [](double lambda) {
            core::scenario2 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.8};
            s.wafer = geometry::wafer{centimeters{7.5}};
            s.design_density = 200.0;
            s.yield = yield::reference_die_yield{probability{0.7}};
            return s.cost_per_transistor(microns{lambda}).value();
        };
        c.target_line = R"({"op":"scenario2","x":1.8})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "poisson_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            yield::batch::poisson_yield(xs.data(), out.data(), xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            yield::batch::poisson_yield_fast(xs.data(), out.data(),
                                             xs.size());
        };
        c.library_scalar = [](double f) {
            const yield::poisson_model model;
            return model.yield(f).value();
        };
        c.target_line = R"({"op":"yield","model":"poisson"})";
        c.param = "expected_faults";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "murphy_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            yield::batch::murphy_yield(xs.data(), out.data(), xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            yield::batch::murphy_yield_fast(xs.data(), out.data(),
                                            xs.size());
        };
        // The fast form ((-expm1(-l))/l)^2 is better conditioned than
        // the scalar (1-exp(-l))/l, so accuracy is measured against a
        // long-double truth, not the scalar kernel (see file header).
        c.fast_truth = [](double l) {
            const long double t = std::expm1(static_cast<long double>(-l)) /
                                  static_cast<long double>(-l);
            return static_cast<double>(t * t);
        };
        c.library_scalar = [](double f) {
            const yield::murphy_model model;
            return model.yield(f).value();
        };
        c.target_line = R"({"op":"yield","model":"murphy"})";
        c.param = "expected_faults";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "negative_binomial_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> alpha(xs.size(), 2.5);
            yield::batch::negative_binomial_yield(
                xs.data(), alpha.data(), out.data(), xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            const std::vector<double> alpha(xs.size(), 2.5);
            yield::batch::negative_binomial_yield_fast(
                xs.data(), alpha.data(), out.data(), xs.size());
        };
        c.library_scalar = [](double f) {
            const yield::negative_binomial_model model{2.5};
            return model.yield(f).value();
        };
        c.target_line = R"({"op":"yield","model":"neg_binomial","alpha":2.5})";
        c.param = "expected_faults";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "scaled_poisson_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> a(xs.size(), 1.0);
            const std::vector<double> d(xs.size(), 1.72);
            const std::vector<double> p(xs.size(), 4.07);
            yield::batch::scaled_poisson_yield(a.data(), xs.data(),
                                               d.data(), p.data(),
                                               out.data(), xs.size());
        };
        c.fast_kernel = [](const std::vector<double>& xs,
                           std::vector<double>& out) {
            const std::vector<double> a(xs.size(), 1.0);
            const std::vector<double> d(xs.size(), 1.72);
            const std::vector<double> p(xs.size(), 4.07);
            yield::batch::scaled_poisson_yield_fast(
                a.data(), xs.data(), d.data(), p.data(), out.data(),
                xs.size());
        };
        // exp(-u) amplifies pow rounding by u = A*D/lambda^p (~230 at
        // lambda 0.3 on this grid): recorded, not flat-ULP-gated.
        c.fast_ulp_gated = false;
        // Two chained transcendentals against a well-pipelined library
        // baseline: the vector win is smaller and not acceptance-gated.
        c.fast_speedup_gated = false;
        c.library_scalar = [](double lambda) {
            const yield::scaled_poisson_model model{1.72, 4.07};
            return model.yield(square_centimeters{1.0}, microns{lambda})
                .value();
        };
        c.target_line = R"({"op":"yield","model":"scaled_poisson"})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    return cases;
}

/// Grid of valid lanes for the swept parameter (all cases accept
/// values in [0.3, 1.5]).
std::vector<double> make_grid(std::size_t n) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = 0.3 + 1.2 * static_cast<double>(i) /
                          static_cast<double>(n > 1 ? n - 1 : 1);
    }
    return xs;
}

struct case_result {
    std::string name;
    std::size_t lanes = 0;
    double kernel_rate = 0.0;
    double library_rate = 0.0;
    double engine_rate = 0.0;
    bool bit_exact = false;
    double fast_rate = 0.0;
    std::uint64_t fast_max_ulp = 0;
    bool fast_ulp_gated = true;
    bool fast_speedup_gated = true;
};

}  // namespace

int main() {
    const bool tiny = tiny_mode();
    const std::size_t kernel_lanes = tiny ? 4096 : std::size_t{1} << 19;
    const std::size_t engine_lanes = tiny ? 128 : 8192;
    const double min_seconds = tiny ? 0.01 : 0.2;
    constexpr double required_speedup = 4.0;

    serve::engine_config config;
    config.parallelism = 1;
    config.cache_capacity = 0;  // honest cold per-point evaluation
    serve::engine engine{config};

    std::vector<case_result> results;
    bool all_exact = true;

    for (const kernel_case& c : make_cases()) {
        case_result r;
        r.name = c.name;
        r.lanes = kernel_lanes;

        // Bit-exactness first: the speedup is only meaningful if the
        // kernel reproduces the scalar library bits.
        {
            const std::vector<double> xs = make_grid(2048);
            std::vector<double> kernel_out(xs.size());
            c.kernel(xs, kernel_out);
            r.bit_exact = true;
            for (std::size_t i = 0; i < xs.size(); ++i) {
                const double expected = c.library_scalar(xs[i]);
                if (std::memcmp(&expected, &kernel_out[i],
                                sizeof expected) != 0) {
                    r.bit_exact = false;
                    std::printf("FAIL: %s lane %zu differs\n",
                                c.name.c_str(), i);
                    break;
                }
            }
            all_exact = all_exact && r.bit_exact;
        }

        // Fast-path accuracy: max ULP drift over the dense grid against
        // the row's reference (scalar kernel, or long-double truth for
        // the rows where the scalar formulation is the less accurate
        // one — see the file header).
        r.fast_ulp_gated = c.fast_ulp_gated;
        r.fast_speedup_gated = c.fast_speedup_gated;
        {
            const std::vector<double> xs = make_grid(2048);
            std::vector<double> fast_out(xs.size());
            c.fast_kernel(xs, fast_out);
            std::vector<double> ref(xs.size());
            if (c.fast_truth) {
                for (std::size_t i = 0; i < xs.size(); ++i) {
                    ref[i] = c.fast_truth(xs[i]);
                }
            } else {
                c.kernel(xs, ref);
            }
            for (std::size_t i = 0; i < xs.size(); ++i) {
                r.fast_max_ulp = std::max(
                    r.fast_max_ulp, ulp_distance(fast_out[i], ref[i]));
            }
        }

        const std::vector<double> xs = make_grid(kernel_lanes);
        std::vector<double> out(xs.size());
        r.kernel_rate = rate_lanes_per_s(kernel_lanes, min_seconds,
                                         [&] { c.kernel(xs, out); });
        r.fast_rate = rate_lanes_per_s(kernel_lanes, min_seconds,
                                       [&] { c.fast_kernel(xs, out); });
        r.library_rate =
            rate_lanes_per_s(kernel_lanes, min_seconds, [&] {
                for (std::size_t i = 0; i < xs.size(); ++i) {
                    out[i] = c.library_scalar(xs[i]);
                }
            });

        // The replaced path, reproduced step for step from the generic
        // eval_sweep loop: JSON clone -> member poke -> parse_request
        // (canonicalization included) -> evaluate -> dump -> re-parse ->
        // metric extraction.
        const json::value target_doc = json::parse(c.target_line);
        const std::vector<double> exs = make_grid(engine_lanes);
        std::vector<double> eout(exs.size());
        r.engine_rate = rate_lanes_per_s(engine_lanes, min_seconds, [&] {
            for (std::size_t i = 0; i < exs.size(); ++i) {
                json::value doc = target_doc;
                doc.as_object().set(c.param, json::value{exs[i]});
                const serve::request point = serve::parse_request(doc);
                const std::string result = json::dump(engine.evaluate(point));
                const json::value parsed = json::parse(result);
                eout[i] = parsed.as_object()
                              .find(serve::primary_metric(point.op))
                              ->as_number();
            }
        });

        std::printf(
            "%-24s kernel %12.0f lanes/s | library %12.0f (%5.1fx) | "
            "engine per-point %10.0f (%5.1fx) | bit-exact %s | "
            "fast %12.0f (%5.1fx vs library, max %llu ULP%s)\n",
            c.name.c_str(), r.kernel_rate, r.library_rate,
            r.kernel_rate / r.library_rate, r.engine_rate,
            r.kernel_rate / r.engine_rate, r.bit_exact ? "yes" : "NO",
            r.fast_rate, r.fast_rate / r.library_rate,
            static_cast<unsigned long long>(r.fast_max_ulp),
            r.fast_ulp_gated ? "" : ", ungated");
        results.push_back(std::move(r));
    }

    // Machine-readable results.
    json::object doc;
    doc.set("bench", json::value{std::string{"bench_batch_kernels"}});
    doc.set("tiny", json::value{tiny});
    doc.set("simd_target",
            json::value{std::string{
                silicon::simd::to_string(silicon::simd::active_target())}});
    doc.set("required_speedup_vs_engine", json::value{required_speedup});
    json::array rows;
    bool gate_pass = true;
    for (const case_result& r : results) {
        json::object row;
        row.set("name", json::value{r.name});
        row.set("lanes", json::value{static_cast<double>(r.lanes)});
        row.set("kernel_lanes_per_s", json::value{r.kernel_rate});
        row.set("library_scalar_lanes_per_s", json::value{r.library_rate});
        row.set("engine_perpoint_lanes_per_s", json::value{r.engine_rate});
        row.set("speedup_vs_library",
                json::value{r.kernel_rate / r.library_rate});
        row.set("speedup_vs_engine",
                json::value{r.kernel_rate / r.engine_rate});
        row.set("bit_exact", json::value{r.bit_exact});
        row.set("fast_lanes_per_s", json::value{r.fast_rate});
        row.set("fast_speedup_vs_library",
                json::value{r.fast_rate / r.library_rate});
        row.set("fast_max_ulp",
                json::value{static_cast<double>(r.fast_max_ulp)});
        row.set("fast_ulp_gated", json::value{r.fast_ulp_gated});
        row.set("fast_speedup_gated", json::value{r.fast_speedup_gated});
        rows.push_back(json::value{std::move(row)});
        if (r.kernel_rate < required_speedup * r.engine_rate) {
            gate_pass = false;
        }
    }
    doc.set("kernels", json::value{std::move(rows)});
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass", json::value{tiny || (gate_pass && all_exact)});
    doc.set("gate", json::value{std::move(gate)});

    const std::string path = "BENCH_kernels.json";
    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    if (!all_exact) {
        std::printf("FAIL: kernel output not bit-exact\n");
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, speedup gate skipped\n");
        return 0;
    }
    if (!gate_pass) {
        std::printf("FAIL: kernel < %.0fx engine per-point rate\n",
                    required_speedup);
        return 1;
    }
    std::printf("OK: every kernel >= %.0fx the per-point path it replaced\n",
                required_speedup);
    return 0;
}
