// bench_batch_kernels.cpp — throughput of the SoA batch kernels
// (yield/batch.hpp, cost/batch.hpp) against the per-point paths they
// replaced, plus the bit-exactness check that makes the speedup
// meaningful.
//
// Two scalar baselines are measured for every kernel:
//
//   engine per-point  - the generic sweep path the kernels replaced
//                       (still present behind sweep_kernels=false, see
//                       engine::eval_sweep): per grid point, clone the
//                       target JSON doc, poke the swept member,
//                       re-canonicalize through parse_request, evaluate,
//                       dump the result, and re-parse it to extract the
//                       primary metric.  This is the gated comparison
//                       (>= 4x).
//   library scalar    - the scalar model API called per lane (model
//                       construction + unit-typed evaluation).  Not
//                       gated; reported for context, and used as the
//                       bit-exactness reference.
//
// Results land in BENCH_kernels.json (machine readable, git-tracked).
// SILICON_BENCH_TINY=1 shrinks the workload and skips the speedup gate
// so CI smoke runs stay cheap and unflaky.

#include "core/scenario.hpp"
#include "core/units.hpp"
#include "cost/batch.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/wafer.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "yield/batch.hpp"
#include "yield/models.hpp"
#include "yield/scaled.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace core = silicon::core;
namespace cost = silicon::cost;
namespace geometry = silicon::geometry;
namespace serve = silicon::serve;
namespace json = silicon::serve::json;
namespace yield = silicon::yield;
using silicon::centimeters;
using silicon::dollars;
using silicon::microns;
using silicon::probability;
using silicon::square_centimeters;

namespace {

bool tiny_mode() {
    const char* v = std::getenv("SILICON_BENCH_TINY");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Time `work(lanes)` repeatedly until `min_seconds` elapses; returns
/// lanes per second.
double rate_lanes_per_s(std::size_t lanes, double min_seconds,
                        const std::function<void()>& work) {
    using clock = std::chrono::steady_clock;
    std::size_t reps = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    do {
        work();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - start).count();
    } while (elapsed < min_seconds);
    return static_cast<double>(lanes) * static_cast<double>(reps) / elapsed;
}

/// One kernel under test: the SoA call, the per-lane library call, and
/// the serve target line + swept parameter for the engine baseline.
struct kernel_case {
    std::string name;
    std::function<void(const std::vector<double>& xs,
                       std::vector<double>& out)>
        kernel;
    std::function<double(double)> library_scalar;
    std::string target_line;  ///< serve request evaluated per point
    std::string param;        ///< numeric field swept over xs
};

std::vector<kernel_case> make_cases() {
    std::vector<kernel_case> cases;

    {
        kernel_case c;
        c.name = "scenario1";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.2);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 30.0);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cost::batch::scenario1_cost_per_transistor(cols, out.data(),
                                                       xs.size());
        };
        c.library_scalar = [](double lambda) {
            core::scenario1 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.2};
            s.wafer = geometry::wafer{centimeters{7.5}};
            s.design_density = 30.0;
            return s.cost_per_transistor(microns{lambda}).value();
        };
        c.target_line = R"({"op":"scenario1"})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "scenario2";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> c0(xs.size(), 500.0);
            const std::vector<double> x(xs.size(), 1.8);
            const std::vector<double> r(xs.size(), 7.5);
            const std::vector<double> dd(xs.size(), 200.0);
            const std::vector<double> y0(xs.size(), 0.7);
            cost::batch::scenario_columns cols;
            cols.lambda_um = xs.data();
            cols.c0_usd = c0.data();
            cols.x = x.data();
            cols.wafer_radius_cm = r.data();
            cols.design_density = dd.data();
            cols.y0 = y0.data();
            cost::batch::scenario2_cost_per_transistor(cols, out.data(),
                                                       xs.size());
        };
        c.library_scalar = [](double lambda) {
            core::scenario2 s;
            s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.8};
            s.wafer = geometry::wafer{centimeters{7.5}};
            s.design_density = 200.0;
            s.yield = yield::reference_die_yield{probability{0.7}};
            return s.cost_per_transistor(microns{lambda}).value();
        };
        c.target_line = R"({"op":"scenario2","x":1.8})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "poisson_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            yield::batch::poisson_yield(xs.data(), out.data(), xs.size());
        };
        c.library_scalar = [](double f) {
            const yield::poisson_model model;
            return model.yield(f).value();
        };
        c.target_line = R"({"op":"yield","model":"poisson"})";
        c.param = "expected_faults";
        cases.push_back(std::move(c));
    }
    {
        kernel_case c;
        c.name = "scaled_poisson_yield";
        c.kernel = [](const std::vector<double>& xs,
                      std::vector<double>& out) {
            const std::vector<double> a(xs.size(), 1.0);
            const std::vector<double> d(xs.size(), 1.72);
            const std::vector<double> p(xs.size(), 4.07);
            yield::batch::scaled_poisson_yield(a.data(), xs.data(),
                                               d.data(), p.data(),
                                               out.data(), xs.size());
        };
        c.library_scalar = [](double lambda) {
            const yield::scaled_poisson_model model{1.72, 4.07};
            return model.yield(square_centimeters{1.0}, microns{lambda})
                .value();
        };
        c.target_line = R"({"op":"yield","model":"scaled_poisson"})";
        c.param = "lambda_um";
        cases.push_back(std::move(c));
    }
    return cases;
}

/// Grid of valid lanes for the swept parameter (all cases accept
/// values in [0.3, 1.5]).
std::vector<double> make_grid(std::size_t n) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = 0.3 + 1.2 * static_cast<double>(i) /
                          static_cast<double>(n > 1 ? n - 1 : 1);
    }
    return xs;
}

struct case_result {
    std::string name;
    std::size_t lanes = 0;
    double kernel_rate = 0.0;
    double library_rate = 0.0;
    double engine_rate = 0.0;
    bool bit_exact = false;
};

}  // namespace

int main() {
    const bool tiny = tiny_mode();
    const std::size_t kernel_lanes = tiny ? 4096 : std::size_t{1} << 19;
    const std::size_t engine_lanes = tiny ? 128 : 8192;
    const double min_seconds = tiny ? 0.01 : 0.2;
    constexpr double required_speedup = 4.0;

    serve::engine_config config;
    config.parallelism = 1;
    config.cache_capacity = 0;  // honest cold per-point evaluation
    serve::engine engine{config};

    std::vector<case_result> results;
    bool all_exact = true;

    for (const kernel_case& c : make_cases()) {
        case_result r;
        r.name = c.name;
        r.lanes = kernel_lanes;

        // Bit-exactness first: the speedup is only meaningful if the
        // kernel reproduces the scalar library bits.
        {
            const std::vector<double> xs = make_grid(2048);
            std::vector<double> kernel_out(xs.size());
            c.kernel(xs, kernel_out);
            r.bit_exact = true;
            for (std::size_t i = 0; i < xs.size(); ++i) {
                const double expected = c.library_scalar(xs[i]);
                if (std::memcmp(&expected, &kernel_out[i],
                                sizeof expected) != 0) {
                    r.bit_exact = false;
                    std::printf("FAIL: %s lane %zu differs\n",
                                c.name.c_str(), i);
                    break;
                }
            }
            all_exact = all_exact && r.bit_exact;
        }

        const std::vector<double> xs = make_grid(kernel_lanes);
        std::vector<double> out(xs.size());
        r.kernel_rate = rate_lanes_per_s(kernel_lanes, min_seconds,
                                         [&] { c.kernel(xs, out); });
        r.library_rate =
            rate_lanes_per_s(kernel_lanes, min_seconds, [&] {
                for (std::size_t i = 0; i < xs.size(); ++i) {
                    out[i] = c.library_scalar(xs[i]);
                }
            });

        // The replaced path, reproduced step for step from the generic
        // eval_sweep loop: JSON clone -> member poke -> parse_request
        // (canonicalization included) -> evaluate -> dump -> re-parse ->
        // metric extraction.
        const json::value target_doc = json::parse(c.target_line);
        const std::vector<double> exs = make_grid(engine_lanes);
        std::vector<double> eout(exs.size());
        r.engine_rate = rate_lanes_per_s(engine_lanes, min_seconds, [&] {
            for (std::size_t i = 0; i < exs.size(); ++i) {
                json::value doc = target_doc;
                doc.as_object().set(c.param, json::value{exs[i]});
                const serve::request point = serve::parse_request(doc);
                const std::string result = json::dump(engine.evaluate(point));
                const json::value parsed = json::parse(result);
                eout[i] = parsed.as_object()
                              .find(serve::primary_metric(point.op))
                              ->as_number();
            }
        });

        std::printf(
            "%-22s kernel %12.0f lanes/s | library %12.0f (%5.1fx) | "
            "engine per-point %10.0f (%5.1fx) | bit-exact %s\n",
            c.name.c_str(), r.kernel_rate, r.library_rate,
            r.kernel_rate / r.library_rate, r.engine_rate,
            r.kernel_rate / r.engine_rate, r.bit_exact ? "yes" : "NO");
        results.push_back(std::move(r));
    }

    // Machine-readable results.
    json::object doc;
    doc.set("bench", json::value{std::string{"bench_batch_kernels"}});
    doc.set("tiny", json::value{tiny});
    doc.set("required_speedup_vs_engine", json::value{required_speedup});
    json::array rows;
    bool gate_pass = true;
    for (const case_result& r : results) {
        json::object row;
        row.set("name", json::value{r.name});
        row.set("lanes", json::value{static_cast<double>(r.lanes)});
        row.set("kernel_lanes_per_s", json::value{r.kernel_rate});
        row.set("library_scalar_lanes_per_s", json::value{r.library_rate});
        row.set("engine_perpoint_lanes_per_s", json::value{r.engine_rate});
        row.set("speedup_vs_library",
                json::value{r.kernel_rate / r.library_rate});
        row.set("speedup_vs_engine",
                json::value{r.kernel_rate / r.engine_rate});
        row.set("bit_exact", json::value{r.bit_exact});
        rows.push_back(json::value{std::move(row)});
        if (r.kernel_rate < required_speedup * r.engine_rate) {
            gate_pass = false;
        }
    }
    doc.set("kernels", json::value{std::move(rows)});
    json::object gate;
    gate.set("skipped", json::value{tiny});
    gate.set("pass", json::value{tiny || (gate_pass && all_exact)});
    doc.set("gate", json::value{std::move(gate)});

    const std::string path = "BENCH_kernels.json";
    std::ofstream file{path, std::ios::binary | std::ios::trunc};
    file << json::dump(json::value{std::move(doc)}) << "\n";
    file.close();
    std::printf("[json] wrote %s\n", path.c_str());

    if (!all_exact) {
        std::printf("FAIL: kernel output not bit-exact\n");
        return 1;
    }
    if (tiny) {
        std::printf("OK: tiny mode, speedup gate skipped\n");
        return 0;
    }
    if (!gate_pass) {
        std::printf("FAIL: kernel < %.0fx engine per-point rate\n",
                    required_speedup);
        return 1;
    }
    std::printf("OK: every kernel >= %.0fx the per-point path it replaced\n",
                required_speedup);
    return 0;
}
