// bench_ablate_shrink — ablation A13: when does a product shrink pay?
// The strategic question behind ref [26]'s "product shrink
// applications": port an existing die to the next generation or stay?
// Sweeps the escalation rate X and the yield regime, and reports the
// break-even X per shrink step.

#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/shrink.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A13 - product shrink economics");

    core::product_spec product;
    product.name = "3M-transistor uP";
    product.transistors = 3.0e6;
    product.design_density = 150.0;
    product.feature_size = microns{0.8};

    analysis::text_table table;
    table.add_column("X", analysis::align::right, 1);
    table.add_column("target [um]", analysis::align::right, 2);
    table.add_column("die ratio", analysis::align::right, 2);
    table.add_column("N_ch ratio", analysis::align::right, 2);
    table.add_column("C_w ratio", analysis::align::right, 2);
    table.add_column("Y ratio", analysis::align::right, 2);
    table.add_column("cost ratio", analysis::align::right, 3);
    table.add_column("pays?", analysis::align::left);
    table.add_column("breakeven X", analysis::align::right, 2);

    for (double x : {1.2, 1.6, 2.0, 2.4, 2.6, 2.8}) {
        core::process_spec process{
            cost::wafer_cost_model{dollars{700.0}, x},
            geometry::wafer::six_inch(),
            yield::reference_die_yield{probability{0.8}},
            geometry::gross_die_method::maly_rows};
        const core::shrink_analysis a =
            core::analyze_shrink(process, product, microns{0.6});
        table.begin_row();
        table.add_number(x);
        table.add_number(0.6);
        table.add_number(a.area_ratio);
        table.add_number(a.gross_die_ratio);
        table.add_number(a.wafer_cost_ratio);
        table.add_number(a.yield_ratio);
        table.add_number(a.cost_ratio);
        table.add_cell(a.shrink_pays ? "yes" : "NO");
        table.add_number(a.breakeven_x);
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "finding: the 0.8 -> 0.6 um shrink of a 3M-transistor die "
           "pays for X below ~2.5 and\nturns into a loss above -- the "
           "per-product version of the paper's Scenario #1 vs #2\n"
           "contrast, and the quantitative form of \"the optimum solution "
           "may not call for the\nsmallest possible (and expensive) "
           "feature size.\"\n";
    return 0;
}
