// bench_ablate_mcm — ablation A5 (Sec. VI, refs [30,31]): the MCM
// known-good-die problem.  Sweeps module die count under three assembly
// strategies (bare sorted dies, KGD-tested dies, active smart substrate
// with post-assembly diagnosis/rework) and locates the crossovers.

#include "analysis/ascii_chart.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "cost/mcm.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Ablation A5 - MCM strategies vs die count");

    cost::mcm_die die;
    die.name = "logic die";
    die.cost = dollars{15.0};
    die.sort_escape = probability{0.05};
    die.attach_yield = probability{0.99};

    analysis::text_table table;
    table.add_column("dies");
    table.add_column("bare Y", analysis::align::right, 3);
    table.add_column("bare $/good", analysis::align::right, 0);
    table.add_column("KGD $/good", analysis::align::right, 0);
    table.add_column("smart $/good", analysis::align::right, 0);
    table.add_column("winner", analysis::align::left);

    analysis::series bare{"bare"};
    analysis::series kgd{"known-good-die"};
    analysis::series smart{"smart substrate"};
    for (int n = 1; n <= 24; ++n) {
        const cost::mcm_config config = cost::uniform_module(n, die);
        const auto results = cost::compare_mcm_strategies(config);
        const double b = results[0].cost_per_good_module.value();
        const double k = results[1].cost_per_good_module.value();
        const double s = results[2].cost_per_good_module.value();
        bare.add(n, b);
        kgd.add(n, k);
        smart.add(n, s);
        const char* winner =
            b <= k && b <= s ? "bare" : (k <= s ? "KGD" : "smart");
        if (n == 1 || n % 2 == 0) {
            table.begin_row();
            table.add_integer(n);
            table.add_number(results[0].module_yield.value());
            table.add_number(b);
            table.add_number(k);
            table.add_number(s);
            table.add_cell(winner);
        }
    }
    std::cout << table.to_string() << "\n";
    std::cout
        << "paper claim reproduced (Sec. VI): judging an MCM by substrate "
           "cost alone misleads --\nthe expensive active \"smart "
           "substrate\" [30] minimizes *system* cost once the module\n"
           "grows past a handful of dies, because bare-die escapes scrap "
           "whole modules while the\nsmart substrate converts them into "
           "single-die rework.\n\n";

    analysis::ascii_chart_options options;
    options.title = "MCM cost per good module vs die count (log y)";
    options.x_label = "dies per module";
    options.y_scale = analysis::scale::log10;
    std::cout << analysis::render_ascii_chart({bare, kgd, smart}, options);

    analysis::svg_chart_options svg;
    svg.title = "MCM assembly strategies (Sec. VI)";
    svg.x_label = "dies per module";
    svg.y_label = "cost per good module [$]";
    svg.y_log = true;
    bench::save_svg("ablate_mcm.svg",
                    analysis::render_svg_line_chart({bare, kgd, smart},
                                                    svg));
    return 0;
}
