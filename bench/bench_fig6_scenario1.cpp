// bench_fig6_scenario1 — reproduces Fig. 6: cost per transistor under the
// optimistic Scenario #1 (memory-style: redundancy, 100% mature yield,
// high volume) for X = 1.1, 1.2, 1.3 with C_0 = $500, d_d = 30,
// R_w = 7.5 cm.  The paper's claim: C_tr falls as the feature shrinks.

#include "analysis/ascii_chart.hpp"
#include "analysis/sweep.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"

#include <iostream>

int main() {
    using namespace silicon;
    bench::banner("Fig. 6 - C_tr under Scenario #1 (X = 1.1, 1.2, 1.3)");

    const std::vector<double> lambdas = analysis::linspace(1.0, 0.25, 16);
    std::vector<core::scenario1> scenarios;
    for (double x : {1.1, 1.2, 1.3}) {
        core::scenario1 s;
        s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, x};
        scenarios.push_back(s);
    }

    analysis::text_table table;
    table.add_column("lambda [um]", analysis::align::right, 2);
    table.add_column("X=1.1 [u$/tr]", analysis::align::right, 4);
    table.add_column("X=1.2 [u$/tr]", analysis::align::right, 4);
    table.add_column("X=1.3 [u$/tr]", analysis::align::right, 4);

    std::vector<analysis::series> curves = {
        analysis::series{"X = 1.1"}, analysis::series{"X = 1.2"},
        analysis::series{"X = 1.3"}};
    for (double lambda : lambdas) {
        table.begin_row();
        table.add_number(lambda);
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const double micro =
                scenarios[i].cost_per_transistor(microns{lambda}).value() *
                1e6;
            table.add_number(micro);
            curves[i].add(lambda, micro);
        }
    }
    std::cout << table.to_string() << "\n";

    for (const analysis::series& curve : curves) {
        const double drop = curve.points().front().y /
                            curve.points().back().y;
        std::cout << curve.name() << ": C_tr(1.0 um) / C_tr(0.25 um) = "
                  << drop << " (falls as lambda shrinks: "
                  << (drop > 1.0 ? "YES" : "NO") << ")\n";
    }
    std::cout << "\npaper claim reproduced: \"Because the number of "
                 "transistors per wafer increases faster than the wafer\n"
                 "cost, C_tr goes down when feature size decreases.\"\n\n";

    analysis::ascii_chart_options options;
    options.title = "Fig. 6: C_tr [micro-$] vs lambda, Scenario #1";
    options.x_label = "minimum feature size [um]";
    options.y_scale = analysis::scale::log10;
    std::cout << analysis::render_ascii_chart(curves, options);

    analysis::svg_chart_options svg;
    svg.title = "Fig. 6 reproduction: Scenario #1 cost per transistor";
    svg.x_label = "minimum feature size [um]";
    svg.y_label = "C_tr [micro-dollars]";
    svg.y_log = true;
    bench::save_svg("fig6_scenario1.svg",
                    analysis::render_svg_line_chart(curves, svg));
    return 0;
}
