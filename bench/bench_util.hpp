// bench_util.hpp — shared helpers for the figure/table reproduction
// benches.  Each bench prints the paper-style rows/series to stdout and
// drops SVG plots into ./bench_output/ so the figures can be compared to
// the paper's visually.

#pragma once

#include "analysis/svg_chart.hpp"

#include <filesystem>
#include <iostream>
#include <string>

namespace silicon::bench {

/// Directory SVG outputs land in (created on demand).
inline std::string output_dir() {
    const std::string dir = "bench_output";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    return dir;
}

/// Write an SVG next to the bench outputs and announce it.
inline void save_svg(const std::string& filename, const std::string& svg) {
    const std::string path = output_dir() + "/" + filename;
    try {
        analysis::write_file(path, svg);
        std::cout << "[svg] wrote " << path << "\n";
    } catch (const std::exception& e) {
        std::cout << "[svg] skipped " << path << ": " << e.what() << "\n";
    }
}

/// Section banner.
inline void banner(const std::string& title) {
    std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace silicon::bench
