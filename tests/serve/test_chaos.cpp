// Overload, deadline, fault-injection and transport-robustness tests
// (DESIGN.md §11).  Lives in its own test binary: the fault switchboard
// (serve/faults) is process-global state, and these tests arm it — they
// must not share a process with the rest of the serve suite.

#include "exec/cancel.hpp"
#include "serve/engine.hpp"
#include "serve/event_loop.hpp"
#include "serve/faults.hpp"
#include "serve/io.hpp"
#include "serve/json.hpp"
#include "serve/limits.hpp"
#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace faults = silicon::serve::faults;
namespace io = silicon::serve::io;
using silicon::serve::admission_controller;
using silicon::serve::append_batch_too_large;
using silicon::serve::append_line_too_large;
using silicon::serve::append_overloaded;
using silicon::serve::scan_trace_id;
using silicon::serve::engine;
using silicon::serve::engine_config;
using silicon::serve::reject_reason;

namespace {

/// Every test leaves the global switchboard disarmed.
struct faults_guard {
    ~faults_guard() { faults::reset(); }
};

std::string error_code(const std::string& response) {
    const silicon::serve::json::value v =
        silicon::serve::json::parse(response);
    const auto* ok = v.as_object().find("ok");
    if (ok == nullptr || !ok->is_bool() || ok->as_bool()) {
        return "";
    }
    return std::string{
        v.as_object().find("error")->as_object().find("code")->as_string()};
}

// ---------------------------------------------------------------------------
// Fault switchboard
// ---------------------------------------------------------------------------

TEST(Faults, MalformedSpecsThrowLoudly) {
    const faults_guard guard;
    EXPECT_THROW(faults::configure("nonsense"), std::invalid_argument);
    EXPECT_THROW(faults::configure("explode@serve.line"),
                 std::invalid_argument);
    EXPECT_THROW(faults::configure("alloc_fail@"), std::invalid_argument);
    EXPECT_THROW(faults::configure("alloc_fail@serve.line:0"),
                 std::invalid_argument);
    EXPECT_THROW(faults::configure("alloc_fail@serve.line:x"),
                 std::invalid_argument);
    EXPECT_THROW(faults::configure("alloc_fail@serve.line,"),
                 std::invalid_argument);
    EXPECT_FALSE(faults::enabled());
}

TEST(Faults, EmptySpecDisarms) {
    const faults_guard guard;
    faults::configure("alloc_fail@serve.line");
    EXPECT_TRUE(faults::enabled());
    faults::configure("");
    EXPECT_FALSE(faults::enabled());
    EXPECT_FALSE(faults::should_fail("serve.line"));
}

TEST(Faults, AllocFailPeriodicity) {
    const faults_guard guard;
    faults::configure("alloc_fail@serve.arena:3");
    int fired = 0;
    for (int i = 0; i < 9; ++i) {
        if (faults::should_fail("serve.arena")) {
            ++fired;
        }
    }
    EXPECT_EQ(fired, 3);  // every 3rd arrival
    EXPECT_EQ(faults::injected("serve.arena"), 3u);
    EXPECT_EQ(faults::injected_total(), 3u);
    // Other sites are untouched.
    EXPECT_FALSE(faults::should_fail("serve.line"));
}

TEST(Faults, EintrCyclesNFailuresThenSuccess) {
    const faults_guard guard;
    faults::configure("eintr@silicond.write:2");
    EXPECT_TRUE(faults::take_eintr("silicond.write"));
    EXPECT_TRUE(faults::take_eintr("silicond.write"));
    EXPECT_FALSE(faults::take_eintr("silicond.write"));  // the success
    EXPECT_TRUE(faults::take_eintr("silicond.write"));   // cycle repeats
    EXPECT_EQ(faults::injected("silicond.write"), 3u);
}

TEST(Faults, ShortWriteCapAndReset) {
    const faults_guard guard;
    faults::configure("short_write@silicond.write:7");
    EXPECT_EQ(faults::write_cap("silicond.write"), 7u);
    EXPECT_EQ(faults::write_cap("silicond.read"), 0u);
    faults::reset();
    EXPECT_EQ(faults::write_cap("silicond.write"), 0u);
    EXPECT_EQ(faults::injected_total(), 0u);
}

// ---------------------------------------------------------------------------
// EINTR-safe writes
// ---------------------------------------------------------------------------

TEST(WriteAll, RetriesShortWritesAndEintr) {
    std::string sink;
    int eintrs_left = 3;
    const io::write_fn shim = [&](const char* data, std::size_t size) -> long {
        if (eintrs_left > 0) {
            --eintrs_left;
            errno = EINTR;
            return -1;
        }
        // Accept at most 2 bytes per call: forces short-write retries.
        const std::size_t take = size < 2 ? size : 2;
        sink.append(data, take);
        return static_cast<long>(take);
    };
    EXPECT_TRUE(io::write_all("hello, world", shim));
    EXPECT_EQ(sink, "hello, world");
    EXPECT_EQ(eintrs_left, 0);
}

TEST(WriteAll, HardErrorReturnsFalse) {
    int calls = 0;
    const io::write_fn shim = [&](const char*, std::size_t) -> long {
        ++calls;
        errno = EPIPE;
        return -1;
    };
    EXPECT_FALSE(io::write_all("data", shim));
    EXPECT_EQ(calls, 1);  // no retry on a dead peer
}

TEST(WriteAll, EmptyDataSucceedsWithoutWriting) {
    const io::write_fn shim = [](const char*, std::size_t) -> long {
        ADD_FAILURE() << "write_fn called for empty data";
        return -1;
    };
    EXPECT_TRUE(io::write_all("", shim));
}

// ---------------------------------------------------------------------------
// Bounded line framing
// ---------------------------------------------------------------------------

struct framed {
    std::string line;
    bool oversized;
};

std::vector<framed> frame(io::line_splitter& splitter,
                          const std::vector<std::string>& chunks,
                          bool finish = true) {
    std::vector<framed> out;
    const auto on_line = [&](std::string_view line, bool oversized) {
        out.push_back({std::string{line}, oversized});
    };
    for (const std::string& chunk : chunks) {
        splitter.feed(chunk, on_line);
    }
    if (finish) {
        splitter.finish(on_line);
    }
    return out;
}

TEST(LineSplitter, SplitsAcrossChunkBoundaries) {
    io::line_splitter splitter{64};
    const std::vector<framed> lines =
        frame(splitter, {"ab", "c\nde", "f\n", "tail"});
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].line, "abc");
    EXPECT_EQ(lines[1].line, "def");
    EXPECT_EQ(lines[2].line, "tail");  // finish() delivers the remainder
    for (const framed& f : lines) {
        EXPECT_FALSE(f.oversized);
    }
}

TEST(LineSplitter, StripsOneTrailingCarriageReturn) {
    io::line_splitter splitter{64};
    const std::vector<framed> lines = frame(splitter, {"a\r\nb\r\r\n"});
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].line, "a");
    EXPECT_EQ(lines[1].line, "b\r");  // only one CR stripped
}

TEST(LineSplitter, OversizedLineIsDiscardedOnceInOrder) {
    io::line_splitter splitter{6};
    const std::vector<framed> lines =
        frame(splitter, {"ok\n", std::string(10, 'x') + "\nafter\n"});
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].line, "ok");
    EXPECT_TRUE(lines[1].oversized);
    EXPECT_TRUE(lines[1].line.empty());  // content dropped, not delivered
    EXPECT_EQ(lines[2].line, "after");
    EXPECT_FALSE(lines[2].oversized);
}

TEST(LineSplitter, NewlineFreeFloodIsBoundedAndReportedOnce) {
    io::line_splitter splitter{8};
    std::vector<framed> events;
    const auto on_line = [&](std::string_view line, bool oversized) {
        events.push_back({std::string{line}, oversized});
    };
    // 1 MiB without a newline must not buffer more than the budget.
    const std::string chunk(4096, 'y');
    for (int i = 0; i < 256; ++i) {
        splitter.feed(chunk, on_line);
        EXPECT_LE(splitter.buffered_bytes(), 8u);
    }
    ASSERT_EQ(events.size(), 1u);  // one event for the whole flood
    EXPECT_TRUE(events[0].oversized);
    // The flood's eventual newline ends the discard; framing recovers.
    splitter.feed("\nok\n", on_line);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].line, "ok");
    EXPECT_FALSE(events[1].oversized);
}

TEST(LineSplitter, FinishReportsOversizedPartial) {
    io::line_splitter splitter{4};
    const std::vector<framed> lines = frame(splitter, {"toolongtail"});
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(lines[0].oversized);
}

TEST(LineSplitter, ZeroBudgetIsUnbounded) {
    io::line_splitter splitter{0};
    const std::string big(1 << 20, 'z');
    const std::vector<framed> lines = frame(splitter, {big + "\n"});
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_FALSE(lines[0].oversized);
    EXPECT_EQ(lines[0].line.size(), big.size());
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, ZeroBudgetAdmitsWithoutLedger) {
    admission_controller ac;
    const auto ticket = ac.admit(1 << 30, 0);
    EXPECT_TRUE(static_cast<bool>(ticket));
    EXPECT_EQ(ac.inflight_bytes(), 0u);
}

TEST(Admission, TicketReleasesItsBytes) {
    admission_controller ac;
    {
        const auto ticket = ac.admit(100, 1000);
        EXPECT_TRUE(static_cast<bool>(ticket));
        EXPECT_EQ(ac.inflight_bytes(), 100u);
    }
    EXPECT_EQ(ac.inflight_bytes(), 0u);
}

TEST(Admission, OverBudgetRejectsAndRollsBack) {
    admission_controller ac;
    const auto held = ac.admit(900, 1000);
    const auto rejected = ac.admit(200, 1000, /*rejected_lines=*/3);
    EXPECT_FALSE(static_cast<bool>(rejected));
    EXPECT_EQ(ac.inflight_bytes(), 900u);  // rollback left no residue
    EXPECT_EQ(ac.rejected(reject_reason::overloaded), 3u);
    EXPECT_EQ(ac.rejected_total(), 3u);
}

TEST(Admission, OversizedButAloneIsAdmitted) {
    // A request bigger than the whole budget must still run when the
    // server is idle — budgets shed load, they do not ban inputs.
    admission_controller ac;
    const auto ticket = ac.admit(5000, 1000);
    EXPECT_TRUE(static_cast<bool>(ticket));
    // ...but it blocks everything else until it releases.
    const auto second = ac.admit(1, 1000);
    EXPECT_FALSE(static_cast<bool>(second));
}

// ---------------------------------------------------------------------------
// Shed-path trace correlation: scan_trace_id + the rejection envelopes
// ---------------------------------------------------------------------------

TEST(ScanTraceId, FindsTheStillEscapedMember) {
    EXPECT_EQ(scan_trace_id(R"({"op":"x","trace_id":"t-1"})"), "t-1");
    EXPECT_EQ(scan_trace_id(R"({"trace_id" : "a b","op":"x"})"), "a b");
    // Escapes are returned raw so they can be spliced verbatim.
    EXPECT_EQ(scan_trace_id(R"({"trace_id":"say \"hi\"\n"})"),
              R"(say \"hi\"\n)");
    EXPECT_EQ(scan_trace_id(R"({"trace_id":"é☃"})"),
              R"(é☃)");
}

TEST(ScanTraceId, RejectsMalformedOrMissing) {
    EXPECT_EQ(scan_trace_id(R"({"op":"x"})"), "");
    EXPECT_EQ(scan_trace_id(R"({"trace_id":42})"), "");
    EXPECT_EQ(scan_trace_id(R"({"trace_id":"unterminated)"), "");
    EXPECT_EQ(scan_trace_id("{\"trace_id\":\"ctrl\x01byte\"}"), "");
    EXPECT_EQ(scan_trace_id(R"({"trace_id":"bad \q escape"})"), "");
    EXPECT_EQ(scan_trace_id(R"({"trace_id":"bad \u12g4 hex"})"), "");
    // Beyond the bounded scan window the member is ignored.
    const std::string far = "{\"pad\":\"" + std::string(5000, 'x') +
                            "\",\"trace_id\":\"t-far\"}";
    EXPECT_EQ(scan_trace_id(far), "");
}

TEST(RejectionEnvelopes, OverloadedEchoesScannedTrace) {
    std::string out;
    append_overloaded(scan_trace_id(R"({"op":"x","trace_id":"t-o"})"), out);
    EXPECT_EQ(out.rfind(R"({"trace_id":"t-o","ok":false)", 0), 0u) << out;
    EXPECT_NE(out.find(R"("code":"overloaded")"), std::string::npos);

    // No trace in the line: the envelope is byte-identical to the
    // pre-trace format (the golden-compatibility contract).
    std::string bare;
    append_overloaded(scan_trace_id(R"({"op":"x"})"), bare);
    EXPECT_EQ(bare.rfind(R"({"ok":false)", 0), 0u) << bare;
    EXPECT_EQ(bare.find("trace_id"), std::string::npos);
}

TEST(RejectionEnvelopes, BatchTooLargeEchoesScannedTrace) {
    std::string out;
    append_batch_too_large(64, scan_trace_id(R"({"trace_id":"t-b"})"), out);
    EXPECT_EQ(out.rfind(R"({"trace_id":"t-b","ok":false)", 0), 0u) << out;
    EXPECT_NE(out.find("max_batch_lines 64"), std::string::npos);
}

TEST(RejectionEnvelopes, LineTooLargeStaysTraceFree) {
    // An over-long line's framing is suspect; nothing scanned out of
    // it is trustworthy, so the envelope never carries a trace.
    std::string out;
    append_line_too_large(128, out);
    EXPECT_EQ(out.find("trace_id"), std::string::npos);
    EXPECT_NE(out.find("max_line_bytes 128"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine limits: structural too_large rejections
// ---------------------------------------------------------------------------

engine_config limited_config() {
    engine_config config;
    config.parallelism = 1;
    config.limits.max_line_bytes = 96;
    config.limits.max_batch_lines = 3;
    config.limits.max_sweep_points = 8;
    config.limits.max_mc_dies = 100;
    return config;
}

TEST(EngineLimits, LongLineAnsweredTooLarge) {
    engine e{limited_config()};
    const std::string line =
        "{\"op\":\"scenario1\",\"note\":\"" + std::string(200, 'x') + "\"}";
    const std::string response = e.handle_line(line);
    EXPECT_EQ(error_code(response), "too_large");
    EXPECT_NE(response.find("max_line_bytes 96"), std::string::npos);
    EXPECT_EQ(e.admission().rejected(reject_reason::line_too_large), 1u);
}

TEST(EngineLimits, OversizedBatchRejectsEveryLine) {
    engine e{limited_config()};
    const std::vector<std::string> lines(5, "{\"op\":\"scenario1\"}");
    const std::vector<std::string> responses = e.handle_batch(lines);
    ASSERT_EQ(responses.size(), 5u);
    for (const std::string& response : responses) {
        EXPECT_EQ(error_code(response), "too_large");
        EXPECT_NE(response.find("max_batch_lines 3"), std::string::npos);
    }
    EXPECT_EQ(e.admission().rejected(reject_reason::batch_too_large), 5u);
}

TEST(EngineLimits, SweepAndMcBudgets) {
    engine e{limited_config()};
    const std::string sweep = e.handle_line(
        "{\"op\":\"sweep\",\"param\":\"lambda_um\",\"from\":0.1,\"to\":1.0,"
        "\"count\":9,\"target\":{\"op\":\"scenario1\"}}");
    EXPECT_EQ(error_code(sweep), "too_large");
    EXPECT_EQ(e.admission().rejected(reject_reason::sweep_too_large), 1u);

    const std::string mc =
        e.handle_line("{\"op\":\"mc_yield\",\"dies\":101,\"seed\":1}");
    EXPECT_EQ(error_code(mc), "too_large");
    EXPECT_EQ(e.admission().rejected(reject_reason::mc_too_large), 1u);

    // At the budget is fine.
    const std::string ok =
        e.handle_line("{\"op\":\"mc_yield\",\"dies\":100,\"seed\":1}");
    EXPECT_EQ(error_code(ok), "");
}

TEST(EngineLimits, PartitionExploreGridChargesCellsAgainstSweepBudget) {
    engine e{limited_config()};  // max_sweep_points = 8
    // 3 splits x 3 grid points = 9 cells: one past the budget.
    const std::string over = e.handle_line(
        "{\"op\":\"partition_explore\",\"splits\":\"1,2,4\",\"count\":3}");
    EXPECT_EQ(error_code(over), "too_large");
    EXPECT_NE(over.find("max_sweep_points 8"), std::string::npos);
    EXPECT_EQ(e.admission().rejected(reject_reason::explore_too_large), 1u);

    // 2 splits x 4 grid points = 8 cells: exactly at the budget.
    const std::string ok = e.handle_line(
        "{\"op\":\"partition_explore\",\"splits\":\"1,2\",\"count\":4}");
    EXPECT_EQ(error_code(ok), "");
    EXPECT_EQ(e.admission().rejected(reject_reason::explore_too_large), 1u);
}

TEST(EngineLimits, InflightBudgetAnswersOverloadedWithoutResidue) {
    engine_config config;
    config.parallelism = 1;
    config.limits.max_inflight_bytes = 1;
    engine tight{config};
    // The first admit always passes (alone), so issue two lines and use
    // the admission ledger to prove the reject + rollback shape instead
    // of racing real concurrency: handle_line admits, serves, releases —
    // serially each line is alone, so both succeed...
    EXPECT_EQ(error_code(tight.handle_line("{\"op\":\"scenario1\"}")), "");
    EXPECT_EQ(tight.admission().inflight_bytes(), 0u);
    // ...and the overloaded envelope itself is exercised at the
    // admission-controller layer (Admission.OverBudgetRejectsAndRollsBack)
    // plus end-to-end by tools/chaosclient.
}

TEST(EngineLimits, UnlimitedConfigBytesIdenticalToLimited) {
    // A request under every budget must serialize byte-identically with
    // and without limits armed (the golden-compatibility contract).
    engine_config plain;
    plain.parallelism = 1;
    engine unlimited{plain};
    engine limited{limited_config()};
    for (const char* line :
         {"{\"op\":\"scenario1\"}", "{\"op\":\"mc_yield\",\"dies\":50}",
          "{\"op\":\"gross_die\"}", "not json"}) {
        EXPECT_EQ(unlimited.handle_line(line), limited.handle_line(line))
            << line;
    }
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(Deadlines, ZeroDeadlineAnswersDeadlineExceeded) {
    engine_config config;
    config.parallelism = 1;
    engine e{config};
    const std::string response = e.handle_line(
        "{\"op\":\"mc_yield\",\"dies\":50,\"seed\":3,\"deadline_ms\":0,"
        "\"id\":\"z\"}");
    EXPECT_EQ(error_code(response), "deadline_exceeded");
    EXPECT_NE(response.find("\"id\":\"z\""), std::string::npos);
    EXPECT_EQ(e.deadline_exceeded_total(), 1u);
}

TEST(Deadlines, ZeroDeadlineIsByteDeterministicAcrossThreads) {
    const std::vector<std::string> lines{
        "{\"op\":\"mc_yield\",\"dies\":50,\"seed\":3,\"deadline_ms\":0}",
        "{\"op\":\"sweep\",\"param\":\"lambda_um\",\"from\":0.1,\"to\":1.0,"
        "\"count\":4,\"target\":{\"op\":\"scenario1\"},\"deadline_ms\":0}",
        "{\"op\":\"scenario1\",\"deadline_ms\":0}",
        "{\"op\":\"chiplet\",\"deadline_ms\":0}",
        "{\"op\":\"partition_explore\",\"splits\":\"1,2,4\",\"count\":5,"
        "\"deadline_ms\":0}",
    };
    std::vector<std::vector<std::string>> outputs;
    for (const unsigned threads : {1u, 4u, 0u}) {
        engine_config config;
        config.parallelism = threads;
        engine e{config};
        outputs.push_back(e.handle_batch(lines));
    }
    EXPECT_EQ(outputs[0], outputs[1]);
    EXPECT_EQ(outputs[0], outputs[2]);
    for (const std::string& response : outputs[0]) {
        EXPECT_EQ(error_code(response), "deadline_exceeded") << response;
    }
}

TEST(Deadlines, ExpiredResultIsNeverCached) {
    engine_config config;
    config.parallelism = 1;
    engine e{config};
    const std::string expired = e.handle_line(
        "{\"op\":\"mc_yield\",\"dies\":50,\"seed\":3,\"deadline_ms\":0}");
    EXPECT_EQ(error_code(expired), "deadline_exceeded");
    // The same request without a deadline must evaluate fresh — a
    // cached deadline error would poison every future query.
    const std::string fresh =
        e.handle_line("{\"op\":\"mc_yield\",\"dies\":50,\"seed\":3}");
    EXPECT_EQ(error_code(fresh), "");
    // And a warm cache must not mask an expired deadline either.
    const std::string still_expired = e.handle_line(
        "{\"op\":\"mc_yield\",\"dies\":50,\"seed\":3,\"deadline_ms\":0}");
    EXPECT_EQ(error_code(still_expired), "deadline_exceeded");
}

TEST(Deadlines, GenerousDeadlineDoesNotPerturbResults) {
    engine_config plain;
    plain.parallelism = 1;
    engine reference{plain};
    engine_config with_deadline = plain;
    with_deadline.limits.default_deadline_ms = 60000;
    engine deadlined{with_deadline};
    for (const char* line :
         {"{\"op\":\"scenario1\"}", "{\"op\":\"mc_yield\",\"dies\":200}",
          "{\"op\":\"table3\",\"row\":3}"}) {
        EXPECT_EQ(reference.handle_line(line), deadlined.handle_line(line))
            << line;
    }
    // deadline_ms is envelope-level: it must not split the cache key.
    const std::string warm = deadlined.handle_line(
        "{\"op\":\"scenario1\",\"deadline_ms\":60000}");
    EXPECT_EQ(warm, reference.handle_line("{\"op\":\"scenario1\"}"));
}

TEST(Deadlines, SweepTargetMayNotCarryDeadline) {
    engine_config config;
    config.parallelism = 1;
    engine e{config};
    const std::string response = e.handle_line(
        "{\"op\":\"sweep\",\"param\":\"lambda_um\",\"from\":0.1,\"to\":1.0,"
        "\"count\":3,\"target\":{\"op\":\"scenario1\",\"deadline_ms\":5}}");
    EXPECT_EQ(error_code(response), "bad_param");
}

// ---------------------------------------------------------------------------
// Fault injection through the engine
// ---------------------------------------------------------------------------

TEST(EngineFaults, AllocFailAtServeLineAnswersInternalError) {
    const faults_guard guard;
    engine_config config;
    config.parallelism = 1;
    engine e{config};
    faults::configure("alloc_fail@serve.line");
    // The fault fires before the parse, so the envelope carries no id —
    // but it is still exactly one well-formed reply for the line.
    const std::string response =
        e.handle_line("{\"op\":\"scenario1\",\"id\":\"f\"}");
    EXPECT_EQ(error_code(response), "internal_error");
    EXPECT_GE(faults::injected("serve.line"), 1u);
    faults::reset();
    EXPECT_EQ(error_code(e.handle_line("{\"op\":\"scenario1\"}")), "");
}

TEST(EngineFaults, AllocFailAtServeEvalAnswersInternalError) {
    const faults_guard guard;
    engine_config config;
    config.parallelism = 1;
    config.hot_path = false;  // route through the legacy pipeline
    engine e{config};
    faults::configure("alloc_fail@serve.eval");
    EXPECT_EQ(error_code(e.handle_line("{\"op\":\"scenario1\"}")),
              "internal_error");
    EXPECT_GE(faults::injected("serve.eval"), 1u);
}

TEST(EngineFaults, AllocFailAtServeEvalCoversChipletEndpoints) {
    const faults_guard guard;
    engine_config config;
    config.parallelism = 1;
    config.hot_path = false;  // route through the legacy pipeline
    engine e{config};
    faults::configure("alloc_fail@serve.eval");
    EXPECT_EQ(error_code(e.handle_line("{\"op\":\"chiplet\"}")),
              "internal_error");
    EXPECT_EQ(error_code(e.handle_line(
                  "{\"op\":\"partition_explore\",\"splits\":\"1,2\","
                  "\"count\":4}")),
              "internal_error");
    EXPECT_GE(faults::injected("serve.eval"), 2u);
    faults::reset();
    // Neither internal_error may have been cached: both evaluate fresh.
    EXPECT_EQ(error_code(e.handle_line("{\"op\":\"chiplet\"}")), "");
    EXPECT_EQ(error_code(e.handle_line(
                  "{\"op\":\"partition_explore\",\"splits\":\"1,2\","
                  "\"count\":4}")),
              "");
}

TEST(EngineFaults, ArenaFaultDegradesToLegacyPathSameBytes) {
    const faults_guard guard;
    engine_config config;
    config.parallelism = 1;
    engine e{config};
    const std::string line = "{\"op\":\"scenario1\"}";
    const std::string reference = e.handle_line(line);  // warm the cache
    faults::configure("alloc_fail@serve.arena");
    const std::string degraded = e.handle_line(line);
    EXPECT_EQ(degraded, reference);  // decline, not a failure
    EXPECT_GE(e.hot_declines(), 1u);
}

TEST(EngineFaults, ArenaBudgetDegradesHotPath) {
    engine_config config;
    config.parallelism = 1;
    config.limits.max_arena_reserved_bytes = 1;  // nothing fits
    engine e{config};
    const std::string line = "{\"op\":\"scenario1\"}";
    const std::string first = e.handle_line(line);
    const std::string warm = e.handle_line(line);  // would be a hot hit
    EXPECT_EQ(first, warm);
    EXPECT_GE(e.hot_declines(), 1u);
}

// ---------------------------------------------------------------------------
// Cache shedding
// ---------------------------------------------------------------------------

TEST(CacheShedding, ShedShardsDropsEntriesAndCountsEvictions) {
    silicon::serve::memo_cache cache{64, 4};
    for (int i = 0; i < 16; ++i) {
        cache.put("key" + std::to_string(i), "value");
    }
    const auto before = cache.snapshot();
    ASSERT_EQ(before.entries, 16u);
    const std::size_t dropped = cache.shed_shards(2);
    const auto after = cache.snapshot();
    EXPECT_EQ(after.entries, before.entries - dropped);
    EXPECT_EQ(after.evictions, before.evictions + dropped);
    // Shed shards stay usable.
    cache.put("fresh", "value");
    EXPECT_NE(cache.get("fresh"), nullptr);
}

TEST(CacheShedding, CountClampedToShardCount) {
    silicon::serve::memo_cache cache{16, 2};
    cache.put("a", "1");
    cache.put("b", "2");
    EXPECT_EQ(cache.shed_shards(100), 2u);
    EXPECT_EQ(cache.snapshot().entries, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot fault sites (serve.snapshot_write / serve.snapshot_read)
// ---------------------------------------------------------------------------

/// RAII cleanup for on-disk snapshot fixtures.
struct snapshot_file_guard {
    explicit snapshot_file_guard(const char* tag)
        : path{"chaos_snapshot_" + std::string{tag} + "_" +
               std::to_string(::getpid()) + ".bin"} {}
    ~snapshot_file_guard() {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    std::string path;
};

TEST(SnapshotFaults, InjectedWriteFailureLeavesPreviousSnapshotIntact) {
    const faults_guard guard;
    const snapshot_file_guard file{"write_fail"};
    engine_config config;
    config.parallelism = 1;
    engine writer{config};
    (void)writer.handle_line(R"({"op":"table3","row":1})");
    ASSERT_TRUE(writer.snapshot_write(file.path).ok);

    // More entries arrive, then the next write fails cleanly: the
    // failure is counted and the previous on-disk image survives.
    (void)writer.handle_line(R"({"op":"table3","row":2})");
    faults::configure("alloc_fail@serve.snapshot_write:1");
    const auto failed = writer.snapshot_write(file.path);
    EXPECT_FALSE(failed.ok);
    EXPECT_NE(failed.error.find("injected"), std::string::npos);
    EXPECT_GE(faults::injected("serve.snapshot_write"), 1u);
    const auto info = writer.snapshot_info();
    EXPECT_EQ(info.writes, 1u);
    EXPECT_EQ(info.write_failures, 1u);

    faults::reset();
    engine reader{config};
    const auto restored = reader.snapshot_restore(file.path);
    ASSERT_EQ(restored.outcome,
              silicon::serve::snapshot::restore_outcome::restored);
    EXPECT_EQ(restored.entries, 1u)
        << "the failed write must not have clobbered the good image";
}

TEST(SnapshotFaults, InjectedReadFailureIsCountedColdStart) {
    const faults_guard guard;
    const snapshot_file_guard file{"read_fail"};
    engine_config config;
    config.parallelism = 1;
    {
        engine writer{config};
        (void)writer.handle_line(R"({"op":"table3","row":3})");
        ASSERT_TRUE(writer.snapshot_write(file.path).ok);
    }
    faults::configure("alloc_fail@serve.snapshot_read:1");
    engine reader{config};
    EXPECT_EQ(reader.snapshot_restore(file.path).outcome,
              silicon::serve::snapshot::restore_outcome::cold_corrupt);
    EXPECT_EQ(reader.snapshot_info().restore_failures, 1u);
    EXPECT_EQ(reader.cache_stats().entries, 0u);
    // Cold, not dead: the engine still answers.
    EXPECT_EQ(error_code(reader.handle_line(R"({"op":"table3","row":3})")),
              "");

    // Disarmed, the same file restores fine.
    faults::reset();
    engine retry{config};
    EXPECT_EQ(retry.snapshot_restore(file.path).outcome,
              silicon::serve::snapshot::restore_outcome::restored);
}

TEST(SnapshotFaults, OverloadShedMidSnapshotStaysRestorable) {
    // Regression for the shed_on_overload interplay: the writer
    // captures one shard at a time and derives counts/CRCs from the
    // captured bytes, so a shed landing mid-write (window widened by
    // slow_task) yields a stale-but-restorable image — never torn,
    // never double-counted.  A torn image would fail deserialization's
    // per-shard count/CRC cross-checks and surface as cold_corrupt.
    const faults_guard guard;
    const snapshot_file_guard file{"shed_race"};
    engine_config config;
    config.parallelism = 1;
    config.cache_shards = 4;
    config.limits.shed_on_overload = true;
    config.limits.max_inflight_bytes = 1;
    engine e{config};
    std::vector<std::string> warm;
    for (int row = 0; row < 6; ++row) {
        warm.push_back(R"({"op":"table3","row":)" + std::to_string(row) +
                       "}");
        (void)e.handle_line(warm.back());
    }
    ASSERT_GT(e.cache_stats().entries, 0u);

    faults::configure("slow_task@serve.snapshot_write:2");  // ~8ms window
    std::thread writer{[&] {
        const auto w = e.snapshot_write(file.path);
        EXPECT_TRUE(w.ok) << w.error;
    }};
    // A two-line batch overflows the 1-byte inflight budget: the
    // rejection calls on_overload, which sheds half the shards while
    // the writer is mid-capture; re-warm so later shards have entries.
    for (int round = 0; round < 50; ++round) {
        (void)e.handle_batch({warm[0], warm[1]});
        (void)e.handle_line(warm[round % warm.size()]);
    }
    writer.join();
    EXPECT_GE(faults::injected("serve.snapshot_write"), 4u)
        << "the per-shard delay must actually have fired";

    faults::reset();
    engine_config clean;
    clean.parallelism = 1;
    clean.cache_shards = 4;
    engine reader{clean};
    const auto restored = reader.snapshot_restore(file.path);
    EXPECT_EQ(restored.outcome,
              silicon::serve::snapshot::restore_outcome::restored)
        << restored.reason;
    EXPECT_EQ(reader.snapshot_info().restore_failures, 0u);
    // Whatever subset survived the sheds serves warm and correct.
    for (const std::string& line : warm) {
        EXPECT_EQ(error_code(reader.handle_line(line)), "");
    }
}

// ---------------------------------------------------------------------------
// Observability of the overload surface
// ---------------------------------------------------------------------------

TEST(OverloadObservability, StatsAndPrometheusExposeRejections) {
    engine e{limited_config()};
    (void)e.handle_line(
        "{\"op\":\"scenario1\",\"note\":\"" + std::string(200, 'x') + "\"}");
    (void)e.handle_line("{\"op\":\"mc_yield\",\"dies\":101,\"seed\":1}");

    const std::string stats = e.handle_line("{\"op\":\"stats\"}");
    EXPECT_NE(stats.find("\"overload\""), std::string::npos);
    EXPECT_NE(stats.find("\"line_too_large\":1"), std::string::npos);
    EXPECT_NE(stats.find("\"mc_too_large\":1"), std::string::npos);

    const std::string text = e.prometheus_text();
    EXPECT_NE(
        text.find(
            "silicon_serve_rejected_total{reason=\"line_too_large\"} 1"),
        std::string::npos);
    EXPECT_NE(text.find("silicon_serve_deadline_exceeded_total"),
              std::string::npos);
    EXPECT_NE(text.find("silicon_serve_inflight_bytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault switchboard on the epoll transport (serve/event_loop): the
// `silicond.read` / `silicond.write` sites moved from the blocking
// thread-per-connection loop onto the reactor, and these tests prove
// the faults still *fire* there (via the injected() counters) while the
// response stream stays byte-identical — the level-triggered retry
// contract from event_loop.hpp.
// ---------------------------------------------------------------------------

namespace loop_fixture {

int make_listener(std::uint16_t* port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd, 64), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    *port = ntohs(addr.sin_port);
    return fd;
}

struct harness {
    harness() {
        const int listener = make_listener(&port);
        loop = std::make_unique<silicon::serve::event_loop>(
            eng, listener, silicon::serve::event_loop_config{});
        runner = std::thread{[this] { loop->run(); }};
    }
    ~harness() {
        loop->stop();
        runner.join();
    }
    engine eng;
    std::uint16_t port = 0;
    std::unique_ptr<silicon::serve::event_loop> loop;
    std::thread runner;
};

int connect_client(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

void send_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << std::strerror(errno);
        data.remove_prefix(static_cast<std::size_t>(n));
    }
}

std::vector<std::string> read_lines(int fd, std::size_t count) {
    std::vector<std::string> lines;
    std::string buf;
    char chunk[8192];
    while (lines.size() < count) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            lines.push_back(buf.substr(0, nl));
            buf.erase(0, nl + 1);
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            ADD_FAILURE() << "stream ended after " << lines.size() << " of "
                          << count << " replies";
            return lines;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    return lines;
}

}  // namespace loop_fixture

TEST(EventLoopFaults, InjectedReadEintrFiresAndStreamSurvives) {
    const faults_guard guard;
    faults::configure("eintr@silicond.read:3");
    ASSERT_EQ(faults::injected("silicond.read"), 0u);

    loop_fixture::harness h;
    engine reference;
    const std::string line = "{\"op\":\"table3\"}";
    const std::string want = reference.handle_line(line);
    const int fd = loop_fixture::connect_client(h.port);
    // Every 3rd read pass on the reactor aborts with a synthetic
    // EINTR; level-triggered epoll must re-deliver and no line may be
    // lost or reordered.
    for (int round = 0; round < 32; ++round) {
        loop_fixture::send_all(fd, line + "\n");
        const std::vector<std::string> got =
            loop_fixture::read_lines(fd, 1);
        ASSERT_EQ(got.size(), 1u) << "round " << round;
        EXPECT_EQ(got[0], want) << "round " << round;
    }
    ::close(fd);
    EXPECT_GT(faults::injected("silicond.read"), 0u)
        << "eintr@silicond.read never fired on the epoll read path";
}

TEST(EventLoopFaults, InjectedShortWritesFireAndBytesStayIdentical) {
    const faults_guard guard;
    // Cap every transport write at 7 bytes: each reply needs dozens of
    // write passes through the queue's resumption arithmetic.
    faults::configure("short_write@silicond.write:7");
    ASSERT_EQ(faults::injected("silicond.write"), 0u);

    loop_fixture::harness h;
    engine reference;
    std::vector<std::string> lines;
    lines.emplace_back("{\"op\":\"table3\"}");
    lines.emplace_back("{\"op\":\"scenario1\"}");
    lines.emplace_back("not even json");
    const std::vector<std::string> want = reference.handle_batch(lines);

    const int fd = loop_fixture::connect_client(h.port);
    std::string wire;
    for (const std::string& l : lines) {
        wire += l;
        wire += '\n';
    }
    loop_fixture::send_all(fd, wire);
    const std::vector<std::string> got =
        loop_fixture::read_lines(fd, lines.size());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << "line " << i;
    }
    ::close(fd);
    EXPECT_GT(faults::injected("silicond.write"), 0u)
        << "short_write@silicond.write never fired on the epoll write path";
}

TEST(EventLoopFaults, AbruptCloseDuringPendingWriteDoesNotKillLoop) {
    const faults_guard guard;
    // Short writes guarantee the reply is still queued when the client
    // vanishes, so the reactor takes EPOLLHUP/EPIPE with a non-empty
    // write queue — the hardest teardown ordering.
    faults::configure("short_write@silicond.write:1");

    loop_fixture::harness h;
    for (int round = 0; round < 8; ++round) {
        const int fd = loop_fixture::connect_client(h.port);
        loop_fixture::send_all(fd, "{\"op\":\"table3\"}\n");
        // RST instead of FIN: pending server writes hit ECONNRESET.
        linger hard{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        ::close(fd);
    }
    faults::reset();
    // The loop must still be alive and serving correctly.
    engine reference;
    const int fd = loop_fixture::connect_client(h.port);
    loop_fixture::send_all(fd, "{\"op\":\"table3\"}\n");
    const std::vector<std::string> got = loop_fixture::read_lines(fd, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], reference.handle_line("{\"op\":\"table3\"}"));
    ::close(fd);
}

}  // namespace
