#include "serve/engine.hpp"

#include "opt/partition.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

namespace {

serve::engine_config config_with(unsigned parallelism,
                                 std::size_t cache_capacity = 65536) {
    serve::engine_config c;
    c.parallelism = parallelism;
    c.cache_capacity = cache_capacity;
    return c;
}

/// Every cacheable endpoint with non-default parameters, exercising the
/// full routing surface.
const std::vector<std::string>& endpoint_lines() {
    static const std::vector<std::string> lines = {
        R"({"op":"cost_tr"})",
        R"({"op":"cost_tr","product":{"transistors":4e6,"feature_size_um":0.6},
            "process":{"yield":{"model":"scaled","d":1.72,"p":4.07}},
            "economics":{"overhead_usd":2e6,"volume_wafers":500}})",
        R"({"op":"gross_die","die_width_mm":7.5,"die_height_mm":9,
            "method":"area_ratio"})",
        R"({"op":"yield","model":"poisson","die_area_cm2":0.8})",
        R"({"op":"yield","model":"murphy","defects_per_cm2":0.6})",
        R"({"op":"yield","model":"seeds"})",
        R"({"op":"yield","model":"bose_einstein","critical_steps":12})",
        R"({"op":"yield","model":"neg_binomial","alpha":1.5})",
        R"({"op":"yield","model":"scaled_poisson","lambda_um":0.6})",
        R"({"op":"yield","model":"reference","y0":0.6,"a0_cm2":0.9})",
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","lambda_um":1.1,"y0":0.8})",
        R"({"op":"table3","row":0})",
        R"({"op":"table3","row":5})",
        R"({"op":"mc_yield","dies":400,"seed":11})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,"count":5,
            "target":{"op":"scenario2"}})",
        R"({"op":"sweep","param":"product.transistors","from":1e6,"to":1e8,
            "count":3,"scale":"log","target":{"op":"cost_tr"}})",
    };
    return lines;
}

TEST(Engine, GoldenEquivalenceWithDirectEvaluation) {
    // The served response must be byte-identical to evaluating the
    // parsed request through the reference path (no cache, no batch).
    serve::engine served{config_with(0)};
    serve::engine reference{config_with(1, /*cache_capacity=*/0)};

    for (const std::string& line : endpoint_lines()) {
        const serve::request req = serve::parse_request(json::parse(line));
        const std::string expected =
            "{\"ok\":true,\"result\":" + json::dump(reference.evaluate(req)) +
            "}";
        EXPECT_EQ(served.handle_line(line), expected) << line;
    }
}

TEST(Engine, BatchBitIdenticalAcrossParallelism) {
    std::vector<std::string> lines;
    for (int copy = 0; copy < 40; ++copy) {
        for (const std::string& line : endpoint_lines()) {
            lines.push_back(line);
        }
    }
    lines.push_back(R"({"op":"nope"})");
    lines.push_back("}{ garbage");
    lines.push_back(R"({"op":"scenario1","id":[1,"two",{"three":3}]})");

    serve::engine serial{config_with(1)};
    const std::vector<std::string> expected = serial.handle_batch(lines);
    ASSERT_EQ(expected.size(), lines.size());

    for (unsigned parallelism : {4u, 0u}) {
        serve::engine pooled{config_with(parallelism)};
        EXPECT_EQ(pooled.handle_batch(lines), expected)
            << "parallelism=" << parallelism;
    }
}

TEST(Engine, CacheHitReturnsIdenticalBytes) {
    serve::engine engine{config_with(1)};
    const std::string line = R"({"op":"scenario2","lambda_um":0.9})";
    const std::string cold = engine.handle_line(line);
    const std::string warm = engine.handle_line(line);
    EXPECT_EQ(cold, warm);

    const serve::memo_cache::stats s = engine.cache_stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(Engine, CacheHitsAcrossMemberOrderAndIds) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":4})");
    (void)engine.handle_line(R"({"row":4,"op":"table3","id":9})");
    (void)engine.handle_line(R"({"op":"table3","row":4,"id":"again"})");
    const serve::memo_cache::stats s = engine.cache_stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 2u);
}

TEST(Engine, IdEchoedVerbatim) {
    serve::engine engine{config_with(1)};
    EXPECT_EQ(engine.handle_line(R"({"op":"table3","row":1,"id":42})")
                  .substr(0, 9),
              R"({"id":42,)");
    const std::string nested =
        engine.handle_line(R"({"id":{"a":[1]},"op":"table3","row":1})");
    EXPECT_EQ(nested.substr(0, 16), R"({"id":{"a":[1]},)");
}

TEST(Engine, ErrorEnvelopes) {
    serve::engine engine{config_with(1)};

    const std::string parse = engine.handle_line("not json");
    EXPECT_NE(parse.find(R"("ok":false)"), std::string::npos);
    EXPECT_NE(parse.find(R"("code":"parse_error")"), std::string::npos);

    const std::string unknown = engine.handle_line(R"({"op":"warp"})");
    EXPECT_NE(unknown.find(R"("code":"unknown_op")"), std::string::npos);

    const std::string field =
        engine.handle_line(R"({"op":"scenario1","lambda":1})");
    EXPECT_NE(field.find(R"("code":"unknown_field")"), std::string::npos);

    // Infeasible model input: scenario1 rejects non-positive lambda.
    const std::string domain =
        engine.handle_line(R"({"op":"scenario1","lambda_um":-1})");
    EXPECT_NE(domain.find(R"("ok":false)"), std::string::npos) << domain;

    // Errors keep their id.
    const std::string with_id =
        engine.handle_line(R"({"op":"warp","id":"e1"})");
    EXPECT_EQ(with_id.substr(0, 12), R"({"id":"e1",")");
}

TEST(Engine, TraceIdEchoedOnEveryErrorTaxonomyEnvelope) {
    // The trace must survive every failure class reachable from a
    // parsed request — that is exactly when the operator needs the
    // correlation most.  (`parse_error` is the deliberate exception: a
    // line that failed to parse has no trustworthy members, so nothing
    // is scanned out of it; `overloaded`/`batch_too_large` splice a
    // raw-scanned trace and are pinned in the limits suite.)
    serve::engine_config cfg = config_with(1);
    cfg.limits.max_mc_dies = 100;
    serve::engine engine{cfg};

    const std::pair<const char*, const char*> cases[] = {
        {"unknown_op", R"({"op":"nope","trace_id":"t-x"})"},
        {"bad_request", R"({"op":42,"trace_id":"t-x"})"},
        {"unknown_field", R"({"op":"scenario1","bogus":1,"trace_id":"t-x"})"},
        {"bad_param",
         R"({"op":"scenario1","lambda_um":"half","trace_id":"t-x"})"},
        {"bad_param", R"({"op":"scenario1","lambda_um":0,"trace_id":"t-x"})"},
        {"too_large", R"({"op":"mc_yield","dies":1000,"trace_id":"t-x"})"},
        {"deadline_exceeded",
         R"({"op":"mc_yield","dies":50,"deadline_ms":0,"trace_id":"t-x"})"},
    };
    for (const auto& [code, line] : cases) {
        const std::string response = engine.handle_line(line);
        EXPECT_NE(response.find(std::string{"\"code\":\""} + code + "\""),
                  std::string::npos)
            << line << " -> " << response;
        EXPECT_EQ(response.rfind(R"({"trace_id":"t-x","ok":false)", 0), 0u)
            << line << " -> " << response;
    }

    // A non-string trace_id is itself a schema error (echoing a
    // non-string would corrupt the envelope).
    const std::string bad =
        engine.handle_line(R"({"op":"scenario1","trace_id":42})");
    EXPECT_NE(bad.find(R"("code":"bad_param")"), std::string::npos) << bad;
    EXPECT_EQ(bad.find("\"trace_id\":"), std::string::npos)
        << "non-string trace must not be echoed: " << bad;

    // And a parse error stays trace-free even when the broken bytes
    // happen to contain the member.
    const std::string torn =
        engine.handle_line(R"({"trace_id":"t-torn","op":)");
    EXPECT_NE(torn.find(R"("code":"parse_error")"), std::string::npos);
    EXPECT_EQ(torn.find("t-torn"), std::string::npos) << torn;
}

TEST(Engine, TraceIdEchoPositionAndBytes) {
    serve::engine engine{config_with(1)};
    // With an id: id first, trace second — the envelope key order is
    // part of the wire contract.
    const std::string both = engine.handle_line(
        R"({"id":9,"op":"scenario1","lambda_um":0.5,"trace_id":"t-a"})");
    EXPECT_EQ(both.rfind(R"({"id":9,"trace_id":"t-a","ok":true)", 0), 0u)
        << both;
    // Escapes round-trip exactly like json::dump.
    const std::string escaped = engine.handle_line(
        R"({"op":"table3","row":1,"trace_id":"say \"hi\"\n"})");
    EXPECT_NE(escaped.find(R"("trace_id":"say \"hi\"\n")"),
              std::string::npos)
        << escaped;
    // Absent trace: the response is byte-identical to the pre-trace
    // format (golden compatibility).
    const std::string bare =
        engine.handle_line(R"({"op":"scenario1","lambda_um":0.5})");
    EXPECT_EQ(bare.find("trace_id"), std::string::npos);
    EXPECT_EQ(bare.rfind(R"({"ok":true,"result":)", 0), 0u);
}

TEST(Engine, ErrorsAreNeverCached) {
    serve::engine engine{config_with(1)};
    const std::string line = R"({"op":"scenario1","lambda_um":-1})";
    (void)engine.handle_line(line);
    (void)engine.handle_line(line);
    EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(Engine, MetricsCountRequestsAndErrors) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"scenario1"})");
    (void)engine.handle_line(R"({"op":"scenario1"})");
    (void)engine.handle_line(R"({"op":"scenario1","lambda":1})");

    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.requests.load(), 3u);
    EXPECT_EQ(m.errors.load(), 1u);
    EXPECT_EQ(m.cache_hits.load(), 1u);
}

TEST(Engine, StatsEndpointIsLive) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":2})");
    const std::string first = engine.handle_line(R"({"op":"stats"})");
    (void)engine.handle_line(R"({"op":"table3","row":3})");
    const std::string second = engine.handle_line(R"({"op":"stats"})");
    EXPECT_NE(first, second);  // live snapshot, not cached
    EXPECT_EQ(engine.cache_stats().entries, 2u);  // stats never stored

    const json::value doc = json::parse(second);
    const json::object& result =
        doc.as_object().find("result")->as_object();
    ASSERT_NE(result.find("cache"), nullptr);
    ASSERT_NE(result.find("endpoints"), nullptr);
}

TEST(Engine, SweepSharesCacheWithPointQueries) {
    // Point/sweep cache sharing holds on the generic per-point path
    // (which answers pre-warmed points from the cache) — and the SoA
    // kernel path populates the same cache from its lanes, so the
    // sharing is bidirectional under either flag.
    serve::engine_config config = config_with(1);
    config.sweep_kernels = false;
    serve::engine engine{config};
    // Pre-answer one grid point as a standalone request.
    (void)engine.handle_line(R"({"op":"scenario1","lambda_um":0.5})");
    const auto before = engine.cache_stats();

    (void)engine.handle_line(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,"count":2,
            "target":{"op":"scenario1"}})");
    const auto after = engine.cache_stats();
    // The sweep hit the pre-warmed 0.5 point.
    EXPECT_GT(after.hits, before.hits);
}

TEST(Engine, SweepKernelLanesPopulateThePointCache) {
    // PR 4 follow-up: kernel-evaluated grid points land in the
    // memoization cache under their point-request canonical keys, with
    // bytes identical to a fresh scalar evaluation — so a post-sweep
    // point query is a warm hit, for SoA-kernel and typed-per-lane
    // targets alike.
    const std::vector<std::pair<std::string, std::string>> cases = {
        {R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,
             "count":2,"target":{"op":"scenario1"}})",
         R"({"op":"scenario1","lambda_um":1.0})"},
        {R"({"op":"sweep","param":"lambda_um","from":0.6,"to":1.2,
             "count":2,"target":{"op":"scenario2","y0":0.8}})",
         R"({"op":"scenario2","lambda_um":1.2,"y0":0.8})"},
        {R"({"op":"sweep","param":"expected_faults","from":0.5,"to":2,
             "count":2,"target":{"op":"yield","model":"murphy"}})",
         R"({"op":"yield","model":"murphy","expected_faults":2})"},
        {R"({"op":"sweep","param":"die_area_cm2","from":0.5,"to":1.5,
             "count":2,"target":{"op":"yield","model":"reference"}})",
         R"({"op":"yield","model":"reference","die_area_cm2":1.5})"},
        // Typed per-lane targets (no SoA kernel) share the cache too.
        {R"({"op":"sweep","param":"die_width_mm","from":5,"to":9,
             "count":2,"target":{"op":"gross_die"}})",
         R"({"op":"gross_die","die_width_mm":9})"},
        {R"({"op":"sweep","param":"d2d_area_mm2","from":2,"to":6,
             "count":2,"target":{"op":"chiplet","chiplets":4}})",
         R"({"op":"chiplet","chiplets":4,"d2d_area_mm2":6})"},
    };
    for (const auto& [sweep, point] : cases) {
        serve::engine engine{config_with(1)};  // sweep_kernels default on
        (void)engine.handle_line(sweep);
        const auto before = engine.cache_stats();
        const std::string warm = engine.handle_line(point);
        const auto after = engine.cache_stats();
        EXPECT_EQ(after.hits, before.hits + 1) << point;
        EXPECT_EQ(after.misses, before.misses) << point;

        // The cached bytes equal a fresh evaluation's.
        serve::engine cold{config_with(1)};
        EXPECT_EQ(warm, cold.handle_line(point)) << point;
    }
}

TEST(Engine, CacheAwareSweepSplicesPrewarmedLanes) {
    // The kernel sweep planner probes the point cache per lane, runs the
    // batch kernel over the missing lanes only, and splices the cached
    // bytes back in lane order — so a pre-warmed grid point is served
    // from memory and the response stays byte-identical at every thread
    // count.  Grid [1,5]x5 has exact-double lanes {1,2,3,4,5}.
    const std::string sweep =
        R"({"op":"sweep","param":"lambda_um","from":1,"to":5,"count":5,
            "target":{"op":"scenario1"}})";
    serve::engine cold{config_with(1, /*cache_capacity=*/0)};
    const std::string expected = cold.handle_line(sweep);

    for (unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine engine{config_with(parallelism)};
        (void)engine.handle_line(R"({"op":"scenario1","lambda_um":2})");
        (void)engine.handle_line(R"({"op":"scenario1","lambda_um":4})");
        const auto before = engine.cache_stats();
        EXPECT_EQ(engine.handle_line(sweep), expected)
            << "parallelism=" << parallelism;
        const auto after = engine.cache_stats();
        // Both pre-warmed lanes were cache hits inside the sweep.
        EXPECT_GE(after.hits, before.hits + 2)
            << "parallelism=" << parallelism;
    }
}

TEST(Engine, FullyCachedSweepIsByteIdenticalToCold) {
    // A coarser sweep whose grid is a subset of an earlier fine sweep
    // finds every lane in the cache: the kernel runs over zero lanes
    // and the response is pure splice — still byte-identical to a
    // cache-disabled engine's answer.
    const std::string fine =
        R"({"op":"sweep","param":"lambda_um","from":1,"to":5,"count":5,
            "target":{"op":"scenario2","y0":0.8}})";
    const std::string coarse =
        R"({"op":"sweep","param":"lambda_um","from":1,"to":5,"count":3,
            "target":{"op":"scenario2","y0":0.8}})";
    serve::engine cold{config_with(1, /*cache_capacity=*/0)};
    const std::string expected = cold.handle_line(coarse);

    serve::engine engine{config_with(4)};
    (void)engine.handle_line(fine);  // caches lanes {1,2,3,4,5}
    const auto before = engine.cache_stats();
    EXPECT_EQ(engine.handle_line(coarse), expected);
    const auto after = engine.cache_stats();
    EXPECT_GE(after.hits, before.hits + 3)
        << "all three coarse lanes {1,3,5} must splice from cache";
}

TEST(Engine, ExploreLanesPopulateTheChipletPointCache) {
    // partition_explore cells are chiplet point evaluations; the SoA
    // kernel exports each feasible cell's full breakdown so the engine
    // caches it under the equivalent chiplet point request's canonical
    // key.  Defaults sum to 600 mm^2, so totals {600,1200} scale by
    // exact factors {1,2} and a handwritten point request produces the
    // same canonical doubles.
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(
        R"({"op":"partition_explore","splits":"1,2","area_from_mm2":600,
            "area_to_mm2":1200,"count":2})");
    const auto before = engine.cache_stats();
    const std::vector<std::string> points = {
        R"({"op":"chiplet","chiplets":1})",  // total 600, factor 1
        R"({"op":"chiplet","chiplets":2,"logic_area_mm2":700,
            "memory_area_mm2":300,"io_area_mm2":200})",  // total 1200
    };
    serve::engine fresh{config_with(1, /*cache_capacity=*/0)};
    for (const std::string& point : points) {
        EXPECT_EQ(engine.handle_line(point), fresh.handle_line(point))
            << point;
    }
    const auto after = engine.cache_stats();
    EXPECT_EQ(after.hits, before.hits + points.size());
    EXPECT_EQ(after.misses, before.misses);
}

TEST(Engine, OverlappingExploreSplicesCachedCellsByteIdentical) {
    // A second explore over a sub-grid of the first answers its cells
    // from the point cache; the spliced response must be byte-identical
    // to a cache-disabled engine's at every thread count.
    const std::string fine =
        R"({"op":"partition_explore","splits":"1,2,4","area_from_mm2":100,
            "area_to_mm2":400,"count":4})";
    const std::string coarse =
        R"({"op":"partition_explore","splits":"1,2,4","area_from_mm2":100,
            "area_to_mm2":400,"count":2})";
    serve::engine cold{config_with(1, /*cache_capacity=*/0)};
    const std::string expected = cold.handle_line(coarse);

    for (unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine engine{config_with(parallelism)};
        (void)engine.handle_line(fine);  // caches cells {100,200,300,400}
        const auto before = engine.cache_stats();
        EXPECT_EQ(engine.handle_line(coarse), expected)
            << "parallelism=" << parallelism;
        const auto after = engine.cache_stats();
        // Every feasible coarse cell {100,400} x 3 splits was a hit.
        EXPECT_GT(after.hits, before.hits)
            << "parallelism=" << parallelism;
    }
}

TEST(Engine, SweepInfeasiblePointsAreNull) {
    serve::engine engine{config_with(1)};
    // Lambda swept through zero: non-positive grid points infeasible.
    const std::string response = engine.handle_line(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":-0.5,
            "count":3,"target":{"op":"scenario1"}})");
    const json::value doc = json::parse(response);
    const json::object& result =
        doc.as_object().find("result")->as_object();
    const json::array& ys = result.find("ys")->as_array();
    ASSERT_EQ(ys.size(), 3u);
    EXPECT_TRUE(ys[0].is_number());
    EXPECT_TRUE(ys[2].is_null());
}

TEST(Engine, EmptyBatch) {
    serve::engine engine{config_with(0)};
    EXPECT_TRUE(engine.handle_batch({}).empty());
}

TEST(Engine, BatchDedupCoalescesDuplicates) {
    serve::engine engine{config_with(1)};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","lambda_um":0.8})",
        R"({"lambda_um":0.5,"op":"scenario1"})",  // same canonical key
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(responses[0], responses[3]);
    EXPECT_NE(responses[0], responses[2]);

    // Two twins spliced from one representative evaluation.
    EXPECT_EQ(engine.dedup_hits(), 2u);
    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.requests.load(), 3u);
    EXPECT_EQ(m.cache_hits.load(), 2u);  // twins answered from cache
}

TEST(Engine, BatchDedupPreservesOrderAndIds) {
    serve::engine engine{config_with(0)};
    std::vector<std::string> lines;
    for (int i = 0; i < 24; ++i) {
        lines.push_back(R"({"id":)" + std::to_string(i) +
                        R"(,"op":"scenario1","lambda_um":0.5})");
    }
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    for (int i = 0; i < 24; ++i) {
        const std::string prefix = R"({"id":)" + std::to_string(i) + ",";
        EXPECT_EQ(responses[i].substr(0, prefix.size()), prefix) << i;
    }
    EXPECT_EQ(engine.dedup_hits(), 23u);
}

TEST(Engine, BatchDedupDoesNotCoalesceErrors) {
    serve::engine engine{config_with(1)};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":-1})",
        R"({"op":"scenario1","lambda_um":-1})",
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_NE(responses[0].find(R"("ok":false)"), std::string::npos);
    EXPECT_EQ(responses[0], responses[1]);

    // Errors are never cached, so the twin re-evaluated instead of
    // splicing a coalesced result: both attempts show up as errors.
    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.errors.load(), 2u);
    EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(Engine, BatchDedupDisabledLeavesBehaviorIntact) {
    serve::engine_config config = config_with(1);
    config.batch_dedup = false;
    serve::engine engine{config};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario1","lambda_um":0.5})",
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(engine.dedup_hits(), 0u);
}

TEST(Engine, SweepKernelMatchesGenericPath) {
    // The SoA kernel sweep path must be byte-identical to the generic
    // per-point path for every kernel-eligible target, at every thread
    // count, including infeasible (null) lanes.
    const std::vector<std::string> sweeps = {
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,"count":7,
            "target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":-0.5,"count":5,
            "target":{"op":"scenario2","y0":0.85}})",
        R"({"op":"sweep","param":"y0","from":0.05,"to":1,"count":6,
            "scale":"log","target":{"op":"scenario2"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":4,"count":9,
            "target":{"op":"yield","model":"poisson"}})",
        R"({"op":"sweep","param":"die_area_cm2","from":0.2,"to":3,"count":5,
            "target":{"op":"yield","model":"poisson","defects_per_cm2":0.5}})",
        R"({"op":"sweep","param":"lambda_um","from":0.4,"to":1.2,"count":6,
            "target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"d","from":0,"to":3,"count":5,
            "target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"a0_cm2","from":0.5,"to":2,"count":4,
            "target":{"op":"yield","model":"reference","y0":0.7}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":5,"count":8,
            "target":{"op":"yield","model":"murphy"}})",
        R"({"op":"sweep","param":"alpha","from":-1,"to":3,"count":5,
            "target":{"op":"yield","model":"neg_binomial"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,"count":7,
            "target":{"op":"yield","model":"seeds"}})",
        R"({"op":"sweep","param":"die_area_cm2","from":0.1,"to":2,"count":6,
            "target":{"op":"yield","model":"seeds","defects_per_cm2":0.8}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":4,"count":6,
            "target":{"op":"yield","model":"bose_einstein",
                      "critical_steps":12}})",
        R"({"op":"sweep","param":"defects_per_cm2","from":-0.5,"to":1.5,
            "count":5,"target":{"op":"yield","model":"bose_einstein",
                                "die_area_cm2":0.8}})",
        R"({"op":"sweep","param":"expected_faults","from":-1,"to":3,"count":5,
            "target":{"op":"yield","model":"murphy"}})",
        R"({"op":"sweep","param":"process.c0_usd","from":100,"to":3000,
            "count":5,"scale":"log","target":{"op":"cost_tr"}})",
        R"({"op":"sweep","param":"die_width_mm","from":2,"to":30,"count":5,
            "target":{"op":"gross_die"}})",
        R"({"op":"sweep","param":"logic_area_mm2","from":50,"to":800,
            "count":5,"target":{"op":"chiplet","chiplets":2}})",
        R"({"op":"sweep","param":"bond_yield","from":0.5,"to":1.5,"count":5,
            "target":{"op":"chiplet","chiplets":8}})",
    };
    for (unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine_config on = config_with(parallelism);
        serve::engine_config off = config_with(parallelism);
        off.sweep_kernels = false;
        serve::engine kernel{on};
        serve::engine generic{off};
        for (const std::string& line : sweeps) {
            EXPECT_EQ(generic.handle_line(line), kernel.handle_line(line))
                << "parallelism=" << parallelism << " line=" << line;
        }
    }
}

TEST(Engine, PartitionExploreBitIdenticalAcrossKernelsAndThreads) {
    // The crossover response is golden material: the SoA chiplet kernel
    // and the per-point fallback must agree byte for byte at every
    // thread count (the acceptance property the silicond smoke pins
    // end-to-end).
    const std::vector<std::string> lines = {
        R"({"op":"partition_explore"})",
        R"({"op":"partition_explore","splits":"1,2,4,8","count":17,
            "scale":"log","area_from_mm2":30,"area_to_mm2":1500})",
        R"({"op":"partition_explore","splits":"1,3","count":9,
            "substrate":"interposer","d2d_area_mm2":12})",
        // Tiny areas make fine splits infeasible (die smaller than a
        // grid cell never happens, but zero/negative per-die faults
        // regions exercise NaN lanes via the huge-area tail).
        R"({"op":"partition_explore","splits":"1,16","count":8,
            "area_from_mm2":5,"area_to_mm2":70000,"scale":"log"})",
    };
    serve::engine reference{[] {
        serve::engine_config c = config_with(1);
        c.sweep_kernels = false;
        return c;
    }()};
    std::vector<std::string> expected;
    expected.reserve(lines.size());
    for (const std::string& line : lines) {
        expected.push_back(reference.handle_line(line));
    }
    for (unsigned parallelism : {1u, 4u, 0u}) {
        for (const bool kernels : {true, false}) {
            serve::engine_config config = config_with(parallelism);
            config.sweep_kernels = kernels;
            serve::engine engine{config};
            for (std::size_t i = 0; i < lines.size(); ++i) {
                EXPECT_EQ(engine.handle_line(lines[i]), expected[i])
                    << "parallelism=" << parallelism
                    << " kernels=" << kernels << " line=" << lines[i];
            }
        }
    }
}

TEST(Engine, PartitionExploreFindsTheCrossover) {
    // The Chiplet Actuary qualitative result through the endpoint: the
    // monolithic die wins the small-area end of the default grid, a
    // multi-die split wins the large end, and crossover_area_mm2 marks
    // the first grid area where a split is cheaper.
    serve::engine engine{config_with(1)};
    const std::string response = engine.handle_line(
        R"({"op":"partition_explore","splits":"1,2,4","area_from_mm2":40,
            "area_to_mm2":1000,"count":25})");
    const json::value doc = json::parse(response);
    const json::object& result =
        doc.as_object().find("result")->as_object();

    const json::array& best = result.find("best_split")->as_array();
    ASSERT_EQ(best.size(), 25u);
    EXPECT_EQ(best.front().as_number(), 1.0);   // small: monolithic
    EXPECT_GT(best.back().as_number(), 1.0);    // large: split wins

    const json::value* crossover = result.find("crossover_area_mm2");
    ASSERT_NE(crossover, nullptr);
    ASSERT_TRUE(crossover->is_number());
    const json::array& xs = result.find("xs")->as_array();
    EXPECT_GT(crossover->as_number(), xs.front().as_number());
    EXPECT_LE(crossover->as_number(), xs.back().as_number());

    // ys is one cost row per split, null-padded where infeasible.
    const json::array& ys = result.find("ys")->as_array();
    ASSERT_EQ(ys.size(), 3u);
    for (const json::value& row : ys) {
        EXPECT_EQ(row.as_array().size(), 25u);
    }
}

TEST(Engine, PartitionExploreBudgetChargesGridCells) {
    // splits x count grid cells charge against max_sweep_points, under
    // the dedicated explore_too_large reason — structural, so the same
    // request is rejected identically every time.
    serve::engine_config config = config_with(1);
    config.limits.max_sweep_points = 32;
    serve::engine engine{config};

    // 3 splits x 10 points = 30 cells: admitted.
    const std::string ok = engine.handle_line(
        R"({"op":"partition_explore","splits":"1,2,4","count":10})");
    EXPECT_NE(ok.find(R"("ok":true)"), std::string::npos);

    // 3 splits x 11 points = 33 cells: rejected.
    const std::string rejected = engine.handle_line(
        R"({"op":"partition_explore","splits":"1,2,4","count":11})");
    EXPECT_NE(rejected.find(R"("code":"too_large")"), std::string::npos);
    EXPECT_NE(rejected.find("max_sweep_points"), std::string::npos);
    EXPECT_EQ(engine.admission().rejected(
                  serve::reject_reason::explore_too_large),
              1u);

    // A plain sweep still charges its own reason, not the explore one.
    const std::string sweep = engine.handle_line(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1,"count":40,
            "target":{"op":"scenario1"}})");
    EXPECT_NE(sweep.find(R"("code":"too_large")"), std::string::npos);
    EXPECT_EQ(engine.admission().rejected(
                  serve::reject_reason::sweep_too_large),
              1u);
}

TEST(Engine, StatsAndPrometheusExposePartitionPricerCounters) {
    // The 2^n - 1 partition pricer's mask-memoization stats surface
    // through both observability channels.  The counters are
    // process-global and cumulative, so drive the optimizer first and
    // check the exposed values against the library accessors.
    const std::vector<silicon::opt::block> blocks = {
        {"a", 1e6, 100.0}, {"b", 2e6, 100.0}, {"c", 3e6, 100.0},
        {"d", 4e6, 100.0},
    };
    (void)silicon::opt::optimize_partitions(
        blocks,
        [](const std::vector<silicon::opt::block>& group) {
            double t = 0.0;
            for (const silicon::opt::block& b : group) {
                t += b.transistors;
            }
            return std::pair<double, double>{t * 1e-6, 0.5};
        },
        [](std::size_t dies) { return 2.0 * static_cast<double>(dies); });
    const std::uint64_t hits = silicon::opt::partition_pricer_hits();
    const std::uint64_t entries = silicon::opt::partition_pricer_entries();
    EXPECT_GE(entries, 15u);  // 2^4 - 1 subsets priced at least once
    EXPECT_GT(hits, entries); // every partition scan is memoized lookups

    serve::engine engine{config_with(1)};
    const std::string response =
        engine.handle_line(R"({"op":"stats"})");
    const json::value doc = json::parse(response);
    const json::object& pricer = doc.as_object()
                                     .find("result")
                                     ->as_object()
                                     .find("partition_pricer")
                                     ->as_object();
    EXPECT_EQ(pricer.find("hits")->as_number(),
              static_cast<double>(silicon::opt::partition_pricer_hits()));
    EXPECT_EQ(
        pricer.find("entries")->as_number(),
        static_cast<double>(silicon::opt::partition_pricer_entries()));

    const std::string text = engine.prometheus_text();
    EXPECT_NE(text.find("silicon_partition_pricer_hits_total"),
              std::string::npos);
    EXPECT_NE(text.find("silicon_partition_pricer_entries_total"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// fast_math (engine_config::fast_math): vector-path sweeps and
// partition grids.  Values may drift from the scalar path within the
// DESIGN.md §15 ULP bounds, but the contracts below are exact.
// ---------------------------------------------------------------------------

const std::vector<std::string>& fast_math_lines() {
    static const std::vector<std::string> lines = {
        R"({"op":"sweep","param":"lambda_um","from":0.3,"to":1.5,)"
        R"("count":64,"target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"lambda_um","from":0.3,"to":1.5,)"
        R"("count":64,"target":{"op":"scenario2","y0":0.7}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,)"
        R"("count":64,"target":{"op":"yield","model":"poisson"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,)"
        R"("count":64,"target":{"op":"yield","model":"murphy"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,)"
        R"("count":64,"target":{"op":"yield","model":"seeds"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,)"
        R"("count":33,"target":{"op":"yield","model":"bose_einstein",)"
        R"("critical_steps":9}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,)"
        R"("count":33,"target":{"op":"yield","model":"neg_binomial",)"
        R"("alpha":2.5}})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,)"
        R"("count":33,"target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"die_area_cm2","from":0.1,"to":4,)"
        R"("count":33,"target":{"op":"yield","model":"reference",)"
        R"("y0":0.7}})",
        R"({"op":"partition_explore","splits":"1,2,4,8","count":17,)"
        R"("area_from_mm2":30,"area_to_mm2":1500,"scale":"log"})",
    };
    return lines;
}

TEST(FastMath, SweepsDeterministicAcrossParallelism) {
    // fast_math is NOT bit-identical to scalar, but it must be
    // bit-identical to itself at every thread count (lanes are
    // independent; sub-range kernel calls compose bytewise).
    std::vector<std::vector<std::string>> outputs;
    for (const unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine_config config = config_with(parallelism);
        config.fast_math = true;
        serve::engine engine{config};
        std::vector<std::string> out;
        for (const std::string& line : fast_math_lines()) {
            out.push_back(engine.handle_line(line));
        }
        outputs.push_back(std::move(out));
    }
    for (std::size_t i = 0; i < fast_math_lines().size(); ++i) {
        SCOPED_TRACE(fast_math_lines()[i]);
        EXPECT_EQ(outputs[0][i], outputs[1][i]);
        EXPECT_EQ(outputs[0][i], outputs[2][i]);
    }
}

TEST(FastMath, NullLanesMatchScalarSweeps) {
    // Sweeps crossing invalid parameter ranges: the vector path masks
    // guard lanes before the transcendental, so the set of JSON null
    // lanes must be identical to the scalar path's.
    const std::vector<std::string> lines = {
        R"({"op":"sweep","param":"alpha","from":-1,"to":2,"count":21,)"
        R"("target":{"op":"yield","model":"neg_binomial",)"
        R"("expected_faults":1.5}})",
        R"({"op":"sweep","param":"lambda_um","from":-0.5,"to":1.5,)"
        R"("count":21,"target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"lambda_um","from":-0.5,"to":1.5,)"
        R"("count":21,"target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"y0","from":-0.2,"to":1.4,)"
        R"("count":21,"target":{"op":"scenario2"}})",
    };
    serve::engine_config fast_config = config_with(1);
    fast_config.fast_math = true;
    serve::engine fast{fast_config};
    serve::engine scalar{config_with(1)};
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        const json::value fast_doc = json::parse(fast.handle_line(line));
        const json::value scalar_doc =
            json::parse(scalar.handle_line(line));
        const json::array& fast_ys = fast_doc.as_object()
                                         .find("result")
                                         ->as_object()
                                         .find("ys")
                                         ->as_array();
        const json::array& scalar_ys = scalar_doc.as_object()
                                           .find("result")
                                           ->as_object()
                                           .find("ys")
                                           ->as_array();
        ASSERT_EQ(fast_ys.size(), scalar_ys.size());
        bool any_null = false;
        for (std::size_t i = 0; i < fast_ys.size(); ++i) {
            EXPECT_EQ(fast_ys[i].is_null(), scalar_ys[i].is_null())
                << "lane " << i;
            any_null = any_null || scalar_ys[i].is_null();
        }
        EXPECT_TRUE(any_null) << "grid never crossed the invalid range";
    }
}

TEST(FastMath, SweepLanesDoNotPoisonPointCache) {
    // Fast sweep lanes must never populate the per-point memoization
    // cache: a point query after a fast sweep has to return the exact
    // scalar bytes (a cache hit fed by a fast lane would leak drifted
    // values into bit-exact workflows).
    serve::engine_config config = config_with(1);
    config.fast_math = true;
    serve::engine fast{config};
    serve::engine scalar{config_with(1)};

    // Sweep across a grid whose first point is exactly lambda 0.5 —
    // the same canonical key as the point query below.
    const std::string sweep =
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,)"
        R"("count":3,"target":{"op":"scenario2","y0":0.7}})";
    (void)fast.handle_line(sweep);
    (void)scalar.handle_line(sweep);

    const std::string point =
        R"({"op":"scenario2","lambda_um":0.5,"y0":0.7})";
    EXPECT_EQ(fast.handle_line(point), scalar.handle_line(point));
    // And again (now definitely a warm hit on both engines).
    EXPECT_EQ(fast.handle_line(point), scalar.handle_line(point));
}

TEST(FastMath, OffIsBitIdenticalToScalarEngine) {
    // The flag default: an engine with fast_math off serves exactly
    // the bytes of the pre-flag engine for the whole sweep surface.
    serve::engine_config off_config = config_with(1);
    off_config.fast_math = false;
    serve::engine off{off_config};
    serve::engine scalar{config_with(1)};
    for (const std::string& line : fast_math_lines()) {
        SCOPED_TRACE(line);
        EXPECT_EQ(off.handle_line(line), scalar.handle_line(line));
    }
}

TEST(FastMath, StatuszReportsSimdTargetAndFlag) {
    serve::engine_config config = config_with(1);
    config.fast_math = true;
    serve::engine engine{config};
    const json::value doc = engine.statusz_json();
    const json::object& cfg =
        doc.as_object().find("config")->as_object();
    EXPECT_TRUE(cfg.find("fast_math")->as_bool());
    const std::string& target = cfg.find("simd_target")->as_string();
    EXPECT_TRUE(target == "scalar" || target == "avx2" ||
                target == "neon");

    const std::string text = engine.prometheus_text();
    EXPECT_NE(text.find("silicon_build_info{simd_target=\"" + target +
                        "\",fast_math=\"on\"}"),
              std::string::npos);
}

}  // namespace
