#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

namespace {

serve::engine_config config_with(unsigned parallelism,
                                 std::size_t cache_capacity = 65536) {
    serve::engine_config c;
    c.parallelism = parallelism;
    c.cache_capacity = cache_capacity;
    return c;
}

/// Every cacheable endpoint with non-default parameters, exercising the
/// full routing surface.
const std::vector<std::string>& endpoint_lines() {
    static const std::vector<std::string> lines = {
        R"({"op":"cost_tr"})",
        R"({"op":"cost_tr","product":{"transistors":4e6,"feature_size_um":0.6},
            "process":{"yield":{"model":"scaled","d":1.72,"p":4.07}},
            "economics":{"overhead_usd":2e6,"volume_wafers":500}})",
        R"({"op":"gross_die","die_width_mm":7.5,"die_height_mm":9,
            "method":"area_ratio"})",
        R"({"op":"yield","model":"poisson","die_area_cm2":0.8})",
        R"({"op":"yield","model":"murphy","defects_per_cm2":0.6})",
        R"({"op":"yield","model":"seeds"})",
        R"({"op":"yield","model":"bose_einstein","critical_steps":12})",
        R"({"op":"yield","model":"neg_binomial","alpha":1.5})",
        R"({"op":"yield","model":"scaled_poisson","lambda_um":0.6})",
        R"({"op":"yield","model":"reference","y0":0.6,"a0_cm2":0.9})",
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","lambda_um":1.1,"y0":0.8})",
        R"({"op":"table3","row":0})",
        R"({"op":"table3","row":5})",
        R"({"op":"mc_yield","dies":400,"seed":11})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,"count":5,
            "target":{"op":"scenario2"}})",
        R"({"op":"sweep","param":"product.transistors","from":1e6,"to":1e8,
            "count":3,"scale":"log","target":{"op":"cost_tr"}})",
    };
    return lines;
}

TEST(Engine, GoldenEquivalenceWithDirectEvaluation) {
    // The served response must be byte-identical to evaluating the
    // parsed request through the reference path (no cache, no batch).
    serve::engine served{config_with(0)};
    serve::engine reference{config_with(1, /*cache_capacity=*/0)};

    for (const std::string& line : endpoint_lines()) {
        const serve::request req = serve::parse_request(json::parse(line));
        const std::string expected =
            "{\"ok\":true,\"result\":" + json::dump(reference.evaluate(req)) +
            "}";
        EXPECT_EQ(served.handle_line(line), expected) << line;
    }
}

TEST(Engine, BatchBitIdenticalAcrossParallelism) {
    std::vector<std::string> lines;
    for (int copy = 0; copy < 40; ++copy) {
        for (const std::string& line : endpoint_lines()) {
            lines.push_back(line);
        }
    }
    lines.push_back(R"({"op":"nope"})");
    lines.push_back("}{ garbage");
    lines.push_back(R"({"op":"scenario1","id":[1,"two",{"three":3}]})");

    serve::engine serial{config_with(1)};
    const std::vector<std::string> expected = serial.handle_batch(lines);
    ASSERT_EQ(expected.size(), lines.size());

    for (unsigned parallelism : {4u, 0u}) {
        serve::engine pooled{config_with(parallelism)};
        EXPECT_EQ(pooled.handle_batch(lines), expected)
            << "parallelism=" << parallelism;
    }
}

TEST(Engine, CacheHitReturnsIdenticalBytes) {
    serve::engine engine{config_with(1)};
    const std::string line = R"({"op":"scenario2","lambda_um":0.9})";
    const std::string cold = engine.handle_line(line);
    const std::string warm = engine.handle_line(line);
    EXPECT_EQ(cold, warm);

    const serve::memo_cache::stats s = engine.cache_stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(Engine, CacheHitsAcrossMemberOrderAndIds) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":4})");
    (void)engine.handle_line(R"({"row":4,"op":"table3","id":9})");
    (void)engine.handle_line(R"({"op":"table3","row":4,"id":"again"})");
    const serve::memo_cache::stats s = engine.cache_stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 2u);
}

TEST(Engine, IdEchoedVerbatim) {
    serve::engine engine{config_with(1)};
    EXPECT_EQ(engine.handle_line(R"({"op":"table3","row":1,"id":42})")
                  .substr(0, 9),
              R"({"id":42,)");
    const std::string nested =
        engine.handle_line(R"({"id":{"a":[1]},"op":"table3","row":1})");
    EXPECT_EQ(nested.substr(0, 16), R"({"id":{"a":[1]},)");
}

TEST(Engine, ErrorEnvelopes) {
    serve::engine engine{config_with(1)};

    const std::string parse = engine.handle_line("not json");
    EXPECT_NE(parse.find(R"("ok":false)"), std::string::npos);
    EXPECT_NE(parse.find(R"("code":"parse_error")"), std::string::npos);

    const std::string unknown = engine.handle_line(R"({"op":"warp"})");
    EXPECT_NE(unknown.find(R"("code":"unknown_op")"), std::string::npos);

    const std::string field =
        engine.handle_line(R"({"op":"scenario1","lambda":1})");
    EXPECT_NE(field.find(R"("code":"unknown_field")"), std::string::npos);

    // Infeasible model input: scenario1 rejects non-positive lambda.
    const std::string domain =
        engine.handle_line(R"({"op":"scenario1","lambda_um":-1})");
    EXPECT_NE(domain.find(R"("ok":false)"), std::string::npos) << domain;

    // Errors keep their id.
    const std::string with_id =
        engine.handle_line(R"({"op":"warp","id":"e1"})");
    EXPECT_EQ(with_id.substr(0, 12), R"({"id":"e1",")");
}

TEST(Engine, ErrorsAreNeverCached) {
    serve::engine engine{config_with(1)};
    const std::string line = R"({"op":"scenario1","lambda_um":-1})";
    (void)engine.handle_line(line);
    (void)engine.handle_line(line);
    EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(Engine, MetricsCountRequestsAndErrors) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"scenario1"})");
    (void)engine.handle_line(R"({"op":"scenario1"})");
    (void)engine.handle_line(R"({"op":"scenario1","lambda":1})");

    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.requests.load(), 3u);
    EXPECT_EQ(m.errors.load(), 1u);
    EXPECT_EQ(m.cache_hits.load(), 1u);
}

TEST(Engine, StatsEndpointIsLive) {
    serve::engine engine{config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":2})");
    const std::string first = engine.handle_line(R"({"op":"stats"})");
    (void)engine.handle_line(R"({"op":"table3","row":3})");
    const std::string second = engine.handle_line(R"({"op":"stats"})");
    EXPECT_NE(first, second);  // live snapshot, not cached
    EXPECT_EQ(engine.cache_stats().entries, 2u);  // stats never stored

    const json::value doc = json::parse(second);
    const json::object& result =
        doc.as_object().find("result")->as_object();
    ASSERT_NE(result.find("cache"), nullptr);
    ASSERT_NE(result.find("endpoints"), nullptr);
}

TEST(Engine, SweepSharesCacheWithPointQueries) {
    // Point/sweep cache sharing is a property of the generic per-point
    // sweep path; the SoA kernel path (sweep_kernels = true) evaluates
    // grid points without touching the cache.
    serve::engine_config config = config_with(1);
    config.sweep_kernels = false;
    serve::engine engine{config};
    // Pre-answer one grid point as a standalone request.
    (void)engine.handle_line(R"({"op":"scenario1","lambda_um":0.5})");
    const auto before = engine.cache_stats();

    (void)engine.handle_line(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,"count":2,
            "target":{"op":"scenario1"}})");
    const auto after = engine.cache_stats();
    // The sweep hit the pre-warmed 0.5 point.
    EXPECT_GT(after.hits, before.hits);
}

TEST(Engine, SweepInfeasiblePointsAreNull) {
    serve::engine engine{config_with(1)};
    // Lambda swept through zero: non-positive grid points infeasible.
    const std::string response = engine.handle_line(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":-0.5,
            "count":3,"target":{"op":"scenario1"}})");
    const json::value doc = json::parse(response);
    const json::object& result =
        doc.as_object().find("result")->as_object();
    const json::array& ys = result.find("ys")->as_array();
    ASSERT_EQ(ys.size(), 3u);
    EXPECT_TRUE(ys[0].is_number());
    EXPECT_TRUE(ys[2].is_null());
}

TEST(Engine, EmptyBatch) {
    serve::engine engine{config_with(0)};
    EXPECT_TRUE(engine.handle_batch({}).empty());
}

TEST(Engine, BatchDedupCoalescesDuplicates) {
    serve::engine engine{config_with(1)};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","lambda_um":0.8})",
        R"({"lambda_um":0.5,"op":"scenario1"})",  // same canonical key
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), 4u);
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(responses[0], responses[3]);
    EXPECT_NE(responses[0], responses[2]);

    // Two twins spliced from one representative evaluation.
    EXPECT_EQ(engine.dedup_hits(), 2u);
    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.requests.load(), 3u);
    EXPECT_EQ(m.cache_hits.load(), 2u);  // twins answered from cache
}

TEST(Engine, BatchDedupPreservesOrderAndIds) {
    serve::engine engine{config_with(0)};
    std::vector<std::string> lines;
    for (int i = 0; i < 24; ++i) {
        lines.push_back(R"({"id":)" + std::to_string(i) +
                        R"(,"op":"scenario1","lambda_um":0.5})");
    }
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), lines.size());
    for (int i = 0; i < 24; ++i) {
        const std::string prefix = R"({"id":)" + std::to_string(i) + ",";
        EXPECT_EQ(responses[i].substr(0, prefix.size()), prefix) << i;
    }
    EXPECT_EQ(engine.dedup_hits(), 23u);
}

TEST(Engine, BatchDedupDoesNotCoalesceErrors) {
    serve::engine engine{config_with(1)};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":-1})",
        R"({"op":"scenario1","lambda_um":-1})",
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_NE(responses[0].find(R"("ok":false)"), std::string::npos);
    EXPECT_EQ(responses[0], responses[1]);

    // Errors are never cached, so the twin re-evaluated instead of
    // splicing a coalesced result: both attempts show up as errors.
    const serve::endpoint_metrics& m =
        engine.metrics().at(serve::op_code::scenario1);
    EXPECT_EQ(m.errors.load(), 2u);
    EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(Engine, BatchDedupDisabledLeavesBehaviorIntact) {
    serve::engine_config config = config_with(1);
    config.batch_dedup = false;
    serve::engine engine{config};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario1","lambda_um":0.5})",
    };
    const std::vector<std::string> responses = engine.handle_batch(lines);
    EXPECT_EQ(responses[0], responses[1]);
    EXPECT_EQ(engine.dedup_hits(), 0u);
}

TEST(Engine, SweepKernelMatchesGenericPath) {
    // The SoA kernel sweep path must be byte-identical to the generic
    // per-point path for every kernel-eligible target, at every thread
    // count, including infeasible (null) lanes.
    const std::vector<std::string> sweeps = {
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,"count":7,
            "target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":-0.5,"count":5,
            "target":{"op":"scenario2","y0":0.85}})",
        R"({"op":"sweep","param":"y0","from":0.05,"to":1,"count":6,
            "scale":"log","target":{"op":"scenario2"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":4,"count":9,
            "target":{"op":"yield","model":"poisson"}})",
        R"({"op":"sweep","param":"die_area_cm2","from":0.2,"to":3,"count":5,
            "target":{"op":"yield","model":"poisson","defects_per_cm2":0.5}})",
        R"({"op":"sweep","param":"lambda_um","from":0.4,"to":1.2,"count":6,
            "target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"d","from":0,"to":3,"count":5,
            "target":{"op":"yield","model":"scaled_poisson"}})",
        R"({"op":"sweep","param":"a0_cm2","from":0.5,"to":2,"count":4,
            "target":{"op":"yield","model":"reference","y0":0.7}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":5,"count":8,
            "target":{"op":"yield","model":"murphy"}})",
        R"({"op":"sweep","param":"alpha","from":-1,"to":3,"count":5,
            "target":{"op":"yield","model":"neg_binomial"}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":6,"count":7,
            "target":{"op":"yield","model":"seeds"}})",
        R"({"op":"sweep","param":"die_area_cm2","from":0.1,"to":2,"count":6,
            "target":{"op":"yield","model":"seeds","defects_per_cm2":0.8}})",
        R"({"op":"sweep","param":"expected_faults","from":0,"to":4,"count":6,
            "target":{"op":"yield","model":"bose_einstein",
                      "critical_steps":12}})",
        R"({"op":"sweep","param":"defects_per_cm2","from":-0.5,"to":1.5,
            "count":5,"target":{"op":"yield","model":"bose_einstein",
                                "die_area_cm2":0.8}})",
        R"({"op":"sweep","param":"expected_faults","from":-1,"to":3,"count":5,
            "target":{"op":"yield","model":"murphy"}})",
        R"({"op":"sweep","param":"process.c0_usd","from":100,"to":3000,
            "count":5,"scale":"log","target":{"op":"cost_tr"}})",
        R"({"op":"sweep","param":"die_width_mm","from":2,"to":30,"count":5,
            "target":{"op":"gross_die"}})",
    };
    for (unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine_config on = config_with(parallelism);
        serve::engine_config off = config_with(parallelism);
        off.sweep_kernels = false;
        serve::engine kernel{on};
        serve::engine generic{off};
        for (const std::string& line : sweeps) {
            EXPECT_EQ(generic.handle_line(line), kernel.handle_line(line))
                << "parallelism=" << parallelism << " line=" << line;
        }
    }
}

}  // namespace
