#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>

namespace json = silicon::serve::json;

namespace {

std::string round_trip(const std::string& text) {
    return json::dump(json::parse(text));
}

TEST(JsonParse, Scalars) {
    EXPECT_TRUE(json::parse("null").is_null());
    EXPECT_TRUE(json::parse("true").as_bool());
    EXPECT_FALSE(json::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(json::parse("-0.5e2").as_number(), -50.0);
    EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceAroundDocument) {
    EXPECT_DOUBLE_EQ(json::parse(" \t\r\n 7 \n").as_number(), 7.0);
}

TEST(JsonParse, NestedContainers) {
    const json::value v = json::parse(R"({"a":[1,{"b":[true,null]}],"c":{}})");
    const json::object& o = v.as_object();
    ASSERT_NE(o.find("a"), nullptr);
    const json::array& a = o.find("a")->as_array();
    ASSERT_EQ(a.size(), 2u);
    EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
    EXPECT_TRUE(a[1].as_object().find("b")->as_array()[1].is_null());
    EXPECT_TRUE(o.find("c")->as_object().empty());
}

TEST(JsonParse, StringEscapes) {
    EXPECT_EQ(json::parse(R"("\"\\\/\b\f\n\r\t")").as_string(),
              "\"\\/\b\f\n\r\t");
    EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
    // Surrogate pair: U+1D11E (musical G clef) -> 4-byte UTF-8.
    EXPECT_EQ(json::parse(R"("\ud834\udd1e")").as_string(),
              "\xf0\x9d\x84\x9e");
}

TEST(JsonParse, MalformedInputsThrow) {
    const char* bad[] = {
        "",          "{",          "[1,]",      "{\"a\":}",  "nul",
        "01",        "1.",         ".5",        "+1",        "\"\\q\"",
        "\"\\ud834\"",  // lone high surrogate
        "\"unterminated",
        "{\"a\":1,}",
        "{'a':1}",
        "[1] trailing",
        "{\"a\":1 \"b\":2}",
        "\"tab\tliteral\"",  // raw control character in string
    };
    for (const char* text : bad) {
        EXPECT_THROW((void)json::parse(text), json::parse_error) << text;
    }
}

TEST(JsonParse, DuplicateKeysRejected) {
    EXPECT_THROW((void)json::parse(R"({"a":1,"a":2})"), json::parse_error);
}

TEST(JsonParse, ErrorCarriesOffset) {
    try {
        (void)json::parse("[1, x]");
        FAIL() << "expected parse_error";
    } catch (const json::parse_error& e) {
        EXPECT_EQ(e.offset(), 4u);
    }
}

TEST(JsonParse, DepthGuard) {
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_THROW((void)json::parse(deep), json::parse_error);
    std::string ok(100, '[');
    ok += "1";
    ok += std::string(100, ']');
    EXPECT_NO_THROW((void)json::parse(ok));
}

TEST(JsonParse, HugeAndTinyNumbers) {
    // Out-of-range magnitudes follow IEEE strtod semantics.
    EXPECT_TRUE(std::isinf(json::parse("1e999").as_number()));
    EXPECT_DOUBLE_EQ(json::parse("1e-999").as_number(), 0.0);
}

TEST(JsonDump, RoundTripPreservesBytes) {
    const char* docs[] = {
        "null",
        "true",
        R"(["a",1,null,{"k":false}])",
        R"({"b":1,"a":2})",  // insertion order preserved by dump
        "0.1",
        "1e-300",
        "123456789012345683968",  // > 2^53, shortest-round-trip form
    };
    for (const char* text : docs) {
        EXPECT_EQ(round_trip(text), text) << text;
        // A dump re-parses to an equal document (full round trip).
        EXPECT_EQ(json::parse(round_trip(text)), json::parse(text));
    }
}

TEST(JsonDump, StringEscaping) {
    EXPECT_EQ(json::dump(json::value{"a\"b\\c\n\x01"}),
              R"("a\"b\\c\n\u0001")");
}

TEST(JsonDump, NonFiniteNumbersAreNull) {
    EXPECT_EQ(json::dump(json::value{std::nan("")}), "null");
    EXPECT_EQ(json::dump(json::value{
                  std::numeric_limits<double>::infinity()}),
              "null");
}

TEST(JsonDump, IntegersHaveNoExponent) {
    EXPECT_EQ(json::format_number(154.0), "154");
    EXPECT_EQ(json::format_number(-2.0), "-2");
    EXPECT_EQ(json::format_number(0.5), "0.5");
}

TEST(JsonCanonical, SortsKeysAtEveryLevel) {
    const json::value v = json::parse(R"({"b":{"d":1,"c":2},"a":[{"z":0,"y":1}]})");
    EXPECT_EQ(json::canonical(v), R"({"a":[{"y":1,"z":0}],"b":{"c":2,"d":1}})");
    // dump keeps insertion order; canonical must not mutate the value.
    EXPECT_EQ(json::dump(v), R"({"b":{"d":1,"c":2},"a":[{"z":0,"y":1}]})");
}

TEST(JsonCanonical, MemberOrderInsensitiveKey) {
    EXPECT_EQ(json::canonical(json::parse(R"({"x":1,"op":"s"})")),
              json::canonical(json::parse(R"({"op":"s","x":1})")));
}

TEST(JsonValue, EqualityIsOrderInsensitiveForObjects) {
    EXPECT_EQ(json::parse(R"({"a":1,"b":2})"), json::parse(R"({"b":2,"a":1})"));
    EXPECT_NE(json::parse(R"([1,2])"), json::parse(R"([2,1])"));
    EXPECT_NE(json::parse(R"({"a":1})"), json::parse(R"({"a":2})"));
}

TEST(JsonObject, SetReplacesInPlace) {
    json::object o;
    o.set("a", json::value{1.0});
    o.set("b", json::value{2.0});
    o.set("a", json::value{3.0});
    ASSERT_EQ(o.size(), 2u);
    EXPECT_DOUBLE_EQ(o.find("a")->as_number(), 3.0);
    EXPECT_EQ(o.members()[0].first, "a");  // position preserved
}

TEST(JsonFormatNumber, RoundTripsRandomDoublesBitExactly) {
    // Fuzz the shortest-round-trip formatter: 10k doubles drawn as raw
    // bit patterns (covering subnormals, huge magnitudes, -0.0, and both
    // non-finite classes), formatted and parsed back.  Finite values
    // must survive parse(format(x)) with the exact same bits; the wire
    // policy maps NaN and +/-inf to "null".
    std::mt19937_64 rng{0x51c1u};
    std::size_t finite = 0;
    std::size_t subnormal = 0;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t bits = rng();
        if (i % 10 == 0) {
            bits &= ~(0x7ffull << 52);  // force a subnormal (or zero)
        }
        double x = 0.0;
        std::memcpy(&x, &bits, sizeof x);

        const std::string text = json::format_number(x);
        if (!std::isfinite(x)) {
            EXPECT_EQ(text, "null") << "bits=0x" << std::hex << bits;
            continue;
        }
        ++finite;
        if (x != 0.0 && std::fpclassify(x) == FP_SUBNORMAL) {
            ++subnormal;
        }
        const double back = json::parse(text).as_number();
        std::uint64_t back_bits = 0;
        std::memcpy(&back_bits, &back, sizeof back_bits);
        EXPECT_EQ(back_bits, bits)
            << "x=" << x << " formatted as \"" << text << "\"";
        // Idempotence: formatting the reparsed value changes nothing.
        EXPECT_EQ(json::format_number(back), text);
    }
    // The corpus genuinely exercised both classes.
    EXPECT_GT(finite, 4000u);
    EXPECT_GT(subnormal, 500u);
}

TEST(JsonFormatNumber, SignedZeroAndExtremesRoundTrip) {
    const double cases[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::min(),          // smallest normal
        std::numeric_limits<double>::denorm_min(),   // 5e-324
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::epsilon(),
        1.0 + std::numeric_limits<double>::epsilon(),
    };
    for (const double x : cases) {
        const std::string text = json::format_number(x);
        const double back = json::parse(text).as_number();
        std::uint64_t xb = 0;
        std::uint64_t bb = 0;
        std::memcpy(&xb, &x, sizeof xb);
        std::memcpy(&bb, &back, sizeof bb);
        EXPECT_EQ(bb, xb) << "x=" << x << " text=" << text;
    }
    // -0.0 keeps its sign on the wire.
    EXPECT_EQ(json::format_number(-0.0), "-0");
    EXPECT_TRUE(std::signbit(json::parse("-0").as_number()));
}

TEST(JsonValue, TypeErrorsOnMismatch) {
    EXPECT_THROW((void)json::parse("1").as_string(), json::type_error);
    EXPECT_THROW((void)json::parse("\"s\"").as_number(), json::type_error);
    EXPECT_THROW((void)json::parse("[]").as_object(), json::type_error);
}

}  // namespace
