# Fast-math determinism smoke: pipe the checked-in mixed request batch
# through silicond with --fast-math at several thread counts and
# require every run to produce byte-identical output.
#
# The fast path is deliberately NOT compared against the scalar golden
# responses: vectorized sweep kernels round differently (bounded by the
# ULP harness in tests/simd and tests/*/test_batch_ulp.cpp), and some
# formulations differ on purpose (Murphy uses the cancellation-free
# expm1 form).  The contract pinned here is the one fast_math makes:
# whatever bytes it produces are the same at --threads 1, 4 and 0.
#
# Expects: SILICOND (binary path), REQUESTS.

foreach(var SILICOND REQUESTS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fastmath_smoke_test.cmake: ${var} not set")
  endif()
endforeach()

set(reference "")
set(reference_threads "")
foreach(threads 1 4 0)
  execute_process(
    COMMAND ${SILICOND} --fast-math --threads ${threads} --batch 7
    INPUT_FILE ${REQUESTS}
    OUTPUT_VARIABLE actual
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR
      "silicond --fast-math --threads ${threads} exited with ${status}")
  endif()
  if(actual STREQUAL "")
    message(FATAL_ERROR
      "silicond --fast-math --threads ${threads} produced no output")
  endif()
  if(reference_threads STREQUAL "")
    set(reference "${actual}")
    set(reference_threads ${threads})
  elseif(NOT actual STREQUAL reference)
    message(FATAL_ERROR
      "--fast-math output differs between --threads ${reference_threads} "
      "and --threads ${threads}\n--- threads ${threads} ---\n${actual}")
  endif()
endforeach()
