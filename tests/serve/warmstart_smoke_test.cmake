# Warm-restart smoke test: run the golden corpus twice through silicond
# with --cache-snapshot at the given thread count.  The first run starts
# cold and writes a snapshot at clean shutdown; the second run restores
# it and must (a) log the restore, (b) answer the whole corpus from the
# warmed cache, and (c) produce byte-identical golden responses — a
# restart is a latency event, never a correctness event.
#
# Expects: SILICOND (binary path), REQUESTS, GOLDEN, THREADS,
#          SNAPSHOT (a scratch path for the snapshot file).

foreach(var SILICOND REQUESTS GOLDEN THREADS SNAPSHOT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "warmstart_smoke_test.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE ${SNAPSHOT} ${SNAPSHOT}.tmp)
file(READ ${GOLDEN} expected)

# Cold run: no snapshot exists yet; one is written at shutdown.
execute_process(
  COMMAND ${SILICOND} --threads ${THREADS} --batch 7
          --cache-snapshot ${SNAPSHOT}
  INPUT_FILE ${REQUESTS}
  OUTPUT_VARIABLE cold_out
  ERROR_VARIABLE cold_log
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "cold silicond exited with status ${status}")
endif()
if(NOT cold_out STREQUAL expected)
  message(FATAL_ERROR
    "cold run output differs from ${GOLDEN}\n--- actual ---\n${cold_out}")
endif()
if(NOT cold_log MATCHES "silicond.snapshot_cold")
  message(FATAL_ERROR "cold run did not log the missing-snapshot start:\n"
                      "${cold_log}")
endif()
if(NOT cold_log MATCHES "silicond.snapshot_written")
  message(FATAL_ERROR "cold run did not write a shutdown snapshot:\n"
                      "${cold_log}")
endif()
if(NOT EXISTS ${SNAPSHOT})
  message(FATAL_ERROR "shutdown snapshot ${SNAPSHOT} was not created")
endif()
if(EXISTS ${SNAPSHOT}.tmp)
  message(FATAL_ERROR "atomic write left ${SNAPSHOT}.tmp behind")
endif()

# Warm run: the snapshot restores and the same corpus is byte-identical.
execute_process(
  COMMAND ${SILICOND} --threads ${THREADS} --batch 7
          --cache-snapshot ${SNAPSHOT}
  INPUT_FILE ${REQUESTS}
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE warm_log
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "warm silicond exited with status ${status}")
endif()
if(NOT warm_log MATCHES "silicond.snapshot_restored")
  message(FATAL_ERROR "warm run did not restore the snapshot:\n${warm_log}")
endif()
if(NOT warm_out STREQUAL expected)
  message(FATAL_ERROR
    "warm-restart output differs from ${GOLDEN} at --threads ${THREADS}\n"
    "--- actual ---\n${warm_out}")
endif()

# A corrupted snapshot must degrade to a logged cold start with the
# same golden bytes — never a crash or a poisoned response.
file(WRITE ${SNAPSHOT} "garbage, not a snapshot")
execute_process(
  COMMAND ${SILICOND} --threads ${THREADS} --batch 7
          --cache-snapshot ${SNAPSHOT}
  INPUT_FILE ${REQUESTS}
  OUTPUT_VARIABLE corrupt_out
  ERROR_VARIABLE corrupt_log
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "silicond crashed on a corrupt snapshot: ${status}")
endif()
if(NOT corrupt_log MATCHES "silicond.snapshot_cold")
  message(FATAL_ERROR "corrupt snapshot was not logged as a cold start:\n"
                      "${corrupt_log}")
endif()
if(NOT corrupt_out STREQUAL expected)
  message(FATAL_ERROR
    "corrupt-snapshot cold start output differs from ${GOLDEN}\n"
    "--- actual ---\n${corrupt_out}")
endif()

file(REMOVE ${SNAPSHOT} ${SNAPSHOT}.tmp)
