// test_hotpath.cpp — the zero-allocation gate and fast/legacy
// equivalence fuzz for the serve hot path (DESIGN.md §10).
//
// This file lives in its own test binary (test_serve_hotpath) because
// it replaces the global allocation functions with counting versions:
// the tentpole contract "a warm cache hit performs zero heap
// allocations" is enforced by literally counting operator-new calls
// around `engine::handle_line_into`.
//
// The other half is differential testing: the allocation-free parser
// (json_arena.hpp) and request canonicalizer (request_fast.hpp) are
// deliberate twins of the legacy DOM pipeline, so every test here
// drives both sides with the same corpus and requires byte-identical
// documents, canonical keys, error codes/messages and response lines.

#include "exec/arena.hpp"
#include "serve/engine.hpp"
#include "serve/json.hpp"
#include "serve/json_arena.hpp"
#include "serve/request.hpp"
#include "serve/request_fast.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <random>
#include <string>
#include <vector>

// ---------------------------------------------------------------------------
// Counting allocator: every global allocation bumps a thread-local
// counter.  Deallocation is deliberately not counted (returning memory
// is allowed on the hot path; taking it is not).
// ---------------------------------------------------------------------------

namespace {

thread_local std::uint64_t t_allocations = 0;

void* counted_alloc(std::size_t n) {
    ++t_allocations;
    if (void* p = std::malloc(n == 0 ? 1 : n)) {
        return p;
    }
    throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t n, std::size_t alignment) {
    ++t_allocations;
    void* p = nullptr;
    if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*)
                                                     : alignment,
                       n == 0 ? 1 : n) != 0) {
        throw std::bad_alloc{};
    }
    return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
    ++t_allocations;
    return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
    ++t_allocations;
    return std::malloc(n == 0 ? 1 : n);
}
void* operator new(std::size_t n, std::align_val_t al) {
    return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
    return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace {

using namespace silicon;

// ---------------------------------------------------------------------------
// Shared corpus: one entry per endpoint shape plus schema errors,
// shuffled key orders, string/object/array ids, unicode and numeric
// edge values.  Everything here must behave identically on the fast
// and legacy pipelines.
// ---------------------------------------------------------------------------

std::vector<std::string> corpus() {
    return {
        // Every endpoint with defaults and with explicit parameters.
        R"({"op":"scenario1"})",
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"lambda_um":0.35,"op":"scenario1","c0_usd":800,"x":1.4})",
        R"({"op":"scenario1","id":17,"wafer_radius_cm":10,"design_density":42.5})",
        R"({"op":"scenario2"})",
        R"({"op":"scenario2","id":"s2","y0":0.9,"lambda_um":0.8})",
        R"({"op":"yield"})",
        R"({"op":"yield","model":"poisson","expected_faults":0.5})",
        R"({"op":"yield","model":"poisson","die_area_cm2":2.5,"defects_per_cm2":0.4})",
        R"({"op":"yield","model":"murphy","expected_faults":1.25})",
        R"({"op":"yield","model":"seeds","die_area_cm2":1.2})",
        R"({"op":"yield","model":"bose_einstein","critical_steps":12})",
        R"({"op":"yield","model":"neg_binomial","alpha":2.5,"expected_faults":3})",
        R"({"op":"yield","model":"scaled_poisson","d":1.72,"p":4.07,"lambda_um":0.8})",
        R"({"op":"yield","model":"reference","y0":0.7,"a0_cm2":1.0,"die_area_cm2":1.9})",
        R"({"op":"cost_tr"})",
        R"({"op":"cost_tr","product":{"name":"dram","transistors":4.2e6},)"
        R"("process":{"c0_usd":900,"x":1.3,"yield":{"model":"fixed","fixed":0.8}}})",
        R"({"op":"cost_tr","process":{"gross_die_method":"area_ratio"},)"
        R"("economics":{"overhead_usd":1e6,"volume_wafers":1e4}})",
        R"({"op":"gross_die"})",
        R"({"op":"gross_die","die_width_mm":12,"die_height_mm":9,)"
        R"("method":"ferris_prabhu","scribe_mm":0.1})",
        R"({"op":"table3"})",
        R"({"op":"table3","row":5})",
        R"({"op":"mc_yield","dies":64,"seed":7})",
        R"({"op":"chiplet"})",
        R"({"op":"chiplet","chiplets":4,"substrate":"interposer",)"
        R"("d2d_area_mm2":8,"bond_yield":0.995})",
        R"({"chiplets":2,"op":"chiplet","logic_area_mm2":200,)"
        R"("test_coverage":0.9,"id":"kgd"})",
        R"({"op":"partition_explore"})",
        R"({"op":"partition_explore","splits":"1,2,4,8","count":9,)"
        R"("scale":"log","area_from_mm2":30,"area_to_mm2":1500})",
        R"({"op":"stats"})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,)"
        R"("count":4,"target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"y0","from":0.2,"to":0.9,"count":3,)"
        R"("scale":"log","target":{"op":"scenario2"}})",
        R"({"op":"sweep","param":"process.c0_usd","from":100,"to":1000,)"
        R"("count":3,"target":{"op":"cost_tr"}})",
        // trace_id: echoed on success and error envelopes, rejected
        // when non-string, banned inside sweep targets — all of which
        // must behave identically on both pipelines.
        R"({"op":"scenario1","trace_id":"t-1"})",
        R"({"trace_id":"req-é☃","op":"yield","model":"murphy"})",
        R"({"id":3,"trace_id":"say \"hi\"","op":"table3","row":1})",
        R"({"op":"scenario1","trace_id":42})",
        R"({"op":"scenario1","trace_id":null})",
        R"({"op":"nope","trace_id":"t-err"})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,)"
        R"("count":3,"target":{"op":"scenario1","trace_id":"x"}})",
        // ids of every JSON kind; keys out of order.
        R"({"id":null,"op":"scenario1"})",
        R"({"id":true,"op":"scenario1"})",
        R"({"id":-12.75,"op":"scenario1"})",
        R"({"id":"req-é☃","op":"scenario1"})",
        R"({"id":[1,"two",{"three":3}],"op":"scenario1"})",
        R"({"id":{"trace":"abc","span":9},"op":"scenario1"})",
        // Numeric edge values.
        R"({"op":"scenario1","lambda_um":1e-300})",
        R"({"op":"scenario1","lambda_um":5e-324})",
        R"({"op":"scenario1","c0_usd":1.7976931348623157e308})",
        R"({"op":"yield","expected_faults":-0.0})",
        // Schema errors (messages must match byte for byte).
        R"({"op":"nope"})",
        R"({"op":42})",
        R"({})",
        R"(17)",
        R"([1,2,3])",
        R"({"op":"scenario1","lambda_um":"half"})",
        R"({"op":"scenario1","bogus":1})",
        R"({"op":"yield","model":"voodoo"})",
        R"({"op":"gross_die","method":"voodoo"})",
        R"({"op":"table3","row":99})",
        R"({"op":"table3","row":2.5})",
        R"({"op":"mc_yield","dies":0})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,"count":0,)"
        R"("target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"nope","target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"lambda_um","scale":"cubic",)"
        R"("target":{"op":"scenario1"}})",
        R"({"op":"sweep","param":"lambda_um","target":{"op":"scenario1",)"
        R"("lambda_um":"x"}})",
        R"({"op":"chiplet","chiplets":0})",
        R"({"op":"chiplet","chiplets":2.5})",
        R"({"op":"chiplet","substrate":"glass"})",
        R"({"op":"chiplet","bogus":1})",
        R"({"op":"partition_explore","splits":"4,2,1"})",
        R"({"op":"partition_explore","splits":"2,4"})",
        R"({"op":"partition_explore","splits":"1,02"})",
        R"({"op":"partition_explore","splits":"1,17"})",
        R"({"op":"partition_explore","count":0})",
        R"({"op":"partition_explore","scale":"cubic"})",
        R"({"op":"partition_explore","area_from_mm2":-5})",
        // Parse errors.
        R"({"op":"scenario1")",
        R"({"op":"scenario1",})",
        R"({"op":"scenario1","lambda_um":01})",
        R"({"op" "scenario1"})",
        R"({"op":"scenario1"} trailing)",
        R"({"a":1,"a":2,"op":"scenario1"})",
        "",
        "   ",
        // Evaluation errors (parse fine, evaluate throws).
        R"({"op":"scenario1","lambda_um":0})",
        R"({"op":"scenario2","y0":0})",
        R"({"op":"gross_die","die_width_mm":1000})",
        R"({"op":"cost_tr","process":{"wafer_radius_cm":0}})",
        R"({"op":"chiplet","logic_area_mm2":90000})",
        R"({"op":"chiplet","clustering_alpha":-1})",
    };
}

/// Deterministic pseudo-random request lines: scenario1/yield with
/// randomized values (including negatives and huge magnitudes) and
/// randomized key presence.
std::vector<std::string> fuzz_corpus(std::size_t count) {
    std::mt19937_64 rng{0x5eedu};
    std::uniform_real_distribution<double> uni{-2.0, 2.0};
    std::vector<std::string> lines;
    lines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double magnitude =
            std::pow(10.0, static_cast<double>(rng() % 13) - 6.0);
        std::string line = "{\"op\":";
        if (rng() % 2 == 0) {
            line += "\"scenario1\"";
            if (rng() % 2 == 0) {
                line += ",\"lambda_um\":" +
                        serve::json::format_number(uni(rng) * magnitude);
            }
            if (rng() % 2 == 0) {
                line += ",\"c0_usd\":" +
                        serve::json::format_number(uni(rng) * magnitude);
            }
            if (rng() % 3 == 0) {
                line += ",\"x\":" + serve::json::format_number(
                                        1.0 + uni(rng) * 0.5);
            }
        } else {
            line += "\"yield\"";
            const char* models[] = {"poisson",        "murphy",
                                    "seeds",          "bose_einstein",
                                    "neg_binomial",   "scaled_poisson",
                                    "reference"};
            line += ",\"model\":\"";
            line += models[rng() % 7];
            line += "\"";
            if (rng() % 2 == 0) {
                line += ",\"expected_faults\":" +
                        serve::json::format_number(uni(rng) * magnitude);
            }
            if (rng() % 2 == 0) {
                line += ",\"die_area_cm2\":" +
                        serve::json::format_number(uni(rng) * magnitude);
            }
        }
        if (rng() % 3 == 0) {
            line += ",\"id\":" + std::to_string(rng() % 100000);
        }
        line += "}";
        lines.push_back(std::move(line));
    }
    return lines;
}

serve::engine_config fast_config() {
    serve::engine_config config;
    config.parallelism = 1;
    return config;
}

serve::engine_config legacy_config() {
    serve::engine_config config;
    config.parallelism = 1;
    config.hot_path = false;
    config.batch_dedup = false;
    config.sweep_kernels = false;
    return config;
}

// ---------------------------------------------------------------------------
// The zero-allocation gate.
// ---------------------------------------------------------------------------

class HotPathAllocations : public ::testing::Test {
protected:
    /// Warm a request line until the hot path is primed (evaluation
    /// cached, arena chunks and buffers grown), then count allocations
    /// across several further warm hits.
    static std::uint64_t warm_hit_allocations(serve::engine& engine,
                                              const std::string& line,
                                              std::string& out) {
        for (int i = 0; i < 3; ++i) {
            engine.handle_line_into(line, out);
        }
        const std::uint64_t before = t_allocations;
        for (int i = 0; i < 5; ++i) {
            engine.handle_line_into(line, out);
        }
        return t_allocations - before;
    }
};

TEST_F(HotPathAllocations, WarmScenario1HitAllocatesNothing) {
    serve::engine engine{fast_config()};
    const std::string line = R"({"id":7,"op":"scenario1","lambda_um":0.5})";
    std::string out;
    engine.handle_line_into(line, out);
    const std::string expected = out;
    EXPECT_EQ(warm_hit_allocations(engine, line, out), 0u);
    EXPECT_EQ(out, expected);
    EXPECT_GT(engine.arena_bytes(), 0u);
}

TEST_F(HotPathAllocations, WarmHitWithTraceIdAllocatesNothing) {
    // The observability tentpole's gate: echoing a client trace_id —
    // envelope splice, flight-recorder append, tail-exemplar note —
    // must not cost the warm path a single allocation.  The warm-up
    // passes inside warm_hit_allocations also pre-register this
    // thread's flight ring, so only steady-state work is counted.
    serve::engine engine{fast_config()};
    const std::string line =
        R"({"id":7,"op":"scenario1","lambda_um":0.5,)"
        R"("trace_id":"req-abc-123-def-456"})";
    std::string out;
    engine.handle_line_into(line, out);
    const std::string expected = out;
    EXPECT_EQ(warm_hit_allocations(engine, line, out), 0u);
    EXPECT_EQ(out, expected);
    EXPECT_NE(out.find("\"trace_id\":\"req-abc-123-def-456\""),
              std::string::npos);
    // And a line without one still answers with the legacy bytes.
    const std::string bare = R"({"id":7,"op":"scenario1","lambda_um":0.5})";
    EXPECT_EQ(warm_hit_allocations(engine, bare, out), 0u);
    EXPECT_EQ(out.find("trace_id"), std::string::npos);
}

TEST_F(HotPathAllocations, WarmHitsAcrossEndpointsAllocateNothing) {
    serve::engine engine{fast_config()};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","id":"abc","y0":0.9})",
        R"({"op":"yield","model":"murphy","expected_faults":1.5})",
        R"({"op":"yield","model":"reference","y0":0.7,"die_area_cm2":2})",
        R"({"op":"cost_tr","product":{"transistors":1e6},)"
        R"("process":{"c0_usd":900}})",
        R"({"op":"gross_die","die_width_mm":12,"die_height_mm":9})",
        R"({"id":[1,2],"op":"table3","row":3})",
        R"({"op":"mc_yield","dies":32,"seed":3})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,)"
        R"("count":3,"target":{"op":"scenario1"}})",
        // The acceptance gate for the chiplet endpoint: a warm point
        // query allocates nothing (all strings in the payload are SSO).
        R"({"id":9,"op":"chiplet","chiplets":4,"substrate":"rdl",)"
        R"("d2d_area_mm2":8})",
        R"({"op":"partition_explore","splits":"1,2,4","count":5})",
    };
    std::string out;
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        serve::engine* e = &engine;
        EXPECT_EQ(warm_hit_allocations(*e, line, out), 0u);
    }
}

TEST_F(HotPathAllocations, ColdMissWithCacheDisabledAllocatesNothing) {
    // The cold-path arena gate: with the memoization cache disabled,
    // *every* request is a cold miss, and for the closed-form point
    // endpoints the hot path evaluates the library directly and
    // serializes into a reused per-thread buffer — zero allocations
    // once buffers have grown (warm-up is inside
    // warm_hit_allocations).  The cache put is skipped entirely at
    // capacity 0, so no copy of the response is taken either.
    serve::engine_config config = fast_config();
    config.cache_capacity = 0;
    serve::engine engine{config};
    const std::vector<std::string> lines = {
        R"({"id":7,"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","y0":0.9,"lambda_um":0.8})",
        R"({"op":"yield","model":"poisson","expected_faults":0.5})",
        R"({"op":"yield","model":"murphy","die_area_cm2":2.5,)"
        R"("defects_per_cm2":0.4})",
        R"({"op":"yield","model":"seeds","die_area_cm2":1.2})",
        R"({"op":"yield","model":"bose_einstein","critical_steps":12})",
        R"({"op":"yield","model":"neg_binomial","alpha":2.5,)"
        R"("expected_faults":3})",
        R"({"op":"yield","model":"scaled_poisson","lambda_um":0.8})",
        R"({"op":"yield","model":"reference","y0":0.7,"die_area_cm2":2})",
        R"({"op":"gross_die","die_width_mm":12,"die_height_mm":9})",
        R"({"op":"gross_die","die_width_mm":7,"die_height_mm":7,)"
        R"("method":"ferris_prabhu","scribe_mm":0.1})",
        R"({"id":"t","op":"scenario1","trace_id":"req-cold-1"})",
    };
    std::string out;
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        EXPECT_EQ(warm_hit_allocations(engine, line, out), 0u);
    }
    // Cache accounting: every one of those was a miss, never a hit.
    EXPECT_EQ(engine.cache_stats().hits, 0u);
    EXPECT_GT(engine.cache_stats().misses, 0u);
    EXPECT_EQ(engine.cache_stats().entries, 0u);

    // And the bytes are exactly the legacy pipeline's.
    serve::engine legacy{legacy_config()};
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        engine.handle_line_into(line, out);
        EXPECT_EQ(out, legacy.handle_line(line));
    }
}

TEST_F(HotPathAllocations, ColdMissIneligibleOpsStillAnswerCorrectly) {
    // Point ops outside the cold-miss fast set (table3, chiplet,
    // cost_tr, mc_yield, sweeps) decline to the legacy pipeline at
    // cache capacity 0 — allocations are allowed, bytes must match.
    serve::engine_config config = fast_config();
    config.cache_capacity = 0;
    serve::engine engine{config};
    serve::engine legacy{legacy_config()};
    const std::vector<std::string> lines = {
        R"({"op":"table3","row":3})",
        R"({"op":"chiplet","chiplets":4,"substrate":"rdl"})",
        R"({"op":"cost_tr","product":{"transistors":1e6}})",
        R"({"op":"mc_yield","dies":32,"seed":3})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,)"
        R"("count":3,"target":{"op":"scenario1"}})",
        R"({"op":"yield","model":"voodoo"})",
        R"({"op":"scenario1","lambda_um":0})",
    };
    std::string out;
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        for (int i = 0; i < 2; ++i) {
            engine.handle_line_into(line, out);
            EXPECT_EQ(out, legacy.handle_line(line));
        }
    }
}

TEST_F(HotPathAllocations, ColdAndLegacyPathsStillWork) {
    // Sanity: the counter itself sees the cold path allocate.
    serve::engine engine{fast_config()};
    std::string out;
    const std::uint64_t before = t_allocations;
    engine.handle_line_into(R"({"op":"scenario1","lambda_um":0.61})", out);
    EXPECT_GT(t_allocations, before);
}

TEST_F(HotPathAllocations, HotPathOffStillAnswersCorrectly) {
    serve::engine fast{fast_config()};
    serve::engine legacy{legacy_config()};
    const std::string line = R"({"id":1,"op":"scenario1","lambda_um":0.5})";
    std::string a;
    std::string b;
    for (int i = 0; i < 3; ++i) {
        fast.handle_line_into(line, a);
        legacy.handle_line_into(line, b);
        EXPECT_EQ(a, b);
    }
}

// ---------------------------------------------------------------------------
// Differential: arena-view parser vs DOM parser.
// ---------------------------------------------------------------------------

TEST(ArenaParser, MatchesDomParserOnCorpus) {
    exec::arena arena;
    serve::json::arena_parser parser;
    std::vector<std::string> lines = corpus();
    const std::vector<std::string> extra = fuzz_corpus(500);
    lines.insert(lines.end(), extra.begin(), extra.end());

    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        std::string dom_dump;
        std::string dom_error;
        try {
            dom_dump = serve::json::dump(serve::json::parse(line));
        } catch (const serve::json::parse_error& e) {
            dom_error = e.what();
        }

        arena.reset();
        std::string view_dump;
        std::string view_error;
        try {
            const serve::json::aview& doc = parser.parse(line, arena);
            serve::json::dump_into(doc, view_dump);
        } catch (const serve::json::parse_error& e) {
            view_error = e.what();
        }

        EXPECT_EQ(dom_error, view_error);
        EXPECT_EQ(dom_dump, view_dump);
    }
}

// ---------------------------------------------------------------------------
// Differential: fast request parser vs legacy request parser.
// ---------------------------------------------------------------------------

TEST(FastParse, CanonicalKeysAndErrorsMatchLegacy) {
    exec::arena arena;
    serve::json::arena_parser parser;
    serve::fast_parse_state state;
    std::vector<std::string> lines = corpus();
    const std::vector<std::string> extra = fuzz_corpus(1000);
    lines.insert(lines.end(), extra.begin(), extra.end());

    std::size_t declined = 0;
    for (const std::string& line : lines) {
        SCOPED_TRACE(line);

        std::string legacy_key;
        std::string legacy_error;
        try {
            const serve::request req =
                serve::parse_request(serve::json::parse(line));
            legacy_key = req.canonical_key;
        } catch (const serve::request_error& e) {
            legacy_error = std::string{e.code()} + ": " + e.what();
        } catch (const serve::json::parse_error&) {
            continue;  // parser equivalence is pinned above
        }

        std::string fast_key;
        std::string fast_error;
        try {
            arena.reset();
            const serve::json::aview& doc = parser.parse(line, arena);
            serve::parse_request_fast(doc, state);
            fast_key = state.req.canonical_key;
        } catch (const serve::request_error& e) {
            fast_error = std::string{e.code()} + ": " + e.what();
        } catch (...) {
            // fast_parse_unsupported: the fast parser may decline any
            // shape (the engine falls back to legacy), but it must
            // never *disagree*.
            ++declined;
            continue;
        }

        EXPECT_EQ(legacy_error, fast_error);
        EXPECT_EQ(legacy_key, fast_key);
    }
    // The corpus is overwhelmingly supported; declines are the rare
    // exception (nested-sweep error shapes), not the rule.
    EXPECT_LT(declined, lines.size() / 20);
}

// ---------------------------------------------------------------------------
// Differential: whole-engine responses, fast stack vs legacy stack.
// ---------------------------------------------------------------------------

TEST(HotPathEquivalence, ResponsesMatchLegacyColdAndWarm) {
    serve::engine fast{fast_config()};
    serve::engine legacy{legacy_config()};
    std::vector<std::string> lines = corpus();
    const std::vector<std::string> extra = fuzz_corpus(300);
    lines.insert(lines.end(), extra.begin(), extra.end());

    for (const std::string& line : lines) {
        SCOPED_TRACE(line);
        if (line.find("\"stats\"") != std::string::npos) {
            continue;  // live snapshot: legitimately differs
        }
        // Cold, then warm (warm exercises the allocation-free splice).
        EXPECT_EQ(legacy.handle_line(line), fast.handle_line(line));
        EXPECT_EQ(legacy.handle_line(line), fast.handle_line(line));
    }
}

TEST(HotPathEquivalence, BatchesMatchLegacyAtEveryParallelism) {
    std::vector<std::string> lines = corpus();
    const std::vector<std::string> extra = fuzz_corpus(200);
    lines.insert(lines.end(), extra.begin(), extra.end());
    // Duplicate a slice so intra-batch dedup actually triggers.
    for (std::size_t i = 0; i < 50 && i < lines.size(); ++i) {
        lines.push_back(lines[i]);
    }

    std::vector<std::vector<std::string>> outputs;
    for (const unsigned parallelism : {1u, 4u, 0u}) {
        serve::engine_config on = fast_config();
        on.parallelism = parallelism;
        serve::engine_config off = legacy_config();
        off.parallelism = parallelism;
        serve::engine fast{on};
        serve::engine legacy{off};

        std::vector<std::string> fast_out = fast.handle_batch(lines);
        const std::vector<std::string> legacy_out =
            legacy.handle_batch(lines);
        ASSERT_EQ(fast_out.size(), legacy_out.size());
        for (std::size_t i = 0; i < fast_out.size(); ++i) {
            if (lines[i].find("\"stats\"") != std::string::npos) {
                continue;
            }
            SCOPED_TRACE(lines[i]);
            EXPECT_EQ(legacy_out[i], fast_out[i]) << "line " << i;
        }
        outputs.push_back(std::move(fast_out));
    }
    // Thread-count determinism of the fast stack itself.
    for (std::size_t i = 0; i < outputs[0].size(); ++i) {
        if (lines[i].find("\"stats\"") != std::string::npos) {
            continue;
        }
        EXPECT_EQ(outputs[0][i], outputs[1][i]);
        EXPECT_EQ(outputs[0][i], outputs[2][i]);
    }
}

}  // namespace
