#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace {

using silicon::serve::memo_cache;

TEST(MemoCache, MissThenHit) {
    memo_cache cache{8, 1};
    EXPECT_EQ(cache.get("k"), nullptr);
    cache.put("k", "v");
    const auto hit = cache.get("k");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, "v");

    const memo_cache::stats s = cache.snapshot();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.entries, 1u);
}

TEST(MemoCache, EvictsLeastRecentlyUsed) {
    memo_cache cache{2, 1};
    cache.put("a", "1");
    cache.put("b", "2");
    ASSERT_NE(cache.get("a"), nullptr);  // "a" is now most recent
    cache.put("c", "3");                 // evicts "b"

    EXPECT_EQ(cache.get("b"), nullptr);
    EXPECT_NE(cache.get("a"), nullptr);
    EXPECT_NE(cache.get("c"), nullptr);

    const memo_cache::stats s = cache.snapshot();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(MemoCache, PutRefreshesExistingKey) {
    memo_cache cache{2, 1};
    cache.put("a", "1");
    cache.put("b", "2");
    cache.put("a", "updated");  // refresh, not insert: no eviction
    cache.put("c", "3");        // evicts "b" (LRU after the refresh)

    EXPECT_EQ(cache.get("b"), nullptr);
    const auto a = cache.get("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(*a, "updated");
    EXPECT_EQ(cache.snapshot().evictions, 1u);
}

TEST(MemoCache, HitSurvivesEviction) {
    memo_cache cache{1, 1};
    cache.put("a", "payload");
    const std::shared_ptr<const std::string> held = cache.get("a");
    cache.put("b", "evicts a");
    EXPECT_EQ(cache.get("a"), nullptr);
    EXPECT_EQ(*held, "payload");  // shared_ptr keeps the value alive
}

TEST(MemoCache, ZeroCapacityDisables) {
    memo_cache cache{0};
    cache.put("k", "v");
    EXPECT_EQ(cache.get("k"), nullptr);
    const memo_cache::stats s = cache.snapshot();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.capacity, 0u);
}

TEST(MemoCache, ClearDropsEntriesKeepsCounters) {
    memo_cache cache{8, 2};
    cache.put("a", "1");
    cache.put("b", "2");
    (void)cache.get("a");
    cache.clear();
    EXPECT_EQ(cache.get("a"), nullptr);
    const memo_cache::stats s = cache.snapshot();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(MemoCache, ShardsClampedToCapacity) {
    memo_cache cache{2, 16};
    EXPECT_EQ(cache.snapshot().shards, 2u);
    // With many shards the entry budget still holds overall.
    memo_cache wide{64, 16};
    EXPECT_EQ(wide.snapshot().shards, 16u);
    EXPECT_EQ(wide.snapshot().capacity, 64u);
}

TEST(MemoCache, ManyInsertsRespectBudget) {
    constexpr std::size_t capacity = 32;
    memo_cache cache{capacity, 4};
    for (int i = 0; i < 1000; ++i) {
        cache.put("key" + std::to_string(i), std::to_string(i));
    }
    const memo_cache::stats s = cache.snapshot();
    // Per-shard rounding may allow up to shards-1 extra entries.
    EXPECT_LE(s.entries, capacity + s.shards - 1);
    EXPECT_GE(s.evictions, 1000u - (capacity + s.shards - 1));
}

}  // namespace
