// Event-loop transport tests (serve/event_loop + serve/conn): an
// in-process epoll reactor served from a background thread, driven by
// real TCP clients.  The central contract is byte-identity — every
// reply read off the socket must equal what `engine::handle_batch`
// returns for the same lines, at every parallelism — plus the
// transport-only behaviors the blocking PR 5 loop never had: 1000-way
// multiplexing, watermark backpressure, keep-alive HTTP mid-JSONL, and
// idle/write-stall deadlines.
//
// Lives in its own binary: it spins real server threads and watches
// process-global obs gauges, which must not race other serve tests.

#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/event_loop.hpp"
#include "serve/io.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace serve = silicon::serve;
namespace io = silicon::serve::io;
namespace obs = silicon::obs;

namespace {

// ---------------------------------------------------------------------------
// Harness: a live event loop on an ephemeral loopback port
// ---------------------------------------------------------------------------

int make_listener(std::uint16_t* port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    EXPECT_EQ(::listen(fd, 1024), 0) << std::strerror(errno);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    *port = ntohs(addr.sin_port);
    return fd;
}

/// Runs an event loop over a fresh engine on a background thread; the
/// destructor stops the loop and joins.
struct loop_harness {
    explicit loop_harness(serve::engine_config engine_cfg = {},
                          serve::event_loop_config loop_cfg = {})
        : eng{engine_cfg} {
        const int listener = make_listener(&port);
        loop = std::make_unique<serve::event_loop>(eng, listener,
                                                   std::move(loop_cfg));
        runner = std::thread{[this] { loop->run(); }};
    }
    ~loop_harness() {
        loop->stop();
        runner.join();
    }

    serve::engine eng;
    std::uint16_t port = 0;
    std::unique_ptr<serve::event_loop> loop;
    std::thread runner;
};

int connect_client(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0) << std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Every blocking read below is bounded: a hung transport fails the
    // test instead of hanging the suite.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
}

void send_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << std::strerror(errno);
        data.remove_prefix(static_cast<std::size_t>(n));
    }
}

/// Read until EOF (or timeout) and return everything.
std::string read_to_eof(int fd) {
    std::string out;
    char buf[16384];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            EXPECT_EQ(n, 0) << std::strerror(errno);
            return out;
        }
        out.append(buf, static_cast<std::size_t>(n));
    }
}

/// Read exactly `count` newline-terminated lines.
std::vector<std::string> read_lines(int fd, std::size_t count) {
    std::vector<std::string> lines;
    std::string buf;
    char chunk[16384];
    while (lines.size() < count) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            lines.push_back(buf.substr(0, nl));
            buf.erase(0, nl + 1);
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            ADD_FAILURE() << "connection ended after " << lines.size()
                          << " of " << count << " lines: "
                          << (n == 0 ? "EOF" : std::strerror(errno));
            return lines;
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_TRUE(buf.empty()) << "unexpected trailing bytes: " << buf;
    return lines;
}

std::vector<std::string> load_corpus() {
    std::ifstream in{std::string{SILICON_TEST_DATA_DIR} +
                     "/golden_requests.jsonl"};
    EXPECT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    EXPECT_FALSE(lines.empty());
    return lines;
}

obs::gauge& queue_gauge() {
    return obs::metrics_registry::global().get_gauge(
        "silicond_write_queue_bytes",
        "Response bytes buffered across all connections");
}

}  // namespace

// ---------------------------------------------------------------------------
// Golden bytes: the transport must not change a single response byte
// at any engine parallelism (the same contract the smoke tests enforce
// for the whole binary, here isolated to the loop itself).
// ---------------------------------------------------------------------------

TEST(EventLoop, GoldenBytesAtEveryParallelism) {
    const std::vector<std::string> corpus = load_corpus();
    serve::engine reference{serve::engine_config{.parallelism = 1}};
    const std::vector<std::string> want = reference.handle_batch(corpus);
    for (const unsigned parallelism : {1u, 4u, 0u}) {
        loop_harness h{serve::engine_config{.parallelism = parallelism}};
        const int fd = connect_client(h.port);
        std::string wire;
        for (const std::string& line : corpus) {
            wire += line;
            wire += '\n';
        }
        send_all(fd, wire);
        const std::vector<std::string> got = read_lines(fd, corpus.size());
        ASSERT_EQ(got.size(), want.size()) << "parallelism " << parallelism;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i])
                << "parallelism " << parallelism << " line " << i;
        }
        ::close(fd);
    }
}

TEST(EventLoop, TornLinesAcrossTcpSegments) {
    const std::vector<std::string> corpus = load_corpus();
    loop_harness h;
    serve::engine reference{serve::engine_config{.parallelism = 1}};
    const int fd = connect_client(h.port);
    std::string wire;
    for (std::size_t i = 0; i < 8 && i < corpus.size(); ++i) {
        wire += corpus[i];
        wire += '\n';
    }
    // Drip the stream in prime-sized fragments so line boundaries and
    // segment boundaries never align; TCP_NODELAY keeps each fragment
    // its own segment.
    for (std::size_t off = 0; off < wire.size(); off += 7) {
        send_all(fd, std::string_view{wire}.substr(off, 7));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const std::size_t sent = std::min<std::size_t>(8, corpus.size());
    const std::vector<std::string> got = read_lines(fd, sent);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], reference.handle_line(corpus[i])) << "line " << i;
    }
    ::close(fd);
}

TEST(EventLoop, FinalLineWithoutNewlineAnsweredOnEof) {
    loop_harness h;
    const int fd = connect_client(h.port);
    const std::string line = R"({"op":"table3"})";
    send_all(fd, line);  // no '\n'
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
    const std::string body = read_to_eof(fd);
    serve::engine reference;
    EXPECT_EQ(body, reference.handle_line(line) + "\n");
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Multiplexing
// ---------------------------------------------------------------------------

TEST(EventLoop, InterleavedConcurrentConnections) {
    const std::vector<std::string> corpus = load_corpus();
    loop_harness h;
    serve::engine reference{serve::engine_config{.parallelism = 1}};
    constexpr std::size_t kConns = 128;
    constexpr std::size_t kLinesPerConn = 5;

    std::vector<int> fds(kConns);
    std::vector<std::string> wires(kConns);
    std::vector<std::vector<std::string>> want(kConns);
    for (std::size_t c = 0; c < kConns; ++c) {
        fds[c] = connect_client(h.port);
        for (std::size_t l = 0; l < kLinesPerConn; ++l) {
            const std::string& line =
                corpus[(c * kLinesPerConn + l) % corpus.size()];
            wires[c] += line;
            wires[c] += '\n';
            want[c].push_back(reference.handle_line(line));
        }
    }
    // Round-robin partial writes: every connection's stream is torn
    // mid-line while 127 other connections make progress between its
    // fragments.
    std::vector<std::size_t> offsets(kConns, 0);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::size_t c = 0; c < kConns; ++c) {
            if (offsets[c] >= wires[c].size()) {
                continue;
            }
            const std::size_t step =
                std::min<std::size_t>(13, wires[c].size() - offsets[c]);
            send_all(fds[c],
                     std::string_view{wires[c]}.substr(offsets[c], step));
            offsets[c] += step;
            progressed = true;
        }
    }
    for (std::size_t c = 0; c < kConns; ++c) {
        const std::vector<std::string> got =
            read_lines(fds[c], kLinesPerConn);
        ASSERT_EQ(got.size(), kLinesPerConn) << "conn " << c;
        for (std::size_t l = 0; l < kLinesPerConn; ++l) {
            EXPECT_EQ(got[l], want[c][l]) << "conn " << c << " line " << l;
        }
        ::close(fds[c]);
    }
}

TEST(EventLoop, ThousandConcurrentConnections) {
    loop_harness h;
    const std::string line = R"({"op":"table3"})";
    serve::engine reference;
    const std::string want = reference.handle_line(line) + "\n";
    constexpr std::size_t kConns = 1000;
    std::vector<int> fds;
    fds.reserve(kConns);
    for (std::size_t c = 0; c < kConns; ++c) {
        fds.push_back(connect_client(h.port));
    }
    // All 1000 connections are open simultaneously before any request
    // is sent — this is the multiplexing floor from the acceptance
    // criteria, impossible under the old thread-per-connection loop.
    for (const int fd : fds) {
        send_all(fd, line + "\n");
    }
    for (std::size_t c = 0; c < kConns; ++c) {
        const std::vector<std::string> got = read_lines(fds[c], 1);
        ASSERT_EQ(got.size(), 1u) << "conn " << c;
        EXPECT_EQ(got[0] + "\n", want) << "conn " << c;
        ::close(fds[c]);
    }
}

TEST(EventLoop, MaxConnsClosesExtraAccepts) {
    serve::event_loop_config cfg;
    cfg.max_conns = 4;
    loop_harness h{{}, cfg};
    std::vector<int> keep;
    for (int i = 0; i < 4; ++i) {
        keep.push_back(connect_client(h.port));
    }
    // Make sure all four are registered before the fifth arrives.
    send_all(keep[0], "{\"op\":\"table3\"}\n");
    (void)read_lines(keep[0], 1);

    const int extra = connect_client(h.port);
    char byte = 0;
    const ssize_t n = ::recv(extra, &byte, 1, 0);  // closed without a reply
    EXPECT_EQ(n, 0);
    ::close(extra);

    // The admitted connections still work.
    for (const int fd : keep) {
        send_all(fd, "{\"op\":\"table3\"}\n");
        EXPECT_EQ(read_lines(fd, 1).size(), 1u);
        ::close(fd);
    }
}

// ---------------------------------------------------------------------------
// Backpressure: a slow reader must pause its own stream, not kill the
// server, and replies must survive the pause byte-for-byte in order.
// ---------------------------------------------------------------------------

TEST(EventLoop, SlowReaderHitsWatermarkThenDrainsInOrder) {
    serve::event_loop_config cfg;
    cfg.conn.queue_high_bytes = 64u << 10;
    cfg.conn.queue_low_bytes = 8u << 10;
    loop_harness h{{}, cfg};
    serve::engine reference;
    const std::string line = R"({"op":"table3"})";
    const std::string want = reference.handle_line(line);
    // Enough response volume to overflow the socket buffers and the
    // 64KB queue watermark many times over.
    constexpr std::size_t kRequests = 20000;

    const int fd = connect_client(h.port);
    // Non-blocking sends: once the server pauses reading, the kernel
    // buffers fill and send() returns EAGAIN — this thread then waits
    // rather than deadlocking against the unread replies.
    const int flags = ::fcntl(fd, F_GETFL);
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);

    std::string wire;
    wire.reserve(kRequests * (line.size() + 1));
    for (std::size_t i = 0; i < kRequests; ++i) {
        wire += line;
        wire += '\n';
    }
    std::size_t offset = 0;
    bool saw_queue_bytes = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (offset < wire.size()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "stalled sending at " << offset;
        const ssize_t n = ::send(fd, wire.data() + offset,
                                 wire.size() - offset, MSG_NOSIGNAL);
        if (n > 0) {
            offset += static_cast<std::size_t>(n);
        } else {
            ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK)
                << std::strerror(errno);
            // The send-side stall is the backpressure observable from
            // out here; the gauge confirms the server is buffering
            // (not dropping) while we refuse to read.
            if (queue_gauge().value() > 0) {
                saw_queue_bytes = true;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (queue_gauge().value() >
            static_cast<std::int64_t>(cfg.conn.queue_high_bytes)) {
            saw_queue_bytes = true;
        }
    }
    // All requests are in flight and this side is not reading: the
    // replies must pile up in the server's write queue (the socket
    // buffers are far too small for 20k of them) until the watermark
    // pauses the stream.  Wait for the gauge to prove it.
    while (!saw_queue_bytes) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "write queue never buffered — watermark path untested";
        if (queue_gauge().value() > 0) {
            saw_queue_bytes = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Now drain.  Every one of the 20k replies must come back intact
    // and in order: the pause/resume cycle may not drop or reorder.
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags), 0);
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
    const std::vector<std::string> got = read_lines(fd, kRequests);
    ASSERT_EQ(got.size(), kRequests);
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want) << "line " << i;
    }
    EXPECT_TRUE(saw_queue_bytes)
        << "write queue never buffered — watermark path untested";
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // clean close after flush
    ::close(fd);
}

// ---------------------------------------------------------------------------
// HTTP on the multiplexed port
// ---------------------------------------------------------------------------

TEST(EventLoop, KeepAliveMetricsScrapeMidJsonl) {
    loop_harness h;
    serve::engine reference;
    const std::string line = R"({"op":"table3"})";
    const std::string want = reference.handle_line(line);
    const int fd = connect_client(h.port);

    send_all(fd, line + "\nGET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" + line +
                     "\n");
    // Reply 1: the JSONL response that preceded the scrape.
    std::string buf;
    char chunk[16384];
    const auto read_more = [&] {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << std::strerror(errno);
        buf.append(chunk, static_cast<std::size_t>(n));
    };
    while (buf.find('\n') == std::string::npos) {
        read_more();
    }
    EXPECT_EQ(buf.substr(0, buf.find('\n')), want);
    buf.erase(0, buf.find('\n') + 1);

    // Reply 2: a framed HTTP/1.1 keep-alive response.
    while (buf.find("\r\n\r\n") == std::string::npos) {
        read_more();
    }
    EXPECT_EQ(buf.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(buf.find("Connection: keep-alive\r\n"), std::string::npos);
    const std::size_t cl_pos = buf.find("Content-Length: ");
    ASSERT_NE(cl_pos, std::string::npos);
    const std::size_t body_len = static_cast<std::size_t>(
        std::stoul(buf.substr(cl_pos + 16)));
    const std::size_t body_start = buf.find("\r\n\r\n") + 4;
    while (buf.size() < body_start + body_len + want.size() + 1) {
        read_more();
    }
    const std::string body = buf.substr(body_start, body_len);
    EXPECT_NE(body.find("silicond_http_requests_total"), std::string::npos);

    // Reply 3: JSONL service resumed on the same connection.
    buf.erase(0, body_start + body_len);
    EXPECT_EQ(buf.substr(0, buf.find('\n')), want);
    ::close(fd);
}

TEST(EventLoop, PipelinedHttpRequestsAllAnswered) {
    loop_harness h;
    const int fd = connect_client(h.port);
    send_all(fd,
             "GET /metrics HTTP/1.1\r\n\r\n"
             "GET /nope HTTP/1.1\r\n\r\n"
             "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string body = read_to_eof(fd);
    // Three framed responses; the final Connection: close ends the
    // stream so read_to_eof terminates.
    EXPECT_EQ(body.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(body.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
    EXPECT_NE(body.find("Connection: close\r\n"), std::string::npos);
    ::close(fd);
}

TEST(EventLoop, HealthzIsCheapAndKeepAlive) {
    loop_harness h;
    serve::engine reference;
    const std::string line = R"({"op":"table3"})";
    const std::string want = reference.handle_line(line);
    const int fd = connect_client(h.port);
    // JSONL, then two pipelined health probes, then JSONL again — the
    // debug surface must multiplex with request traffic on one
    // connection, exactly like /metrics.
    send_all(fd, line +
                     "\nGET /healthz HTTP/1.1\r\n\r\n"
                     "GET /healthz HTTP/1.1\r\n\r\n" +
                     line + "\n");
    std::string buf;
    char chunk[16384];
    const auto read_more = [&] {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << std::strerror(errno);
        buf.append(chunk, static_cast<std::size_t>(n));
    };
    // Reply 1: the JSONL answer.
    while (buf.find('\n') == std::string::npos) {
        read_more();
    }
    EXPECT_EQ(buf.substr(0, buf.find('\n')), want);
    buf.erase(0, buf.find('\n') + 1);
    // Replies 2+3: framed 200s with the literal body "ok\n".
    for (int probe = 0; probe < 2; ++probe) {
        while (buf.find("\r\n\r\n") == std::string::npos) {
            read_more();
        }
        EXPECT_EQ(buf.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << buf;
        EXPECT_NE(buf.find("Connection: keep-alive\r\n"), std::string::npos);
        const std::size_t body_start = buf.find("\r\n\r\n") + 4;
        while (buf.size() < body_start + 3) {
            read_more();
        }
        EXPECT_EQ(buf.substr(body_start, 3), "ok\n");
        buf.erase(0, body_start + 3);
    }
    // Reply 4: JSONL service resumed.
    while (buf.find('\n') == std::string::npos) {
        read_more();
    }
    EXPECT_EQ(buf.substr(0, buf.find('\n')), want);
    ::close(fd);
}

TEST(EventLoop, StatuszExposesEngineAndTransportState) {
    serve::engine_config engine_cfg;
    engine_cfg.limits.max_mc_dies = 12345;
    loop_harness h{engine_cfg};
    const int fd = connect_client(h.port);
    // Serve one line first so the snapshot has something to show.
    send_all(fd, "{\"op\":\"table3\"}\n");
    ASSERT_EQ(read_lines(fd, 1).size(), 1u);
    send_all(fd, "GET /statusz HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string response = read_to_eof(fd);
    EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(response.find("Content-Type: application/json"),
              std::string::npos);
    const std::size_t body_start = response.find("\r\n\r\n");
    ASSERT_NE(body_start, std::string::npos);

    const serve::json::value doc =
        serve::json::parse(response.substr(body_start + 4));
    ASSERT_TRUE(doc.is_object());
    const auto& status = doc.as_object();
    for (const char* section : {"config", "limits", "cache", "overload",
                                "flight", "transport"}) {
        const serve::json::value* v = status.find(section);
        ASSERT_NE(v, nullptr) << "missing /statusz section " << section;
        EXPECT_TRUE(v->is_object()) << section;
    }
    EXPECT_EQ(
        status.find("limits")->as_object().find("max_mc_dies")->as_number(),
        12345.0);
    const auto& transport = status.find("transport")->as_object();
    EXPECT_GE(transport.find("open_conns")->as_number(), 1.0);
    EXPECT_GE(transport.find("uptime_seconds")->as_number(), 0.0);
    const auto& flight = status.find("flight")->as_object();
    ASSERT_NE(flight.find("enabled"), nullptr);
    ASSERT_NE(flight.find("appended"), nullptr);
    ::close(fd);
}

TEST(EventLoop, FlightzDumpsRecordsForServedRequests) {
    loop_harness h;
    const int fd = connect_client(h.port);
    send_all(fd, "{\"op\":\"table3\",\"trace_id\":\"t-flightz\"}\n");
    ASSERT_EQ(read_lines(fd, 1).size(), 1u);
    send_all(fd, "GET /flightz HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string response = read_to_eof(fd);
    EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(response.find("Content-Type: application/x-ndjson"),
              std::string::npos);
    const std::size_t body_start = response.find("\r\n\r\n");
    ASSERT_NE(body_start, std::string::npos);
    const std::string body = response.substr(body_start + 4);
    // Every dump line is one well-formed record object; the request we
    // just served must be in there with its trace.
    ASSERT_FALSE(body.empty());
    std::size_t begin = 0;
    std::size_t records = 0;
    for (std::size_t nl = body.find('\n', begin); nl != std::string::npos;
         nl = body.find('\n', begin)) {
        const std::string record_line = body.substr(begin, nl - begin);
        begin = nl + 1;
        const serve::json::value record = serve::json::parse(record_line);
        ASSERT_TRUE(record.is_object()) << record_line;
        for (const char* key : {"seq", "endpoint", "trace_id", "code",
                                "cache_hit", "anomaly", "total_us"}) {
            ASSERT_NE(record.as_object().find(key), nullptr)
                << "record missing " << key << ": " << record_line;
        }
        ++records;
    }
    EXPECT_GT(records, 0u);
    EXPECT_NE(body.find("\"trace_id\":\"t-flightz\""), std::string::npos);
    ::close(fd);
}

TEST(EventLoop, LegacyBareScrapeStaysOneShot) {
    loop_harness h;
    const int fd = connect_client(h.port);
    send_all(fd, "GET /metrics\n");
    const std::string body = read_to_eof(fd);  // server closes: legacy mode
    EXPECT_EQ(body.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
    EXPECT_NE(body.find("silicond_flushes_total"), std::string::npos);
    ::close(fd);
}

TEST(EventLoop, MalformedHttpGets400AndClose) {
    loop_harness h;
    const int fd = connect_client(h.port);
    send_all(fd, "GET / HTTP/1.1\r\nX-A: 1\r\n folded\r\n\r\n");
    const std::string body = read_to_eof(fd);
    EXPECT_EQ(body.rfind("HTTP/1.1 400 Bad Request\r\n", 0), 0u);
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Line budget on the epoll path
// ---------------------------------------------------------------------------

TEST(EventLoop, OversizedLineRejectedInOrderThenClosed) {
    serve::event_loop_config cfg;
    cfg.conn.max_line_bytes = 64;
    loop_harness h{{}, cfg};
    serve::engine reference;
    const std::string ok_line = R"({"op":"table3"})";
    const int fd = connect_client(h.port);
    send_all(fd, ok_line + "\n" + std::string(500, 'x') + "\n" + ok_line +
                     "\n");
    const std::string body = read_to_eof(fd);
    // Reply 1 answers the good line; reply 2 is the too_large envelope
    // at the oversized line's stream position; the connection then
    // closes (close_on_oversize), so the third line is never served.
    const std::size_t nl = body.find('\n');
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(body.substr(0, nl), reference.handle_line(ok_line));
    EXPECT_NE(body.find("too_large"), std::string::npos);
    EXPECT_NE(body.find("max_line_bytes"), std::string::npos);
    EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 2);
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(EventLoop, IdleConnectionTimedOut) {
    serve::event_loop_config cfg;
    cfg.idle_timeout_ms = 200;
    cfg.tick_ms = 50;
    loop_harness h{{}, cfg};
    const int fd = connect_client(h.port);
    char byte = 0;
    const auto start = std::chrono::steady_clock::now();
    const ssize_t n = ::recv(fd, &byte, 1, 0);  // blocks until server closes
    const auto waited = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(n, 0);
    EXPECT_LT(waited, std::chrono::seconds(10));
    EXPECT_GE(waited, std::chrono::milliseconds(150));
    ::close(fd);
}

TEST(EventLoop, ActiveConnectionOutlivesIdleTimeout) {
    serve::event_loop_config cfg;
    cfg.idle_timeout_ms = 300;
    cfg.tick_ms = 50;
    loop_harness h{{}, cfg};
    const int fd = connect_client(h.port);
    // Keep trickling requests for ~4 idle windows: activity must keep
    // resetting the deadline.
    for (int i = 0; i < 12; ++i) {
        send_all(fd, "{\"op\":\"table3\"}\n");
        ASSERT_EQ(read_lines(fd, 1).size(), 1u) << "round " << i;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ::close(fd);
}

TEST(EventLoop, StuckReaderKilledByWriteDeadline) {
    serve::event_loop_config cfg;
    cfg.write_timeout_ms = 400;
    cfg.tick_ms = 50;
    cfg.conn.queue_high_bytes = 16u << 10;
    cfg.conn.queue_low_bytes = 4u << 10;
    loop_harness h{{}, cfg};
    const int fd = connect_client(h.port);
    // Shrink our receive window so the server's writes stall quickly.
    const int tiny = 4096;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    const int flags = ::fcntl(fd, F_GETFL);
    ASSERT_EQ(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
    // Pump requests but never read replies: the write queue stalls and
    // the write deadline must reap the connection.
    const std::string wire(64 * 16, '\0');
    std::string requests;
    for (int i = 0; i < 4096; ++i) {
        requests += "{\"op\":\"table3\"}\n";
    }
    std::size_t offset = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool closed = false;
    while (!closed) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "write deadline never fired";
        if (offset < requests.size()) {
            const ssize_t n = ::send(fd, requests.data() + offset,
                                     requests.size() - offset, MSG_NOSIGNAL);
            if (n > 0) {
                offset += static_cast<std::size_t>(n);
            } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
                closed = true;  // RST from the server's close
            }
        }
        // A close with unread data arrives as POLLERR/POLLHUP (RST).
        pollfd p{fd, POLLIN, 0};
        if (::poll(&p, 1, 50) > 0 &&
            (p.revents & (POLLERR | POLLHUP)) != 0) {
            closed = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::close(fd);
}

// ---------------------------------------------------------------------------
// Half close: shutdown(SHUT_WR) mid-stream must still deliver every
// pending reply before the server closes its side.
// ---------------------------------------------------------------------------

TEST(EventLoop, HalfCloseStillDeliversAllReplies) {
    const std::vector<std::string> corpus = load_corpus();
    loop_harness h;
    serve::engine reference{serve::engine_config{.parallelism = 1}};
    const int fd = connect_client(h.port);
    std::string wire;
    for (const std::string& line : corpus) {
        wire += line;
        wire += '\n';
    }
    send_all(fd, wire);
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);  // EOF races the batch
    const std::string body = read_to_eof(fd);
    const std::vector<std::string> want = reference.handle_batch(corpus);
    std::string expected;
    for (const std::string& reply : want) {
        expected += reply;
        expected += '\n';
    }
    EXPECT_EQ(body, expected);
    ::close(fd);
}

// ---------------------------------------------------------------------------
// io::write_some_fd / write_all_fd EAGAIN regression (satellite #4):
// a socket whose send buffer is full must yield a clean would_block —
// never a busy loop, never lost bytes — and write_all_fd must park and
// finish once the peer drains.
// ---------------------------------------------------------------------------

TEST(IoWrite, WriteSomeReportsWouldBlockOnFullBuffer) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const int tiny = 4096;
    ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
    ASSERT_EQ(::fcntl(sv[0], F_SETFL, O_NONBLOCK), 0);

    const std::string big(1u << 20, 'x');
    std::size_t total = 0;
    io::write_result r{};
    for (int pass = 0; pass < 1024; ++pass) {
        r = io::write_some_fd(
            sv[0], std::string_view{big}.substr(total), true);
        ASSERT_FALSE(r.dead);
        total += r.written;
        if (r.would_block) {
            break;
        }
    }
    EXPECT_TRUE(r.would_block);
    EXPECT_LT(total, big.size());
    EXPECT_GT(total, 0u);

    // Drain the peer: exactly the accepted prefix arrives, unmangled.
    std::string got;
    char buf[8192];
    while (got.size() < total) {
        const ssize_t n = ::recv(sv[1], buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        got.append(buf, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(got, big.substr(0, total));
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(IoWrite, WriteAllParksOnEagainAndFinishes) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const int tiny = 4096;
    ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
    ASSERT_EQ(::fcntl(sv[0], F_SETFL, O_NONBLOCK), 0);

    const std::string big(1u << 20, 'y');
    std::string got;
    // Reader drains slowly on another thread; write_all_fd must poll
    // through the repeated EAGAINs (the bug class this PR fixes: the
    // old loop treated EAGAIN as a fatal write error on nonblocking
    // fds) and deliver every byte.
    std::thread reader{[&] {
        char buf[4096];
        while (got.size() < big.size()) {
            const ssize_t n = ::recv(sv[1], buf, sizeof(buf), 0);
            if (n <= 0) {
                break;
            }
            got.append(buf, static_cast<std::size_t>(n));
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }};
    EXPECT_TRUE(io::write_all_fd(sv[0], big, true));
    reader.join();
    EXPECT_EQ(got, big);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(IoWrite, DeadPeerReportsDeadNotWouldBlock) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ::close(sv[1]);
    const io::write_result r = io::write_some_fd(sv[0], "hello", true);
    EXPECT_TRUE(r.dead);
    EXPECT_FALSE(r.would_block);
    EXPECT_EQ(r.written, 0u);
    ::close(sv[0]);
}
