# End-to-end smoke test: pipe the checked-in mixed request batch
# through the silicond binary at several thread counts and require the
# output to match the checked-in golden responses byte for byte.
#
# Expects: SILICOND (binary path), REQUESTS, GOLDEN, THREADS.

foreach(var SILICOND REQUESTS GOLDEN THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "smoke_test.cmake: ${var} not set")
  endif()
endforeach()

execute_process(
  COMMAND ${SILICOND} --threads ${THREADS} --batch 7
  INPUT_FILE ${REQUESTS}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "silicond exited with status ${status}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "silicond --threads ${THREADS} output differs from ${GOLDEN}\n"
    "--- actual ---\n${actual}")
endif()
