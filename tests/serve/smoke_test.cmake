# End-to-end smoke test: pipe the checked-in mixed request batch
# through the silicond binary at several thread counts and require the
# output to match the checked-in golden responses byte for byte.
#
# Expects: SILICOND (binary path), REQUESTS, GOLDEN, THREADS.
# Optional: TRACE (a path) — pass --trace and require a well-formed
# Chrome trace with dispatcher-stage and exec-task spans; the golden
# byte comparison still applies (tracing must not perturb output).
# Optional: SERVER_ARGS — extra silicond flags (space-separated), used
# by the overload smoke to arm deterministic resource limits.
# Optional: FLIGHT_DUMP + FLIGHT_GOLDEN — pass
# `--flight-deterministic --flight-dump ${FLIGHT_DUMP}` and require the
# shutdown dump to match the checked-in golden byte for byte; at every
# thread count, because handle_batch appends records in line order.

foreach(var SILICOND REQUESTS GOLDEN THREADS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "smoke_test.cmake: ${var} not set")
  endif()
endforeach()

set(extra_args)
if(DEFINED TRACE)
  file(REMOVE ${TRACE})
  list(APPEND extra_args --trace ${TRACE})
endif()
if(DEFINED SERVER_ARGS)
  separate_arguments(server_args UNIX_COMMAND "${SERVER_ARGS}")
  list(APPEND extra_args ${server_args})
endif()
if(DEFINED FLIGHT_DUMP)
  if(NOT DEFINED FLIGHT_GOLDEN)
    message(FATAL_ERROR "smoke_test.cmake: FLIGHT_DUMP needs FLIGHT_GOLDEN")
  endif()
  file(REMOVE ${FLIGHT_DUMP})
  list(APPEND extra_args
       --flight-deterministic --flight-records 256
       --flight-dump ${FLIGHT_DUMP})
endif()

execute_process(
  COMMAND ${SILICOND} --threads ${THREADS} --batch 7 ${extra_args}
  INPUT_FILE ${REQUESTS}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "silicond exited with status ${status}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "silicond --threads ${THREADS} output differs from ${GOLDEN}\n"
    "--- actual ---\n${actual}")
endif()

if(DEFINED FLIGHT_DUMP)
  if(NOT EXISTS ${FLIGHT_DUMP})
    message(FATAL_ERROR "--flight-dump ${FLIGHT_DUMP} did not produce a file")
  endif()
  file(READ ${FLIGHT_DUMP} flight_actual)
  file(READ ${FLIGHT_GOLDEN} flight_expected)
  if(NOT flight_actual STREQUAL flight_expected)
    message(FATAL_ERROR
      "flight dump at --threads ${THREADS} differs from ${FLIGHT_GOLDEN}\n"
      "--- actual ---\n${flight_actual}")
  endif()
endif()

if(DEFINED TRACE)
  if(NOT EXISTS ${TRACE})
    message(FATAL_ERROR "--trace ${TRACE} did not produce a file")
  endif()
  file(READ ${TRACE} trace)
  string(STRIP "${trace}" trace_stripped)
  if(NOT trace_stripped MATCHES "^\\[")
    message(FATAL_ERROR "trace is not a JSON array (no leading '[')")
  endif()
  if(NOT trace_stripped MATCHES "\\]$")
    message(FATAL_ERROR "trace is not a JSON array (no trailing ']')")
  endif()
  foreach(span serve.handle_line serve.parse serve.canonicalize
               serve.cache serve.exec serve.serialize serve.batch exec.task)
    if(NOT trace MATCHES "\"${span}\"")
      message(FATAL_ERROR "trace is missing expected span: ${span}")
    endif()
  endforeach()
endif()
