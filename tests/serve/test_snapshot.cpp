// Snapshot format, atomicity and defensive-restore tests (DESIGN.md
// §16).  The corruption battery works on in-memory images via
// serialize/deserialize_into so it can patch bytes and recompute CRCs
// without touching disk; the file-level tests use a per-test temp path.

#include "serve/snapshot.hpp"

#include "serve/cache.hpp"
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace serve = silicon::serve;
namespace snap = silicon::serve::snapshot;
using serve::memo_cache;

namespace {

// Offsets from the documented layout (snapshot.hpp).
constexpr std::size_t kFileHeader = 48;
constexpr std::size_t kShardHeader = 24;
constexpr std::size_t kVersionOff = 8;
constexpr std::size_t kShardCountOff = 12;
constexpr std::size_t kEntryCountOff = 24;
constexpr std::size_t kPayloadBytesOff = 32;
constexpr std::size_t kHeaderCrcOff = 40;

std::uint32_t read_u32(const std::string& image, std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(image[off + i]);
    }
    return v;
}

std::uint64_t read_u64(const std::string& image, std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<unsigned char>(image[off + i]);
    }
    return v;
}

void patch_u32(std::string& image, std::size_t off, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        image[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
}

void patch_u64(std::string& image, std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        image[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
}

/// Recompute every shard CRC and the file-header CRC so structural
/// corruption tests isolate the check they target (the CRCs stay
/// valid; only the patched semantics are wrong).
void recompute_crcs(std::string& image) {
    const std::uint32_t shards = read_u32(image, kShardCountOff);
    std::size_t at = kFileHeader;
    for (std::uint32_t s = 0; s < shards; ++s) {
        const std::uint64_t record_bytes = read_u64(image, at + 8);
        patch_u32(image, at + 16,
                  snap::crc32c(image.data() + at + kShardHeader,
                               record_bytes));
        at += kShardHeader + record_bytes;
    }
    patch_u32(image, kHeaderCrcOff, snap::crc32c(image.data(), 40));
}

const std::uint64_t kFp = snap::config_fingerprint(false);

/// Seed a cache with deterministic contents for image surgery.
void seed_cache(memo_cache& cache) {
    cache.put("alpha", "{\"a\":1}");
    cache.put("bravo", "{\"b\":2}");
    cache.put("charlie", "{\"c\":3}");
}

/// The image of a freshly-seeded capacity-16, 2-shard cache.
std::string seeded_image() {
    memo_cache cache{16, 2};
    seed_cache(cache);
    return snap::serialize(cache, kFp);
}

std::string temp_path(const char* tag) {
    return "snapshot_test_" + std::string{tag} + "_" +
           std::to_string(::getpid()) + ".bin";
}

/// RAII cleanup for on-disk snapshot tests.
struct file_guard {
    explicit file_guard(std::string p) : path{std::move(p)} {}
    ~file_guard() {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    std::string path;
};

void expect_cold_corrupt(const snap::restore_result& r,
                         const memo_cache& cache, const char* what) {
    EXPECT_EQ(r.outcome, snap::restore_outcome::cold_corrupt) << what;
    EXPECT_FALSE(r.reason.empty()) << what;
    EXPECT_EQ(cache.snapshot().entries, 0u)
        << what << ": corrupt restore must not leave partial entries";
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(Snapshot, EmptyCacheRoundTrips) {
    memo_cache cache{8, 4};
    const std::string image = snap::serialize(cache, kFp);
    EXPECT_EQ(image.size(), kFileHeader + 4 * kShardHeader);

    memo_cache restored{8, 4};
    const snap::restore_result r =
        snap::deserialize_into(restored, kFp, image);
    EXPECT_EQ(r.outcome, snap::restore_outcome::restored);
    EXPECT_EQ(r.entries, 0u);
    EXPECT_EQ(restored.snapshot().entries, 0u);
}

TEST(Snapshot, RoundTripPreservesEveryEntry) {
    memo_cache cache{64, 4};
    std::vector<std::pair<std::string, std::string>> entries;
    for (int i = 0; i < 20; ++i) {
        entries.emplace_back("key-" + std::to_string(i),
                             "{\"value\":" + std::to_string(i * i) + "}");
        cache.put(entries.back().first, entries.back().second);
    }
    std::uint64_t counted = 0;
    const std::string image = snap::serialize(cache, kFp, &counted);
    EXPECT_EQ(counted, 20u);
    EXPECT_EQ(read_u64(image, kEntryCountOff), 20u);
    EXPECT_EQ(read_u64(image, kPayloadBytesOff),
              image.size() - kFileHeader);

    memo_cache restored{64, 4};
    const snap::restore_result r =
        snap::deserialize_into(restored, kFp, image);
    ASSERT_EQ(r.outcome, snap::restore_outcome::restored);
    EXPECT_EQ(r.entries, 20u);
    for (const auto& [key, value] : entries) {
        const auto hit = restored.get_if_present(key);
        ASSERT_NE(hit, nullptr) << key;
        EXPECT_EQ(*hit, value) << key;
    }
}

TEST(Snapshot, RoundTripPreservesRecencyOrder) {
    // Records are written LRU -> MRU, so replaying through put()
    // reproduces the eviction order: the pre-snapshot LRU victim is
    // still the post-restore victim.
    memo_cache cache{2, 1};
    cache.put("older", "1");
    cache.put("newer", "2");
    ASSERT_NE(cache.get("older"), nullptr);  // "older" is now MRU

    memo_cache restored{2, 1};
    ASSERT_EQ(snap::deserialize_into(restored, kFp,
                                     snap::serialize(cache, kFp))
                  .outcome,
              snap::restore_outcome::restored);
    restored.put("evictor", "3");  // must evict "newer", the LRU
    EXPECT_EQ(restored.get_if_present("newer"), nullptr);
    EXPECT_NE(restored.get_if_present("older"), nullptr);
    EXPECT_NE(restored.get_if_present("evictor"), nullptr);
}

TEST(Snapshot, RestoresAcrossDifferentShardCounts) {
    // Replay goes through put(), so the restoring cache's geometry is
    // free to differ from the writer's.
    const std::string image = seeded_image();
    memo_cache restored{16, 7};
    const snap::restore_result r =
        snap::deserialize_into(restored, kFp, image);
    ASSERT_EQ(r.outcome, snap::restore_outcome::restored);
    EXPECT_EQ(restored.snapshot().entries, 3u);
    EXPECT_NE(restored.get_if_present("charlie"), nullptr);
}

TEST(Snapshot, FileRoundTripIsAtomic) {
    const file_guard guard{temp_path("roundtrip")};
    memo_cache cache{16, 2};
    seed_cache(cache);
    const snap::write_result w = snap::write_file(cache, kFp, guard.path);
    ASSERT_TRUE(w.ok) << w.error;
    EXPECT_EQ(w.entries, 3u);
    EXPECT_GT(w.bytes, kFileHeader);
    // The temp file was renamed away, never left behind.
    EXPECT_NE(::access((guard.path + ".tmp").c_str(), F_OK), 0);

    memo_cache restored{16, 2};
    const snap::restore_result r =
        snap::restore_file(restored, kFp, guard.path);
    ASSERT_EQ(r.outcome, snap::restore_outcome::restored);
    EXPECT_EQ(r.entries, 3u);
    EXPECT_EQ(r.bytes, w.bytes);

    // A second write atomically replaces the first.
    ASSERT_TRUE(snap::write_file(cache, kFp, guard.path).ok);
    memo_cache again{16, 2};
    EXPECT_EQ(snap::restore_file(again, kFp, guard.path).outcome,
              snap::restore_outcome::restored);
}

// ---------------------------------------------------------------------------
// Defensive restore: every corruption degrades to a clean cold start
// ---------------------------------------------------------------------------

TEST(Snapshot, MissingFileIsColdMissingNotCorrupt) {
    memo_cache cache{8, 1};
    const snap::restore_result r = snap::restore_file(
        cache, kFp, "no_such_directory_xyz/snapshot.bin.absent");
    EXPECT_EQ(r.outcome, snap::restore_outcome::cold_missing);
    EXPECT_EQ(r.entries, 0u);
}

TEST(Snapshot, NonRegularFileIsColdCorrupt) {
    memo_cache cache{8, 1};
    const snap::restore_result r = snap::restore_file(cache, kFp, "/");
    expect_cold_corrupt(r, cache, "directory as snapshot");
}

TEST(Snapshot, FingerprintMismatchIsColdCorrupt) {
    const std::string image = seeded_image();
    memo_cache restored{16, 2};
    const snap::restore_result r = snap::deserialize_into(
        restored, snap::config_fingerprint(true), image);
    expect_cold_corrupt(r, restored, "fast_math fingerprint");
}

TEST(Snapshot, StaleFormatVersionIsColdCorrupt) {
    std::string image = seeded_image();
    patch_u32(image, kVersionOff, snap::format_version + 1);
    recompute_crcs(image);  // isolate the version check from the CRC
    memo_cache restored{16, 2};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "future format version");
}

TEST(Snapshot, EveryTruncationIsColdCorrupt) {
    const std::string image = seeded_image();
    for (std::size_t len = 0; len < image.size(); ++len) {
        memo_cache restored{16, 2};
        const snap::restore_result r = snap::deserialize_into(
            restored, kFp, image.substr(0, len));
        EXPECT_EQ(r.outcome, snap::restore_outcome::cold_corrupt)
            << "truncated to " << len << " of " << image.size();
        EXPECT_EQ(restored.snapshot().entries, 0u) << "len=" << len;
    }
}

TEST(Snapshot, EveryBitFlipIsContained) {
    // Flip two bits at every byte position.  A flip in a checksummed
    // region must fail closed (cold, empty cache); a flip in a
    // reserved/don't-care byte may restore, but then the contents must
    // be exactly the original entries — never a poisoned or partial
    // cache.
    memo_cache cache{16, 2};
    seed_cache(cache);
    const std::string pristine = snap::serialize(cache, kFp);
    for (std::size_t i = 0; i < pristine.size(); ++i) {
        for (const unsigned char mask : {0x01u, 0x80u}) {
            std::string image = pristine;
            image[i] = static_cast<char>(
                static_cast<unsigned char>(image[i]) ^ mask);
            memo_cache restored{16, 2};
            const snap::restore_result r =
                snap::deserialize_into(restored, kFp, image);
            if (r.outcome == snap::restore_outcome::restored) {
                EXPECT_EQ(restored.snapshot().entries, 3u)
                    << "byte " << i << " mask " << unsigned{mask};
                for (const char* key : {"alpha", "bravo", "charlie"}) {
                    const auto hit = restored.get_if_present(key);
                    ASSERT_NE(hit, nullptr) << "byte " << i;
                    EXPECT_EQ(*hit, *cache.get_if_present(key))
                        << "byte " << i;
                }
            } else {
                EXPECT_EQ(r.outcome,
                          snap::restore_outcome::cold_corrupt);
                EXPECT_EQ(restored.snapshot().entries, 0u)
                    << "byte " << i << " mask " << unsigned{mask};
            }
        }
    }
}

TEST(Snapshot, ZeroLengthRecordFieldIsColdCorrupt) {
    // Values are JSON documents ("{}" at minimum) and keys are
    // canonical requests, so a zero length can only be corruption.
    memo_cache cache{8, 1};
    cache.put("k", "v");
    std::string image = snap::serialize(cache, kFp);
    // First record of the only shard: value_len at +4 past the header.
    patch_u32(image, kFileHeader + kShardHeader + 4, 0);
    recompute_crcs(image);
    memo_cache restored{8, 1};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "zero value_len");

    image = snap::serialize(cache, kFp);
    patch_u32(image, kFileHeader + kShardHeader, 0);  // key_len
    recompute_crcs(image);
    memo_cache restored2{8, 1};
    expect_cold_corrupt(snap::deserialize_into(restored2, kFp, image),
                        restored2, "zero key_len");
}

TEST(Snapshot, OversizedLengthPrefixIsColdCorrupt) {
    memo_cache cache{8, 1};
    cache.put("k", "v");
    std::string image = snap::serialize(cache, kFp);
    patch_u32(image, kFileHeader + kShardHeader, 0x00ffffffu);  // key_len
    recompute_crcs(image);
    memo_cache restored{8, 1};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "oversized key_len");
}

TEST(Snapshot, ShardEntryCountMismatchIsColdCorrupt) {
    memo_cache cache{16, 1};
    seed_cache(cache);
    std::string image = snap::serialize(cache, kFp);
    patch_u64(image, kFileHeader, read_u64(image, kFileHeader) + 1);
    recompute_crcs(image);
    memo_cache restored{16, 1};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "shard header overcounts");
}

TEST(Snapshot, TotalEntryCountMismatchIsColdCorrupt) {
    std::string image = seeded_image();
    patch_u64(image, kEntryCountOff, read_u64(image, kEntryCountOff) + 1);
    recompute_crcs(image);
    memo_cache restored{16, 2};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "file header overcounts");
}

TEST(Snapshot, TrailingGarbageIsColdCorrupt) {
    std::string image = seeded_image();
    image += "extra bytes the writer never produced";
    {
        memo_cache restored{16, 2};
        expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                            restored, "appended without header fixup");
    }
    // Even with the payload length and CRCs patched to admit the tail,
    // the shard walk must account for every byte.
    patch_u64(image, kPayloadBytesOff, image.size() - kFileHeader);
    recompute_crcs(image);
    memo_cache restored{16, 2};
    expect_cold_corrupt(snap::deserialize_into(restored, kFp, image),
                        restored, "appended with header fixup");
}

// ---------------------------------------------------------------------------
// Concurrency: snapshots race puts and overload sheds without tearing
// ---------------------------------------------------------------------------

TEST(Snapshot, ConcurrentShedAndPutNeverTearTheImage) {
    // The writer captures one shard at a time under that shard's lock
    // and derives every count and CRC from the captured bytes, so a
    // racing shed_shards (overload) or put yields a stale but always
    // restorable image.
    memo_cache cache{256, 4};
    for (int i = 0; i < 64; ++i) {
        cache.put("seed-" + std::to_string(i), "{\"v\":1}");
    }
    std::atomic<bool> done{false};
    std::thread mutator{[&] {
        int i = 0;
        while (!done.load(std::memory_order_relaxed)) {
            cache.shed_shards(1 + (i % 4));
            for (int j = 0; j < 8; ++j, ++i) {
                cache.put("hot-" + std::to_string(i % 97), "{\"v\":2}");
            }
        }
    }};
    for (int round = 0; round < 200; ++round) {
        const std::string image = snap::serialize(cache, kFp);
        memo_cache scratch{256, 4};
        const snap::restore_result r =
            snap::deserialize_into(scratch, kFp, image);
        ASSERT_EQ(r.outcome, snap::restore_outcome::restored)
            << "round " << round << ": " << r.reason;
    }
    done.store(true, std::memory_order_relaxed);
    mutator.join();
}

// ---------------------------------------------------------------------------
// Engine integration: counters, byte-identical warm serving
// ---------------------------------------------------------------------------

serve::engine_config engine_config_with(unsigned parallelism,
                                        bool fast_math = false) {
    serve::engine_config c;
    c.parallelism = parallelism;
    c.fast_math = fast_math;
    return c;
}

TEST(EngineSnapshot, RestoredEngineServesIdenticalBytesWarm) {
    const file_guard guard{temp_path("engine")};
    const std::vector<std::string> lines = {
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"scenario2","lambda_um":1.1,"y0":0.8})",
        R"({"op":"table3","row":3})",
        R"({"op":"chiplet","chiplets":4})",
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.5,
            "count":5,"target":{"op":"scenario2"}})",
    };
    serve::engine writer{engine_config_with(1)};
    std::vector<std::string> expected;
    expected.reserve(lines.size());
    for (const std::string& line : lines) {
        expected.push_back(writer.handle_line(line));
    }
    const snap::write_result w = writer.snapshot_write(guard.path);
    ASSERT_TRUE(w.ok) << w.error;

    serve::engine reader{engine_config_with(1)};
    const snap::restore_result r = reader.snapshot_restore(guard.path);
    ASSERT_EQ(r.outcome, snap::restore_outcome::restored);
    const auto before = reader.cache_stats();
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(reader.handle_line(lines[i]), expected[i]) << lines[i];
    }
    const auto after = reader.cache_stats();
    EXPECT_EQ(after.misses, before.misses)
        << "a restored engine must answer the writer's corpus warm";
    EXPECT_EQ(after.hits, before.hits + lines.size());
}

TEST(EngineSnapshot, InfoCountersTrackWritesAndRestores) {
    const file_guard guard{temp_path("counters")};
    serve::engine engine{engine_config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":1})");

    serve::engine::snapshot_stats s = engine.snapshot_info();
    EXPECT_EQ(s.writes, 0u);
    EXPECT_LT(s.age_seconds, 0.0);  // never written

    ASSERT_TRUE(engine.snapshot_write(guard.path).ok);
    s = engine.snapshot_info();
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.write_failures, 0u);
    EXPECT_EQ(s.last_entries, 1u);
    EXPECT_GT(s.last_bytes, 0u);
    EXPECT_GE(s.last_write_seconds, 0.0);
    EXPECT_GE(s.age_seconds, 0.0);

    serve::engine reader{engine_config_with(1)};
    ASSERT_EQ(reader.snapshot_restore(guard.path).outcome,
              snap::restore_outcome::restored);
    s = reader.snapshot_info();
    EXPECT_EQ(s.restores, 1u);
    EXPECT_EQ(s.restore_failures, 0u);
    EXPECT_EQ(s.restored_entries, 1u);
    EXPECT_GE(s.last_restore_seconds, 0.0);
}

TEST(EngineSnapshot, MissingFileIsNotCountedAsFailure) {
    serve::engine engine{engine_config_with(1)};
    EXPECT_EQ(engine.snapshot_restore("absent_snapshot.bin").outcome,
              snap::restore_outcome::cold_missing);
    const serve::engine::snapshot_stats s = engine.snapshot_info();
    EXPECT_EQ(s.restores, 0u);
    EXPECT_EQ(s.restore_failures, 0u);
}

TEST(EngineSnapshot, CorruptFileCountsOneFailureAndServesCold) {
    const file_guard guard{temp_path("corrupt")};
    {
        std::FILE* f = std::fopen(guard.path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not a snapshot at all", f);
        std::fclose(f);
    }
    serve::engine engine{engine_config_with(1)};
    EXPECT_EQ(engine.snapshot_restore(guard.path).outcome,
              snap::restore_outcome::cold_corrupt);
    const serve::engine::snapshot_stats s = engine.snapshot_info();
    EXPECT_EQ(s.restore_failures, 1u);
    EXPECT_EQ(engine.cache_stats().entries, 0u);
    // The engine still serves.
    EXPECT_EQ(engine.handle_line(R"({"op":"table3","row":1})")
                  .substr(0, 10),
              R"({"ok":true)");
}

TEST(EngineSnapshot, FastMathFingerprintRejectsScalarSnapshot) {
    // fast_math lanes never enter the cache, and scalar bytes must not
    // leak into a fast-math engine (or vice versa): the fingerprint
    // makes the snapshot non-transferable across the flag.
    const file_guard guard{temp_path("fastmath")};
    serve::engine scalar{engine_config_with(1, false)};
    (void)scalar.handle_line(R"({"op":"table3","row":2})");
    ASSERT_TRUE(scalar.snapshot_write(guard.path).ok);

    serve::engine fast{engine_config_with(1, true)};
    EXPECT_EQ(fast.snapshot_restore(guard.path).outcome,
              snap::restore_outcome::cold_corrupt);
    EXPECT_EQ(fast.snapshot_info().restore_failures, 1u);
    EXPECT_EQ(fast.cache_stats().entries, 0u);
}

TEST(EngineSnapshot, StatsAndPrometheusExposeSnapshotState) {
    const file_guard guard{temp_path("expose")};
    serve::engine engine{engine_config_with(1)};
    (void)engine.handle_line(R"({"op":"table3","row":1})");
    ASSERT_TRUE(engine.snapshot_write(guard.path).ok);

    const std::string stats =
        engine.handle_line(R"({"op":"stats"})");
    EXPECT_NE(stats.find("\"snapshot\""), std::string::npos);
    EXPECT_NE(stats.find("\"writes\":1"), std::string::npos);

    const std::string prom = engine.prometheus_text();
    for (const char* metric :
         {"silicon_cache_snapshot_writes_total 1",
          "silicon_cache_snapshot_write_failures_total 0",
          "silicon_cache_snapshot_restores_total 0",
          "silicon_cache_snapshot_restore_failures_total 0",
          "silicon_cache_snapshot_last_entries 1",
          "silicon_cache_snapshot_age_seconds"}) {
        EXPECT_NE(prom.find(metric), std::string::npos) << metric;
    }
}

}  // namespace
