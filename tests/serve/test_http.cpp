// HTTP/1.1 parser unit tests (serve/http): strictness, incremental
// feeding, pipelining, keep-alive resolution, and a seeded malformed
// fuzz loop.  The parser guards the multiplexed silicond port, so every
// rejection here is a request-smuggling or resource-exhaustion vector
// closed (see the header of serve/http.hpp for the taxonomy).

#include "serve/http.hpp"
#include "yield/defect.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

namespace http = silicon::serve::http;
using silicon::yield::splitmix64;

namespace {

/// Feed the whole message; expect a complete parse consuming exactly
/// `data` (unless trailing surplus is expected by the caller).
http::parser parse_ok(std::string_view data, std::size_t* consumed = nullptr) {
    http::parser p;
    const std::size_t n = p.consume(data);
    EXPECT_EQ(p.state(), http::parser::status::complete) << data;
    if (consumed != nullptr) {
        *consumed = n;
    }
    return p;
}

int parse_error_status(std::string_view data) {
    http::parser p;
    (void)p.consume(data);
    EXPECT_EQ(p.state(), http::parser::status::error) << data;
    return p.error_status();
}

}  // namespace

// ---------------------------------------------------------------------------
// Request-line trigger (the JSONL/HTTP mode switch)
// ---------------------------------------------------------------------------

TEST(HttpRequestLine, RecognizesHttpRequestLines) {
    EXPECT_TRUE(http::is_request_line("GET /metrics HTTP/1.1"));
    EXPECT_TRUE(http::is_request_line("HEAD / HTTP/1.0"));
    EXPECT_TRUE(http::is_request_line("POST /evaluate HTTP/1.1"));
    EXPECT_TRUE(http::is_request_line("GET /x HTTP/2.0"));  // parser 505s it
}

TEST(HttpRequestLine, NeverMatchesJsonlOrLegacyLines) {
    EXPECT_FALSE(http::is_request_line("{\"op\":\"scenario1\"}"));
    EXPECT_FALSE(http::is_request_line(""));
    EXPECT_FALSE(http::is_request_line("GET /metrics"));  // legacy one-shot
    EXPECT_FALSE(http::is_request_line("GET  HTTP/1.1"));
    EXPECT_FALSE(http::is_request_line("not a request at all"));
    EXPECT_FALSE(http::is_request_line("GET /x HTTP/11"));
}

// ---------------------------------------------------------------------------
// Happy paths
// ---------------------------------------------------------------------------

TEST(HttpParser, SimpleGet) {
    const http::parser p =
        parse_ok("GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
    EXPECT_EQ(p.result().method, "GET");
    EXPECT_EQ(p.result().target, "/metrics");
    EXPECT_EQ(p.result().minor_version, 1);
    EXPECT_TRUE(p.result().keep_alive);
    ASSERT_NE(p.result().header("host"), nullptr);
    EXPECT_EQ(*p.result().header("HOST"), "localhost");
}

TEST(HttpParser, DebugSurfaceTargetsParse) {
    // The conn router splits a query string off the target before
    // matching, so /healthz, /statusz and /flightz must come through
    // the parser verbatim, query and all.
    for (const std::string target : {"/healthz", "/statusz", "/flightz"}) {
        const http::parser p =
            parse_ok("GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n");
        EXPECT_EQ(p.result().target, target);
        EXPECT_TRUE(p.result().keep_alive) << target;
    }
    const http::parser q =
        parse_ok("HEAD /healthz?probe=lb HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(q.result().method, "HEAD");
    EXPECT_EQ(q.result().target, "/healthz?probe=lb");
}

TEST(HttpParser, BareLfLineEndingsTolerated) {
    const http::parser p = parse_ok("GET / HTTP/1.1\nHost: x\n\n");
    EXPECT_EQ(p.result().target, "/");
}

TEST(HttpParser, ByteAtATimeFeedIsIncremental) {
    const std::string message =
        "GET /metrics HTTP/1.1\r\nAccept: text/plain\r\n\r\n";
    http::parser p;
    for (std::size_t i = 0; i < message.size(); ++i) {
        ASSERT_EQ(p.consume({&message[i], 1}), 1u) << "byte " << i;
        if (i + 1 < message.size()) {
            ASSERT_EQ(p.state(), http::parser::status::need_more)
                << "byte " << i;
        }
    }
    EXPECT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().target, "/metrics");
}

TEST(HttpParser, ContentLengthBodyParsed) {
    const http::parser p = parse_ok(
        "POST /evaluate HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
    EXPECT_EQ(p.result().body, "hello world");
}

TEST(HttpParser, ZeroContentLengthCompletesAtHeaderEnd) {
    const http::parser p =
        parse_ok("POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    EXPECT_TRUE(p.result().body.empty());
}

TEST(HttpParser, BodySplitAcrossFeeds) {
    http::parser p;
    (void)p.consume("POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\nabc");
    ASSERT_EQ(p.state(), http::parser::status::need_more);
    EXPECT_EQ(p.consume("def"), 3u);
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().body, "abcdef");
}

// ---------------------------------------------------------------------------
// Pipelining: the parser must never consume past one message
// ---------------------------------------------------------------------------

TEST(HttpParser, PipelinedRequestsLeaveSurplus) {
    const std::string two =
        "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    http::parser p;
    const std::size_t first = p.consume(two);
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().target, "/a");
    EXPECT_EQ(first, std::string{"GET /a HTTP/1.1\r\n\r\n"}.size());
    p.reset();
    const std::size_t second =
        p.consume(std::string_view{two}.substr(first));
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().target, "/b");
    EXPECT_EQ(first + second, two.size());
}

TEST(HttpParser, BodySurplusStaysUnconsumed) {
    http::parser p;
    const std::string msg =
        "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcJUNK";
    const std::size_t n = p.consume(msg);
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().body, "abc");
    EXPECT_EQ(msg.substr(n), "JUNK");
}

TEST(HttpParser, CompleteParserConsumesNothingMore) {
    http::parser p;
    (void)p.consume("GET / HTTP/1.1\r\n\r\n");
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.consume("GET /next HTTP/1.1\r\n\r\n"), 0u);
}

// ---------------------------------------------------------------------------
// Strictness: smuggling vectors and malformed input
// ---------------------------------------------------------------------------

TEST(HttpParser, HeaderFoldingRejected) {
    EXPECT_EQ(parse_error_status(
                  "GET / HTTP/1.1\r\nX-A: 1\r\n folded\r\n\r\n"),
              400);
    EXPECT_EQ(parse_error_status(
                  "GET / HTTP/1.1\r\nX-A: 1\r\n\tfolded\r\n\r\n"),
              400);
}

TEST(HttpParser, WhitespaceBeforeColonRejected) {
    EXPECT_EQ(parse_error_status("GET / HTTP/1.1\r\nX-A : 1\r\n\r\n"), 400);
}

TEST(HttpParser, HeaderWithoutColonRejected) {
    EXPECT_EQ(parse_error_status("GET / HTTP/1.1\r\nnocolon\r\n\r\n"), 400);
}

TEST(HttpParser, ContentLengthEdgeCases) {
    // Duplicates — even agreeing ones — are rejected.
    EXPECT_EQ(parse_error_status("POST /x HTTP/1.1\r\nContent-Length: 3\r\n"
                                 "Content-Length: 3\r\n\r\nabc"),
              400);
    EXPECT_EQ(parse_error_status(
                  "POST /x HTTP/1.1\r\nContent-Length: +3\r\n\r\nabc"),
              400);
    EXPECT_EQ(parse_error_status(
                  "POST /x HTTP/1.1\r\nContent-Length: 3x\r\n\r\nabc"),
              400);
    EXPECT_EQ(parse_error_status(
                  "POST /x HTTP/1.1\r\nContent-Length:\r\n\r\n"),
              400);
    // 20 digits cannot fit a sane length; rejected before overflow.
    EXPECT_EQ(parse_error_status("POST /x HTTP/1.1\r\nContent-Length: "
                                 "99999999999999999999\r\n\r\n"),
              400);
}

TEST(HttpParser, OverlongBodyIs413) {
    http::parser::config cfg;
    cfg.max_body_bytes = 16;
    http::parser p{cfg};
    (void)p.consume("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
    ASSERT_EQ(p.state(), http::parser::status::error);
    EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
    http::parser::config cfg;
    cfg.max_header_bytes = 128;
    http::parser p{cfg};
    std::string huge = "GET / HTTP/1.1\r\nX-Pad: ";
    huge.append(256, 'x');
    (void)p.consume(huge);  // no terminator yet: bound applies anyway
    ASSERT_EQ(p.state(), http::parser::status::error);
    EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParser, TransferEncodingIs501) {
    EXPECT_EQ(parse_error_status("POST /x HTTP/1.1\r\n"
                                 "Transfer-Encoding: chunked\r\n\r\n"),
              501);
}

TEST(HttpParser, UnsupportedVersionIs505) {
    EXPECT_EQ(parse_error_status("GET / HTTP/2.0\r\n\r\n"), 505);
    EXPECT_EQ(parse_error_status("GET / HTTP/9.9\r\n\r\n"), 505);
}

TEST(HttpParser, MalformedRequestLineIs400) {
    EXPECT_EQ(parse_error_status("GET\r\n\r\n"), 400);
    EXPECT_EQ(parse_error_status("GET /\r\n\r\n"), 400);
    EXPECT_EQ(parse_error_status("GET / HTTP/1.1 extra\r\n\r\n"), 400);
    EXPECT_EQ(parse_error_status("GET / FTP/1.1\r\n\r\n"), 400);
    EXPECT_EQ(parse_error_status("\r\n\r\n"), 400);
    EXPECT_EQ(parse_error_status("G@T / HTTP/1.1\r\n\r\n"), 400);
}

// ---------------------------------------------------------------------------
// Keep-alive resolution
// ---------------------------------------------------------------------------

TEST(HttpParser, KeepAliveDefaultsByVersion) {
    EXPECT_TRUE(parse_ok("GET / HTTP/1.1\r\n\r\n").result().keep_alive);
    EXPECT_FALSE(parse_ok("GET / HTTP/1.0\r\n\r\n").result().keep_alive);
}

TEST(HttpParser, ConnectionHeaderOverridesDefault) {
    EXPECT_FALSE(parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                     .result()
                     .keep_alive);
    EXPECT_FALSE(parse_ok("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
                     .result()
                     .keep_alive);
    EXPECT_TRUE(parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                    .result()
                    .keep_alive);
    EXPECT_FALSE(
        parse_ok("GET / HTTP/1.1\r\nConnection: x, close, y\r\n\r\n")
            .result()
            .keep_alive);
}

// ---------------------------------------------------------------------------
// Reset / reuse
// ---------------------------------------------------------------------------

TEST(HttpParser, ResetReadiesForNextKeepAliveRequest) {
    http::parser p;
    (void)p.consume("POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
    ASSERT_EQ(p.state(), http::parser::status::complete);
    p.reset();
    (void)p.consume("GET /b HTTP/1.1\r\n\r\n");
    ASSERT_EQ(p.state(), http::parser::status::complete);
    EXPECT_EQ(p.result().target, "/b");
    EXPECT_TRUE(p.result().body.empty());
    EXPECT_EQ(p.result().method, "GET");
}

// ---------------------------------------------------------------------------
// Response serialization
// ---------------------------------------------------------------------------

TEST(HttpSimpleResponse, CarriesLengthAndConnection) {
    const std::string r = http::simple_response(
        200, "OK", "text/plain", "body\n", /*keep_alive=*/true);
    EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: keep-alive\r\n"), std::string::npos);
    EXPECT_EQ(r.substr(r.size() - 5), "body\n");
}

TEST(HttpSimpleResponse, HeadElidesBodyButKeepsLength) {
    const std::string r = http::simple_response(
        200, "OK", "text/plain", "body\n", /*keep_alive=*/false,
        /*head_only=*/true);
    EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(r.substr(r.size() - 4), "\r\n\r\n");
}

// ---------------------------------------------------------------------------
// Seeded malformed fuzz: the parser must never crash and must land in a
// clean terminal (or need-more) state with a known error status.
// ---------------------------------------------------------------------------

TEST(HttpParserFuzz, TenThousandMalformedMessagesNeverCrash) {
    splitmix64 rng{0xF00DF00Du};
    // Fragments biased toward "almost HTTP": random splices of valid
    // structure hit far more parser branches than raw noise.
    const std::string_view fragments[] = {
        "GET ", "POST ", "/metrics ", "/ ", "HTTP/1.1", "HTTP/1.0",
        "HTTP/9.9", "\r\n", "\n", "\r", ": ", "Content-Length",
        "Transfer-Encoding", "Connection", "close", "keep-alive",
        " folded", "\t", "0", "99999999999999999999", "-1", "chunked",
        "Host", "localhost", "{\"op\":\"scenario1\"}", "\x01\x02",
        "\xff\xfe", " ", "::", "X-A", "\r\n\r\n",
    };
    constexpr int kIterations = 10000;
    for (int iteration = 0; iteration < kIterations; ++iteration) {
        std::string message;
        const int pieces = 1 + static_cast<int>(rng.next() % 12);
        for (int piece = 0; piece < pieces; ++piece) {
            message += fragments[rng.next() % std::size(fragments)];
        }
        http::parser p;
        // Feed in random-sized slices to stress resumption paths too.
        std::size_t offset = 0;
        while (offset < message.size() &&
               p.state() == http::parser::status::need_more) {
            const std::size_t step =
                1 + rng.next() % (message.size() - offset);
            offset += p.consume(
                std::string_view{message}.substr(offset, step));
            if (p.state() != http::parser::status::need_more) {
                break;
            }
        }
        if (p.state() == http::parser::status::error) {
            const int status = p.error_status();
            EXPECT_TRUE(status == 400 || status == 413 || status == 431 ||
                        status == 501 || status == 505)
                << "iteration " << iteration << " status " << status;
            EXPECT_FALSE(p.error_reason().empty());
        }
        p.reset();
        EXPECT_EQ(p.state(), http::parser::status::need_more);
    }
}
