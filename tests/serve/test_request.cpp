#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <string>

namespace serve = silicon::serve;
namespace json = silicon::serve::json;

namespace {

serve::request parse(const std::string& text) {
    return serve::parse_request(json::parse(text));
}

std::string error_code(const std::string& text) {
    try {
        (void)parse(text);
    } catch (const serve::request_error& e) {
        return e.code();
    }
    return "";
}

TEST(RequestSchema, OpNamesRoundTrip) {
    for (int i = 0; i < serve::op_count; ++i) {
        const auto op = static_cast<serve::op_code>(i);
        const auto back = serve::op_from_string(serve::to_string(op));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, op);
    }
    EXPECT_FALSE(serve::op_from_string("frobnicate").has_value());
}

TEST(RequestSchema, DefaultsFillIn) {
    const serve::request r = parse(R"({"op":"scenario1"})");
    EXPECT_EQ(r.op, serve::op_code::scenario1);
    const auto& q = std::get<serve::scenario1_request>(r.payload);
    EXPECT_DOUBLE_EQ(q.lambda_um, 0.8);
    EXPECT_DOUBLE_EQ(q.c0_usd, 500.0);
    EXPECT_DOUBLE_EQ(q.x, 1.2);
    EXPECT_DOUBLE_EQ(q.design_density, 30.0);
}

TEST(RequestSchema, CanonicalKeyIgnoresMemberOrderAndDefaults) {
    const serve::request defaults = parse(R"({"op":"scenario1"})");
    const serve::request explicit_default =
        parse(R"({"op":"scenario1","lambda_um":0.8,"x":1.2})");
    const serve::request reordered =
        parse(R"({"x":1.2,"op":"scenario1","lambda_um":0.8})");
    EXPECT_EQ(defaults.canonical_key, explicit_default.canonical_key);
    EXPECT_EQ(defaults.canonical_key, reordered.canonical_key);

    const serve::request different =
        parse(R"({"op":"scenario1","lambda_um":0.5})");
    EXPECT_NE(defaults.canonical_key, different.canonical_key);
}

TEST(RequestSchema, CanonicalKeyMatchesRequestToJson) {
    const serve::request r =
        parse(R"({"op":"cost_tr","product":{"transistors":2e6}})");
    EXPECT_EQ(r.canonical_key, json::canonical(serve::request_to_json(r)));
}

TEST(RequestSchema, CanonicalKeyExcludesId) {
    const serve::request a = parse(R"({"op":"table3","row":3,"id":1})");
    const serve::request b = parse(R"({"op":"table3","row":3,"id":"x"})");
    const serve::request c = parse(R"({"op":"table3","row":3})");
    EXPECT_EQ(a.canonical_key, b.canonical_key);
    EXPECT_EQ(a.canonical_key, c.canonical_key);
    EXPECT_TRUE(a.has_id);
    EXPECT_FALSE(c.has_id);
    EXPECT_DOUBLE_EQ(a.id.as_number(), 1.0);
}

TEST(RequestSchema, NestedBlocksParse) {
    const serve::request r = parse(
        R"({"op":"cost_tr",
            "process":{"c0_usd":600,"yield":{"model":"scaled","d":2.0}},
            "product":{"transistors":3e6,"feature_size_um":0.5},
            "economics":{"overhead_usd":1e6,"volume_wafers":100}})");
    const auto& q = std::get<serve::cost_tr_request>(r.payload);
    EXPECT_DOUBLE_EQ(q.process.c0_usd, 600.0);
    EXPECT_EQ(q.process.yield.model, serve::yield_spec_params::kind::scaled);
    EXPECT_DOUBLE_EQ(q.process.yield.d, 2.0);
    EXPECT_DOUBLE_EQ(q.product.transistors, 3e6);
    EXPECT_DOUBLE_EQ(q.economics.volume_wafers, 100.0);
}

TEST(RequestSchema, ErrorCodes) {
    EXPECT_EQ(error_code(R"(["not an object"])"), "bad_request");
    EXPECT_EQ(error_code(R"({"lambda_um":0.5})"), "bad_request");  // no op
    EXPECT_EQ(error_code(R"({"op":"warp_drive"})"), "unknown_op");
    EXPECT_EQ(error_code(R"({"op":17})"), "bad_request");
    EXPECT_EQ(error_code(R"({"op":"scenario1","lambda":0.5})"),
              "unknown_field");
    EXPECT_EQ(error_code(R"({"op":"scenario1","lambda_um":"big"})"),
              "bad_param");
    EXPECT_EQ(error_code(R"({"op":"table3","row":18})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"table3","row":-1})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"table3","row":2.5})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"mc_yield","dies":0})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"mc_yield","seed":-1})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"yield","model":"voodoo"})"), "bad_param");
    EXPECT_EQ(error_code(R"({"op":"gross_die","method":"guess"})"),
              "bad_param");
    EXPECT_EQ(error_code(R"({"op":"stats","extra":1})"), "unknown_field");
}

TEST(RequestSchema, SweepValidation) {
    // A valid sweep parses and canonicalizes its target.
    const serve::request ok = parse(
        R"({"op":"sweep","param":"lambda_um","from":0.5,"to":1.0,
            "count":4,"target":{"op":"scenario1"}})");
    const auto& q = std::get<serve::sweep_request>(ok.payload);
    ASSERT_NE(q.target, nullptr);
    EXPECT_EQ(q.target->op, serve::op_code::scenario1);
    EXPECT_EQ(q.count, 4);
    EXPECT_EQ(q.scale, "linear");

    const char* bad_count =
        R"({"op":"sweep","param":"x","from":1,"to":2,"count":0,
            "target":{"op":"scenario1"}})";
    EXPECT_EQ(error_code(bad_count), "bad_param");

    const char* log_nonpositive =
        R"({"op":"sweep","param":"x","from":0,"to":2,"scale":"log",
            "target":{"op":"scenario1"}})";
    EXPECT_EQ(error_code(log_nonpositive), "bad_param");

    const char* sweep_of_sweep =
        R"({"op":"sweep","param":"x","from":1,"to":2,
            "target":{"op":"sweep","param":"y","from":1,"to":2,
                      "target":{"op":"scenario1"}}})";
    EXPECT_EQ(error_code(sweep_of_sweep), "bad_param");

    const char* stats_target =
        R"({"op":"sweep","param":"x","from":1,"to":2,
            "target":{"op":"stats"}})";
    EXPECT_EQ(error_code(stats_target), "bad_param");

    const char* target_with_id =
        R"({"op":"sweep","param":"x","from":1,"to":2,
            "target":{"op":"scenario1","id":5}})";
    EXPECT_EQ(error_code(target_with_id), "bad_param");

    const char* unknown_param =
        R"({"op":"sweep","param":"warp","from":1,"to":2,
            "target":{"op":"scenario1"}})";
    EXPECT_EQ(error_code(unknown_param), "bad_param");
}

TEST(RequestSchema, SweepDottedParamPath) {
    const serve::request r = parse(
        R"({"op":"sweep","param":"product.feature_size_um","from":0.5,
            "to":1.5,"count":3,"target":{"op":"cost_tr"}})");
    const auto& q = std::get<serve::sweep_request>(r.payload);
    EXPECT_EQ(q.param, "product.feature_size_um");
}

TEST(RequestSchema, PrimaryMetric) {
    using serve::op_code;
    EXPECT_STREQ(serve::primary_metric(op_code::cost_tr),
                 "cost_per_transistor_usd");
    EXPECT_STREQ(serve::primary_metric(op_code::scenario1),
                 "cost_per_transistor_usd");
    EXPECT_STREQ(serve::primary_metric(op_code::gross_die), "count");
    EXPECT_STREQ(serve::primary_metric(op_code::yield), "yield");
    EXPECT_STREQ(serve::primary_metric(op_code::mc_yield), "yield");
    EXPECT_EQ(serve::primary_metric(op_code::table3), nullptr);
    EXPECT_EQ(serve::primary_metric(op_code::sweep), nullptr);
    EXPECT_EQ(serve::primary_metric(op_code::stats), nullptr);
}

TEST(RequestSchema, RequestToJsonIsReparseable) {
    const serve::request r = parse(
        R"({"op":"mc_yield","dies":500,"seed":7,"line_count":9})");
    const serve::request again = serve::parse_request(request_to_json(r));
    EXPECT_EQ(again.canonical_key, r.canonical_key);
    const auto& q = std::get<serve::mc_yield_request>(again.payload);
    EXPECT_EQ(q.dies, 500);
    EXPECT_EQ(q.seed, 7u);
    EXPECT_EQ(q.line_count, 9);
}

}  // namespace
