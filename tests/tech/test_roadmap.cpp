// Tests for the technology roadmap (Figs. 1-4 substrate).

#include "tech/roadmap.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace silicon::tech {
namespace {

TEST(Roadmap, OrderedAndShrinking) {
    const auto& roadmap = standard_roadmap();
    ASSERT_GE(roadmap.size(), 10u);
    for (std::size_t i = 1; i < roadmap.size(); ++i) {
        EXPECT_GT(roadmap[i].year, roadmap[i - 1].year);
        EXPECT_LT(roadmap[i].feature_um, roadmap[i - 1].feature_um);
        EXPECT_GE(roadmap[i].process_steps, roadmap[i - 1].process_steps);
        EXPECT_GT(roadmap[i].fab_cost_musd, roadmap[i - 1].fab_cost_musd);
    }
}

TEST(Roadmap, DramGenerationsQuadruple) {
    // Spot-check the well-known cadence entries.
    const auto& roadmap = standard_roadmap();
    bool found_1mb = false;
    bool found_256mb = false;
    for (const auto& g : roadmap) {
        if (g.dram_generation == "1Mb") {
            found_1mb = true;
            EXPECT_NEAR(g.feature_um, 1.2, 0.4);
        }
        if (g.dram_generation == "256Mb") {
            found_256mb = true;
            EXPECT_NEAR(g.feature_um, 0.25, 0.05);
        }
    }
    EXPECT_TRUE(found_1mb);
    EXPECT_TRUE(found_256mb);
}

TEST(MicroprocessorDieArea, MatchesPaperFit) {
    // A_ch(lambda) = 16.5 exp(-5.3 lambda) cm^2; paper spot values.
    EXPECT_NEAR(microprocessor_die_area(microns{0.8}).value(),
                16.5 * std::exp(-5.3 * 0.8), 1e-12);
    // At 0.8 um this is ~0.24 cm^2 = 24 mm^2... (trend line, not a
    // specific product); at 0.25 um it grows to ~4.4 cm^2.
    EXPECT_NEAR(microprocessor_die_area(microns{0.25}).value(), 4.383,
                0.01);
}

TEST(MicroprocessorDieArea, GrowsAsFeatureShrinks) {
    double previous = 0.0;
    for (double lambda = 1.0; lambda >= 0.2; lambda -= 0.1) {
        const double area =
            microprocessor_die_area(microns{lambda}).value();
        EXPECT_GT(area, previous);
        previous = area;
    }
}

TEST(GenerationLookups, ByFeature) {
    // A 0.6 um design needs at least the 0.5 um process generation.
    const auto g = generation_for_feature(microns{0.6});
    ASSERT_TRUE(g.has_value());
    EXPECT_NEAR(g->feature_um, 0.5, 1e-9);
    // Exact match uses that generation itself.
    const auto exact = generation_for_feature(microns{0.8});
    ASSERT_TRUE(exact.has_value());
    EXPECT_NEAR(exact->feature_um, 0.8, 1e-9);
    // Finer than anything on the roadmap: no process can print it.
    EXPECT_FALSE(generation_for_feature(microns{0.01}).has_value());
}

TEST(GenerationLookups, ByYear) {
    const auto g = generation_for_year(1994);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->dram_generation, "16Mb");
    EXPECT_FALSE(generation_for_year(1960).has_value());
}

TEST(FeatureSizeTrend, ExponentialDeclineFitsWell) {
    const trend t = feature_size_trend();
    EXPECT_LT(t.b, 0.0);  // shrinking
    EXPECT_GT(t.r_squared, 0.97);
    // Halving time of roughly 5-7 years (Fig. 1's slope).
    EXPECT_GT(t.doubling_time_years(), 4.0);
    EXPECT_LT(t.doubling_time_years(), 8.0);
}

TEST(FabCostTrend, ExponentialGrowthTowardBillionDollarFab) {
    const trend t = fab_cost_trend();
    EXPECT_GT(t.b, 0.0);
    EXPECT_GT(t.r_squared, 0.95);
    // The paper's headline: fabs approach $1B in the mid-90s.
    const double fab_1995 = t.at(1995);
    EXPECT_GT(fab_1995, 500.0);
    EXPECT_LT(fab_1995, 2500.0);
}

TEST(WaferCostTrend, GrowsSlowerThanFabCost) {
    EXPECT_LT(wafer_cost_trend().b, fab_cost_trend().b);
}

TEST(Trend, EvaluationAtReferenceYear) {
    const trend t = feature_size_trend();
    EXPECT_NEAR(t.at(t.year0), t.a, 1e-12);
}

TEST(Trend, FlatTrendHasNoDoublingTime) {
    trend t;
    t.b = 0.0;
    EXPECT_THROW((void)t.doubling_time_years(), std::domain_error);
}

TEST(Roadmap, WaferCostConsistentWithX12to14) {
    // The paper extracts X in 1.2-1.4 from Fig. 2; check the roadmap's
    // wafer-cost column implies roughly that rate per 0.2 um generation
    // over the sub-micron portion.
    const auto& roadmap = standard_roadmap();
    const technology_generation* um08 = nullptr;
    const technology_generation* um025 = nullptr;
    for (const auto& g : roadmap) {
        if (std::abs(g.feature_um - 0.8) < 1e-9) {
            um08 = &g;
        }
        if (std::abs(g.feature_um - 0.25) < 1e-9) {
            um025 = &g;
        }
    }
    ASSERT_NE(um08, nullptr);
    ASSERT_NE(um025, nullptr);
    const double generations = (0.8 - 0.25) / 0.2;
    const double x = std::pow(um025->wafer_cost_usd / um08->wafer_cost_usd,
                              1.0 / generations);
    EXPECT_GT(x, 1.1);
    EXPECT_LT(x, 2.0);
}

}  // namespace
}  // namespace silicon::tech
