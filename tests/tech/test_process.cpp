// Tests for the process recipe synthesizer and X-factor derivation.

#include "tech/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::tech {
namespace {

TEST(Recipe, StepCountGrowsWithMetalLayers) {
    const auto two = synthesize_cmos_recipe(microns{0.8}, 2);
    const auto four = synthesize_cmos_recipe(microns{0.8}, 4);
    EXPECT_GT(four.step_count(), two.step_count());
    EXPECT_GT(four.cost_index(), two.cost_index());
}

TEST(Recipe, StepCountGrowsAsFeatureShrinks) {
    // The Fig. 4 staircase: each finer node adds steps.
    const auto um20 = synthesize_cmos_recipe(microns{2.0}, 2);
    const auto um08 = synthesize_cmos_recipe(microns{0.8}, 2);
    const auto um035 = synthesize_cmos_recipe(microns{0.35}, 3);
    EXPECT_LT(um20.step_count(), um08.step_count());
    EXPECT_LT(um08.step_count(), um035.step_count());
}

TEST(Recipe, StepCountsInFig4Range) {
    // Fig. 4 shows roughly 100-600 steps across generations.
    const auto coarse = synthesize_cmos_recipe(microns{2.0}, 1);
    const auto fine = synthesize_cmos_recipe(microns{0.25}, 4);
    EXPECT_GE(coarse.step_count(), 50);
    EXPECT_LE(fine.step_count(), 700);
    EXPECT_GT(fine.step_count(), 2 * coarse.step_count());
}

TEST(Recipe, CmpOnlyBelowPointEight) {
    EXPECT_EQ(synthesize_cmos_recipe(microns{1.0}, 2)
                  .count(step_category::cmp),
              0);
    EXPECT_GT(synthesize_cmos_recipe(microns{0.5}, 2)
                  .count(step_category::cmp),
              0);
}

TEST(Recipe, RejectsBadInputs) {
    EXPECT_THROW((void)synthesize_cmos_recipe(microns{0.0}, 2),
                 std::invalid_argument);
    EXPECT_THROW((void)synthesize_cmos_recipe(microns{0.5}, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)synthesize_cmos_recipe(microns{0.5}, 9),
                 std::invalid_argument);
}

TEST(Recipe, CategoryCountsSumToTotal) {
    const auto recipe = synthesize_cmos_recipe(microns{0.5}, 3);
    int sum = 0;
    for (const step_category c :
         {step_category::lithography, step_category::etch,
          step_category::implant, step_category::deposition,
          step_category::diffusion, step_category::cmp,
          step_category::clean, step_category::metrology}) {
        sum += recipe.count(c);
    }
    EXPECT_EQ(sum, recipe.step_count());
}

TEST(XFactor, DerivedValueLandsInQuotedEnvelope) {
    // One generation step, e.g. 0.8 um 2LM -> 0.6 um 3LM: the derived X
    // must fall inside the paper's quoted 1.2-2.4 envelope.
    const auto previous = synthesize_cmos_recipe(microns{0.8}, 2);
    const auto next = synthesize_cmos_recipe(microns{0.6}, 3);
    const double x = estimate_x_factor(previous, next);
    EXPECT_GT(x, 1.2);
    EXPECT_LT(x, 2.4);
}

TEST(XFactor, LargerEscalationRaisesX) {
    const auto previous = synthesize_cmos_recipe(microns{0.8}, 2);
    const auto next = synthesize_cmos_recipe(microns{0.6}, 3);
    equipment_escalation aggressive;
    aggressive.lithography = 2.0;
    const double base = estimate_x_factor(previous, next);
    const double high = estimate_x_factor(previous, next, aggressive);
    EXPECT_GT(high, base);
}

TEST(XFactor, RejectsReversedOrder) {
    const auto older = synthesize_cmos_recipe(microns{0.8}, 2);
    const auto newer = synthesize_cmos_recipe(microns{0.6}, 3);
    EXPECT_THROW((void)estimate_x_factor(newer, older), std::invalid_argument);
}

TEST(QuotedX, ContainsTheFourSources) {
    const auto& values = quoted_x_values();
    ASSERT_EQ(values.size(), 5u);
    for (const auto& v : values) {
        EXPECT_GE(v.x_low, 1.0);
        EXPECT_LE(v.x_low, v.x_high);
        EXPECT_LE(v.x_high, 2.5);
    }
}

TEST(Escalation, FactorCoversEveryCategory) {
    const equipment_escalation esc;
    for (const step_category c :
         {step_category::lithography, step_category::etch,
          step_category::implant, step_category::deposition,
          step_category::diffusion, step_category::cmp,
          step_category::clean, step_category::metrology}) {
        EXPECT_GE(esc.factor(c), 1.0);
    }
}

}  // namespace
}  // namespace silicon::tech
