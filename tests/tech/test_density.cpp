// Tests for the design density catalog (Tables 1 and 2).

#include "tech/density.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::tech {
namespace {

TEST(DesignDensity, Eq5Inversion) {
    // 33.2 mm^2, 1.2M transistors at 0.8 um => 43.2 lambda^2/tr.
    const double dd = design_density(square_millimeters{33.2}, 1.2e6,
                                     microns{0.8});
    EXPECT_NEAR(dd, 43.2, 0.1);
}

TEST(DesignDensity, RoundTripsWithTransistorsForArea) {
    const square_millimeters area{120.0};
    const microns lambda{0.5};
    const double n = 1.7e6;
    const double dd = design_density(area, n, lambda);
    EXPECT_NEAR(transistors_for_area(area, dd, lambda), n, 1.0);
    EXPECT_NEAR(area_for_transistors(n, dd, lambda).value(), area.value(),
                1e-9);
}

TEST(DesignDensity, RejectsBadInputs) {
    EXPECT_THROW((void)
        design_density(square_millimeters{0.0}, 1.0, microns{0.5}),
        std::invalid_argument);
    EXPECT_THROW((void)
        design_density(square_millimeters{1.0}, 0.0, microns{0.5}),
        std::invalid_argument);
    EXPECT_THROW((void)
        design_density(square_millimeters{1.0}, 1.0, microns{0.0}),
        std::invalid_argument);
}

TEST(Table1, HasSixBlocksInPaperOrder) {
    const auto& blocks = table1_blocks();
    ASSERT_EQ(blocks.size(), 6u);
    EXPECT_EQ(blocks.front().name, "I-cache");
    EXPECT_EQ(blocks.back().name, "Bus unit");
}

TEST(Table1, PrintedDensitiesMatchRecomputation) {
    // The d_d column must equal A/(N_tr lambda^2) at the paper's 0.8 um
    // within the rounding of the printed area/count columns.
    for (const functional_block& block : table1_blocks()) {
        const double computed = block.computed_dd(table1_feature_size());
        EXPECT_NEAR(computed / block.printed_dd, 1.0, 0.01) << block.name;
    }
}

TEST(Table1, CachesAreDensestBlocks) {
    const auto& blocks = table1_blocks();
    const double cache_dd = blocks[0].printed_dd;
    for (std::size_t i = 2; i < blocks.size(); ++i) {
        EXPECT_GT(blocks[i].printed_dd, 4.0 * cache_dd) << blocks[i].name;
    }
}

TEST(Table2, HasSeventeenRows) {
    EXPECT_EQ(table2_products().size(), 17u);
}

TEST(Table2, MemoryDenserThanLogic) {
    // Every SRAM/DRAM row has d_d below every microprocessor row.
    double max_memory = 0.0;
    double min_up = 1e9;
    for (const ic_product& p : table2_products()) {
        if (p.category == ic_category::sram ||
            p.category == ic_category::dram) {
            max_memory = std::max(max_memory, p.printed_dd);
        }
        if (p.category == ic_category::microprocessor) {
            min_up = std::min(min_up, p.printed_dd);
        }
    }
    EXPECT_LT(max_memory, min_up);
}

TEST(Table2, PldIsSparsest) {
    double pld = 0.0;
    double max_other = 0.0;
    for (const ic_product& p : table2_products()) {
        if (p.category == ic_category::pld) {
            pld = p.printed_dd;
        } else {
            max_other = std::max(max_other, p.printed_dd);
        }
    }
    EXPECT_GT(pld, max_other);
}

TEST(Table2, MeanDensityByCategory) {
    EXPECT_LT(mean_density(ic_category::dram),
              mean_density(ic_category::microprocessor));
    EXPECT_LT(mean_density(ic_category::sram),
              mean_density(ic_category::gate_array));
    EXPECT_GT(mean_density(ic_category::pld), 2000.0);
}

TEST(Table2, CategoryNames) {
    EXPECT_EQ(to_string(ic_category::dram), "DRAM");
    EXPECT_EQ(to_string(ic_category::sea_of_gates), "sea of gates");
}

TEST(Table2, PentiumRowMatchesTable3Inputs) {
    // Table 3 rows 1-3 use the Pentium-class 3.1M/0.8um/d_d 150 values;
    // Table 2's Pentium row prints 149.11.
    bool found = false;
    for (const ic_product& p : table2_products()) {
        if (p.name.find("Pentium") != std::string::npos) {
            found = true;
            EXPECT_NEAR(p.printed_dd, 149.11, 1e-9);
            EXPECT_NEAR(p.feature_um, 0.8, 1e-9);
            EXPECT_NEAR(p.transistors, 3.1e6, 1.0);
        }
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace silicon::tech
