// Unit tests for geometry::wafer.

#include "geometry/wafer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::geometry {
namespace {

TEST(Wafer, SixInchDefaults) {
    const wafer w = wafer::six_inch();
    EXPECT_DOUBLE_EQ(w.radius().value(), 7.5);
    EXPECT_DOUBLE_EQ(w.edge_exclusion().value(), 0.0);
    EXPECT_DOUBLE_EQ(w.usable_radius().value(), 7.5);
}

TEST(Wafer, EightInch) {
    EXPECT_DOUBLE_EQ(wafer::eight_inch().radius().value(), 10.0);
}

TEST(Wafer, AreaMatchesDisc) {
    EXPECT_NEAR(wafer::six_inch().area().value(), 176.7146, 1e-3);
}

TEST(Wafer, EdgeExclusionShrinksUsableArea) {
    const wafer w{centimeters{7.5}, centimeters{0.5}};
    EXPECT_DOUBLE_EQ(w.usable_radius().value(), 7.0);
    EXPECT_LT(w.usable_area().value(), w.area().value());
}

TEST(Wafer, RejectsZeroRadius) {
    EXPECT_THROW((void)wafer{centimeters{0.0}}, std::invalid_argument);
}

TEST(Wafer, RejectsExclusionAsLargeAsRadius) {
    EXPECT_THROW((void)(wafer{centimeters{5.0}, centimeters{5.0}}),
                 std::invalid_argument);
    EXPECT_THROW((void)(wafer{centimeters{5.0}, centimeters{6.0}}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::geometry
