// Tests for the ASCII wafer map renderer.

#include "geometry/wafer_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace silicon::geometry {
namespace {

TEST(WaferMap, ContainsOneHashPerPlacedDie) {
    const wafer w = wafer::six_inch();
    const die d = die::square(millimeters{15.0});
    const std::string map = render_wafer_map(w, d);
    const long hashes =
        std::count(map.begin(), map.end(), '#');
    EXPECT_EQ(hashes, exact_count(w, d).count);
}

TEST(WaferMap, EndsWithNewlineAndHasMultipleRows) {
    const std::string map =
        render_wafer_map(wafer::six_inch(), die::square(millimeters{20.0}));
    ASSERT_FALSE(map.empty());
    EXPECT_EQ(map.back(), '\n');
    EXPECT_GT(std::count(map.begin(), map.end(), '\n'), 3);
}

TEST(WaferMap, BoundarySitesMarkedAsDots) {
    const std::string map =
        render_wafer_map(wafer::six_inch(), die::square(millimeters{18.0}));
    EXPECT_NE(map.find('.'), std::string::npos);
}

TEST(WaferMap, WidthCapRespected) {
    const std::string map = render_wafer_map(
        wafer::six_inch(), die::square(millimeters{1.0}),
        millimeters{0.0}, 60);
    std::size_t longest = 0;
    std::size_t line_start = 0;
    for (std::size_t i = 0; i <= map.size(); ++i) {
        if (i == map.size() || map[i] == '\n') {
            longest = std::max(longest, i - line_start);
            line_start = i + 1;
        }
    }
    EXPECT_LE(longest, 70u);  // cap plus slack for rounding of step
}

}  // namespace
}  // namespace silicon::geometry
