// Unit + property tests for the gross-die-per-wafer estimators.

#include "geometry/gross_die.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::geometry {
namespace {

wafer six_inch() { return wafer::six_inch(); }

TEST(MalyRowCount, Table3Row1Die) {
    // Table 3 row 1: 3.1M transistors at d_d = 150, lambda = 0.8 um
    // => 297.6 mm^2 square die (17.25 mm edge) on a 6-inch wafer.
    const die d = die::square_with_area(square_millimeters{297.6});
    EXPECT_EQ(maly_row_count(six_inch(), d), 46);
}

TEST(MalyRowCount, HugeDieDoesNotFit) {
    const die d = die::square(millimeters{200.0});
    EXPECT_EQ(maly_row_count(six_inch(), d), 0);
}

TEST(MalyRowCount, DieAsLargeAsInscribedSquareFitsOnce) {
    // A die of edge r*sqrt(2) exactly inscribes; the row formula places
    // it when rows align, i.e. count >= 1 for slightly smaller dies.
    const die d = die::square(millimeters{75.0 * 1.4142 * 0.99});
    EXPECT_GE(maly_row_count(six_inch(), d), 0);  // no crash, small count
}

TEST(MalyRowCount, MatchesManualSmallCase) {
    // 30 mm square dies on a 75 mm radius wafer: rows at y = -75..75.
    // Manual enumeration gives rows of chords min over edges.
    const die d = die::square(millimeters{30.0});
    // rows: floor(150/30) = 5 rows; chord half-lengths at the five row
    // boundaries: y=-75:0, -45:60, -15:73.48, 15:73.48, 45:60, 75:0.
    // Row counts: floor(2*0/30)=0? min(0,60)->0, min(60,73.48)->4,
    // min(73.48,73.48)->4, min(73.48,60)->4, min(60,0)->0 => 12.
    EXPECT_EQ(maly_row_count(six_inch(), d), 12);
}

TEST(MalyRowCount, BestOrientationAtLeastAsGood) {
    const die d{millimeters{21.0}, millimeters{9.0}};
    const long plain = maly_row_count(six_inch(), d);
    const long best = maly_row_count_best_orientation(six_inch(), d);
    EXPECT_GE(best, plain);
}

TEST(AreaRatioBound, DominatesEveryOtherEstimator) {
    for (double edge : {3.0, 5.0, 8.0, 12.0, 17.0, 25.0}) {
        const die d = die::square(millimeters{edge});
        const long bound = area_ratio_bound(six_inch(), d);
        EXPECT_GE(bound, maly_row_count(six_inch(), d)) << edge;
        EXPECT_GE(bound, circumference_corrected(six_inch(), d)) << edge;
        EXPECT_GE(bound, exact_count(six_inch(), d).count) << edge;
    }
}

TEST(CircumferenceCorrected, NegativeEstimateClampsToZero) {
    const die d = die::square(millimeters{140.0});
    EXPECT_EQ(circumference_corrected(six_inch(), d), 0);
}

TEST(FerrisPrabhu, ZeroWhenDieLargerThanWafer) {
    const die d = die::square(millimeters{200.0});
    EXPECT_EQ(ferris_prabhu(six_inch(), d), 0);
}

TEST(ExactCount, RigidGridStaysCloseToRowFormula) {
    // The row formula re-centers each row in x independently, which a
    // rigid stepper grid cannot do, so the exact count may fall a die or
    // two short — but never by more than a few percent, and never above
    // the per-row-optimal bound by much either.
    for (double edge : {5.0, 9.0, 13.0, 17.25}) {
        const die d = die::square(millimeters{edge});
        const double exact =
            static_cast<double>(exact_count(six_inch(), d).count);
        const double rows =
            static_cast<double>(maly_row_count(six_inch(), d));
        EXPECT_GE(exact, 0.95 * rows - 1.0) << edge;
        EXPECT_LE(exact, 1.10 * rows + 1.0) << edge;
    }
}

TEST(ExactCount, ScribeLanesReduceCount) {
    const die d = die::square(millimeters{8.0});
    const long tight = exact_count(six_inch(), d).count;
    const long scribed =
        exact_count(six_inch(), d, millimeters{0.8}).count;
    EXPECT_LT(scribed, tight);
    EXPECT_GT(scribed, 0);
}

TEST(ExactCount, RowCountsSumToTotal) {
    const die d = die::square(millimeters{11.0});
    const placement_result placed = exact_count(six_inch(), d);
    long sum = 0;
    for (long row : placed.row_counts) {
        sum += row;
    }
    EXPECT_EQ(sum, placed.count);
}

TEST(ExactCount, RejectsBadOffsetCount) {
    const die d = die::square(millimeters{10.0});
    EXPECT_THROW((void)exact_count(six_inch(), d, millimeters{0.0}, 0),
                 std::invalid_argument);
}

TEST(GrossDies, DispatchMatchesDirectCalls) {
    const die d = die::square(millimeters{10.0});
    const wafer w = six_inch();
    EXPECT_EQ(gross_dies(w, d, gross_die_method::maly_rows),
              maly_row_count(w, d));
    EXPECT_EQ(gross_dies(w, d, gross_die_method::maly_rows_best_orient),
              maly_row_count_best_orientation(w, d));
    EXPECT_EQ(gross_dies(w, d, gross_die_method::area_ratio),
              area_ratio_bound(w, d));
    EXPECT_EQ(gross_dies(w, d, gross_die_method::circumference),
              circumference_corrected(w, d));
    EXPECT_EQ(gross_dies(w, d, gross_die_method::ferris_prabhu),
              ferris_prabhu(w, d));
    EXPECT_EQ(gross_dies(w, d, gross_die_method::exact),
              exact_count(w, d).count);
}

TEST(GrossDies, MethodNames) {
    EXPECT_EQ(to_string(gross_die_method::maly_rows), "maly_rows");
    EXPECT_EQ(to_string(gross_die_method::exact), "exact");
    EXPECT_EQ(to_string(gross_die_method::ferris_prabhu), "ferris_prabhu");
}

// Property sweep: all estimators are monotonically non-increasing in die
// edge and agree within a tolerance band for small dies.
class GrossDieSweep : public ::testing::TestWithParam<double> {};

TEST_P(GrossDieSweep, EstimatorsAgreeWithinBandForSmallDies) {
    const double edge = GetParam();
    const die d = die::square(millimeters{edge});
    const wafer w = six_inch();
    const double exact = static_cast<double>(exact_count(w, d).count);
    ASSERT_GT(exact, 0.0);
    const double rows = static_cast<double>(maly_row_count(w, d));
    const double circ =
        static_cast<double>(circumference_corrected(w, d));
    // Small dies: closed forms within 12% of exact placement.
    EXPECT_NEAR(rows / exact, 1.0, 0.12) << edge;
    EXPECT_NEAR(circ / exact, 1.0, 0.12) << edge;
}

INSTANTIATE_TEST_SUITE_P(SmallDies, GrossDieSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 5.0, 6.0, 8.0));

class GrossDieMonotone : public ::testing::TestWithParam<gross_die_method> {};

TEST_P(GrossDieMonotone, CountNonIncreasingInDieEdge) {
    const wafer w = six_inch();
    long previous = -1;
    for (double edge = 2.0; edge <= 30.0; edge += 1.0) {
        const long count =
            gross_dies(w, die::square(millimeters{edge}), GetParam());
        if (previous >= 0) {
            EXPECT_LE(count, previous) << "edge " << edge;
        }
        previous = count;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, GrossDieMonotone,
    ::testing::Values(gross_die_method::maly_rows,
                      gross_die_method::maly_rows_best_orient,
                      gross_die_method::area_ratio,
                      gross_die_method::circumference,
                      gross_die_method::ferris_prabhu,
                      gross_die_method::exact));

}  // namespace
}  // namespace silicon::geometry
