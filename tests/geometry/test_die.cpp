// Unit tests for geometry::die.

#include "geometry/die.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::geometry {
namespace {

TEST(Die, StoresEdges) {
    const die d{millimeters{10.0}, millimeters{5.0}};
    EXPECT_DOUBLE_EQ(d.width().value(), 10.0);
    EXPECT_DOUBLE_EQ(d.height().value(), 5.0);
    EXPECT_DOUBLE_EQ(d.area().value(), 50.0);
    EXPECT_DOUBLE_EQ(d.aspect_ratio(), 2.0);
}

TEST(Die, SquareFactory) {
    const die d = die::square(millimeters{7.0});
    EXPECT_DOUBLE_EQ(d.width().value(), 7.0);
    EXPECT_DOUBLE_EQ(d.height().value(), 7.0);
    EXPECT_DOUBLE_EQ(d.aspect_ratio(), 1.0);
}

TEST(Die, SquareWithAreaRecoversEdge) {
    const die d = die::square_with_area(square_millimeters{100.0});
    EXPECT_DOUBLE_EQ(d.width().value(), 10.0);
    EXPECT_DOUBLE_EQ(d.area().value(), 100.0);
}

TEST(Die, RotatedSwapsEdges) {
    const die d{millimeters{12.0}, millimeters{8.0}};
    const die r = d.rotated();
    EXPECT_DOUBLE_EQ(r.width().value(), 8.0);
    EXPECT_DOUBLE_EQ(r.height().value(), 12.0);
    EXPECT_DOUBLE_EQ(r.area().value(), d.area().value());
}

TEST(Die, RejectsNonPositiveEdges) {
    EXPECT_THROW((void)(die{millimeters{0.0}, millimeters{5.0}}),
                 std::invalid_argument);
    EXPECT_THROW((void)(die{millimeters{5.0}, millimeters{0.0}}),
                 std::invalid_argument);
}

TEST(Die, RejectsNonPositiveArea) {
    EXPECT_THROW((void)die::square_with_area(square_millimeters{0.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::geometry
