// Tests for the reticle field planner.

#include "geometry/reticle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::geometry {
namespace {

TEST(Reticle, PacksSmallDiceDensely) {
    const reticle_plan plan = plan_reticle(
        wafer::six_inch(), die::square(millimeters{5.0}));
    // 22 mm field, 5 mm dice + 0.1 scribe: floor(22.1/5.1) = 4 per axis.
    EXPECT_EQ(plan.cols, 4);
    EXPECT_EQ(plan.rows, 4);
    EXPECT_EQ(plan.dice_per_field, 16);
}

TEST(Reticle, BigDieOnePerField) {
    const reticle_plan plan = plan_reticle(
        wafer::six_inch(), die::square(millimeters{18.0}));
    EXPECT_EQ(plan.dice_per_field, 1);
}

TEST(Reticle, OversizedDieRejected) {
    EXPECT_THROW((void)plan_reticle(wafer::six_inch(),
                                    die::square(millimeters{25.0})),
                 std::invalid_argument);
}

TEST(Reticle, FieldCountCoversWafer) {
    const reticle_spec spec;
    const reticle_plan plan =
        plan_reticle(wafer::six_inch(), die::square(millimeters{5.0}), spec);
    // Wafer area / field area is a lower bound on intersecting tiles.
    const double wafer_mm2 =
        wafer::six_inch().area().to_square_millimeters().value();
    const double field_mm2 =
        spec.field_width.value() * spec.field_height.value();
    EXPECT_GE(plan.fields_per_wafer,
              static_cast<long>(wafer_mm2 / field_mm2));
    EXPECT_LT(plan.fields_per_wafer,
              static_cast<long>(wafer_mm2 / field_mm2 * 1.8));
}

TEST(Reticle, BiggerWaferNeedsMoreFields) {
    const die d = die::square(millimeters{8.0});
    EXPECT_GT(plan_reticle(wafer::eight_inch(), d).fields_per_wafer,
              plan_reticle(wafer::six_inch(), d).fields_per_wafer);
}

TEST(Reticle, ThroughputFollowsFieldCount) {
    const reticle_spec spec;
    const reticle_plan plan =
        plan_reticle(wafer::six_inch(), die::square(millimeters{8.0}), spec);
    EXPECT_NEAR(plan.seconds_per_wafer,
                spec.seconds_overhead_per_wafer +
                    plan.fields_per_wafer * spec.seconds_per_exposure,
                1e-12);
    EXPECT_NEAR(plan.wafers_per_hour, 3600.0 / plan.seconds_per_wafer,
                1e-12);
    // An early-90s stepper does tens of wafers per hour.
    EXPECT_GT(plan.wafers_per_hour, 10.0);
    EXPECT_LT(plan.wafers_per_hour, 80.0);
}

TEST(Reticle, RejectsBadSpec) {
    reticle_spec spec;
    spec.field_width = millimeters{0.0};
    EXPECT_THROW((void)plan_reticle(wafer::six_inch(),
                                    die::square(millimeters{5.0}), spec),
                 std::invalid_argument);
    spec = reticle_spec{};
    spec.seconds_per_exposure = 0.0;
    EXPECT_THROW((void)plan_reticle(wafer::six_inch(),
                                    die::square(millimeters{5.0}), spec),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::geometry
