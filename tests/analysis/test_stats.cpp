// Tests for the statistics helpers.

#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::analysis {
namespace {

TEST(Summarize, BasicMoments) {
    const summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, SingleValue) {
    const summary s = summarize({3.0});
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, EmptyThrows) {
    EXPECT_THROW((void)summarize({}), std::invalid_argument);
}

TEST(FitLine, ExactLineRecovered) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
    const linear_fit fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRSquaredBelowOne) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys = {0.1, 0.9, 2.2, 2.8, 4.1};
    const linear_fit fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 1.0, 0.1);
    EXPECT_LT(fit.r_squared, 1.0);
    EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitLine, RejectsDegenerateInput) {
    EXPECT_THROW((void)fit_line({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW((void)fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW((void)fit_line({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(FitExponential, RecoversRate) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i <= 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * std::exp(0.4 * i));
    }
    const linear_fit fit = fit_exponential(xs, ys);
    EXPECT_NEAR(fit.slope, 0.4, 1e-9);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(FitExponential, RejectsNonPositiveY) {
    EXPECT_THROW((void)fit_exponential({0.0, 1.0}, {1.0, 0.0}),
                 std::invalid_argument);
}

TEST(Quantile, MedianAndExtremes) {
    const std::vector<double> sample = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(sample, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
    EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
    EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace silicon::analysis
