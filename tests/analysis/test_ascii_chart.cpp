// Tests for the ASCII chart renderer.

#include "analysis/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::analysis {
namespace {

series line(const std::string& name) {
    series s{name};
    for (int i = 0; i <= 10; ++i) {
        s.add(i, 2.0 * i + 1.0);
    }
    return s;
}

TEST(AsciiChart, RendersGlyphsAndLegend) {
    const std::string out = render_ascii_chart({line("rising")});
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("legend: * = rising"), std::string::npos);
}

TEST(AsciiChart, TitleAndLabels) {
    ascii_chart_options options;
    options.title = "My Title";
    options.x_label = "lambda [um]";
    const std::string out = render_ascii_chart({line("s")}, options);
    EXPECT_EQ(out.rfind("My Title", 0), 0u);
    EXPECT_NE(out.find("lambda [um]"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesDistinctGlyphs) {
    series a{"a"};
    series b{"b"};
    for (int i = 0; i <= 10; ++i) {
        a.add(i, i);
        b.add(i, 10 - i);
    }
    const std::string out = render_ascii_chart({a, b});
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, LogAxisRejectsNonPositive) {
    series s{"bad"};
    s.add(1.0, 0.0);
    s.add(2.0, 1.0);
    ascii_chart_options options;
    options.y_scale = scale::log10;
    EXPECT_THROW((void)render_ascii_chart({s}, options), std::invalid_argument);
}

TEST(AsciiChart, LogAxisRendersDecades) {
    series s{"decades"};
    for (int i = 0; i <= 6; ++i) {
        s.add(i, std::pow(10.0, i));
    }
    ascii_chart_options options;
    options.y_scale = scale::log10;
    const std::string out = render_ascii_chart({s}, options);
    // On a log axis the decade points land on a straight diagonal: the
    // top row holds exactly one glyph.
    EXPECT_NE(out.find("1e+06"), std::string::npos);
}

TEST(AsciiChart, EmptyInputRejected) {
    EXPECT_THROW((void)render_ascii_chart({}), std::invalid_argument);
    EXPECT_THROW((void)render_ascii_chart({series{"empty"}}),
                 std::invalid_argument);
}

TEST(AsciiChart, TooSmallPlotAreaRejected) {
    ascii_chart_options options;
    options.width = 4;
    EXPECT_THROW((void)render_ascii_chart({line("s")}, options),
                 std::invalid_argument);
}

TEST(AsciiChart, ConstantSeriesStillRenders) {
    series s{"flat"};
    s.add(0.0, 5.0);
    s.add(1.0, 5.0);
    EXPECT_NO_THROW(render_ascii_chart({s}));
}

}  // namespace
}  // namespace silicon::analysis
