// Tests for the markdown document builder.

#include "analysis/markdown.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::analysis {
namespace {

TEST(Markdown, TitleAndHeadings) {
    markdown_document doc{"My Study"};
    doc.heading("Section", 2);
    doc.heading("Subsection", 3);
    const std::string md = doc.str();
    EXPECT_EQ(md.rfind("# My Study\n", 0), 0u);
    EXPECT_NE(md.find("\n## Section\n"), std::string::npos);
    EXPECT_NE(md.find("\n### Subsection\n"), std::string::npos);
}

TEST(Markdown, RejectsBadHeadingLevel) {
    markdown_document doc{"t"};
    EXPECT_THROW(doc.heading("x", 1), std::invalid_argument);
    EXPECT_THROW(doc.heading("x", 5), std::invalid_argument);
}

TEST(Markdown, KeyValueAndBullets) {
    markdown_document doc{"t"};
    doc.key_value("yield", "73%");
    doc.bullets({"first", "second"});
    const std::string md = doc.str();
    EXPECT_NE(md.find("- **yield**: 73%"), std::string::npos);
    EXPECT_NE(md.find("- first\n- second\n"), std::string::npos);
}

TEST(Markdown, CodeBlockFenced) {
    markdown_document doc{"t"};
    doc.code_block("###\n##", "text");
    const std::string md = doc.str();
    EXPECT_NE(md.find("```text\n###\n##\n```"), std::string::npos);
}

TEST(Markdown, TableRendering) {
    text_table t;
    t.add_column("name", align::left);
    t.add_column("value", align::right, 1);
    t.begin_row();
    t.add_cell("alpha|beta");
    t.add_number(2.5);
    const std::string md = to_markdown(t);
    EXPECT_NE(md.find("| name | value |"), std::string::npos);
    EXPECT_NE(md.find("| :--- | ---: |"), std::string::npos);
    EXPECT_NE(md.find("| alpha\\|beta | 2.5 |"), std::string::npos);
}

TEST(Markdown, EmptyTableRejected) {
    text_table t;
    EXPECT_THROW((void)to_markdown(t), std::invalid_argument);
}

TEST(Markdown, DocumentEmbedsTable) {
    markdown_document doc{"t"};
    text_table t;
    t.add_column("c");
    t.begin_row();
    t.add_cell("v");
    doc.table(t);
    EXPECT_NE(doc.str().find("| c |"), std::string::npos);
}

}  // namespace
}  // namespace silicon::analysis
