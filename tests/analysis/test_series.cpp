// Tests for the series container.

#include "analysis/series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::analysis {
namespace {

series ramp() {
    series s{"ramp"};
    s.add(0.0, 10.0);
    s.add(1.0, 20.0);
    s.add(2.0, 15.0);
    s.add(3.0, 5.0);
    return s;
}

TEST(Series, BasicAccessors) {
    const series s = ramp();
    EXPECT_EQ(s.name(), "ramp");
    EXPECT_EQ(s.size(), 4u);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.points()[1], (point{1.0, 20.0}));
}

TEST(Series, Extremes) {
    const series s = ramp();
    EXPECT_DOUBLE_EQ(s.min_x(), 0.0);
    EXPECT_DOUBLE_EQ(s.max_x(), 3.0);
    EXPECT_DOUBLE_EQ(s.min_y(), 5.0);
    EXPECT_DOUBLE_EQ(s.max_y(), 20.0);
}

TEST(Series, ArgminY) {
    const point p = ramp().argmin_y();
    EXPECT_DOUBLE_EQ(p.x, 3.0);
    EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(Series, EmptyThrowsOnStatistics) {
    const series s{"empty"};
    EXPECT_THROW((void)s.min_x(), std::domain_error);
    EXPECT_THROW((void)s.argmin_y(), std::domain_error);
    EXPECT_THROW((void)s.interpolate(0.0), std::domain_error);
}

TEST(Series, InterpolateAtKnots) {
    const series s = ramp();
    EXPECT_DOUBLE_EQ(s.interpolate(1.0), 20.0);
    EXPECT_DOUBLE_EQ(s.interpolate(3.0), 5.0);
}

TEST(Series, InterpolateBetweenKnots) {
    const series s = ramp();
    EXPECT_DOUBLE_EQ(s.interpolate(0.5), 15.0);
    EXPECT_DOUBLE_EQ(s.interpolate(2.5), 10.0);
}

TEST(Series, InterpolateOutOfRangeThrows) {
    const series s = ramp();
    EXPECT_THROW((void)s.interpolate(-0.1), std::domain_error);
    EXPECT_THROW((void)s.interpolate(3.1), std::domain_error);
}

TEST(Series, InterpolateUnsortedThrows) {
    series s{"unsorted"};
    s.add(2.0, 1.0);
    s.add(1.0, 2.0);
    EXPECT_THROW((void)s.interpolate(1.5), std::domain_error);
}

}  // namespace
}  // namespace silicon::analysis
