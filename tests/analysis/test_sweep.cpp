// Tests for linspace/logspace and grid evaluation.

#include "analysis/sweep.hpp"

#include "yield/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::analysis {
namespace {

TEST(Linspace, EndpointsExact) {
    const auto xs = linspace(0.25, 1.0, 16);
    ASSERT_EQ(xs.size(), 16u);
    EXPECT_DOUBLE_EQ(xs.front(), 0.25);
    EXPECT_DOUBLE_EQ(xs.back(), 1.0);
}

TEST(Linspace, UniformSpacing) {
    const auto xs = linspace(0.0, 1.0, 5);
    for (std::size_t i = 1; i < xs.size(); ++i) {
        EXPECT_NEAR(xs[i] - xs[i - 1], 0.25, 1e-12);
    }
}

TEST(Linspace, DescendingWorks) {
    const auto xs = linspace(1.0, 0.2, 5);
    EXPECT_DOUBLE_EQ(xs.front(), 1.0);
    EXPECT_DOUBLE_EQ(xs.back(), 0.2);
    EXPECT_GT(xs[0], xs[1]);
}

TEST(Linspace, SinglePoint) {
    const auto xs = linspace(2.0, 2.0, 1);
    ASSERT_EQ(xs.size(), 1u);
    EXPECT_THROW((void)linspace(1.0, 2.0, 1), std::invalid_argument);
    EXPECT_THROW((void)linspace(1.0, 2.0, 0), std::invalid_argument);
}

TEST(Logspace, GeometricSpacing) {
    const auto xs = logspace(1.0, 100.0, 3);
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_DOUBLE_EQ(xs[0], 1.0);
    EXPECT_NEAR(xs[1], 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(xs[2], 100.0);
}

TEST(Logspace, RejectsNonPositive) {
    EXPECT_THROW((void)logspace(0.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW((void)logspace(1.0, -1.0, 4), std::invalid_argument);
}

TEST(Sweep, EvaluatesFunction) {
    const series s = sweep("squares", linspace(0.0, 3.0, 4),
                           [](double x) { return x * x; });
    EXPECT_EQ(s.name(), "squares");
    ASSERT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s.points()[3].y, 9.0);
}

TEST(Grid, RowMajorLayout) {
    const grid g = evaluate_grid({1.0, 2.0}, {10.0, 20.0, 30.0},
                                 [](double x, double y) { return x + y; });
    EXPECT_EQ(g.values.size(), 6u);
    EXPECT_DOUBLE_EQ(g.at(0, 0), 11.0);
    EXPECT_DOUBLE_EQ(g.at(1, 0), 12.0);
    EXPECT_DOUBLE_EQ(g.at(0, 2), 31.0);
    EXPECT_DOUBLE_EQ(g.at(1, 2), 32.0);
}

TEST(Grid, MinMax) {
    const grid g = evaluate_grid({0.0, 1.0}, {0.0, 1.0},
                                 [](double x, double y) { return x - y; });
    EXPECT_DOUBLE_EQ(g.min_value(), -1.0);
    EXPECT_DOUBLE_EQ(g.max_value(), 1.0);
}

TEST(Grid, EmptyAxesRejected) {
    EXPECT_THROW((void)
        evaluate_grid({}, {1.0}, [](double, double) { return 0.0; }),
        std::invalid_argument);
}

TEST(Grid, EmptyGridStatisticsThrow) {
    grid g;
    EXPECT_THROW((void)g.min_value(), std::domain_error);
}

TEST(SweepBatch, MatchesScalarSweepBitForBitAtEveryParallelism) {
    // A batch evaluator backed by the SoA Poisson kernel must reproduce
    // the scalar sweep exactly: lanes are independent, so sharding a
    // contiguous range through the kernel cannot change any bit.
    const std::vector<double> xs = linspace(0.0, 6.0, 97);
    const auto scalar = [](double f) { return std::exp(-f); };
    const batch_evaluator batched = [](const double* in, double* out,
                                       std::size_t n) {
        silicon::yield::batch::poisson_yield(in, out, n);
    };
    const series expected = sweep("poisson", xs, scalar, 1);
    for (unsigned parallelism : {1u, 4u, 0u}) {
        const series got = sweep_batch("poisson", xs, batched, parallelism);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(got.points()[i].y, expected.points()[i].y)
                << "parallelism=" << parallelism << " i=" << i;
        }
    }
}

TEST(SweepBatch, EmptyGridAndSinglePoint) {
    const batch_evaluator batched = [](const double* in, double* out,
                                       std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = 2.0 * in[i];
        }
    };
    EXPECT_EQ(sweep_batch("empty", {}, batched).size(), 0u);
    const series one = sweep_batch("one", {3.0}, batched, 0);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one.points()[0].y, 6.0);
}

}  // namespace
}  // namespace silicon::analysis
