// Tests for the text table formatter.

#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::analysis {
namespace {

text_table small_table() {
    text_table t;
    t.add_column("name", align::left);
    t.add_column("value", align::right, 2);
    t.begin_row();
    t.add_cell("alpha");
    t.add_number(3.14159);
    t.begin_row();
    t.add_cell("b");
    t.add_number(10.0);
    return t;
}

TEST(TextTable, RendersAlignedColumns) {
    const std::string out = small_table().to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find("10.00"), std::string::npos);
    // Separator line of dashes present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, LeftAndRightAlignment) {
    const std::string out = small_table().to_string();
    // "alpha" starts its line (left aligned); numbers right aligned means
    // the shorter "b" row has padding before 10.00.
    EXPECT_EQ(out.find("alpha"), out.find('\n', out.find("----")) + 1);
}

TEST(TextTable, CsvEscapesSpecials) {
    text_table t;
    t.add_column("a");
    t.add_column("b");
    t.begin_row();
    t.add_cell("plain");
    t.add_cell("needs,\"quotes\"");
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("a,b\n"), std::string::npos);
    EXPECT_NE(csv.find("\"needs,\"\"quotes\"\"\""), std::string::npos);
}

TEST(TextTable, RowCountTracksRows) {
    EXPECT_EQ(small_table().row_count(), 2u);
}

TEST(TextTable, IntegerCells) {
    text_table t;
    t.add_column("n");
    t.begin_row();
    t.add_integer(42);
    EXPECT_NE(t.to_string().find("42"), std::string::npos);
}

TEST(TextTable, MisuseThrows) {
    text_table t;
    EXPECT_THROW((void)t.begin_row(), std::logic_error);  // no columns yet
    t.add_column("only");
    EXPECT_THROW((void)t.add_cell("x"), std::logic_error);  // no row started
    t.begin_row();
    t.add_cell("x");
    EXPECT_THROW((void)t.add_cell("y"), std::logic_error);  // row full
    EXPECT_THROW((void)t.add_column("late"), std::logic_error);
}

TEST(TextTable, IncompleteRowRejectedAtRender) {
    text_table t;
    t.add_column("a");
    t.add_column("b");
    t.begin_row();
    t.add_cell("only one");
    EXPECT_THROW((void)t.to_string(), std::logic_error);
    EXPECT_THROW((void)t.to_csv(), std::logic_error);
}

TEST(FormatNumber, PrecisionModes) {
    EXPECT_EQ(format_number(3.14159, 2), "3.14");
    EXPECT_EQ(format_number(3.0, -1), "3");
    EXPECT_EQ(format_number(0.000123, -1), "0.000123");
}

}  // namespace
}  // namespace silicon::analysis
