// Tests for marching-squares contour extraction.

#include "analysis/contour.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::analysis {
namespace {

grid radial_grid(int n) {
    // z = x^2 + y^2 over [-2, 2]^2: contours are circles.
    std::vector<double> axis;
    for (int i = 0; i < n; ++i) {
        axis.push_back(-2.0 + 4.0 * i / (n - 1));
    }
    return evaluate_grid(axis, axis,
                         [](double x, double y) { return x * x + y * y; });
}

TEST(Contour, CircleLevelSetIsClosedAndRoundish) {
    const grid g = radial_grid(81);
    const auto lines = extract_contours(g, 1.0);
    ASSERT_EQ(lines.size(), 1u);
    const contour_line& circle = lines.front();
    EXPECT_TRUE(circle.closed);
    EXPECT_GT(circle.points.size(), 20u);
    // All points near radius 1.
    for (const point& p : circle.points) {
        EXPECT_NEAR(std::hypot(p.x, p.y), 1.0, 0.01);
    }
}

TEST(Contour, LevelOutsideRangeGivesNothing) {
    const grid g = radial_grid(21);
    EXPECT_TRUE(extract_contours(g, 100.0).empty());
    EXPECT_TRUE(extract_contours(g, -1.0).empty());
}

TEST(Contour, LinearFieldGivesStraightLine) {
    const grid g = evaluate_grid(
        {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 2.0, 3.0},
        [](double x, double) { return x; });
    const auto lines = extract_contours(g, 1.5);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_FALSE(lines.front().closed);
    for (const point& p : lines.front().points) {
        EXPECT_NEAR(p.x, 1.5, 1e-9);
    }
    // Spans the full y range.
    double min_y = 1e9;
    double max_y = -1e9;
    for (const point& p : lines.front().points) {
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    EXPECT_NEAR(min_y, 0.0, 1e-9);
    EXPECT_NEAR(max_y, 3.0, 1e-9);
}

TEST(Contour, SaddleDoesNotCrash) {
    // z = x*y has a saddle at the origin.
    const grid g = evaluate_grid(
        {-1.0, -0.5, 0.0, 0.5, 1.0}, {-1.0, -0.5, 0.0, 0.5, 1.0},
        [](double x, double y) { return x * y; });
    const auto lines = extract_contours(g, 0.1);
    EXPECT_GE(lines.size(), 2u);  // two hyperbola branches
}

TEST(Contour, MultipleLevels) {
    const grid g = radial_grid(61);
    const auto lines = extract_contours(g, std::vector<double>{0.5, 1.0, 2.0});
    // One closed circle per level.
    EXPECT_EQ(lines.size(), 3u);
    EXPECT_NEAR(lines[0].level, 0.5, 1e-12);
    EXPECT_NEAR(lines[2].level, 2.0, 1e-12);
}

TEST(Contour, RejectsDegenerateGrids) {
    grid g;
    g.xs = {0.0};
    g.ys = {0.0, 1.0};
    g.values = {0.0, 0.0};
    EXPECT_THROW((void)extract_contours(g, 0.5), std::invalid_argument);

    grid bad = radial_grid(5);
    bad.values.pop_back();
    EXPECT_THROW((void)extract_contours(bad, 0.5), std::invalid_argument);
}

TEST(Contour, NonMonotoneAxesRejected) {
    grid g = radial_grid(5);
    std::swap(g.xs[0], g.xs[1]);
    EXPECT_THROW((void)extract_contours(g, 0.5), std::invalid_argument);
}

TEST(Contour, ContourInterpolatesBetweenSamples) {
    // 1-D ramp in y: contour at 0.25 sits a quarter of the way up.
    const grid g = evaluate_grid(
        {0.0, 1.0}, {0.0, 1.0}, [](double, double y) { return y; });
    const auto lines = extract_contours(g, 0.25);
    ASSERT_EQ(lines.size(), 1u);
    for (const point& p : lines.front().points) {
        EXPECT_NEAR(p.y, 0.25, 1e-12);
    }
}

}  // namespace
}  // namespace silicon::analysis
