// Tests for the SVG chart renderer.

#include "analysis/svg_chart.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace silicon::analysis {
namespace {

series sample_series(const std::string& name) {
    series s{name};
    for (int i = 1; i <= 10; ++i) {
        s.add(i, i * i);
    }
    return s;
}

TEST(SvgLineChart, WellFormedDocument) {
    const std::string svg = render_svg_line_chart({sample_series("sq")});
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgLineChart, LegendShowsSeriesNames) {
    const std::string svg = render_svg_line_chart(
        {sample_series("alpha"), sample_series("beta")});
    EXPECT_NE(svg.find(">alpha</text>"), std::string::npos);
    EXPECT_NE(svg.find(">beta</text>"), std::string::npos);
}

TEST(SvgLineChart, TitleAndAxisLabels) {
    svg_chart_options options;
    options.title = "Cost per transistor";
    options.x_label = "lambda [um]";
    options.y_label = "C_tr [$]";
    const std::string svg =
        render_svg_line_chart({sample_series("s")}, options);
    EXPECT_NE(svg.find("Cost per transistor"), std::string::npos);
    EXPECT_NE(svg.find("lambda [um]"), std::string::npos);
    EXPECT_NE(svg.find("C_tr [$]"), std::string::npos);
}

TEST(SvgLineChart, Deterministic) {
    const std::string a = render_svg_line_chart({sample_series("s")});
    const std::string b = render_svg_line_chart({sample_series("s")});
    EXPECT_EQ(a, b);
}

TEST(SvgLineChart, LogAxisRejectsNonPositive) {
    series s{"bad"};
    s.add(1.0, -1.0);
    s.add(2.0, 1.0);
    svg_chart_options options;
    options.y_log = true;
    EXPECT_THROW((void)render_svg_line_chart({s}, options),
                 std::invalid_argument);
}

TEST(SvgLineChart, EmptyRejected) {
    EXPECT_THROW((void)render_svg_line_chart({}), std::invalid_argument);
}

TEST(SvgContourChart, RendersLevels) {
    const grid g = evaluate_grid(
        linspace(-2.0, 2.0, 41), linspace(-2.0, 2.0, 41),
        [](double x, double y) { return x * x + y * y; });
    const std::string svg =
        render_svg_contour_chart(g, {0.5, 1.0, 2.0});
    EXPECT_NE(svg.find("level 0.5"), std::string::npos);
    EXPECT_NE(svg.find("level 2"), std::string::npos);
    EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgContourChart, RejectsEmptyLevels) {
    const grid g = evaluate_grid(
        {0.0, 1.0}, {0.0, 1.0}, [](double x, double) { return x; });
    EXPECT_THROW((void)render_svg_contour_chart(g, {}), std::invalid_argument);
}

TEST(WriteFile, RoundTrips) {
    const std::string path = ::testing::TempDir() + "/svg_chart_test.svg";
    write_file(path, "<svg>content</svg>");
    std::ifstream in{path};
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "<svg>content</svg>");
    std::remove(path.c_str());
}

TEST(WriteFile, FailsOnBadPath) {
    EXPECT_THROW((void)write_file("/nonexistent-dir-xyz/file.svg", "x"),
                 std::runtime_error);
}

}  // namespace
}  // namespace silicon::analysis
