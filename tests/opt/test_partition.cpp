// Tests for set-partition enumeration and the partition optimizer.

#include "opt/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace silicon::opt {
namespace {

TEST(BellNumber, KnownValues) {
    EXPECT_EQ(bell_number(0), 1ULL);
    EXPECT_EQ(bell_number(1), 1ULL);
    EXPECT_EQ(bell_number(2), 2ULL);
    EXPECT_EQ(bell_number(3), 5ULL);
    EXPECT_EQ(bell_number(5), 52ULL);
    EXPECT_EQ(bell_number(10), 115975ULL);
}

TEST(BellNumber, RejectsTooLarge) {
    EXPECT_THROW((void)bell_number(21), std::invalid_argument);
}

TEST(SetPartitions, CountsMatchBellNumbers) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u}) {
        EXPECT_EQ(set_partitions(n).size(), bell_number(static_cast<unsigned>(n)))
            << n;
    }
}

TEST(SetPartitions, AllDistinctAndCanonical) {
    const auto partitions = set_partitions(4);
    std::set<std::vector<std::size_t>> unique(partitions.begin(),
                                              partitions.end());
    EXPECT_EQ(unique.size(), partitions.size());
    for (const auto& labels : partitions) {
        EXPECT_EQ(labels[0], 0u);  // restricted growth property
        std::size_t max_so_far = 0;
        for (std::size_t v : labels) {
            EXPECT_LE(v, max_so_far + 1);
            max_so_far = std::max(max_so_far, v);
        }
    }
}

TEST(SetPartitions, RejectsBadSize) {
    EXPECT_THROW((void)set_partitions(0), std::invalid_argument);
    EXPECT_THROW((void)set_partitions(13), std::invalid_argument);
}

TEST(OptimizePartitions, MergesWhenMergingIsCheap) {
    // Die cost = constant 10 regardless of content: fewer dies win.
    const std::vector<block> blocks = {
        {"a", 100.0, 1.0}, {"b", 100.0, 1.0}, {"c", 100.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>&) {
        return std::make_pair(10.0, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t dies) {
        return 1.0 * static_cast<double>(dies);
    };
    const partition_solution best =
        optimize_partitions(blocks, die_cost, packaging);
    EXPECT_EQ(best.dies.size(), 1u);
    EXPECT_NEAR(best.total_cost, 11.0, 1e-12);
}

TEST(OptimizePartitions, SplitsWhenCostIsSuperlinear) {
    // Die cost = (total transistors)^2: splitting always helps; with
    // cheap packaging the optimizer should use one die per block.
    const std::vector<block> blocks = {
        {"a", 3.0, 1.0}, {"b", 4.0, 1.0}, {"c", 5.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>& group) {
        double transistors = 0.0;
        for (const block& b : group) {
            transistors += b.transistors;
        }
        return std::make_pair(transistors * transistors, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t dies) {
        return 0.1 * static_cast<double>(dies);
    };
    const partition_solution best =
        optimize_partitions(blocks, die_cost, packaging);
    EXPECT_EQ(best.dies.size(), 3u);
    EXPECT_NEAR(best.die_cost_total, 9.0 + 16.0 + 25.0, 1e-12);
}

TEST(OptimizePartitions, PackagingPenaltyForcesMerge) {
    // Same superlinear silicon, but packaging is so expensive that the
    // monolithic die wins anyway.
    const std::vector<block> blocks = {{"a", 3.0, 1.0}, {"b", 4.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>& group) {
        double transistors = 0.0;
        for (const block& b : group) {
            transistors += b.transistors;
        }
        return std::make_pair(transistors * transistors, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t dies) {
        return dies > 1 ? 1000.0 : 0.0;
    };
    const partition_solution best =
        optimize_partitions(blocks, die_cost, packaging);
    EXPECT_EQ(best.dies.size(), 1u);
}

TEST(OptimizePartitions, InfeasibleGroupingsAreSkipped) {
    // Groupings holding both "a" and "b" are rejected (infinite cost);
    // the optimizer must pick a split solution.
    const std::vector<block> blocks = {{"a", 1.0, 1.0}, {"b", 1.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>& group) {
        if (group.size() > 1) {
            return std::make_pair(
                std::numeric_limits<double>::infinity(), 0.0);
        }
        return std::make_pair(5.0, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t dies) {
        return static_cast<double>(dies);
    };
    const partition_solution best =
        optimize_partitions(blocks, die_cost, packaging);
    EXPECT_EQ(best.dies.size(), 2u);
}

TEST(OptimizePartitions, ThrowsWhenNothingFeasible) {
    const std::vector<block> blocks = {{"a", 1.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>&) {
        return std::make_pair(std::numeric_limits<double>::infinity(),
                              0.0);
    };
    const packaging_cost_fn packaging = [](std::size_t) { return 0.0; };
    EXPECT_THROW((void)optimize_partitions(blocks, die_cost, packaging),
                 std::domain_error);
}

TEST(OptimizePartitions, RejectsEmptyAndOversized) {
    const die_cost_fn die_cost = [](const std::vector<block>&) {
        return std::make_pair(1.0, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t) { return 0.0; };
    EXPECT_THROW((void)optimize_partitions({}, die_cost, packaging),
                 std::invalid_argument);
    const std::vector<block> many(11, block{"x", 1.0, 1.0});
    EXPECT_THROW((void)optimize_partitions(many, die_cost, packaging),
                 std::invalid_argument);
}

TEST(OptimizePartitions, EveryBlockAssignedExactlyOnce) {
    const std::vector<block> blocks = {
        {"a", 3.0, 1.0}, {"b", 4.0, 1.0}, {"c", 5.0, 1.0},
        {"d", 2.0, 1.0}};
    const die_cost_fn die_cost = [](const std::vector<block>& group) {
        return std::make_pair(static_cast<double>(group.size()) * 3.0, 0.5);
    };
    const packaging_cost_fn packaging = [](std::size_t dies) {
        return static_cast<double>(dies) * 2.0;
    };
    const partition_solution best =
        optimize_partitions(blocks, die_cost, packaging);
    std::set<std::size_t> seen;
    for (const die_assignment& die : best.dies) {
        for (std::size_t bi : die.block_indices) {
            EXPECT_TRUE(seen.insert(bi).second) << "duplicate block";
        }
    }
    EXPECT_EQ(seen.size(), blocks.size());
}

}  // namespace
}  // namespace silicon::opt
