// Tests for Pareto-front extraction.

#include "opt/pareto.hpp"

#include <gtest/gtest.h>

namespace silicon::opt {
namespace {

TEST(Dominates, StrictAndWeakCases) {
    const design_point cheap_good{"a", 1.0, 5.0};
    const design_point pricey_bad{"b", 2.0, 3.0};
    EXPECT_TRUE(dominates(cheap_good, pricey_bad));
    EXPECT_FALSE(dominates(pricey_bad, cheap_good));
    // Equal points do not dominate each other.
    EXPECT_FALSE(dominates(cheap_good, cheap_good));
    // Equal cost, better merit dominates.
    const design_point same_cost_better{"c", 1.0, 6.0};
    EXPECT_TRUE(dominates(same_cost_better, cheap_good));
}

TEST(ParetoFront, ExtractsNonDominatedSet) {
    const std::vector<design_point> points = {
        {"cheap-slow", 1.0, 1.0},  {"mid", 2.0, 3.0},
        {"dominated", 2.5, 2.0},   {"fast", 4.0, 5.0},
        {"bad-deal", 5.0, 4.0},
    };
    const auto front = pareto_front(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].label, "cheap-slow");
    EXPECT_EQ(front[1].label, "mid");
    EXPECT_EQ(front[2].label, "fast");
}

TEST(ParetoFront, SortedByCost) {
    const std::vector<design_point> points = {
        {"z", 9.0, 9.0}, {"a", 1.0, 1.0}, {"m", 5.0, 5.0}};
    const auto front = pareto_front(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_LT(front[0].cost, front[1].cost);
    EXPECT_LT(front[1].cost, front[2].cost);
}

TEST(ParetoFront, SinglePointAndEmpty) {
    EXPECT_TRUE(pareto_front({}).empty());
    const auto one = pareto_front({{"only", 2.0, 2.0}});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].label, "only");
}

TEST(ParetoFront, DuplicateFrontierPointsKept) {
    const std::vector<design_point> points = {
        {"a", 1.0, 2.0}, {"a-clone", 1.0, 2.0}, {"worse", 1.5, 1.0}};
    const auto front = pareto_front(points);
    EXPECT_EQ(front.size(), 2u);
}

TEST(ParetoFront, EqualCostKeepsOnlyBestMerit) {
    const std::vector<design_point> points = {
        {"good", 1.0, 5.0}, {"bad", 1.0, 2.0}};
    const auto front = pareto_front(points);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].label, "good");
}

TEST(ParetoFront, MonotoneChainAllKept) {
    std::vector<design_point> points;
    for (int i = 0; i < 10; ++i) {
        points.push_back({"p" + std::to_string(i),
                          static_cast<double>(i),
                          static_cast<double>(i)});
    }
    EXPECT_EQ(pareto_front(points).size(), 10u);
}

}  // namespace
}  // namespace silicon::opt
