// Tests for the 1-D minimizers.

#include "opt/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::opt {
namespace {

TEST(GoldenSection, FindsParabolaMinimum) {
    const auto f = [](double x) { return (x - 2.5) * (x - 2.5) + 1.0; };
    const scalar_minimum m = golden_section(f, 0.0, 10.0);
    EXPECT_NEAR(m.x, 2.5, 1e-6);
    EXPECT_NEAR(m.value, 1.0, 1e-10);
    EXPECT_GT(m.evaluations, 2);
}

TEST(GoldenSection, BoundaryMinimum) {
    const auto f = [](double x) { return x; };
    const scalar_minimum m = golden_section(f, 1.0, 5.0);
    EXPECT_NEAR(m.x, 1.0, 1e-6);
}

TEST(GoldenSection, RejectsBadInterval) {
    const auto f = [](double x) { return x; };
    EXPECT_THROW((void)golden_section(f, 2.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)golden_section(f, 1.0, 2.0, 0.0), std::invalid_argument);
}

TEST(GridThenGolden, FindsGlobalMinimumOfBimodal) {
    // Two basins: local min near 1.2 (value ~ -0.5) and a deeper one near
    // 4.0 (value ~ -1.0); the grid must find the deep one.
    const auto f = [](double x) {
        return -0.5 * std::exp(-8.0 * (x - 1.2) * (x - 1.2)) -
               1.0 * std::exp(-8.0 * (x - 4.0) * (x - 4.0));
    };
    const scalar_minimum m = grid_then_golden(f, 0.0, 5.0, 128);
    EXPECT_NEAR(m.x, 4.0, 1e-4);
    EXPECT_NEAR(m.value, -1.0, 1e-6);
}

TEST(GridThenGolden, RejectsBadGrid) {
    const auto f = [](double x) { return x; };
    EXPECT_THROW((void)grid_then_golden(f, 0.0, 1.0, 2), std::invalid_argument);
}

TEST(GridThenGolden, RefinementNeverWorseThanGrid) {
    const auto f = [](double x) { return std::sin(5.0 * x) + 0.3 * x; };
    const scalar_minimum refined = grid_then_golden(f, 0.0, 6.0, 64);
    // Raw grid best:
    double grid_best = 1e300;
    for (int i = 0; i < 64; ++i) {
        grid_best = std::min(grid_best, f(0.0 + 6.0 * i / 63.0));
    }
    EXPECT_LE(refined.value, grid_best + 1e-12);
}

TEST(LocalMinima, FindsBothBasins) {
    const auto f = [](double x) {
        return -0.5 * std::exp(-8.0 * (x - 1.2) * (x - 1.2)) -
               1.0 * std::exp(-8.0 * (x - 4.0) * (x - 4.0));
    };
    const auto minima = local_minima_on_grid(f, 0.0, 5.0, 201);
    ASSERT_EQ(minima.size(), 2u);
    EXPECT_NEAR(minima[0].x, 1.2, 0.05);
    EXPECT_NEAR(minima[1].x, 4.0, 0.05);
}

TEST(LocalMinima, MonotoneFunctionHasEndpointMinimum) {
    const auto f = [](double x) { return x; };
    const auto minima = local_minima_on_grid(f, 0.0, 1.0, 11);
    ASSERT_EQ(minima.size(), 1u);
    EXPECT_NEAR(minima[0].x, 0.0, 1e-12);
}

TEST(LocalMinima, PlateauReportedOnce) {
    const auto f = [](double x) {
        return x < 1.0 ? 1.0 - x : (x > 2.0 ? x - 2.0 : 0.0);
    };
    const auto minima = local_minima_on_grid(f, 0.0, 3.0, 31);
    ASSERT_EQ(minima.size(), 1u);
    EXPECT_NEAR(minima[0].value, 0.0, 1e-12);
}

TEST(LocalMinima, RejectsBadInput) {
    const auto f = [](double x) { return x; };
    EXPECT_THROW((void)local_minima_on_grid(f, 0.0, 1.0, 2),
                 std::invalid_argument);
    EXPECT_THROW((void)local_minima_on_grid(f, 1.0, 0.0, 10),
                 std::invalid_argument);
}

// Property: golden section converges for a family of shifted quartics.
class GoldenSweep : public ::testing::TestWithParam<double> {};

TEST_P(GoldenSweep, ConvergesToShiftedMinimum) {
    const double shift = GetParam();
    const auto f = [shift](double x) {
        return std::pow(x - shift, 4.0) + 2.0;
    };
    const scalar_minimum m = golden_section(f, shift - 3.0, shift + 5.0);
    EXPECT_NEAR(m.x, shift, 1e-2);  // quartic is flat at the bottom
    EXPECT_NEAR(m.value, 2.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Shifts, GoldenSweep,
                         ::testing::Values(-2.0, 0.0, 0.7, 3.3, 10.0));

}  // namespace
}  // namespace silicon::opt
