// Tests for the elasticity / sensitivity analysis.

#include "opt/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::opt {
namespace {

TEST(Elasticities, PowerLawExponentsRecovered) {
    // C = a^2 * b^-1 * c^0.5: elasticities are exactly 2, -1, 0.5.
    const auto objective = [](const std::vector<double>& v) {
        return v[0] * v[0] / v[1] * std::sqrt(v[2]);
    };
    const std::vector<parameter> params = {
        {"a", 3.0}, {"b", 2.0}, {"c", 4.0}};
    const auto rows = elasticities(objective, params);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_NEAR(rows[0].value, 2.0, 1e-6);
    EXPECT_NEAR(rows[1].value, -1.0, 1e-6);
    EXPECT_NEAR(rows[2].value, 0.5, 1e-6);
}

TEST(Elasticities, ExponentialGivesValueTimesLog) {
    // C = exp(k*x): d ln C / d ln x = k*x.
    const double k = 0.7;
    const auto objective = [k](const std::vector<double>& v) {
        return std::exp(k * v[0]);
    };
    const std::vector<parameter> params = {{"x", 2.0}};
    const auto rows = elasticities(objective, params);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_NEAR(rows[0].value, k * 2.0, 1e-5);
}

TEST(Elasticities, SkipsZeroValuedParameters) {
    const auto objective = [](const std::vector<double>& v) {
        return 1.0 + v[0] + v[1];
    };
    const std::vector<parameter> params = {{"zero", 0.0}, {"one", 1.0}};
    const auto rows = elasticities(objective, params);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "one");
}

TEST(Elasticities, RejectsNonPositiveObjective) {
    const auto objective = [](const std::vector<double>&) { return -1.0; };
    const std::vector<parameter> params = {{"x", 1.0}};
    EXPECT_THROW((void)elasticities(objective, params), std::domain_error);
}

TEST(Elasticities, RejectsBadStep) {
    const auto objective = [](const std::vector<double>&) { return 1.0; };
    const std::vector<parameter> params = {{"x", 1.0}};
    EXPECT_THROW((void)elasticities(objective, params, 0.0),
                 std::invalid_argument);
    EXPECT_THROW((void)elasticities(objective, params, 0.9),
                 std::invalid_argument);
}

TEST(BatchedElasticities, MatchesScalarOverloadExactly) {
    // The batched overload sees [nominal, up_0, down_0, ...] in one
    // call; the reduction must be bit-identical to the scalar loop.
    const auto scalar = [](const std::vector<double>& v) {
        return v[0] * v[0] / v[1] * std::sqrt(v[3]);
    };
    const batch_objective batched = [&](
        const std::vector<std::vector<double>>& points,
        std::vector<double>& out) {
        out.resize(points.size());
        for (std::size_t k = 0; k < points.size(); ++k) {
            out[k] = scalar(points[k]);
        }
    };
    const std::vector<parameter> params = {
        {"a", 3.0}, {"b", 2.0}, {"zero", 0.0}, {"c", 4.0}};
    const auto expected = elasticities(scalar, params);
    const auto got = elasticities(batched, params);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].name, expected[i].name);
        EXPECT_EQ(got[i].nominal, expected[i].nominal);
        EXPECT_EQ(got[i].value, expected[i].value);  // bit-identical
    }
}

TEST(BatchedElasticities, ValidatesLikeScalarOverload) {
    const batch_objective negative = [](
        const std::vector<std::vector<double>>& points,
        std::vector<double>& out) {
        out.assign(points.size(), -1.0);
    };
    const std::vector<parameter> params = {{"x", 1.0}};
    EXPECT_THROW((void)elasticities(negative, params), std::domain_error);

    // A probe point going non-positive names the offending parameter.
    const batch_objective probe_fails = [](
        const std::vector<std::vector<double>>& points,
        std::vector<double>& out) {
        out.assign(points.size(), 1.0);
        out.back() = 0.0;  // down-probe of the last parameter
    };
    try {
        (void)elasticities(probe_fails, {{"a", 1.0}, {"b", 2.0}});
        FAIL() << "expected domain_error";
    } catch (const std::domain_error& e) {
        EXPECT_NE(std::string{e.what()}.find("'b'"), std::string::npos);
    }

    // Wrong cardinality from the batch callable is rejected.
    const batch_objective short_out = [](
        const std::vector<std::vector<double>>&,
        std::vector<double>& out) { out.assign(1, 1.0); };
    EXPECT_THROW((void)elasticities(short_out, params),
                 std::invalid_argument);
}

TEST(Ranked, SortsByMagnitude) {
    std::vector<elasticity> rows = {
        {"small", 0.1, 1.0}, {"large-negative", -3.0, 1.0},
        {"medium", 1.5, 1.0}};
    const auto sorted = ranked(rows);
    EXPECT_EQ(sorted[0].name, "large-negative");
    EXPECT_EQ(sorted[1].name, "medium");
    EXPECT_EQ(sorted[2].name, "small");
}

}  // namespace
}  // namespace silicon::opt
