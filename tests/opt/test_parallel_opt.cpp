// Thread-count invariance of the parallelized optimizers: every knob
// value must produce bit-identical results (the exec determinism
// contract extended to opt/ and the system optimizer).

#include "core/system_optimizer.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/wafer.hpp"
#include "opt/minimize.hpp"
#include "opt/partition.hpp"
#include "opt/sensitivity.hpp"
#include "yield/scaled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

constexpr unsigned kParallelisms[] = {1, 2, 4, 0};

double wavy(double x) { return std::sin(5.0 * x) + 0.1 * x * x; }

TEST(ParallelOpt, GridThenGoldenBitIdentical) {
    const silicon::opt::scalar_minimum serial =
        silicon::opt::grid_then_golden(wavy, -3.0, 3.0, 97, 1e-9, 1);
    for (const unsigned parallelism : kParallelisms) {
        const silicon::opt::scalar_minimum m = silicon::opt::grid_then_golden(
            wavy, -3.0, 3.0, 97, 1e-9, parallelism);
        EXPECT_EQ(m.x, serial.x) << parallelism;
        EXPECT_EQ(m.value, serial.value) << parallelism;
        EXPECT_EQ(m.evaluations, serial.evaluations) << parallelism;
    }
}

TEST(ParallelOpt, GridTieBreaksKeepEarliestSample) {
    // Constant function: every sample ties; the first grid point wins
    // regardless of thread count.
    const auto flat = [](double) { return 1.0; };
    for (const unsigned parallelism : kParallelisms) {
        const silicon::opt::scalar_minimum m =
            silicon::opt::grid_then_golden(flat, 0.0, 1.0, 33, 1e-9,
                                           parallelism);
        EXPECT_EQ(m.value, 1.0);
        EXPECT_LE(m.x, 1.0 / 32.0) << parallelism;
    }
}

TEST(ParallelOpt, LocalMinimaBitIdentical) {
    const std::vector<silicon::opt::scalar_minimum> serial =
        silicon::opt::local_minima_on_grid(wavy, -3.0, 3.0, 301, 1);
    ASSERT_GE(serial.size(), 2u);
    for (const unsigned parallelism : kParallelisms) {
        const std::vector<silicon::opt::scalar_minimum> minima =
            silicon::opt::local_minima_on_grid(wavy, -3.0, 3.0, 301,
                                               parallelism);
        ASSERT_EQ(minima.size(), serial.size()) << parallelism;
        for (std::size_t i = 0; i < minima.size(); ++i) {
            EXPECT_EQ(minima[i].x, serial[i].x);
            EXPECT_EQ(minima[i].value, serial[i].value);
        }
    }
}

TEST(ParallelOpt, GridObjectiveErrorIsThreadCountInvariant) {
    // The objective fails past x = 2; the same exception (from the
    // lowest failing sample) must surface at every parallelism.
    const auto partial = [](double x) -> double {
        if (x > 2.0) {
            throw std::domain_error("objective undefined past 2");
        }
        return x * x;
    };
    for (const unsigned parallelism : kParallelisms) {
        EXPECT_THROW((void)silicon::opt::grid_then_golden(
                         partial, 0.0, 3.0, 61, 1e-9, parallelism),
                     std::domain_error)
            << parallelism;
    }
}

TEST(ParallelOpt, ElasticitiesBitIdentical) {
    const auto objective = [](const std::vector<double>& v) {
        return v[0] * v[0] * v[1] / (1.0 + v[2]);
    };
    const std::vector<silicon::opt::parameter> params = {
        {"a", 2.0}, {"b", 3.0}, {"zero", 0.0}, {"c", 0.5}};

    const std::vector<silicon::opt::elasticity> serial =
        silicon::opt::elasticities(objective, params, 1e-4, 1);
    ASSERT_EQ(serial.size(), 3u);  // "zero" skipped
    for (const unsigned parallelism : kParallelisms) {
        const std::vector<silicon::opt::elasticity> rows =
            silicon::opt::elasticities(objective, params, 1e-4, parallelism);
        ASSERT_EQ(rows.size(), serial.size()) << parallelism;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            EXPECT_EQ(rows[i].name, serial[i].name);
            EXPECT_EQ(rows[i].value, serial[i].value);
            EXPECT_EQ(rows[i].nominal, serial[i].nominal);
        }
    }
}

TEST(ParallelOpt, ElasticitiesProbeErrorIsThreadCountInvariant) {
    // The probe for "bad" drives the objective non-positive; the error
    // must name that parameter at every thread count.
    const auto objective = [](const std::vector<double>& v) {
        return v[1] > 1.05 ? -1.0 : 1.0 + v[0];
    };
    const std::vector<silicon::opt::parameter> params = {{"good", 1.0},
                                                        {"bad", 1.0}};
    for (const unsigned parallelism : kParallelisms) {
        try {
            (void)silicon::opt::elasticities(objective, params, 0.1,
                                             parallelism);
            FAIL() << "expected domain_error at parallelism "
                   << parallelism;
        } catch (const std::domain_error& e) {
            EXPECT_NE(std::string{e.what()}.find("'bad'"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ParallelOpt, OptimizePartitionsBitIdentical) {
    const std::vector<silicon::opt::block> blocks = {
        {"cpu", 1e6, 150.0}, {"cache", 4e6, 60.0},  {"dsp", 5e5, 120.0},
        {"io", 2e5, 300.0},  {"analog", 1e5, 400.0}};

    // Pricing rewards homogeneous-density dies; drives a non-trivial
    // partition.
    const silicon::opt::die_cost_fn die_cost =
        [](const std::vector<silicon::opt::block>& group) {
            double transistors = 0.0;
            double lo = 1e9;
            double hi = 0.0;
            for (const silicon::opt::block& b : group) {
                transistors += b.transistors;
                lo = std::min(lo, b.design_density);
                hi = std::max(hi, b.design_density);
            }
            const double mismatch = hi / lo;
            return std::make_pair(1e-6 * transistors * mismatch + 2.0,
                                  0.5 * mismatch);
        };
    const silicon::opt::packaging_cost_fn packaging =
        [](std::size_t dies) { return 4.0 * static_cast<double>(dies); };

    const silicon::opt::partition_solution serial =
        silicon::opt::optimize_partitions(blocks, die_cost, packaging, 10, 1);
    for (const unsigned parallelism : kParallelisms) {
        const silicon::opt::partition_solution solution =
            silicon::opt::optimize_partitions(blocks, die_cost, packaging,
                                              10, parallelism);
        EXPECT_EQ(solution.total_cost, serial.total_cost) << parallelism;
        EXPECT_EQ(solution.die_cost_total, serial.die_cost_total);
        EXPECT_EQ(solution.packaging_cost, serial.packaging_cost);
        ASSERT_EQ(solution.dies.size(), serial.dies.size());
        for (std::size_t i = 0; i < solution.dies.size(); ++i) {
            EXPECT_EQ(solution.dies[i].block_indices,
                      serial.dies[i].block_indices);
            EXPECT_EQ(solution.dies[i].cost, serial.dies[i].cost);
            EXPECT_EQ(solution.dies[i].chosen_lambda,
                      serial.dies[i].chosen_lambda);
        }
    }
}

TEST(ParallelOpt, OptimizeSystemBitIdentical) {
    const std::vector<silicon::core::system_block> blocks = {
        {"cpu", 8e5, 180.0}, {"cache", 3e6, 60.0}, {"io", 1.5e5, 350.0}};

    silicon::core::system_optimization_config config{
        silicon::core::process_spec{
            silicon::cost::wafer_cost_model{silicon::dollars{500.0}, 1.8},
            silicon::geometry::wafer::six_inch(),
            silicon::yield::scaled_poisson_model::fig8_calibration(),
            silicon::geometry::gross_die_method::maly_rows},
        silicon::microns{0.3},
        silicon::microns{1.2},
        silicon::core::packaging_spec{},
        1e5,
        /*parallelism=*/1};
    const silicon::core::system_solution serial =
        silicon::core::optimize_system(blocks, config);

    for (const unsigned parallelism : kParallelisms) {
        config.parallelism = parallelism;
        const silicon::core::system_solution solution =
            silicon::core::optimize_system(blocks, config);
        EXPECT_EQ(solution.total_cost.value(), serial.total_cost.value())
            << parallelism;
        EXPECT_EQ(solution.silicon_cost.value(),
                  serial.silicon_cost.value());
        EXPECT_EQ(solution.monolithic_cost.value(),
                  serial.monolithic_cost.value());
        ASSERT_EQ(solution.dies.size(), serial.dies.size());
        for (std::size_t i = 0; i < solution.dies.size(); ++i) {
            EXPECT_EQ(solution.dies[i].lambda.value(),
                      serial.dies[i].lambda.value());
            EXPECT_EQ(solution.dies[i].cost_per_good_die.value(),
                      serial.dies[i].cost_per_good_die.value());
            EXPECT_EQ(solution.dies[i].block_names,
                      serial.dies[i].block_names);
        }
    }
}

}  // namespace
