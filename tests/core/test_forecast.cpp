// Tests for the calendar-time transistor cost forecast.

#include "core/forecast.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::core {
namespace {

scenario1 memory_scenario() {
    scenario1 s;
    s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.2};
    return s;
}

scenario2 logic_scenario(double x = 2.0) {
    scenario2 s;
    s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, x};
    return s;
}

TEST(Forecast, CoversTheRequestedYears) {
    const transistor_cost_forecast f = forecast_transistor_cost(
        memory_scenario(), logic_scenario(), 1986, 1998);
    ASSERT_FALSE(f.points.empty());
    EXPECT_GE(f.points.front().year, 1986);
    EXPECT_LE(f.points.back().year, 1998);
    // Lambda falls over time along the Fig. 1 trend.
    EXPECT_GT(f.points.front().lambda.value(),
              f.points.back().lambda.value());
}

TEST(Forecast, MemoryCostKeepsFalling) {
    const transistor_cost_forecast f = forecast_transistor_cost(
        memory_scenario(), logic_scenario(), 1986, 2000);
    for (std::size_t i = 1; i < f.points.size(); ++i) {
        EXPECT_LT(f.points[i].memory_ctr.value(),
                  f.points[i - 1].memory_ctr.value());
    }
    EXPECT_LT(f.memory_cagr, 0.0);
}

TEST(Forecast, LogicCostReversesWithinTheNineties) {
    // With the default X schedule (benign 1.3 historically, ramping to
    // 2.2 through the early 90s) the logic decline must reverse inside
    // the ramp window -- the paper's mid-90s warning.
    const transistor_cost_forecast f = forecast_transistor_cost(
        memory_scenario(), logic_scenario(), 1980, 2000, x_schedule{});
    ASSERT_TRUE(f.logic_reversal_year.has_value());
    EXPECT_GE(*f.logic_reversal_year, 1988);
    EXPECT_LE(*f.logic_reversal_year, 1997);
    EXPECT_GT(f.logic_cagr, f.memory_cagr);
}

TEST(Forecast, XScheduleInterpolatesLinearly) {
    const x_schedule schedule;
    EXPECT_DOUBLE_EQ(schedule.at(1985), 1.3);
    EXPECT_DOUBLE_EQ(schedule.at(1990), 1.3);
    EXPECT_DOUBLE_EQ(schedule.at(1996), 2.2);
    EXPECT_DOUBLE_EQ(schedule.at(2000), 2.2);
    EXPECT_NEAR(schedule.at(1993), 1.3 + 0.5 * 0.9, 1e-12);
}

TEST(Forecast, GentleXRampDelaysTheReversal) {
    x_schedule harsh_ramp;
    harsh_ramp.x_late = 2.4;
    harsh_ramp.ramp_start = 1988;
    harsh_ramp.ramp_end = 1992;
    x_schedule gentle_ramp;
    gentle_ramp.x_late = 1.9;
    gentle_ramp.ramp_start = 1992;
    gentle_ramp.ramp_end = 1998;
    const transistor_cost_forecast harsh = forecast_transistor_cost(
        memory_scenario(), logic_scenario(), 1980, 2000, harsh_ramp);
    const transistor_cost_forecast gentle = forecast_transistor_cost(
        memory_scenario(), logic_scenario(), 1980, 2000, gentle_ramp);
    ASSERT_TRUE(harsh.logic_reversal_year.has_value());
    if (gentle.logic_reversal_year.has_value()) {
        EXPECT_GT(*gentle.logic_reversal_year,
                  *harsh.logic_reversal_year);
    }
    EXPECT_GT(harsh.logic_cagr, gentle.logic_cagr);
}

TEST(Forecast, RejectsEmptyRange) {
    EXPECT_THROW((void)forecast_transistor_cost(
                     memory_scenario(), logic_scenario(), 1995, 1990),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::core
