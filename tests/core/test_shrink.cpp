// Tests for the product shrink analysis.

#include "core/shrink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::core {
namespace {

process_spec reference_process(double x = 1.4) {
    return process_spec{
        cost::wafer_cost_model{dollars{700.0}, x},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.8}},
        geometry::gross_die_method::maly_rows};
}

product_spec big_product() {
    product_spec p;
    p.name = "uP";
    p.transistors = 3.0e6;
    p.design_density = 150.0;
    p.feature_size = microns{0.8};
    return p;
}

TEST(Shrink, FactorsAreConsistent) {
    const shrink_analysis a = analyze_shrink(
        reference_process(), big_product(), microns{0.6});
    EXPECT_NEAR(a.area_ratio, 0.36 / 0.64, 1e-9);
    EXPECT_GT(a.gross_die_ratio, 1.5);  // more, smaller dies
    EXPECT_NEAR(a.wafer_cost_ratio, std::pow(1.4, 1.0), 1e-9);
    EXPECT_GT(a.yield_ratio, 1.0);  // reference model: smaller die yields
    EXPECT_NEAR(a.cost_ratio,
                a.after.cost_per_good_die.value() /
                    a.before.cost_per_good_die.value(),
                1e-12);
}

TEST(Shrink, PaysAtModestXUnderReferenceYield) {
    const shrink_analysis a = analyze_shrink(
        reference_process(1.4), big_product(), microns{0.6});
    EXPECT_TRUE(a.shrink_pays);
    EXPECT_LT(a.cost_ratio, 0.75);
}

TEST(Shrink, StopsPayingAtHighX) {
    // The breakeven for this die sits near X = 2.5; above it the wafer
    // cost escalation eats the whole geometric gain.
    const shrink_analysis a = analyze_shrink(
        reference_process(2.7), big_product(), microns{0.6});
    EXPECT_FALSE(a.shrink_pays);
    EXPECT_GT(a.cost_ratio, 1.0);
}

TEST(Shrink, BreakevenXSeparatesTheRegimes) {
    // The break-even X computed at one X must predict the flip.
    const shrink_analysis cheap = analyze_shrink(
        reference_process(1.4), big_product(), microns{0.6});
    const double x_be = cheap.breakeven_x;
    EXPECT_GT(x_be, 1.4);  // pays at 1.4, so breakeven is above

    const shrink_analysis just_below = analyze_shrink(
        reference_process(x_be * 0.98), big_product(), microns{0.6});
    const shrink_analysis just_above = analyze_shrink(
        reference_process(x_be * 1.02), big_product(), microns{0.6});
    EXPECT_TRUE(just_below.shrink_pays);
    EXPECT_FALSE(just_above.shrink_pays);
}

TEST(Shrink, ScaledYieldPenalizesTheShrink) {
    // Under Eq. (7) the shrink walks into a denser killer-defect
    // population: the yield ratio is < 1 and the payback worse than
    // under the reference model.
    process_spec scaled{
        cost::wafer_cost_model{dollars{700.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model{0.2, 4.07},
        geometry::gross_die_method::maly_rows};
    product_spec p = big_product();
    p.transistors = 5e5;
    p.design_density = 152.0;
    const shrink_analysis scaled_case =
        analyze_shrink(scaled, p, microns{0.6});
    const shrink_analysis reference_case =
        analyze_shrink(reference_process(1.4), p, microns{0.6});
    EXPECT_LT(scaled_case.yield_ratio, 1.0);
    EXPECT_GT(scaled_case.cost_ratio, reference_case.cost_ratio);
}

TEST(Shrink, RejectsBadTargets) {
    EXPECT_THROW((void)analyze_shrink(reference_process(), big_product(),
                                      microns{0.8}),
                 std::invalid_argument);
    EXPECT_THROW((void)analyze_shrink(reference_process(), big_product(),
                                      microns{0.9}),
                 std::invalid_argument);
    EXPECT_THROW((void)analyze_shrink(reference_process(), big_product(),
                                      microns{0.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::core
