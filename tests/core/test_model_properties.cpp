// Property tests: monotonicity and scaling invariants of the integrated
// cost model across the Table-3 parameter envelope.  These are the
// contracts a downstream user would assume when sweeping the model, so
// they are asserted over a parameter grid rather than at single points.

#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace silicon::core {
namespace {

cost_breakdown evaluate(double c0, double x, double y0, double lambda,
                        double n_tr, double dd,
                        double wafer_radius_cm = 7.5) {
    process_spec process{
        cost::wafer_cost_model{dollars{c0}, x},
        geometry::wafer{centimeters{wafer_radius_cm}},
        yield::reference_die_yield{probability{y0}},
        geometry::gross_die_method::maly_rows};
    product_spec product;
    product.name = "probe";
    product.transistors = n_tr;
    product.design_density = dd;
    product.feature_size = microns{lambda};
    return cost_model{process}.evaluate(product);
}

// Grid over (X, Y0, lambda) at Table-3-like product scale.
class ModelGrid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
protected:
    static constexpr double n_tr = 2.0e6;
    static constexpr double dd = 150.0;
};

TEST_P(ModelGrid, CostLinearInC0) {
    const auto [x, y0, lambda] = GetParam();
    const double base =
        evaluate(500.0, x, y0, lambda, n_tr, dd)
            .cost_per_transistor.value();
    const double doubled =
        evaluate(1000.0, x, y0, lambda, n_tr, dd)
            .cost_per_transistor.value();
    EXPECT_NEAR(doubled / base, 2.0, 1e-12);
}

TEST_P(ModelGrid, CostDecreasesInY0) {
    const auto [x, y0, lambda] = GetParam();
    const double worse =
        evaluate(500.0, x, y0 - 0.1, lambda, n_tr, dd)
            .cost_per_transistor.value();
    const double better =
        evaluate(500.0, x, y0, lambda, n_tr, dd)
            .cost_per_transistor.value();
    EXPECT_LT(better, worse);
}

TEST_P(ModelGrid, CostIncreasesInXBelowOneMicron) {
    const auto [x, y0, lambda] = GetParam();
    const double base =
        evaluate(500.0, x, y0, lambda, n_tr, dd)
            .cost_per_transistor.value();
    const double escalated =
        evaluate(500.0, x + 0.2, y0, lambda, n_tr, dd)
            .cost_per_transistor.value();
    EXPECT_GT(escalated, base);
}

TEST_P(ModelGrid, BiggerWaferNeverCostsMorePerTransistor) {
    const auto [x, y0, lambda] = GetParam();
    const double six =
        evaluate(500.0, x, y0, lambda, n_tr, dd, 7.5)
            .cost_per_transistor.value();
    const double eight =
        evaluate(500.0, x, y0, lambda, n_tr, dd, 10.0)
            .cost_per_transistor.value();
    // Same C_0 assumed (the paper folds the size premium into X):
    // geometry alone can only help.
    EXPECT_LE(eight, six * 1.0001);
}

TEST_P(ModelGrid, YieldMatchesClosedForm) {
    const auto [x, y0, lambda] = GetParam();
    const cost_breakdown b = evaluate(500.0, x, y0, lambda, n_tr, dd);
    const double area_cm2 = n_tr * dd * lambda * lambda * 1e-8;
    EXPECT_NEAR(b.yield.value(), std::pow(y0, area_cm2), 1e-12);
}

TEST_P(ModelGrid, DoublingDensityDoublesDieArea) {
    const auto [x, y0, lambda] = GetParam();
    const cost_breakdown thin = evaluate(500.0, x, y0, lambda, n_tr, dd);
    const cost_breakdown fat =
        evaluate(500.0, x, y0, lambda, n_tr, 2.0 * dd);
    EXPECT_NEAR(fat.die_area.value() / thin.die_area.value(), 2.0,
                1e-12);
    // And the cost per transistor strictly rises (more silicon, lower
    // yield, fewer dies).
    EXPECT_GT(fat.cost_per_transistor.value(),
              thin.cost_per_transistor.value());
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, ModelGrid,
    ::testing::Combine(::testing::Values(1.2, 1.8, 2.4),   // X
                       ::testing::Values(0.6, 0.9),        // Y0
                       ::testing::Values(0.35, 0.65, 0.8)  // lambda
                       ));

TEST(ModelShape, AspectRatioOnlyChangesPlacement) {
    // A 2:1 die has the same area and yield as the square one; only
    // N_ch moves (and not by much on a 6-inch wafer for mid-size dies).
    process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.8}},
        geometry::gross_die_method::maly_rows};
    product_spec square;
    square.transistors = 1.5e6;
    square.design_density = 150.0;
    square.feature_size = microns{0.7};
    product_spec wide = square;
    wide.die_aspect_ratio = 2.0;

    const cost_model model{process};
    const cost_breakdown sq = model.evaluate(square);
    const cost_breakdown wd = model.evaluate(wide);
    EXPECT_NEAR(sq.die_area.value(), wd.die_area.value(), 1e-9);
    EXPECT_DOUBLE_EQ(sq.yield.value(), wd.yield.value());
    EXPECT_NEAR(static_cast<double>(wd.gross_dies_per_wafer) /
                    static_cast<double>(sq.gross_dies_per_wafer),
                1.0, 0.15);
}

TEST(ModelShape, ExtremeAspectRatioLosesDies) {
    process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.8}},
        geometry::gross_die_method::maly_rows};
    product_spec square;
    square.transistors = 1.5e6;
    square.design_density = 150.0;
    square.feature_size = microns{0.7};
    product_spec sliver = square;
    sliver.die_aspect_ratio = 12.0;

    const cost_model model{process};
    EXPECT_LT(model.evaluate(sliver).gross_dies_per_wafer,
              model.evaluate(square).gross_dies_per_wafer);
}

}  // namespace
}  // namespace silicon::core
