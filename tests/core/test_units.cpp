// Unit tests for the strong unit types (core/units.hpp).

#include "core/units.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon {
namespace {

TEST(Microns, StoresValue) {
    EXPECT_DOUBLE_EQ(microns{0.8}.value(), 0.8);
}

TEST(Microns, DefaultIsZero) {
    EXPECT_DOUBLE_EQ(microns{}.value(), 0.0);
}

TEST(Microns, RejectsNegative) {
    EXPECT_THROW((void)microns{-0.1}, std::invalid_argument);
}

TEST(Microns, RejectsNaN) {
    EXPECT_THROW((void)microns{std::nan("")}, std::invalid_argument);
}

TEST(Microns, RejectsInfinity) {
    EXPECT_THROW((void)microns{std::numeric_limits<double>::infinity()},
                 std::invalid_argument);
}

TEST(Microns, ArithmeticWithinType) {
    const microns a{0.5};
    const microns b{0.3};
    EXPECT_DOUBLE_EQ((a + b).value(), 0.8);
    EXPECT_DOUBLE_EQ((a - b).value(), 0.2);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 1.0);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 1.0);
    EXPECT_DOUBLE_EQ((a / 2.0).value(), 0.25);
    EXPECT_DOUBLE_EQ(a / b, 0.5 / 0.3);
}

TEST(Microns, SubtractionBelowZeroThrows) {
    EXPECT_THROW((void)(microns{0.1} - microns{0.2}),
                 std::invalid_argument);
}

TEST(Microns, Ordering) {
    EXPECT_LT(microns{0.25}, microns{0.8});
    EXPECT_EQ(microns{0.5}, microns{0.5});
}

TEST(LengthConversions, RoundTrip) {
    const microns um{1500.0};
    EXPECT_DOUBLE_EQ(um.to_millimeters().value(), 1.5);
    EXPECT_DOUBLE_EQ(um.to_millimeters().to_microns().value(), 1500.0);
    const millimeters mm{25.0};
    EXPECT_DOUBLE_EQ(mm.to_centimeters().value(), 2.5);
    EXPECT_DOUBLE_EQ(centimeters{7.5}.to_millimeters().value(), 75.0);
}

TEST(AreaConversions, RoundTrip) {
    const square_millimeters mm2{250.0};
    EXPECT_DOUBLE_EQ(mm2.to_square_centimeters().value(), 2.5);
    EXPECT_DOUBLE_EQ(
        square_centimeters{1.0}.to_square_millimeters().value(), 100.0);
}

TEST(AreaHelpers, RectangleArea) {
    EXPECT_DOUBLE_EQ(
        area_of(millimeters{10.0}, millimeters{15.0}).value(), 150.0);
}

TEST(AreaHelpers, DiscAreaOfSixInchWafer) {
    // pi * 7.5^2 = 176.714...
    EXPECT_NEAR(disc_area(centimeters{7.5}).value(), 176.7146, 1e-3);
}

TEST(Dollars, AllowsNegative) {
    EXPECT_DOUBLE_EQ(dollars{-5.0}.value(), -5.0);
}

TEST(Dollars, RejectsNaN) {
    EXPECT_THROW((void)dollars{std::nan("")}, std::invalid_argument);
}

TEST(Dollars, Arithmetic) {
    const dollars a{700.0};
    const dollars b{300.0};
    EXPECT_DOUBLE_EQ((a + b).value(), 1000.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 400.0);
    EXPECT_DOUBLE_EQ((-a).value(), -700.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 1400.0);
    EXPECT_DOUBLE_EQ((a / 2.0).value(), 350.0);
    EXPECT_DOUBLE_EQ(a / b, 7.0 / 3.0);
}

TEST(Probability, AcceptsBounds) {
    EXPECT_DOUBLE_EQ(probability{0.0}.value(), 0.0);
    EXPECT_DOUBLE_EQ(probability{1.0}.value(), 1.0);
}

TEST(Probability, RejectsOutOfRange) {
    EXPECT_THROW((void)probability{-0.01}, std::invalid_argument);
    EXPECT_THROW((void)probability{1.01}, std::invalid_argument);
    EXPECT_THROW((void)probability{std::nan("")}, std::invalid_argument);
}

TEST(Probability, ClampedSaturates) {
    EXPECT_DOUBLE_EQ(probability::clamped(-3.0).value(), 0.0);
    EXPECT_DOUBLE_EQ(probability::clamped(42.0).value(), 1.0);
    EXPECT_DOUBLE_EQ(probability::clamped(0.25).value(), 0.25);
    EXPECT_THROW((void)probability::clamped(std::nan("")), std::invalid_argument);
}

TEST(Probability, ComplementAndProduct) {
    const probability y{0.7};
    EXPECT_NEAR(y.complement().value(), 0.3, 1e-15);
    EXPECT_NEAR((y * probability{0.5}).value(), 0.35, 1e-15);
}

}  // namespace
}  // namespace silicon
