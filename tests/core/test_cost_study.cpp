// Tests for the cost study document generator.

#include "core/cost_study.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace silicon::core {
namespace {

process_spec study_process() {
    return process_spec{
        cost::wafer_cost_model{dollars{700.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.9}},
        geometry::gross_die_method::maly_rows};
}

product_spec study_product() {
    product_spec p;
    p.name = "BiCMOS uP";
    p.transistors = 3.1e6;
    p.design_density = 150.0;
    p.feature_size = microns{0.8};
    return p;
}

TEST(CostStudy, ContainsEverySection) {
    const std::string md =
        render_cost_study(study_process(), study_product());
    EXPECT_NE(md.find("# Cost study: BiCMOS uP"), std::string::npos);
    EXPECT_NE(md.find("## Inputs"), std::string::npos);
    EXPECT_NE(md.find("## Silicon cost (Eq. 1)"), std::string::npos);
    EXPECT_NE(md.find("## Wafer map"), std::string::npos);
    EXPECT_NE(md.find("## Feature size sensitivity"), std::string::npos);
    EXPECT_NE(md.find("## Ranked cost drivers"), std::string::npos);
    EXPECT_NE(md.find("## Test economics"), std::string::npos);
    EXPECT_NE(md.find("## Packaged part"), std::string::npos);
}

TEST(CostStudy, ReportsTheTable3Row1Number) {
    const std::string md =
        render_cost_study(study_process(), study_product());
    // 9.40 micro-dollars per transistor, as in Table 3 row 1.
    EXPECT_NE(md.find("9.40"), std::string::npos);
}

TEST(CostStudy, OptionalSectionsCanBeDisabled) {
    cost_study_options options;
    options.include_test = false;
    options.include_packaging = false;
    options.include_lambda_sweep = false;
    options.include_drivers = false;
    const std::string md =
        render_cost_study(study_process(), study_product(), options);
    EXPECT_EQ(md.find("## Test economics"), std::string::npos);
    EXPECT_EQ(md.find("## Packaged part"), std::string::npos);
    EXPECT_EQ(md.find("## Feature size sensitivity"), std::string::npos);
    EXPECT_EQ(md.find("## Ranked cost drivers"), std::string::npos);
    EXPECT_NE(md.find("## Silicon cost"), std::string::npos);
}

TEST(CostStudy, DriversSkippedForScaledYieldForm) {
    process_spec scaled = study_process();
    scaled.yield = yield::scaled_poisson_model::fig8_calibration();
    product_spec small = study_product();
    small.transistors = 2e5;  // keep the scaled yield alive
    small.design_density = 152.0;
    const std::string md = render_cost_study(scaled, small);
    EXPECT_EQ(md.find("## Ranked cost drivers"), std::string::npos);
    EXPECT_NE(md.find("## Silicon cost"), std::string::npos);
}

TEST(CostStudy, WriteCreatesFile) {
    const std::string path = ::testing::TempDir() + "/study.md";
    write_cost_study(path, study_process(), study_product());
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_EQ(first_line, "# Cost study: BiCMOS uP");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace silicon::core
