// Tests for the integrated Eq. (1) cost model.

#include "core/cost_model.hpp"
#include "opt/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::core {
namespace {

process_spec pentium_process() {
    return process_spec{
        cost::wafer_cost_model{dollars{700.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.9}},
        geometry::gross_die_method::maly_rows};
}

product_spec pentium_product() {
    product_spec p;
    p.name = "BiCMOS uP";
    p.transistors = 3.1e6;
    p.design_density = 150.0;
    p.feature_size = microns{0.8};
    return p;
}

TEST(CostModel, Table3Row1FullBreakdown) {
    const cost_model model{pentium_process()};
    const cost_breakdown b = model.evaluate(pentium_product());

    EXPECT_NEAR(b.die_area.value(), 297.6, 1e-9);
    EXPECT_EQ(b.gross_dies_per_wafer, 46);
    EXPECT_NEAR(b.yield.value(), std::pow(0.9, 2.976), 1e-9);
    EXPECT_NEAR(b.wafer_cost.value(), 980.0, 1e-9);
    // The paper prints 9.40e-6 $ for this row.
    EXPECT_NEAR(b.cost_per_transistor_micro_dollars(), 9.40, 0.05);
}

TEST(CostModel, BreakdownInternallyConsistent) {
    const cost_model model{pentium_process()};
    const cost_breakdown b = model.evaluate(pentium_product());
    EXPECT_NEAR(b.good_dies_per_wafer,
                b.gross_dies_per_wafer * b.yield.value(), 1e-9);
    EXPECT_NEAR(b.cost_per_good_die.value(),
                b.wafer_cost.value() / b.good_dies_per_wafer, 1e-12);
    EXPECT_NEAR(b.cost_per_transistor.value(),
                b.cost_per_good_die.value() / 3.1e6, 1e-15);
}

TEST(CostModel, OverheadRaisesCost) {
    const cost_model model{pentium_process()};
    economics_spec economics;
    economics.overhead = dollars{10e6};
    economics.volume_wafers = 10000.0;
    const cost_breakdown with = model.evaluate(pentium_product(), economics);
    const cost_breakdown without = model.evaluate(pentium_product());
    EXPECT_NEAR(with.wafer_cost.value() - without.wafer_cost.value(),
                1000.0, 1e-9);
    EXPECT_GT(with.cost_per_transistor.value(),
              without.cost_per_transistor.value());
}

TEST(CostModel, HugeDieThrows) {
    const cost_model model{pentium_process()};
    product_spec monster = pentium_product();
    monster.transistors = 1e9;  // ~96000 mm^2 die
    EXPECT_THROW((void)model.evaluate(monster), std::domain_error);
}

TEST(CostModel, GrossDieMethodMatters) {
    process_spec area = pentium_process();
    area.dies_per_wafer_method = geometry::gross_die_method::area_ratio;
    const cost_breakdown via_rows =
        cost_model{pentium_process()}.evaluate(pentium_product());
    const cost_breakdown via_area =
        cost_model{area}.evaluate(pentium_product());
    // The area-ratio bound always dominates the row count, and the cost
    // moves the opposite way.
    EXPECT_GT(via_area.gross_dies_per_wafer,
              via_rows.gross_dies_per_wafer);
    EXPECT_LT(via_area.cost_per_transistor.value(),
              via_rows.cost_per_transistor.value());
}

TEST(CostModel, CostPerTransistorShortcutMatchesBreakdown) {
    const cost_model model{pentium_process()};
    EXPECT_DOUBLE_EQ(
        model.cost_per_transistor(pentium_product()).value(),
        model.evaluate(pentium_product()).cost_per_transistor.value());
}

TEST(OptimalFeatureSize, Fig8LocalOptimaFromDieQuantization) {
    // Fig. 8: "there are a number of local optima".  Over the paper's
    // plotted feature-size window the smooth part of C_tr(lambda) is
    // monotone, but the integer dies-per-wafer count N_ch jumps at
    // discrete lambdas and carves local minima into the curve.
    process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const cost_model model{process};

    product_spec p;
    p.name = "mid-size ASIC";
    p.transistors = 1e6;
    p.design_density = 152.0;

    const auto cost_at = [&](double lambda) {
        product_spec probe = p;
        probe.feature_size = microns{lambda};
        return model.cost_per_transistor(probe).value();
    };
    const auto minima =
        opt::local_minima_on_grid(cost_at, 0.5, 1.0, 400);
    EXPECT_GE(minima.size(), 2u);

    // And the global optimum in the window beats both window edges.
    const microns best =
        model.optimal_feature_size(p, microns{0.5}, microns{1.0});
    const double at_best = [&] {
        product_spec probe = p;
        probe.feature_size = best;
        return model.cost_per_transistor(probe).value();
    }();
    EXPECT_LE(at_best, cost_at(0.5));
    EXPECT_LE(at_best, cost_at(1.0));
}

TEST(OptimalFeatureSize, LargerDiesPreferCoarserOrEqualLambda) {
    // Sec. IV.B: lambda_opt depends on die size.  Under the scaled yield
    // model, bigger dies are hit harder by defect scaling, so their
    // optimum shifts to coarser features (or stays equal).
    process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const cost_model model{process};

    product_spec small;
    small.transistors = 2e5;
    small.design_density = 152.0;
    product_spec large;
    large.transistors = 2e6;
    large.design_density = 152.0;

    const double small_opt =
        model.optimal_feature_size(small, microns{0.3}, microns{1.5})
            .value();
    const double large_opt =
        model.optimal_feature_size(large, microns{0.3}, microns{1.5})
            .value();
    EXPECT_GE(large_opt, small_opt - 1e-6);
}

TEST(OptimalFeatureSize, RejectsBadInterval) {
    const cost_model model{pentium_process()};
    EXPECT_THROW((void)model.optimal_feature_size(pentium_product(),
                                            microns{0.8}, microns{0.5}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::core
