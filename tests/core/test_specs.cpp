// Tests for the core input specifications.

#include "core/specs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::core {
namespace {

TEST(ProductSpec, DieAreaFollowsEq5) {
    product_spec p;
    p.transistors = 3.1e6;
    p.design_density = 150.0;
    p.feature_size = microns{0.8};
    // 3.1e6 * 150 * 0.64 um^2 = 297.6 mm^2.
    EXPECT_NEAR(p.die_area().value(), 297.6, 1e-9);
}

TEST(ProductSpec, SquareDieByDefault) {
    product_spec p;
    p.transistors = 1e6;
    p.design_density = 100.0;
    p.feature_size = microns{1.0};
    const geometry::die d = p.make_die();
    EXPECT_NEAR(d.aspect_ratio(), 1.0, 1e-12);
    EXPECT_NEAR(d.area().value(), p.die_area().value(), 1e-9);
}

TEST(ProductSpec, AspectRatioPreservesArea) {
    product_spec p;
    p.transistors = 1e6;
    p.design_density = 100.0;
    p.feature_size = microns{1.0};
    p.die_aspect_ratio = 2.0;
    const geometry::die d = p.make_die();
    EXPECT_NEAR(d.aspect_ratio(), 2.0, 1e-12);
    EXPECT_NEAR(d.area().value(), p.die_area().value(), 1e-9);
}

TEST(ProductSpec, RejectsBadInputs) {
    product_spec p;
    p.transistors = 0.0;
    EXPECT_THROW((void)p.die_area(), std::invalid_argument);
    p.transistors = 1e6;
    p.design_density = 0.0;
    EXPECT_THROW((void)p.die_area(), std::invalid_argument);
    p.design_density = 100.0;
    p.die_aspect_ratio = 0.0;
    EXPECT_THROW((void)p.make_die(), std::invalid_argument);
}

process_spec reference_process(yield_spec y) {
    return process_spec{
        cost::wafer_cost_model{dollars{500.0}, 1.8},
        geometry::wafer::six_inch(), std::move(y),
        geometry::gross_die_method::maly_rows};
}

TEST(ProcessSpec, ReferenceYieldVariant) {
    const process_spec p = reference_process(
        yield::reference_die_yield{probability{0.7}});
    EXPECT_NEAR(
        p.evaluate_yield(square_millimeters{100.0}, microns{0.8}).value(),
        0.7, 1e-12);
}

TEST(ProcessSpec, ScaledPoissonVariantUsesLambda) {
    const process_spec p = reference_process(
        yield::scaled_poisson_model{1.72, 4.07});
    const double y08 =
        p.evaluate_yield(square_millimeters{50.0}, microns{0.8}).value();
    const double y05 =
        p.evaluate_yield(square_millimeters{50.0}, microns{0.5}).value();
    EXPECT_GT(y08, y05);  // same area, finer feature -> worse yield
}

TEST(ProcessSpec, FixedProbabilityVariant) {
    const process_spec p = reference_process(probability{1.0});
    EXPECT_DOUBLE_EQ(
        p.evaluate_yield(square_millimeters{500.0}, microns{0.5}).value(),
        1.0);
}

TEST(EconomicsSpec, HighVolumeDefaults) {
    const economics_spec e = economics_spec::high_volume();
    EXPECT_DOUBLE_EQ(e.overhead.value(), 0.0);
}

}  // namespace
}  // namespace silicon::core
