// Tests for the DFT/BIST business case (Sec. VI).

#include "core/dft_case.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::core {
namespace {

process_spec default_process() {
    return process_spec{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
}

product_spec default_product() {
    product_spec p;
    p.name = "ASIC";
    p.transistors = 1.5e6;
    p.design_density = 200.0;
    p.feature_size = microns{0.65};
    return p;
}

cost::tester_spec default_tester() {
    cost::tester_spec tester;
    tester.rate_per_hour = dollars{1800.0};
    tester.seconds_fixed = 0.5;
    tester.seconds_per_megavector = 1.0;
    return tester;
}

cost::test_program default_program() {
    cost::test_program program;
    program.transistors = 1.5e6;
    program.fault_coverage = 0.90;
    program.vectors_per_kilotransistor = 4.0;
    return program;
}

TEST(DftResponse, SaturatingCoverage) {
    const dft_response r;
    EXPECT_DOUBLE_EQ(r.coverage(0.0), r.base_coverage);
    EXPECT_LT(r.coverage(1.0), r.max_coverage);
    EXPECT_GT(r.coverage(0.10), r.coverage(0.02));
    // Half the gap closed at the 50% point.
    EXPECT_NEAR(r.coverage(r.coverage_area_50),
                r.base_coverage +
                    0.5 * (r.max_coverage - r.base_coverage),
                1e-12);
}

TEST(DftResponse, CompressionStartsAtOne) {
    const dft_response r;
    EXPECT_DOUBLE_EQ(r.compression(0.0), 1.0);
    EXPECT_GT(r.compression(0.2), 2.0);
    EXPECT_THROW((void)r.coverage(-0.1), std::invalid_argument);
}

TEST(DftCase, SweepCoversRequestedOverheads) {
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{300.0}, {}, {0.0, 0.05, 0.10});
    ASSERT_EQ(result.sweep.size(), 3u);
    EXPECT_DOUBLE_EQ(result.no_dft.area_overhead, 0.0);
}

TEST(DftCase, OverheadRaisesSiliconCost) {
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{300.0});
    const auto& sweep = result.sweep;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].silicon_per_good_die.value(),
                  sweep[i - 1].silicon_per_good_die.value());
        EXPECT_LE(sweep[i].shipped_defect_level.value(),
                  sweep[i - 1].shipped_defect_level.value());
    }
}

TEST(DftCase, ExpensiveEscapesJustifyDft) {
    // With $1000 field cost per escape the optimum invests real area.
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{1000.0});
    EXPECT_GT(result.best.area_overhead, 0.0);
    EXPECT_GT(result.saving_fraction, 0.0);
}

TEST(DftCase, FreeEscapesMakeDftAPureCost) {
    // With no field cost, escapes are free, and DFT only helps through
    // tester-time compression; savings are small or zero, and the best
    // overhead is small.
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{0.0});
    EXPECT_LE(result.best.area_overhead, 0.05);
}

TEST(DftCase, TotalsAreComposedCorrectly) {
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{300.0});
    for (const dft_point& point : result.sweep) {
        EXPECT_NEAR(point.total_per_shipped_die.value(),
                    point.silicon_per_good_die.value() +
                        point.test_per_shipped_die.value() +
                        point.escape_cost.value(),
                    1e-9);
    }
}

TEST(DftCase, BestIsMinimumOfSweep) {
    const dft_case_result result = evaluate_dft_case(
        default_process(), default_product(), default_tester(),
        default_program(), dollars{500.0});
    for (const dft_point& point : result.sweep) {
        EXPECT_GE(point.total_per_shipped_die.value(),
                  result.best.total_per_shipped_die.value() - 1e-12);
    }
}

}  // namespace
}  // namespace silicon::core
