// Tests for Scenarios #1 and #2 (Eqs. 8 and 9, Figs. 6 and 7).

#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::core {
namespace {

TEST(Scenario1, CostFallsAsFeatureShrinks) {
    // The Fig. 6 headline: under optimistic assumptions C_tr decreases
    // monotonically with lambda for every X in 1.1-1.3.
    for (double x : {1.1, 1.2, 1.3}) {
        scenario1 s;
        s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, x};
        double previous = 1e300;
        for (double lambda = 1.0; lambda >= 0.25; lambda -= 0.05) {
            const double c =
                s.cost_per_transistor(microns{lambda}).value();
            EXPECT_LT(c, previous) << "X=" << x << " lambda=" << lambda;
            previous = c;
        }
    }
}

TEST(Scenario1, HandComputedValue) {
    // At lambda = 1 um: C_tr = 500 * 30 * 1 um^2 / (pi * 7.5cm^2 in um^2).
    scenario1 s;
    const double wafer_um2 = M_PI * 7.5 * 7.5 * 1e8;
    EXPECT_NEAR(s.cost_per_transistor(microns{1.0}).value(),
                500.0 * 30.0 / wafer_um2, 1e-15);
}

TEST(Scenario1, HigherXMeansHigherCostAtFineFeatures) {
    scenario1 low;
    low.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.1};
    scenario1 high;
    high.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.3};
    EXPECT_LT(low.cost_per_transistor(microns{0.25}).value(),
              high.cost_per_transistor(microns{0.25}).value());
    // At the 1 um reference they coincide.
    EXPECT_NEAR(low.cost_per_transistor(microns{1.0}).value(),
                high.cost_per_transistor(microns{1.0}).value(), 1e-18);
}

TEST(Scenario1, RejectsZeroLambda) {
    scenario1 s;
    EXPECT_THROW((void)s.cost_per_transistor(microns{0.0}),
                 std::invalid_argument);
}

TEST(Scenario2, DieAreaFollowsFig3Trend) {
    scenario2 s;
    EXPECT_NEAR(s.die_area(microns{0.8}).value(),
                16.5 * std::exp(-5.3 * 0.8), 1e-12);
    EXPECT_GT(s.die_area(microns{0.4}).value(),
              s.die_area(microns{0.8}).value());
}

TEST(Scenario2, TransistorCountGrowsAsFeatureShrinks) {
    scenario2 s;
    EXPECT_GT(s.transistors(microns{0.4}), s.transistors(microns{0.8}));
}

TEST(Scenario2, CostRisesAsFeatureShrinks) {
    // The Fig. 7 headline: "A decrease in the feature size causes an
    // increase in the transistor cost!"  Holds for all X in 1.8-2.4 over
    // the sub-micron range plotted.
    for (double x : {1.8, 2.1, 2.4}) {
        scenario2 s;
        s.wafer_cost = cost::wafer_cost_model{dollars{500.0}, x};
        double previous = 0.0;
        for (double lambda = 0.9; lambda >= 0.25; lambda -= 0.05) {
            const double c =
                s.cost_per_transistor(microns{lambda}).value();
            EXPECT_GT(c, previous) << "X=" << x << " lambda=" << lambda;
            previous = c;
        }
    }
}

TEST(Scenario2, YieldTermDrivesTheReversal) {
    // With Y_0 = 1 (no yield penalty) scenario 2's shape reverts to
    // scenario-1-like decline over coarse lambdas; the 70% yield at
    // 1 cm^2 is what flips the trend.
    scenario2 punished;
    scenario2 blessed;
    blessed.yield = yield::reference_die_yield{probability{0.99999}};
    const double punished_ratio =
        punished.cost_per_transistor(microns{0.3}).value() /
        punished.cost_per_transistor(microns{0.8}).value();
    const double blessed_ratio =
        blessed.cost_per_transistor(microns{0.3}).value() /
        blessed.cost_per_transistor(microns{0.8}).value();
    EXPECT_GT(punished_ratio, blessed_ratio);
}

TEST(Scenario2, Scenario2CostExceedsScenario1AtSameX) {
    // Same C_0 and X: the yield penalty plus denser d_d makes the custom
    // product strictly more expensive per transistor.
    scenario1 s1;
    s1.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.8};
    scenario2 s2;
    for (double lambda : {0.8, 0.5, 0.35}) {
        EXPECT_GT(s2.cost_per_transistor(microns{lambda}).value(),
                  s1.cost_per_transistor(microns{lambda}).value())
            << lambda;
    }
}

TEST(Scenario2, RejectsZeroLambda) {
    scenario2 s;
    EXPECT_THROW((void)s.cost_per_transistor(microns{0.0}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::core
