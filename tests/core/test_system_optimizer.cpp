// Tests for the system-level partition optimizer.

#include "core/system_optimizer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::core {
namespace {

system_optimization_config default_config() {
    return system_optimization_config{
        process_spec{
            cost::wafer_cost_model{dollars{500.0}, 1.8},
            geometry::wafer::six_inch(),
            yield::scaled_poisson_model::fig8_calibration(),
            geometry::gross_die_method::maly_rows},
        microns{0.3},
        microns{1.2},
        packaging_spec{},
        1e5};
}

std::vector<system_block> cpu_blocks() {
    // Table 1-flavored system: dense caches, sparse logic.
    return {
        {"I-cache", 1.2e6, 43.2},
        {"D-cache", 1.1e6, 50.7},
        {"FPU", 323e3, 222.3},
        {"Integer unit", 232e3, 257.9},
    };
}

TEST(SystemOptimizer, ProducesAValidPartition) {
    const system_solution solution =
        optimize_system(cpu_blocks(), default_config());
    ASSERT_FALSE(solution.dies.empty());
    std::size_t assigned = 0;
    for (const optimized_die& die : solution.dies) {
        assigned += die.block_names.size();
        EXPECT_GT(die.transistors, 0.0);
        EXPECT_GT(die.lambda.value(), 0.0);
        EXPECT_GT(die.cost_per_good_die.value(), 0.0);
    }
    EXPECT_EQ(assigned, cpu_blocks().size());
}

TEST(SystemOptimizer, TotalIsSiliconPlusPackaging) {
    const system_solution solution =
        optimize_system(cpu_blocks(), default_config());
    EXPECT_NEAR(solution.total_cost.value(),
                solution.silicon_cost.value() +
                    solution.packaging_cost.value(),
                1e-9);
}

TEST(SystemOptimizer, NeverWorseThanMonolithic) {
    const system_solution solution =
        optimize_system(cpu_blocks(), default_config());
    EXPECT_LE(solution.total_cost.value(),
              solution.monolithic_cost.value() + 1e-9);
}

TEST(SystemOptimizer, ExpensivePackagingForcesMonolithic) {
    system_optimization_config config = default_config();
    config.packaging.per_die = dollars{1e6};
    config.packaging.integration_per_extra_die = dollars{1e6};
    const system_solution solution =
        optimize_system(cpu_blocks(), config);
    EXPECT_EQ(solution.dies.size(), 1u);
}

TEST(SystemOptimizer, FreePackagingSplitsAggressively) {
    // With zero packaging cost and a yield model punishing big dies,
    // splitting is never worse, and for these blocks strictly better.
    system_optimization_config config = default_config();
    config.packaging = packaging_spec{dollars{0.0}, dollars{0.0},
                                      dollars{0.0}};
    const system_solution solution =
        optimize_system(cpu_blocks(), config);
    EXPECT_GT(solution.dies.size(), 1u);
    EXPECT_LT(solution.total_cost.value(),
              solution.monolithic_cost.value());
}

TEST(SystemOptimizer, PerDieLambdasAreWithinSearchRange) {
    const system_optimization_config config = default_config();
    const system_solution solution =
        optimize_system(cpu_blocks(), config);
    for (const optimized_die& die : solution.dies) {
        EXPECT_GE(die.lambda.value(), config.lambda_lo.value() - 1e-9);
        EXPECT_LE(die.lambda.value(), config.lambda_hi.value() + 1e-9);
    }
}

TEST(SystemOptimizer, RejectsEmptyAndInvalidBlocks) {
    EXPECT_THROW((void)optimize_system({}, default_config()),
                 std::invalid_argument);
    EXPECT_THROW((void)optimize_system({{"bad", 0.0, 100.0}}, default_config()),
                 std::invalid_argument);
}

TEST(SystemOptimizer, DensityIsTransistorWeightedMean) {
    // Two equal blocks with densities 100 and 300 merged on one die give
    // density 200; force the merge via huge packaging costs.
    system_optimization_config config = default_config();
    config.packaging.per_die = dollars{1e9};
    const std::vector<system_block> blocks = {
        {"a", 1e5, 100.0}, {"b", 1e5, 300.0}};
    const system_solution solution = optimize_system(blocks, config);
    ASSERT_EQ(solution.dies.size(), 1u);
    EXPECT_NEAR(solution.dies[0].design_density, 200.0, 1e-9);
}

}  // namespace
}  // namespace silicon::core
