// Tests for the ranked cost-driver (elasticity) report.

#include "core/cost_drivers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::core {
namespace {

process_spec reference_process() {
    return process_spec{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
}

product_spec reference_product() {
    product_spec p;
    p.name = "uP";
    p.transistors = 2.0e6;
    p.design_density = 180.0;
    p.feature_size = microns{0.7};
    return p;
}

TEST(CostDrivers, ReportsAllSevenDrivers) {
    const cost_driver_report report =
        analyze_cost_drivers(reference_process(), reference_product());
    EXPECT_EQ(report.drivers.size(), 7u);
    EXPECT_GT(report.nominal.cost_per_transistor.value(), 0.0);
}

TEST(CostDrivers, RankedByMagnitude) {
    const cost_driver_report report =
        analyze_cost_drivers(reference_process(), reference_product());
    for (std::size_t i = 1; i < report.drivers.size(); ++i) {
        EXPECT_GE(std::abs(report.drivers[i - 1].value),
                  std::abs(report.drivers[i].value));
    }
}

TEST(CostDrivers, KnownSignsAndExactValues) {
    const cost_driver_report report =
        analyze_cost_drivers(reference_process(), reference_product());
    for (const opt::elasticity& e : report.drivers) {
        if (e.name.find("C_0") != std::string::npos) {
            // C_tr is exactly proportional to C_0.
            EXPECT_NEAR(e.value, 1.0, 1e-6);
        } else if (e.name.find("X (") != std::string::npos) {
            // d ln C / d ln X = generations * X... positive, equal to
            // (1-lambda)/step = 1.5 at lambda = 0.7.
            EXPECT_NEAR(e.value, 1.5, 1e-4);
        } else if (e.name.find("R_w") != std::string::npos) {
            // More wafer area, more dies: strongly negative (~ -2 with
            // the smooth estimator).
            EXPECT_NEAR(e.value, -2.0, 1e-3);
        } else if (e.name.find("Y_0") != std::string::npos) {
            // Better reference yield lowers cost.
            EXPECT_LT(e.value, 0.0);
        } else if (e.name.find("N_tr") != std::string::npos) {
            // With the smooth estimator, N_ch ~ 1/A and A ~ N_tr: the
            // per-transistor wafer share cancels, leaving only the
            // yield penalty of the bigger die: positive.
            EXPECT_GT(e.value, 0.0);
        }
    }
}

TEST(CostDrivers, DenserDesignHasSmallerDensityElasticity) {
    // Elasticity of d_d contains the yield term A*ln(1/Y0) which grows
    // with die area: bigger product -> d_d matters more.
    product_spec small = reference_product();
    small.transistors = 0.5e6;
    product_spec large = reference_product();
    large.transistors = 4.0e6;
    const auto report_small =
        analyze_cost_drivers(reference_process(), small);
    const auto report_large =
        analyze_cost_drivers(reference_process(), large);
    const auto density_elasticity = [](const cost_driver_report& r) {
        for (const opt::elasticity& e : r.drivers) {
            if (e.name.find("d_d") != std::string::npos) {
                return e.value;
            }
        }
        return 0.0;
    };
    EXPECT_GT(density_elasticity(report_large),
              density_elasticity(report_small));
}

TEST(CostDrivers, RequiresReferenceYieldForm) {
    process_spec scaled{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    EXPECT_THROW(
        (void)analyze_cost_drivers(scaled, reference_product()),
        std::invalid_argument);
}

}  // namespace
}  // namespace silicon::core
