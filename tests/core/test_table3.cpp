// Tests reproducing the paper's Table 3.

#include "core/table3.hpp"

#include <gtest/gtest.h>

namespace silicon::core {
namespace {

TEST(Table3, SeventeenRowsInOrder) {
    const auto& rows = table3_rows();
    ASSERT_EQ(rows.size(), 17u);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].index, static_cast<int>(i) + 1);
    }
}

TEST(Table3, DuplicateRowsTwoAndSixAgree) {
    const auto& rows = table3_rows();
    EXPECT_DOUBLE_EQ(rows[1].printed_ctr_micro, rows[5].printed_ctr_micro);
    EXPECT_DOUBLE_EQ(
        reproduce_row(rows[1]).cost_per_transistor.value(),
        reproduce_row(rows[5]).cost_per_transistor.value());
}

TEST(Table3, RowOneMatchesAllPrintedDigits) {
    const auto& row = table3_rows()[0];
    const cost_breakdown b = reproduce_row(row);
    EXPECT_NEAR(b.cost_per_transistor_micro_dollars(), 9.40, 0.01);
}

TEST(Table3, RowThirteenAndFourteenMatchAllPrintedDigits) {
    EXPECT_NEAR(reproduce_row(table3_rows()[12])
                    .cost_per_transistor_micro_dollars(),
                1.31, 0.01);
    EXPECT_NEAR(reproduce_row(table3_rows()[13])
                    .cost_per_transistor_micro_dollars(),
                2.18, 0.01);
}

// Parameterized reproduction across the whole table: rows with printed
// inputs must land within 8% of the printed output (rounding of the
// printed N_ch-free inputs); reconstructed rows within 35%.
class Table3Row : public ::testing::TestWithParam<int> {};

TEST_P(Table3Row, ReproducesPrintedCostPerTransistor) {
    const table3_row& row =
        table3_rows()[static_cast<std::size_t>(GetParam())];
    const cost_breakdown b = reproduce_row(row);
    const double computed = b.cost_per_transistor_micro_dollars();
    const double tolerance = row.reconstructed ? 0.35 : 0.08;
    EXPECT_NEAR(computed / row.printed_ctr_micro, 1.0, tolerance)
        << "row " << row.index << " (" << row.ic_type << "): printed "
        << row.printed_ctr_micro << ", computed " << computed;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3Row, ::testing::Range(0, 17));

TEST(Table3, ReproduceAllProducesSeventeenComparisons) {
    const auto comparisons = reproduce_table3();
    ASSERT_EQ(comparisons.size(), 17u);
    for (const table3_comparison& c : comparisons) {
        EXPECT_GT(c.computed_ctr_micro, 0.0);
        EXPECT_GT(c.ratio, 0.0);
    }
}

TEST(Table3, MemoryRowsFarCheaperThanLogicRows) {
    // Sec. IV.C conclusion #1: "the cost per transistor of a memory is
    // very different and much lower than for all other IC types."
    EXPECT_GT(memory_logic_separation(), 2.0);
}

TEST(Table3, CostDiversitySpansTwoOrdersOfMagnitude) {
    // Sec. IV.C conclusion #2 (rows 11 vs 17: 0.93 vs 240).
    const auto comparisons = reproduce_table3();
    double min_c = 1e300;
    double max_c = 0.0;
    for (const auto& c : comparisons) {
        min_c = std::min(min_c, c.computed_ctr_micro);
        max_c = std::max(max_c, c.computed_ctr_micro);
    }
    EXPECT_GT(max_c / min_c, 100.0);
}

TEST(Table3, XEscalationOrdersRowsOneToThree) {
    // Rows 1-3 differ only in (Y_0, X); cost rises monotonically.
    const auto comparisons = reproduce_table3();
    EXPECT_LT(comparisons[0].computed_ctr_micro,
              comparisons[1].computed_ctr_micro);
    EXPECT_LT(comparisons[1].computed_ctr_micro,
              comparisons[2].computed_ctr_micro);
}

TEST(Table3, BiggerWaferWithWorseYieldStillCostsMore) {
    // Rows 13 vs 14: moving to 8-inch wafers at lower Y_0 raises C_tr by
    // the printed 1.66x.
    const auto comparisons = reproduce_table3();
    const double ratio = comparisons[13].computed_ctr_micro /
                         comparisons[12].computed_ctr_micro;
    EXPECT_NEAR(ratio, 2.18 / 1.31, 0.05);
}

}  // namespace
}  // namespace silicon::core
