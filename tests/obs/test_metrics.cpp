// obs/metrics: counters, gauges, the latency histogram (including the
// CAS-max loop under concurrent recorders), the named registry, and
// the Prometheus text-exposition grammar.

#include "obs/metrics.hpp"

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace obs = silicon::obs;

namespace {

// ---------------------------------------------------------------------------
// counter / gauge
// ---------------------------------------------------------------------------

TEST(Counter, StartsAtZeroAndAccumulates) {
    obs::counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
    obs::gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(7.5);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
    g.add(-2.5);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Gauge, ConcurrentAddsAllLand) {
    obs::gauge g;
    constexpr int threads = 8;
    constexpr int per_thread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&g] {
            for (int i = 0; i < per_thread; ++i) {
                g.add(1.0);
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(threads * per_thread));
}

// ---------------------------------------------------------------------------
// latency_histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketMapping) {
    obs::latency_histogram h;
    h.record(500);        // 0 us -> bucket 0
    h.record(1500);       // 1 us -> bucket 0
    h.record(2500);       // 2 us -> bucket 1
    h.record(9000);       // 9 us -> bucket 3
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total_nanoseconds(), 500u + 1500u + 2500u + 9000u);
    EXPECT_EQ(h.max_nanoseconds(), 9000u);
}

TEST(LatencyHistogram, BucketUpperBoundsArePowersOfTwo) {
    EXPECT_EQ(obs::latency_histogram::bucket_upper_us(0), 2u);
    EXPECT_EQ(obs::latency_histogram::bucket_upper_us(3), 16u);
}

// Satellite: the max update must be a CAS-max loop — concurrent
// recorders can never lose the largest observation, and count/total
// must equal the exact sums.
TEST(LatencyHistogram, ConcurrentRecordInvariants) {
    obs::latency_histogram h;
    constexpr int threads = 8;
    constexpr std::uint64_t per_thread = 50000;

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&h, t] {
            for (std::uint64_t i = 1; i <= per_thread; ++i) {
                // Thread t's largest value is unique per thread; the
                // global max comes from thread threads-1.
                h.record(i * 1000 + static_cast<std::uint64_t>(t));
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }

    const std::uint64_t n = threads * per_thread;
    EXPECT_EQ(h.count(), n);

    std::uint64_t expected_total = 0;
    for (int t = 0; t < threads; ++t) {
        for (std::uint64_t i = 1; i <= per_thread; ++i) {
            expected_total += i * 1000 + static_cast<std::uint64_t>(t);
        }
    }
    EXPECT_EQ(h.total_nanoseconds(), expected_total);
    EXPECT_EQ(h.max_nanoseconds(),
              per_thread * 1000 + static_cast<std::uint64_t>(threads - 1));

    std::uint64_t bucket_sum = 0;
    for (int b = 0; b < obs::latency_histogram::bucket_count; ++b) {
        bucket_sum += h.bucket(b);
    }
    EXPECT_EQ(bucket_sum, n);
}

// ---------------------------------------------------------------------------
// metrics_registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, SameNameSameObject) {
    obs::metrics_registry r;
    obs::counter& a = r.get_counter("requests_total", "help");
    obs::counter& b = r.get_counter("requests_total");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
    obs::metrics_registry r;
    (void)r.get_counter("x");
    EXPECT_THROW((void)r.get_gauge("x"), std::logic_error);
}

TEST(MetricsRegistry, GlobalIsStable) {
    obs::counter& a = obs::metrics_registry::global().get_counter(
        "test_obs_global_counter");
    obs::counter& b = obs::metrics_registry::global().get_counter(
        "test_obs_global_counter");
    EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------------
// Prometheus exposition grammar
// ---------------------------------------------------------------------------

/// Validate one exposition body line: `name{labels} value` where value
/// parses as a float and the name is a legal metric identifier.
void expect_valid_sample_line(const std::string& line) {
    ASSERT_FALSE(line.empty());
    std::size_t i = 0;
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
        ++i;
    }
    if (i < line.size() && line[i] == '{') {
        const std::size_t close = line.find('}', i);
        ASSERT_NE(close, std::string::npos) << line;
        i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    const std::string value = line.substr(i + 1);
    std::size_t parsed = 0;
    if (value == "+Inf" || value == "-Inf" || value == "NaN") {
        return;
    }
    EXPECT_NO_THROW({
        (void)std::stod(value, &parsed);
        EXPECT_EQ(parsed, value.size()) << line;
    }) << line;
}

void expect_valid_exposition(const std::string& text) {
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
        expect_valid_sample_line(line);
    }
}

TEST(Prometheus, RegistryExpositionIsWellFormed) {
    obs::metrics_registry r;
    r.get_counter("jobs_total", "jobs ever").add(5);
    r.get_gauge("queue_depth").set(3.25);
    obs::latency_histogram& h = r.get_histogram("latency_seconds", "svc");
    h.record(1500);
    h.record(2'000'000);

    const std::string text = r.to_prometheus();
    expect_valid_exposition(text);
    EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
    EXPECT_NE(text.find("jobs_total 5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE latency_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("latency_seconds_count 2"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndAtInf) {
    obs::latency_histogram h;
    h.record(1'000);      // 1 us
    h.record(3'000);      // 3 us
    h.record(3'500);      // 3 us
    h.record(100'000);    // 100 us

    std::string out;
    obs::prometheus_histogram(out, "lat{op=\"x\"}", h);

    std::istringstream in{out};
    std::string line;
    std::uint64_t last = 0;
    bool saw_inf = false;
    while (std::getline(in, line)) {
        if (line.rfind("lat_bucket", 0) == 0) {
            const std::size_t space = line.rfind(' ');
            const std::uint64_t v = std::stoull(line.substr(space + 1));
            EXPECT_GE(v, last) << "buckets must be cumulative: " << line;
            last = v;
            EXPECT_NE(line.find("op=\"x\""), std::string::npos) << line;
            if (line.find("le=\"+Inf\"") != std::string::npos) {
                saw_inf = true;
                EXPECT_EQ(v, h.count());
            }
        }
    }
    EXPECT_TRUE(saw_inf);
    EXPECT_NE(out.find("lat_sum{op=\"x\"}"), std::string::npos);
    EXPECT_NE(out.find("lat_count{op=\"x\"} 4"), std::string::npos);
}

TEST(Prometheus, BaseNameSplitsAtBrace) {
    EXPECT_EQ(obs::prometheus_base_name("a_total{op=\"x\"}"), "a_total");
    EXPECT_EQ(obs::prometheus_base_name("plain"), "plain");
}

// ---------------------------------------------------------------------------
// engine exposition (the serve promotion end-to-end)
// ---------------------------------------------------------------------------

TEST(Prometheus, EngineExpositionCoversEndpointsCacheAndPool) {
    silicon::serve::engine_config config;
    config.parallelism = 2;
    config.cache_shards = 4;
    silicon::serve::engine engine{config};

    const std::vector<std::string> batch{
        R"({"op":"scenario1","lambda_um":0.5})",
        R"({"op":"table3","row":0})",
        R"(this is not json)",
    };
    (void)engine.handle_batch(batch);
    // Sequential replays of the already-cached request: deterministic
    // cache hits (inside a parallel batch identical lines could race
    // to a double miss).
    (void)engine.handle_line(R"({"op":"scenario1","lambda_um":0.5})");
    (void)engine.handle_line(R"({"op":"scenario1","lambda_um":0.5})");

    const std::string text = engine.prometheus_text();
    expect_valid_exposition(text);
    EXPECT_NE(text.find("silicon_serve_requests_total{op=\"scenario1\"} 3"),
              std::string::npos);
    EXPECT_NE(
        text.find("silicon_serve_cache_hits_total{op=\"scenario1\"} 2"),
        std::string::npos);
    EXPECT_NE(
        text.find("silicon_serve_latency_seconds_count{op=\"scenario1\"} 3"),
        std::string::npos);
    EXPECT_NE(text.find("silicon_cache_hit_ratio"), std::string::npos);
    EXPECT_NE(text.find("silicon_cache_shard_entries{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("silicon_serve_parse_errors_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("silicon_exec_tasks_total"), std::string::npos);
}

// The per-shard occupancy snapshot must agree with the aggregate.
TEST(CacheStats, ShardEntriesSumToEntries) {
    silicon::serve::engine_config config;
    config.cache_shards = 8;
    silicon::serve::engine engine{config};
    for (int i = 0; i < 50; ++i) {
        (void)engine.handle_line(
            R"({"op":"scenario1","lambda_um":)" +
            std::to_string(0.5 + 0.01 * i) + "}");
    }
    const silicon::serve::memo_cache::stats s = engine.cache_stats();
    ASSERT_EQ(s.shard_entries.size(), s.shards);
    std::size_t sum = 0;
    for (const std::size_t e : s.shard_entries) {
        sum += e;
    }
    EXPECT_EQ(sum, s.entries);
}

}  // namespace
