// Flight-recorder tests (obs/flight): per-thread rings, drop-oldest
// overflow, the seq-merged JSONL export, deterministic mode, and the
// one-shot armed anomaly dump.  Private recorder instances throughout —
// the process-global instance() belongs to the serve suite.

#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace obs = silicon::obs;

namespace {

obs::flight_record make_record(const char* endpoint, const char* code,
                               std::uint32_t total_us = 0) {
    obs::flight_record r;
    obs::assign_field(r.endpoint, endpoint);
    obs::assign_field(r.code, code);
    r.total_us = total_us;
    return r;
}

std::vector<std::string> export_lines(const obs::flight_recorder& rec) {
    std::string text;
    rec.export_jsonl(text);
    std::vector<std::string> lines;
    std::size_t begin = 0;
    for (std::size_t nl = text.find('\n', begin); nl != std::string::npos;
         nl = text.find('\n', begin)) {
        lines.push_back(text.substr(begin, nl - begin));
        begin = nl + 1;
    }
    EXPECT_EQ(begin, text.size()) << "dump not newline-terminated";
    return lines;
}

std::uint64_t seq_of(const std::string& line) {
    EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u) << line;
    return std::strtoull(line.c_str() + 7, nullptr, 10);
}

TEST(FlightRecorder, ExportKeepsKeyOrderAndEscapes) {
    obs::flight_recorder rec{8};
    obs::flight_record r = make_record("scenario1", "ok", 42);
    obs::assign_field(r.id, "7");
    obs::assign_field(r.trace, "say \"hi\"\n");
    r.cache_hit = true;
    r.parse_us = 1;
    r.cache_us = 2;
    r.exec_us = 3;
    r.serialize_us = 4;
    r.deadline_slack_us = -9;
    rec.append(r);

    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0],
              "{\"seq\":0,\"endpoint\":\"scenario1\",\"id\":\"7\","
              "\"trace_id\":\"say \\\"hi\\\"\\u000a\",\"code\":\"ok\","
              "\"cache_hit\":true,\"anomaly\":false,\"parse_us\":1,"
              "\"cache_us\":2,\"exec_us\":3,\"serialize_us\":4,"
              "\"total_us\":42,\"deadline_slack_us\":-9}");
}

TEST(FlightRecorder, NoDeadlineSlackExportsNull) {
    obs::flight_recorder rec{4};
    rec.append(make_record("table3", "ok"));
    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"deadline_slack_us\":null"), std::string::npos);
}

TEST(FlightRecorder, DropOldestKeepsTheNewest) {
    obs::flight_recorder rec{4};
    for (int i = 0; i < 10; ++i) {
        rec.append(make_record("scenario1", "ok"));
    }
    const obs::flight_recorder::stats s = rec.snapshot();
    EXPECT_EQ(s.appended, 10u);
    EXPECT_EQ(s.dropped, 6u);
    EXPECT_EQ(s.threads, 1u);
    EXPECT_EQ(s.capacity, 4u);

    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), 4u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(seq_of(lines[i]), 6u + i);  // only the newest survive
    }
}

TEST(FlightRecorder, DropOldestUnderThreadStress) {
    // 8 writers hammer their private rings far past capacity; the
    // recorder must never tear, and the merged dump must hold exactly
    // capacity records per thread in strictly ascending seq order.
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kAppendsPerThread = 5000;
    constexpr std::size_t kCapacity = 64;
    obs::flight_recorder rec{kCapacity};

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&rec] {
            for (std::size_t i = 0; i < kAppendsPerThread; ++i) {
                rec.append(make_record("scenario1", "ok"));
            }
        });
    }
    for (std::thread& w : writers) {
        w.join();
    }

    const obs::flight_recorder::stats s = rec.snapshot();
    EXPECT_EQ(s.appended, kThreads * kAppendsPerThread);
    EXPECT_EQ(s.dropped, kThreads * (kAppendsPerThread - kCapacity));
    EXPECT_EQ(s.threads, kThreads);

    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), kThreads * kCapacity);
    std::uint64_t last = seq_of(lines[0]);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const std::uint64_t seq = seq_of(lines[i]);
        EXPECT_GT(seq, last) << "dump not seq-sorted at line " << i;
        last = seq;
    }
    // The globally newest record always survives drop-oldest.
    EXPECT_EQ(last, kThreads * kAppendsPerThread - 1);
}

TEST(FlightRecorder, DeterministicModeZeroesTimings) {
    obs::flight_recorder rec{8};
    rec.set_deterministic(true);
    obs::flight_record timed = make_record("mc_yield", "ok", 99);
    timed.parse_us = 1;
    timed.cache_us = 2;
    timed.exec_us = 3;
    timed.serialize_us = 4;
    timed.deadline_slack_us = 1234;
    rec.append(timed);
    rec.append(make_record("table3", "ok", 55));  // no deadline

    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"parse_us\":0,\"cache_us\":0,\"exec_us\":0,"
                            "\"serialize_us\":0,\"total_us\":0,"
                            "\"deadline_slack_us\":0"),
              std::string::npos)
        << lines[0];
    // A request that had no deadline keeps the null marker (zeroing it
    // would fabricate a deadline that never existed).
    EXPECT_NE(lines[1].find("\"deadline_slack_us\":null"), std::string::npos);
}

TEST(FlightRecorder, DisabledAndZeroCapacityRecordNothing) {
    obs::flight_recorder rec{8};
    rec.set_enabled(false);
    rec.append(make_record("scenario1", "ok"));
    EXPECT_EQ(rec.snapshot().appended, 0u);

    obs::flight_recorder off{0};
    off.append(make_record("scenario1", "ok"));
    EXPECT_EQ(off.snapshot().appended, 0u);
    EXPECT_TRUE(export_lines(off).empty());
}

TEST(FlightRecorder, ClearRestartsSequenceNumbers) {
    obs::flight_recorder rec{8};
    rec.append(make_record("scenario1", "ok"));
    rec.append(make_record("scenario1", "ok"));
    rec.clear();
    EXPECT_EQ(rec.snapshot().appended, 0u);
    rec.append(make_record("table3", "ok"));
    const std::vector<std::string> lines = export_lines(rec);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(seq_of(lines[0]), 0u);
}

TEST(FlightRecorder, ArmedDumpFiresOnceOnFirstAnomaly) {
    char path[] = "/tmp/silicon_flight_test_XXXXXX";
    const int fd = ::mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);

    obs::flight_recorder rec{8};
    obs::flight_record bad = make_record("mc_yield", "deadline_exceeded");
    bad.anomaly = true;
    rec.append(bad);
    rec.arm_dump(path);
    rec.note_anomaly();
    EXPECT_EQ(rec.snapshot().anomalies, 1u);

    std::FILE* f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr) << "armed dump was not written";
    char buf[256] = {};
    const std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    const std::string dumped(buf, got);
    EXPECT_NE(dumped.find("\"anomaly\":true"), std::string::npos);

    // One-shot: a second anomaly must not rewrite the (now removed)
    // file until arm_dump is called again.
    ASSERT_EQ(std::remove(path), 0);
    rec.note_anomaly();
    EXPECT_EQ(rec.snapshot().anomalies, 2u);
    EXPECT_EQ(std::fopen(path, "r"), nullptr);

    rec.arm_dump(path);
    rec.note_anomaly();
    f = std::fopen(path, "r");
    EXPECT_NE(f, nullptr) << "re-armed dump was not written";
    if (f != nullptr) {
        std::fclose(f);
    }
    std::remove(path);
}

}  // namespace
