// obs/trace: the span tracer and its Chrome trace_event export.
//
// The tracer is a process-wide singleton, so every test here fully
// resets it (disable + clear) on entry and exit via a fixture; tests
// still share ring *registrations* (threads counter only grows), which
// the assertions account for.

#include "obs/trace.hpp"

#include "serve/engine.hpp"
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace obs = silicon::obs;
namespace json = silicon::serve::json;

namespace {

class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::tracer::instance().disable();
        obs::tracer::instance().clear();
    }
    void TearDown() override {
        obs::tracer::instance().disable();
        obs::tracer::instance().clear();
    }
};

/// Parse an export with the serve JSON parser and return the events.
json::array parse_events(const std::string& exported) {
    const json::value doc = json::parse(exported);
    EXPECT_TRUE(doc.is_array());
    return doc.as_array();
}

/// Required member of an event object (fails the test when absent).
const json::value& field(const json::value& event, const char* key) {
    const json::value* v = event.as_object().find(key);
    EXPECT_NE(v, nullptr) << "event missing key: " << key;
    static const json::value null_value{};
    return v != nullptr ? *v : null_value;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
    obs::tracer& t = obs::tracer::instance();
    ASSERT_FALSE(t.enabled());
    {
        const obs::trace_span span{"should_not_appear", "test"};
    }
    t.record("direct", "test", 0, 1);
    const obs::tracer::stats s = t.snapshot();
    EXPECT_EQ(s.recorded, 0u);
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(parse_events(t.export_chrome_json()).size(), 0u);
}

TEST_F(TraceTest, SpansExportAsChromeCompleteEvents) {
    obs::tracer& t = obs::tracer::instance();
    t.enable();
    {
        const obs::trace_span outer{"outer", "test"};
        const obs::trace_span inner{"inner", "test"};
    }
    t.disable();

    bool saw_outer = false;
    bool saw_inner = false;
    for (const json::value& e : parse_events(t.export_chrome_json())) {
        const std::string& ph = field(e, "ph").as_string();
        if (ph == "M") {
            EXPECT_EQ(field(e, "name").as_string(), "thread_name");
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_TRUE(field(e, "ts").is_number());
        EXPECT_TRUE(field(e, "dur").is_number());
        EXPECT_TRUE(field(e, "pid").is_number());
        EXPECT_TRUE(field(e, "tid").is_number());
        EXPECT_EQ(field(e, "cat").as_string(), "test");
        const std::string& name = field(e, "name").as_string();
        saw_outer = saw_outer || name == "outer";
        saw_inner = saw_inner || name == "inner";
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
}

// Nested spans finish outer-last, so raw ring order is not start
// order; the exporter must re-sort so each thread's timeline is
// monotone in ts (the satellite golden-trace requirement).
TEST_F(TraceTest, TimestampsMonotonePerThread) {
    obs::tracer& t = obs::tracer::instance();
    t.enable();
    for (int i = 0; i < 50; ++i) {
        const obs::trace_span outer{"outer", "test"};
        const obs::trace_span mid{"mid", "test"};
        const obs::trace_span inner{"inner", "test"};
    }
    t.disable();

    std::map<double, double> last_ts_by_tid;
    for (const json::value& e : parse_events(t.export_chrome_json())) {
        if (field(e, "ph").as_string() != "X") {
            continue;
        }
        const double tid = field(e, "tid").as_number();
        const double ts = field(e, "ts").as_number();
        const auto it = last_ts_by_tid.find(tid);
        if (it != last_ts_by_tid.end()) {
            EXPECT_GE(ts, it->second) << "out-of-order span on tid " << tid;
        }
        last_ts_by_tid[tid] = ts;
    }
    EXPECT_FALSE(last_ts_by_tid.empty());
}

TEST_F(TraceTest, DropOldestKeepsRingCapacity) {
    obs::tracer& t = obs::tracer::instance();
    t.enable();
    const std::uint64_t n = obs::tracer::ring_capacity + 100;
    for (std::uint64_t i = 0; i < n; ++i) {
        // 2 us apart so drop order is visible at export's us precision.
        t.record("evt", "test", i * 2000, 1);
    }
    t.disable();

    const obs::tracer::stats s = t.snapshot();
    EXPECT_EQ(s.recorded, n);
    EXPECT_EQ(s.dropped, 100u);

    std::size_t retained = 0;
    std::uint64_t min_ts = UINT64_MAX;
    for (const json::value& e : parse_events(t.export_chrome_json())) {
        if (field(e, "ph").as_string() == "X") {
            ++retained;
            min_ts = std::min(min_ts, static_cast<std::uint64_t>(
                                          field(e, "ts").as_number()));
        }
    }
    EXPECT_EQ(retained, obs::tracer::ring_capacity);
    // Drop-oldest: the 100 events with the smallest timestamps are gone.
    EXPECT_EQ(min_ts, 100u * 2);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
    obs::tracer& t = obs::tracer::instance();
    t.enable();
    constexpr int threads = 4;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int w = 0; w < threads; ++w) {
        workers.emplace_back([] {
            for (int i = 0; i < 10; ++i) {
                const obs::trace_span span{"worker", "test"};
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }
    t.disable();

    std::set<double> tids;
    std::size_t events = 0;
    for (const json::value& e : parse_events(t.export_chrome_json())) {
        if (field(e, "ph").as_string() == "X" &&
            field(e, "name").as_string() == "worker") {
            tids.insert(field(e, "tid").as_number());
            ++events;
        }
    }
    EXPECT_EQ(events, static_cast<std::size_t>(threads) * 10);
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(threads));
}

TEST_F(TraceTest, ClearDropsRetainedEvents) {
    obs::tracer& t = obs::tracer::instance();
    t.enable();
    t.record("evt", "test", 1, 1);
    t.clear();
    t.disable();
    EXPECT_EQ(t.snapshot().recorded, 0u);
    EXPECT_EQ(parse_events(t.export_chrome_json()).size(), 0u);
}

// The determinism contract: tracing observes, never feeds back.
// Responses must be byte-identical with tracing on and off.
TEST_F(TraceTest, TracedResponsesAreByteIdentical) {
    const std::vector<std::string> batch{
        R"({"op":"scenario1","lambda_um":0.7})",
        R"({"op":"table3","row":3})",
        R"({"op":"mc_yield","dies":200,"seed":5})",
        R"({"op":"yield","model":"murphy","defects_per_cm2":0.8})",
    };

    silicon::serve::engine untraced{{.parallelism = 2}};
    const std::vector<std::string> baseline = untraced.handle_batch(batch);

    obs::tracer& t = obs::tracer::instance();
    t.enable();
    silicon::serve::engine traced{{.parallelism = 2}};
    const std::vector<std::string> observed = traced.handle_batch(batch);
    t.disable();

    EXPECT_EQ(observed, baseline);

    // And the trace actually captured the dispatcher stages.
    const std::string exported = t.export_chrome_json();
    EXPECT_NE(exported.find("\"serve.handle_line\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.parse\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.canonicalize\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.cache\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.exec\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.serialize\""), std::string::npos);
    EXPECT_NE(exported.find("\"serve.batch\""), std::string::npos);
    EXPECT_NE(exported.find("\"exec.task\""), std::string::npos);
}

}  // namespace
