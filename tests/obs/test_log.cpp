// obs/log: JSONL rendering, level thresholds, escaping, concurrency.
//
// The sink and threshold are process-global; a fixture captures into a
// stringstream and restores stderr + the default threshold afterwards.

#include "obs/log.hpp"

#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace obs = silicon::obs;
namespace json = silicon::serve::json;

namespace {

class LogTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_log_sink(&captured_);
        obs::set_log_threshold(obs::log_level::trace);
    }
    void TearDown() override {
        obs::set_log_sink(nullptr);
        obs::set_log_threshold(obs::log_level::info);
    }

    std::vector<std::string> lines() const {
        std::vector<std::string> out;
        std::istringstream in{captured_.str()};
        std::string line;
        while (std::getline(in, line)) {
            out.push_back(line);
        }
        return out;
    }

    std::ostringstream captured_;
};

TEST_F(LogTest, EventRendersAsOneJsonLine) {
    obs::log_info("unit.test", {{"answer", 42},
                                {"name", "widget"},
                                {"ratio", 0.5},
                                {"flag", true}});

    const std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 1u);

    const json::value doc = json::parse(got[0]);
    ASSERT_TRUE(doc.is_object());
    const json::object& o = doc.as_object();
    ASSERT_NE(o.find("ts"), nullptr);
    EXPECT_TRUE(o.find("ts")->is_number());
    EXPECT_GT(o.find("ts")->as_number(), 1.7e9);  // sane wall clock
    EXPECT_EQ(o.find("level")->as_string(), "info");
    EXPECT_EQ(o.find("event")->as_string(), "unit.test");
    EXPECT_DOUBLE_EQ(o.find("answer")->as_number(), 42.0);
    EXPECT_EQ(o.find("name")->as_string(), "widget");
    EXPECT_DOUBLE_EQ(o.find("ratio")->as_number(), 0.5);
    EXPECT_EQ(o.find("flag")->as_bool(), true);
}

TEST_F(LogTest, RuntimeThresholdFilters) {
    obs::set_log_threshold(obs::log_level::warn);
    obs::log_debug("dropped.debug");
    obs::log_info("dropped.info");
    obs::log_warn("kept.warn");
    obs::log_error("kept.error");

    const std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_NE(got[0].find("kept.warn"), std::string::npos);
    EXPECT_NE(got[1].find("kept.error"), std::string::npos);

    obs::set_log_threshold(obs::log_level::off);
    obs::log_error("dropped.even.error");
    EXPECT_EQ(lines().size(), 2u);
}

TEST_F(LogTest, StringsAreEscaped) {
    obs::log_info("escape \"quotes\"", {{"path", "C:\\tmp\n"}});

    const std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 1u);
    const json::value doc = json::parse(got[0]);  // must stay valid JSON
    const json::object& o = doc.as_object();
    EXPECT_EQ(o.find("event")->as_string(), "escape \"quotes\"");
    EXPECT_EQ(o.find("path")->as_string(), "C:\\tmp\n");
}

TEST_F(LogTest, LevelNames) {
    obs::log(obs::log_level::trace, "a");
    obs::log(obs::log_level::debug, "b");
    obs::log(obs::log_level::warn, "c");
    obs::log(obs::log_level::error, "d");
    const std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 4u);
    EXPECT_NE(got[0].find("\"level\":\"trace\""), std::string::npos);
    EXPECT_NE(got[1].find("\"level\":\"debug\""), std::string::npos);
    EXPECT_NE(got[2].find("\"level\":\"warn\""), std::string::npos);
    EXPECT_NE(got[3].find("\"level\":\"error\""), std::string::npos);
}

// Concurrent events must never interleave mid-line: every captured
// line parses as a standalone JSON object.
TEST_F(LogTest, ConcurrentEventsStayLineAtomic) {
    constexpr int threads = 4;
    constexpr int per_thread = 200;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < per_thread; ++i) {
                obs::log_info("concurrent.event",
                              {{"thread", t}, {"i", i}});
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }

    const std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(),
              static_cast<std::size_t>(threads) * per_thread);
    for (const std::string& line : got) {
        const json::value doc = json::parse(line);
        EXPECT_TRUE(doc.is_object());
        EXPECT_EQ(doc.as_object().find("event")->as_string(),
                  "concurrent.event");
    }
}

}  // namespace
