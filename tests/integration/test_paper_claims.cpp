// Integration tests asserting the paper's cross-cutting claims, each
// exercised through the public API exactly the way the benches are.

#include "core/scenario.hpp"
#include "core/table3.hpp"
#include "cost/product_mix.hpp"
#include "opt/minimize.hpp"
#include "tech/roadmap.hpp"
#include "yield/scaled.hpp"

#include <gtest/gtest.h>

namespace silicon {
namespace {

TEST(PaperClaims, Fig6VersusFig7Reversal) {
    // The central contrast of Sec. IV: Scenario #1 cost falls ~5x from
    // 1 um to 0.25 um; Scenario #2 cost *rises* over the same range.
    core::scenario1 s1;
    s1.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 1.2};
    const double s1_ratio =
        s1.cost_per_transistor(microns{0.25}).value() /
        s1.cost_per_transistor(microns{1.0}).value();
    EXPECT_LT(s1_ratio, 0.5);

    core::scenario2 s2;
    s2.wafer_cost = cost::wafer_cost_model{dollars{500.0}, 2.0};
    const double s2_ratio =
        s2.cost_per_transistor(microns{0.25}).value() /
        s2.cost_per_transistor(microns{0.8}).value();
    EXPECT_GT(s2_ratio, 1.5);
}

TEST(PaperClaims, RequiredDefectDensityFallsEachGeneration) {
    // Fig. 4's second curve: holding yield at 60% for the generation's
    // uP die forces D down monotonically with lambda.
    double previous = 1e300;
    for (double lambda : {1.0, 0.8, 0.5, 0.35, 0.25}) {
        const auto area = tech::microprocessor_die_area(microns{lambda});
        const double d_required = yield::scaled_poisson_model::required_d(
            probability{0.6}, area, microns{lambda}, 4.07);
        EXPECT_LT(d_required, previous) << lambda;
        previous = d_required;
    }
}

TEST(PaperClaims, Fig8LambdaOptDependsOnDieSize) {
    // "for each die size there is different lambda_opt which minimizes
    // the cost per transistor."  Sweep N_tr and collect optima: they are
    // not all equal.
    const yield::scaled_poisson_model defects =
        yield::scaled_poisson_model::fig8_calibration();
    const cost::wafer_cost_model wafer_cost{dollars{500.0}, 1.4};
    const double wafer_um2 = 3.14159265358979 * 7.5 * 7.5 * 1e8;

    const auto cost_tr = [&](double n_tr, double lambda) {
        // Area-ratio form of Eq. (1) keeps this test independent of the
        // die-placement module.
        const double area_um2 = n_tr * 152.0 * lambda * lambda;
        const double n_ch = wafer_um2 / area_um2;
        const double y =
            defects
                .yield_for_transistors(n_tr, 152.0, microns{lambda})
                .value();
        return wafer_cost.pure_wafer_cost(microns{lambda}).value() /
               (n_ch * n_tr * y);
    };

    double opt_small = 0.0;
    double opt_large = 0.0;
    for (double* target : {&opt_small, &opt_large}) {
        const double n_tr = target == &opt_small ? 5e4 : 2e6;
        const auto m = opt::grid_then_golden(
            [&](double lambda) { return cost_tr(n_tr, lambda); }, 0.3,
            1.5, 128);
        *target = m.x;
    }
    EXPECT_GT(opt_large, opt_small + 0.05);
}

TEST(PaperClaims, ProductMixPenaltyWithinPaperEnvelope) {
    // Sec. III.A.d / [12]: low-volume multi-product wafer cost ratio "may
    // reach as high value as 7".
    const cost::fabline line = cost::fabline::generic_cmos();
    const cost::wafer_recipe mono = cost::fabline::generic_recipe(0.8, 2);
    const cost::mix_comparison cmp = cost::compare_mono_vs_multi(
        line, mono, 50000.0, cost::diverse_mix(10, 10.0));
    EXPECT_GT(cmp.cost_ratio, 3.0);
    EXPECT_LT(cmp.cost_ratio, 30.0);
}

TEST(PaperClaims, MemoryCostDataMustNotBeExtrapolatedToLogic) {
    // Sec. IV.D: pricing logic with memory economics understates cost.
    const auto comparisons = core::reproduce_table3();
    // Mean memory C_tr vs mean logic C_tr differ by > 10x.
    double memory_sum = 0.0;
    int memory_n = 0;
    double logic_sum = 0.0;
    int logic_n = 0;
    for (const auto& c : comparisons) {
        if (c.row.index >= 11 && c.row.index <= 14) {
            memory_sum += c.computed_ctr_micro;
            ++memory_n;
        } else {
            logic_sum += c.computed_ctr_micro;
            ++logic_n;
        }
    }
    EXPECT_GT((logic_sum / logic_n) / (memory_sum / memory_n), 10.0);
}

TEST(PaperClaims, FablineCostApproachesBillionDollars) {
    // Sec. I: facilities "estimated soon to reach 1 billion dollars".
    const tech::trend fabs = tech::fab_cost_trend();
    EXPECT_GT(fabs.at(1996), 800.0);   // $M
    EXPECT_LT(fabs.at(1990), 800.0);
}

}  // namespace
}  // namespace silicon
