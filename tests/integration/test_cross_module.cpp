// Cross-module integration tests for the extension substrates: reticle
// geometry feeding the fabline, derived cost-of-ownership feeding wafer
// cost, the extraction loop closing over wafer simulation, and the
// forecast agreeing with the scenario modules it composes.

#include "core/forecast.hpp"
#include "core/shrink.hpp"
#include "cost/ownership.hpp"
#include "cost/product_mix.hpp"
#include "geometry/reticle.hpp"
#include "yield/extraction.hpp"
#include "yield/spatial.hpp"
#include "yield/wafer_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace silicon {
namespace {

TEST(CrossModule, ReticleThroughputFeedsLithographyEconomics) {
    // Smaller dies need no more exposures (fields are die-independent in
    // count), but per-die litho cost falls with dice per field.  Derive
    // the litho tool's effective per-die cost through the reticle plan
    // and a COO-derived stepper rate.
    cost::tool_cost_inputs stepper =
        cost::generic_cmos_tool_costs().front();
    const dollars rate = cost::ownership_per_hour(stepper);

    const auto per_die_litho = [&](double die_edge_mm) {
        const geometry::reticle_plan plan = geometry::plan_reticle(
            geometry::wafer::six_inch(),
            geometry::die::square(millimeters{die_edge_mm}));
        const double wafer_seconds = plan.seconds_per_wafer;
        const double dies =
            static_cast<double>(plan.fields_per_wafer) *
            plan.dice_per_field;
        return rate.value() * wafer_seconds / 3600.0 / dies;
    };
    // 5 mm dice pack 16 per field; 18 mm dice 1: per-die exposure cost
    // differs by an order of magnitude.
    EXPECT_GT(per_die_litho(18.0), 8.0 * per_die_litho(5.0));
}

TEST(CrossModule, ExtractionRecoversWaferSimGroundTruth) {
    // Close the loop: simulate wafers whose per-die fault probability
    // follows Eq. (7) exactly (thin the defect population by
    // lambda^-p scaling), then extract (D, p) from the simulated mean
    // yields.
    const double d_true = 0.8;
    const double p_true = 4.07;
    std::vector<yield::yield_observation> observations;
    const geometry::die die = geometry::die::square(millimeters{10.0});
    const double area_cm2 = die.area().to_square_centimeters().value();
    for (double lambda : {1.0, 0.9, 0.8, 0.7}) {
        const double d_eff =
            d_true / std::pow(lambda, p_true);
        yield::wafer_sim_config config;
        config.wafers = 400;
        config.defects_per_cm2 = d_eff;
        config.seed = 31u + static_cast<std::uint64_t>(lambda * 100);
        const yield::wafer_sim_result sim = yield::simulate_wafers(
            geometry::wafer::six_inch(), die, config);
        yield::yield_observation obs;
        obs.lambda = microns{lambda};
        obs.die_area = square_centimeters{area_cm2};
        obs.yield = probability{
            std::clamp(sim.mean_yield, 1e-4, 1.0 - 1e-4)};
        observations.push_back(obs);
    }
    const yield::scaled_model_fit fit =
        yield::fit_scaled_poisson(observations);
    EXPECT_NEAR(fit.d, d_true, 0.12);
    EXPECT_NEAR(fit.p, p_true, 0.45);
    EXPECT_GT(fit.r_squared, 0.98);
}

TEST(CrossModule, ForecastMatchesScenarioEvaluations) {
    core::scenario1 memory;
    core::scenario2 logic;
    const core::transistor_cost_forecast f =
        core::forecast_transistor_cost(memory, logic, 1990, 1995);
    for (const core::forecast_point& point : f.points) {
        EXPECT_NEAR(point.memory_ctr.value(),
                    memory.cost_per_transistor(point.lambda).value(),
                    1e-18);
        EXPECT_NEAR(point.logic_ctr.value(),
                    logic.cost_per_transistor(point.lambda).value(),
                    1e-18);
    }
}

TEST(CrossModule, ShrinkAgreesWithDirectEvaluations) {
    core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.6},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.8}},
        geometry::gross_die_method::maly_rows};
    core::product_spec product;
    product.transistors = 2e6;
    product.design_density = 160.0;
    product.feature_size = microns{0.8};

    const core::shrink_analysis a =
        core::analyze_shrink(process, product, microns{0.5});
    const core::cost_model model{process};
    core::product_spec shrunk = product;
    shrunk.feature_size = microns{0.5};
    EXPECT_DOUBLE_EQ(
        a.after.cost_per_good_die.value(),
        model.evaluate(shrunk).cost_per_good_die.value());
    EXPECT_DOUBLE_EQ(
        a.before.cost_per_good_die.value(),
        model.evaluate(product).cost_per_good_die.value());
}

TEST(CrossModule, SpatialYieldBracketsUniformYield) {
    // The radial profile's wafer-average yield lies between the center
    // (best) and edge (worst) Poisson yields, and below the yield a
    // uniform center-density wafer would give.
    yield::radial_defect_profile profile;
    profile.center_density = 0.6;
    profile.edge_severity = 2.5;
    const geometry::die die = geometry::die::square(millimeters{9.0});
    const yield::spatial_yield_result r = yield::evaluate_spatial_yield(
        geometry::wafer::six_inch(), die, profile);
    const double uniform_center = std::exp(
        -die.area().to_square_centimeters().value() * 0.6);
    EXPECT_LT(r.average_yield, uniform_center);
    EXPECT_GT(r.average_yield, r.edge_yield);
    EXPECT_LE(r.center_yield, uniform_center + 1e-12);
}

TEST(CrossModule, DerivedFablineSupportsMixComparison) {
    // The COO-derived line plugs into the product-mix machinery.
    const cost::fabline line = cost::derived_cmos_fabline(1.3);
    const cost::wafer_recipe mono = cost::fabline::generic_recipe(0.8, 2);
    const cost::mix_comparison cmp = cost::compare_mono_vs_multi(
        line, mono, 30000.0, cost::diverse_mix(6, 25.0));
    EXPECT_GT(cmp.cost_ratio, 1.5);
}

}  // namespace
}  // namespace silicon
