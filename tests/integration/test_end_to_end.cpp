// End-to-end integration tests chaining several subsystems the way a
// downstream user would: yield chain (distribution -> critical area ->
// Eq. 7), full product costing with test and packaging, and the analysis
// pipeline (sweep -> chart/table rendering).

#include "analysis/ascii_chart.hpp"
#include "analysis/contour.hpp"
#include "analysis/svg_chart.hpp"
#include "analysis/table.hpp"
#include "core/cost_model.hpp"
#include "cost/assembly.hpp"
#include "cost/test_cost.hpp"
#include "yield/critical_area.hpp"
#include "yield/monte_carlo.hpp"

#include <gtest/gtest.h>

namespace silicon {
namespace {

TEST(EndToEnd, DefectChainFromDistributionToEq7Shape) {
    // Build the Eq. (7) lambda-scaling empirically: shrink a layout's
    // geometry (wire width/spacing proportional to lambda) and watch the
    // average critical area of a *fixed* defect population grow roughly
    // like lambda^-(p-2) per unit layout area, the scaling Eq. (7)
    // asserts.
    const yield::defect_size_distribution sizes{0.6, 4.07};
    const auto faults_per_area = [&](double lambda) {
        yield::wire_array_layout layout;
        layout.line_width = lambda;
        layout.line_spacing = lambda;
        layout.line_length = 400.0;
        layout.line_count = 40;
        return yield::expected_faults(layout, sizes, 1e-4) /
               layout.area();
    };
    const double at_10 = faults_per_area(1.0);
    const double at_05 = faults_per_area(0.5);
    // Ratio should exceed the no-scaling value 1 decisively and be of the
    // order 2^(p-2) ~ 4.2 (boundary effects move it somewhat).
    EXPECT_GT(at_05 / at_10, 2.0);
    EXPECT_LT(at_05 / at_10, 9.0);
}

TEST(EndToEnd, MonteCarloAgreesWithAnalyticAcrossDensities) {
    const yield::defect_size_distribution sizes{0.6, 4.07};
    yield::wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 120.0;
    layout.line_count = 12;

    for (double density : {5e-5, 2e-4, 6e-4}) {
        yield::monte_carlo_config config;
        config.dies = 20000;
        config.defects_per_um2 = density;
        config.seed = 99;
        const auto mc =
            yield::simulate_layout_yield(layout, sizes, config);
        const double analytic =
            yield::layout_yield(layout, sizes, density);
        EXPECT_NEAR(mc.yield, analytic, 4.0 * mc.std_error + 0.015)
            << density;
    }
}

TEST(EndToEnd, FullProductCostWithTestAndPackage) {
    // Price a 2.8M-transistor CMOS uP end to end: silicon (Eq. 1), probe
    // and final test, packaging.  Checks the composition stays coherent
    // (every stage adds cost) and lands in a sane mid-90s range.
    core::process_spec process{
        cost::wafer_cost_model{dollars{700.0}, 1.8},
        geometry::wafer::six_inch(),
        yield::reference_die_yield{probability{0.7}},
        geometry::gross_die_method::maly_rows};
    core::product_spec product;
    product.name = "CMOS uP";
    product.transistors = 2.8e6;
    product.design_density = 102.0;
    product.feature_size = microns{0.65};

    const core::cost_breakdown silicon_cost =
        core::cost_model{process}.evaluate(product);

    cost::tester_spec tester;
    tester.rate_per_hour = dollars{1800.0};
    cost::test_program program;
    program.transistors = product.transistors;
    program.fault_coverage = 0.95;
    const cost::test_economics test = cost::evaluate_test_economics(
        tester, program, silicon_cost.yield, dollars{250.0});

    cost::package_spec package;
    package.pins = 273;
    package.cost_per_pin = dollars{0.03};
    const dollars die_plus_test =
        silicon_cost.cost_per_good_die + test.total_per_shipped_die;
    const dollars shipped = cost::packaged_part_cost(die_plus_test, package);

    EXPECT_GT(test.total_per_shipped_die.value(), 0.0);
    EXPECT_GT(shipped.value(), silicon_cost.cost_per_good_die.value());
    EXPECT_GT(shipped.value(), 10.0);
    EXPECT_LT(shipped.value(), 500.0);
}

TEST(EndToEnd, SweepToAsciiAndSvgPipeline) {
    core::process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::maly_rows};
    const core::cost_model model{process};
    core::product_spec product;
    product.transistors = 5e5;
    product.design_density = 152.0;

    analysis::series curve{"C_tr vs lambda"};
    for (double lambda : analysis::linspace(0.4, 1.2, 33)) {
        product.feature_size = microns{lambda};
        curve.add(lambda,
                  model.cost_per_transistor(product).value() * 1e6);
    }
    ASSERT_EQ(curve.size(), 33u);

    // Both renderers accept the series and produce non-trivial output.
    const std::string ascii = analysis::render_ascii_chart({curve});
    EXPECT_GT(ascii.size(), 200u);
    const std::string svg = analysis::render_svg_line_chart({curve});
    EXPECT_NE(svg.find("<polyline"), std::string::npos);

    // And a table of the same sweep.
    analysis::text_table table;
    table.add_column("lambda", analysis::align::right, 2);
    table.add_column("C_tr [u$]", analysis::align::right, 3);
    for (const analysis::point& p : curve.points()) {
        table.begin_row();
        table.add_number(p.x);
        table.add_number(p.y);
    }
    EXPECT_EQ(table.row_count(), curve.size());
    EXPECT_GT(table.to_string().size(), 300u);
}

TEST(EndToEnd, ContourGridOfCostSurfaceHasClosedOrOpenLines) {
    // A small Fig. 8-style surface through the real cost model.
    core::process_spec process{
        cost::wafer_cost_model{dollars{500.0}, 1.4},
        geometry::wafer::six_inch(),
        yield::scaled_poisson_model::fig8_calibration(),
        geometry::gross_die_method::area_ratio};
    const core::cost_model model{process};

    const auto cost_micro = [&](double lambda, double n_tr) {
        core::product_spec p;
        p.transistors = n_tr;
        p.design_density = 152.0;
        p.feature_size = microns{lambda};
        return model.cost_per_transistor(p).value() * 1e6;
    };
    const analysis::grid g = analysis::evaluate_grid(
        analysis::linspace(0.4, 1.2, 25),
        analysis::linspace(5e4, 5e5, 25), cost_micro);
    const double mid =
        0.5 * (g.min_value() + g.max_value());
    const auto lines = analysis::extract_contours(g, mid);
    EXPECT_FALSE(lines.empty());
}

}  // namespace
}  // namespace silicon
