// Tests for the sharding helpers, parallel_for and parallel_reduce.

#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace silicon::exec {
namespace {

TEST(ShardSeed, DistinctForAdjacentInputs) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        for (std::uint64_t shard = 0; shard < 64; ++shard) {
            seeds.insert(shard_seed(seed, shard));
        }
    }
    EXPECT_EQ(seeds.size(), 8u * 64u);
    // And it is a pure function.
    EXPECT_EQ(shard_seed(42, 3), shard_seed(42, 3));
}

TEST(ShardCount, CapsAtSixtyFourAndNeverExceedsItems) {
    EXPECT_EQ(shard_count_for(0), 0u);
    EXPECT_EQ(shard_count_for(1), 1u);
    EXPECT_EQ(shard_count_for(5), 5u);
    EXPECT_EQ(shard_count_for(64), 64u);
    EXPECT_EQ(shard_count_for(65), 64u);
    EXPECT_EQ(shard_count_for(1000000), 64u);
}

TEST(ShardOf, CoversRangeDisjointlyInOrder) {
    for (std::size_t items : {1u, 7u, 64u, 65u, 1000u}) {
        const std::size_t shards = shard_count_for(items);
        std::size_t expected_begin = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            const shard_range r = shard_of(items, shards, s);
            EXPECT_EQ(r.begin, expected_begin);
            EXPECT_EQ(r.index, s);
            EXPECT_EQ(r.count, shards);
            EXPECT_GE(r.size(), items / shards);
            EXPECT_LE(r.size(), items / shards + 1);
            expected_begin = r.end;
        }
        EXPECT_EQ(expected_begin, items);
    }
}

TEST(ShardOf, MoreShardsThanItemsLeavesEmptyTail) {
    // 3 items over 5 shards: the first three shards hold one item each.
    std::size_t covered = 0;
    for (std::size_t s = 0; s < 5; ++s) {
        const shard_range r = shard_of(3, 5, s);
        covered += r.size();
        EXPECT_EQ(r.size(), s < 3 ? 1u : 0u);
    }
    EXPECT_EQ(covered, 3u);
}

TEST(ShardOf, RejectsBadArguments) {
    EXPECT_THROW((void)shard_of(10, 0, 0), std::invalid_argument);
    EXPECT_THROW((void)shard_of(10, 4, 4), std::invalid_argument);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
    std::atomic<int> calls{0};
    parallel_for(0, 4, [&](const shard_range&) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleElementIsOneShard) {
    std::atomic<int> calls{0};
    parallel_for(1, 4, [&](const shard_range& r) {
        ++calls;
        EXPECT_EQ(r.begin, 0u);
        EXPECT_EQ(r.end, 1u);
        EXPECT_EQ(r.count, 1u);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, ShardDecompositionIsIndependentOfParallelism) {
    // The set of shard ranges a body observes must be the same at every
    // thread count — that is the determinism contract.
    const auto observe = [](unsigned parallelism) {
        std::mutex mutex;
        std::vector<shard_range> ranges;
        parallel_for(1000, parallelism, [&](const shard_range& r) {
            const std::lock_guard<std::mutex> lock(mutex);
            ranges.push_back(r);
        });
        std::sort(ranges.begin(), ranges.end(),
                  [](const shard_range& a, const shard_range& b) {
                      return a.index < b.index;
                  });
        return ranges;
    };
    const std::vector<shard_range> serial = observe(1);
    for (unsigned parallelism : {2u, 7u, 0u}) {
        const std::vector<shard_range> parallel = observe(parallelism);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t s = 0; s < serial.size(); ++s) {
            EXPECT_EQ(parallel[s].begin, serial[s].begin);
            EXPECT_EQ(parallel[s].end, serial[s].end);
            EXPECT_EQ(parallel[s].index, serial[s].index);
            EXPECT_EQ(parallel[s].count, serial[s].count);
        }
    }
}

TEST(ParallelFor, EveryItemVisitedExactlyOnce) {
    for (unsigned parallelism : {1u, 2u, 7u, 0u}) {
        std::vector<int> hits(517, 0);
        parallel_for(hits.size(), parallelism, [&](const shard_range& r) {
            for (std::size_t i = r.begin; i < r.end; ++i) {
                ++hits[i];  // disjoint across shards
            }
        });
        EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
                  static_cast<long>(hits.size()))
            << "parallelism=" << parallelism;
    }
}

TEST(ParallelFor, ExceptionPropagatesFromSerialAndParallelPaths) {
    for (unsigned parallelism : {1u, 4u}) {
        EXPECT_THROW(parallel_for(100, parallelism,
                                  [](const shard_range& r) {
                                      if (r.index == 2) {
                                          throw std::runtime_error("shard 2");
                                      }
                                  }),
                     std::runtime_error)
            << "parallelism=" << parallelism;
    }
}

TEST(ParallelFor, NestedUseDegradesToSerialSafely) {
    std::atomic<std::size_t> inner_total{0};
    parallel_for(8, 4, [&](const shard_range& outer) {
        // A nested parallel_for must not deadlock or throw; it runs the
        // same decomposition serially on this thread.
        std::size_t local = 0;
        parallel_for(10, 4, [&](const shard_range& inner) {
            local += inner.size();
        });
        EXPECT_EQ(local, 10u);
        inner_total += local * outer.size();
    });
    EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ParallelReduce, SumsMatchSerialFoldAtEveryParallelism) {
    const std::size_t n = 12345;
    const auto run = [&](unsigned parallelism) {
        return parallel_reduce(
            n, parallelism, std::size_t{0},
            [](const shard_range& r) {
                std::size_t s = 0;
                for (std::size_t i = r.begin; i < r.end; ++i) {
                    s += i;
                }
                return s;
            },
            [](std::size_t a, std::size_t b) { return a + b; });
    };
    const std::size_t expected = n * (n - 1) / 2;
    for (unsigned parallelism : {1u, 2u, 7u, 0u}) {
        EXPECT_EQ(run(parallelism), expected)
            << "parallelism=" << parallelism;
    }
}

TEST(ParallelReduce, FoldsInShardIndexOrder) {
    // Concatenation is non-commutative, so the folded string proves the
    // merge order is by shard index, not completion order.
    const auto run = [](unsigned parallelism) {
        return parallel_reduce(
            8, parallelism, std::string{},
            [](const shard_range& r) {
                return std::string(1, static_cast<char>('a' + r.index));
            },
            [](std::string a, std::string b) { return a + b; });
    };
    EXPECT_EQ(run(1), "abcdefgh");
    EXPECT_EQ(run(3), "abcdefgh");
    EXPECT_EQ(run(0), "abcdefgh");
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
    const int result = parallel_reduce(
        0, 4, 42, [](const shard_range&) { return 0; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace silicon::exec
