// Tests for the deterministic thread-pool engine.

#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace silicon::exec {
namespace {

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
    thread_pool pool{0};
    EXPECT_EQ(pool.thread_count(), thread_pool::hardware_threads());
    EXPECT_GE(thread_pool::hardware_threads(), 1u);
}

TEST(ThreadPool, RunExecutesEachTaskExactlyOnce) {
    thread_pool pool{4};
    std::vector<int> hits(257, 0);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
    thread_pool pool{4};
    std::atomic<int> calls{0};
    pool.run(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
    thread_pool pool{1};
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<std::size_t> order;
    pool.run(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ManyTasksOnFewThreads) {
    thread_pool pool{2};
    std::atomic<std::size_t> sum{0};
    pool.run(1000, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
}

TEST(ThreadPool, PoolIsReusableAcrossRuns) {
    thread_pool pool{3};
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> calls{0};
        pool.run(17, [&](std::size_t) { ++calls; });
        EXPECT_EQ(calls.load(), 17);
    }
}

TEST(ThreadPool, ExceptionFromWorkerPropagates) {
    thread_pool pool{4};
    EXPECT_THROW(pool.run(32,
                          [&](std::size_t i) {
                              if (i == 7) {
                                  throw std::runtime_error("task 7 failed");
                              }
                          }),
                 std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> calls{0};
    pool.run(8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ExceptionFromSingleThreadPoolPropagates) {
    thread_pool pool{1};
    EXPECT_THROW(
        pool.run(4, [](std::size_t) { throw std::domain_error("boom"); }),
        std::domain_error);
}

TEST(ThreadPool, NestedRunIsRejected) {
    thread_pool pool{4};
    std::atomic<int> rejections{0};
    pool.run(8, [&](std::size_t) {
        try {
            pool.run(1, [](std::size_t) {});
        } catch (const std::logic_error&) {
            ++rejections;
        }
    });
    EXPECT_EQ(rejections.load(), 8);
}

TEST(ThreadPool, NestedRunOnSingleThreadPoolIsRejected) {
    thread_pool pool{1};
    EXPECT_THROW(
        pool.run(1, [&](std::size_t) { pool.run(1, [](std::size_t) {}); }),
        std::logic_error);
}

TEST(ThreadPool, SharedPoolMatchesHardware) {
    thread_pool& pool = thread_pool::shared();
    EXPECT_EQ(pool.thread_count(), thread_pool::hardware_threads());
    std::atomic<int> calls{0};
    pool.run(11, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 11);
}

}  // namespace
}  // namespace silicon::exec
