#include "exec/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace {

using silicon::exec::arena;

TEST(Arena, AllocationsAreDistinctAndWritable) {
    arena a{256};
    char* p = static_cast<char*>(a.allocate(16));
    char* q = static_cast<char*>(a.allocate(16));
    ASSERT_NE(p, nullptr);
    ASSERT_NE(q, nullptr);
    EXPECT_NE(p, q);
    std::memset(p, 0xab, 16);
    std::memset(q, 0xcd, 16);
    EXPECT_EQ(static_cast<unsigned char>(p[15]), 0xab);
    EXPECT_EQ(static_cast<unsigned char>(q[0]), 0xcd);
}

TEST(Arena, ZeroByteAllocationReturnsUniquePointers) {
    arena a;
    void* p = a.allocate(0);
    void* q = a.allocate(0);
    EXPECT_NE(p, nullptr);
    EXPECT_NE(p, q);
}

TEST(Arena, RespectsAlignment) {
    arena a{512};
    a.allocate(1);  // misalign the cursor
    for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
        auto addr = reinterpret_cast<std::uintptr_t>(a.allocate(3, align));
        EXPECT_EQ(addr % align, 0u) << "alignment " << align;
        a.allocate(1);  // re-misalign for the next round
    }
}

TEST(Arena, ResetRewindsWithoutReleasingChunks) {
    arena a{128};
    for (int i = 0; i < 100; ++i) {
        a.allocate(32);
    }
    const std::size_t reserved = a.bytes_reserved();
    const std::size_t chunks = a.chunk_count();
    EXPECT_GT(chunks, 1u);
    EXPECT_EQ(a.bytes_allocated(), 3200u);

    a.reset();
    EXPECT_EQ(a.bytes_allocated(), 0u);
    EXPECT_EQ(a.bytes_reserved(), reserved);
    EXPECT_EQ(a.chunk_count(), chunks);

    // The same workload after reset reuses the retained chunks: no growth.
    for (int i = 0; i < 100; ++i) {
        a.allocate(32);
    }
    EXPECT_EQ(a.bytes_reserved(), reserved);
    EXPECT_EQ(a.chunk_count(), chunks);
}

TEST(Arena, ResetRecyclesAddresses) {
    arena a{256};
    void* first = a.allocate(64);
    a.allocate(64);
    a.reset();
    void* again = a.allocate(64);
    EXPECT_EQ(first, again);
}

TEST(Arena, OversizeAllocationGetsDedicatedChunk) {
    arena a{128};
    a.allocate(16);
    // Far larger than the chunk size: must still succeed.
    char* big = static_cast<char*>(a.allocate(4096));
    ASSERT_NE(big, nullptr);
    std::memset(big, 0x5a, 4096);
    EXPECT_GE(a.bytes_reserved(), 4096u + 128u);

    // Small allocations keep working after the oversize one.
    void* small = a.allocate(16);
    EXPECT_NE(small, nullptr);

    // After reset the dedicated chunk is retained and reused.
    const std::size_t reserved = a.bytes_reserved();
    a.reset();
    a.allocate(16);
    char* big2 = static_cast<char*>(a.allocate(4096));
    ASSERT_NE(big2, nullptr);
    EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(Arena, CountersTrackUserBytes) {
    arena a{1024};
    EXPECT_EQ(a.bytes_allocated(), 0u);
    EXPECT_EQ(a.lifetime_bytes(), 0u);
    a.allocate(10);
    a.allocate(20);
    EXPECT_EQ(a.bytes_allocated(), 30u);
    EXPECT_EQ(a.lifetime_bytes(), 30u);
    a.reset();
    EXPECT_EQ(a.bytes_allocated(), 0u);
    EXPECT_EQ(a.lifetime_bytes(), 30u);  // lifetime counter is monotonic
    a.allocate(5);
    EXPECT_EQ(a.bytes_allocated(), 5u);
    EXPECT_EQ(a.lifetime_bytes(), 35u);
}

TEST(Arena, ReleaseFreesEverything) {
    arena a{128};
    a.allocate(1000);
    EXPECT_GT(a.bytes_reserved(), 0u);
    a.release();
    EXPECT_EQ(a.bytes_reserved(), 0u);
    EXPECT_EQ(a.chunk_count(), 0u);
    // Still usable afterwards.
    EXPECT_NE(a.allocate(64), nullptr);
}

TEST(Arena, MakeConstructsInPlace) {
    struct pod {
        int a;
        double b;
    };
    arena a;
    pod* p = a.make<pod>(pod{7, 2.5});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->a, 7);
    EXPECT_EQ(p->b, 2.5);

    double* xs = a.make_array<double>(16);
    ASSERT_NE(xs, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(xs) % alignof(double), 0u);
    EXPECT_EQ(a.make_array<double>(0), nullptr);
}

TEST(Arena, CopyDuplicatesBytes) {
    arena a;
    const char src[] = "hello arena";
    const char* dup = a.copy(src, sizeof(src));
    ASSERT_NE(dup, nullptr);
    EXPECT_NE(dup, src);
    EXPECT_EQ(std::memcmp(dup, src, sizeof(src)), 0);
}

TEST(Arena, ManyMixedAllocationsStayDisjoint) {
    arena a{256};
    std::vector<std::pair<char*, std::size_t>> blocks;
    std::size_t want = 1;
    for (int i = 0; i < 200; ++i) {
        auto* p = static_cast<char*>(a.allocate(want, 8));
        std::memset(p, i & 0xff, want);
        blocks.emplace_back(p, want);
        want = (want * 7 + 3) % 97 + 1;
    }
    // Verify no block was overwritten by a later one.
    std::size_t i = 0;
    want = 1;
    for (auto& [p, n] : blocks) {
        for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(static_cast<unsigned char>(p[j]), i & 0xff);
        }
        ++i;
    }
}

}  // namespace
