// Tests for (D, p) extraction from yield observations.

#include "yield/extraction.hpp"

#include "yield/scaled.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(Extraction, RecoversExactGroundTruth) {
    // Generate noiseless observations from the Fig. 8 calibration and
    // extract: D and p must come back exactly.
    const scaled_poisson_model truth =
        scaled_poisson_model::fig8_calibration();
    std::vector<yield_observation> observations;
    for (double lambda : {1.0, 0.8, 0.65, 0.5, 0.35}) {
        yield_observation obs;
        obs.lambda = microns{lambda};
        obs.die_area = square_centimeters{0.08};
        obs.yield = truth.yield(obs.die_area, obs.lambda);
        observations.push_back(obs);
    }
    const scaled_model_fit fit = fit_scaled_poisson(observations);
    EXPECT_NEAR(fit.d, 1.72, 1e-9);
    EXPECT_NEAR(fit.p, 4.07, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Extraction, MixedDieAreasStillRecover) {
    const scaled_poisson_model truth{0.9, 4.5};
    std::vector<yield_observation> observations;
    double area = 0.02;
    for (double lambda : {1.0, 0.8, 0.6, 0.4}) {
        yield_observation obs;
        obs.lambda = microns{lambda};
        obs.die_area = square_centimeters{area};
        obs.yield = truth.yield(obs.die_area, obs.lambda);
        observations.push_back(obs);
        area *= 1.7;  // different product per node, as in real data
    }
    const scaled_model_fit fit = fit_scaled_poisson(observations);
    EXPECT_NEAR(fit.d, 0.9, 1e-9);
    EXPECT_NEAR(fit.p, 4.5, 1e-9);
}

TEST(Extraction, ToleratesMultiplicativeNoise) {
    const scaled_poisson_model truth{1.5, 4.0};
    std::vector<yield_observation> observations;
    // +-10% perturbation of the fault count, alternating sign.
    double sign = 1.0;
    for (double lambda : {1.0, 0.85, 0.7, 0.55, 0.45, 0.35}) {
        const square_centimeters area{0.05};
        const double faults =
            -std::log(truth.yield(area, microns{lambda}).value());
        yield_observation obs;
        obs.lambda = microns{lambda};
        obs.die_area = area;
        obs.yield = probability{std::exp(-faults * (1.0 + 0.1 * sign))};
        observations.push_back(obs);
        sign = -sign;
    }
    const scaled_model_fit fit = fit_scaled_poisson(observations);
    EXPECT_NEAR(fit.d, 1.5, 0.3);
    EXPECT_NEAR(fit.p, 4.0, 0.45);
    EXPECT_GT(fit.r_squared, 0.97);
}

TEST(Extraction, RejectsDegenerateInput) {
    EXPECT_THROW((void)fit_scaled_poisson({}), std::invalid_argument);
    yield_observation one;
    one.yield = probability{0.5};
    EXPECT_THROW((void)fit_scaled_poisson({one}), std::invalid_argument);

    yield_observation saturated = one;
    saturated.yield = probability{1.0};
    EXPECT_THROW((void)fit_scaled_poisson({one, saturated}),
                 std::invalid_argument);

    yield_observation dead = one;
    dead.yield = probability{0.0};
    EXPECT_THROW((void)fit_scaled_poisson({one, dead}),
                 std::invalid_argument);

    // Two observations at the same lambda: the regression cannot
    // identify p.
    yield_observation same = one;
    same.yield = probability{0.4};
    EXPECT_THROW((void)fit_scaled_poisson({one, same}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::yield
