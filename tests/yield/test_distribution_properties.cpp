// Deeper statistical property tests: Kolmogorov-style agreement between
// the defect sampler and its analytic CDF, and structural properties of
// the critical-area integrals the benches depend on.

#include "yield/critical_area.hpp"
#include "yield/defect.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace silicon::yield {
namespace {

TEST(DefectSampling, EmpiricalCdfMatchesAnalytic) {
    // Kolmogorov-Smirnov style: for n = 100k inverse-CDF samples the
    // empirical CDF must stay within ~5/sqrt(n) of the analytic one
    // everywhere (generous bound, the sampler is exact).
    const defect_size_distribution d{0.6, 4.07};
    const std::size_t n = 100000;
    std::vector<double> radii = d.sample(n, 12345);
    std::sort(radii.begin(), radii.end());
    double worst = 0.0;
    for (std::size_t i = 0; i < n; i += 97) {
        const double empirical =
            static_cast<double>(i + 1) / static_cast<double>(n);
        worst = std::max(worst,
                         std::abs(empirical - d.cdf(radii[i])));
    }
    EXPECT_LT(worst, 5.0 / std::sqrt(static_cast<double>(n)));
}

TEST(DefectSampling, TailFractionMatchesSurvival) {
    const defect_size_distribution d{0.5, 4.5};
    const std::size_t n = 200000;
    const auto radii = d.sample(n, 777);
    const double threshold = 1.5;
    std::size_t above = 0;
    for (double r : radii) {
        if (r > threshold) {
            ++above;
        }
    }
    const double fraction = static_cast<double>(above) / n;
    EXPECT_NEAR(fraction, d.survival(threshold),
                4.0 * std::sqrt(d.survival(threshold) / n) + 1e-4);
}

TEST(CriticalArea, MonotoneInLineCount) {
    const defect_size_distribution d{0.6, 4.07};
    double previous = 0.0;
    for (int lines : {2, 5, 10, 20, 40}) {
        wire_array_layout layout;
        layout.line_width = 1.0;
        layout.line_spacing = 1.2;
        layout.line_length = 100.0;
        layout.line_count = lines;
        const double ca =
            average_critical_area(layout, fault_kind::short_circuit, d);
        EXPECT_GT(ca, previous) << lines;
        previous = ca;
    }
}

TEST(CriticalArea, ScalesLinearlyWithLineLength) {
    const defect_size_distribution d{0.6, 4.07};
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_count = 10;
    layout.line_length = 100.0;
    const double base =
        average_critical_area(layout, fault_kind::open_circuit, d);
    layout.line_length = 300.0;
    const double tripled =
        average_critical_area(layout, fault_kind::open_circuit, d);
    EXPECT_NEAR(tripled / base, 3.0, 0.02);
}

TEST(CriticalArea, SmallerDefectsMeanFewerFaults) {
    // Shrinking R_0 (finer contamination control) cuts the average
    // critical area monotonically — the Fig. 4 "required defect size
    // control" mechanism at the layout level.
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 100.0;
    layout.line_count = 10;
    double previous = 1e300;
    for (double r0 : {1.2, 0.9, 0.6, 0.4, 0.25}) {
        const defect_size_distribution d{r0, 4.07};
        const double faults = expected_faults(layout, d, 1e-4);
        EXPECT_LT(faults, previous) << r0;
        previous = faults;
    }
}

TEST(CriticalArea, HeavierTailMeansMoreFaults) {
    // Smaller p = fatter tail of large defects = more critical area.
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.2;
    layout.line_length = 100.0;
    layout.line_count = 10;
    double previous = 0.0;
    for (double p : {5.0, 4.07, 3.0, 2.5}) {
        const defect_size_distribution d{0.6, p};
        const double faults = expected_faults(layout, d, 1e-4);
        EXPECT_GT(faults, previous) << p;
        previous = faults;
    }
}

TEST(CriticalArea, QExponentShiftsMassBelowR0) {
    // Higher q pushes probability mass toward R_0 (bigger "small"
    // defects): more short-critical area for sub-threshold-heavy
    // layouts whose spacing sits below R_0.
    wire_array_layout layout;
    layout.line_width = 0.4;
    layout.line_spacing = 0.3;  // below r0: the body branch matters
    layout.line_length = 100.0;
    layout.line_count = 10;
    const defect_size_distribution flat{0.6, 4.07, 0.0};
    const defect_size_distribution rising{0.6, 4.07, 2.0};
    EXPECT_GT(
        average_critical_area(layout, fault_kind::short_circuit, rising),
        average_critical_area(layout, fault_kind::short_circuit, flat));
}

}  // namespace
}  // namespace silicon::yield
