// Tests for analytical critical-area extraction.

#include "yield/critical_area.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

wire_array_layout standard_layout() {
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.5;
    layout.line_length = 200.0;
    layout.line_count = 20;
    return layout;
}

TEST(WireArrayLayout, AreaAndPitch) {
    const wire_array_layout layout = standard_layout();
    EXPECT_DOUBLE_EQ(layout.pitch(), 2.5);
    // 20 lines * 1.0 + 19 gaps * 1.5 = 48.5 height.
    EXPECT_DOUBLE_EQ(layout.area(), 200.0 * 48.5);
}

TEST(WireArrayLayout, ValidationRejectsBadDimensions) {
    wire_array_layout layout = standard_layout();
    layout.line_width = 0.0;
    EXPECT_THROW((void)layout.validate(), std::invalid_argument);
    layout = standard_layout();
    layout.line_count = 0;
    EXPECT_THROW((void)layout.validate(), std::invalid_argument);
}

TEST(CriticalArea, ZeroBelowThreshold) {
    const wire_array_layout layout = standard_layout();
    EXPECT_DOUBLE_EQ(
        critical_area(layout, fault_kind::short_circuit, 1.5), 0.0);
    EXPECT_DOUBLE_EQ(
        critical_area(layout, fault_kind::open_circuit, 1.0), 0.0);
}

TEST(CriticalArea, LinearAboveThreshold) {
    const wire_array_layout layout = standard_layout();
    // Shorts: slope (N-1) * L = 19 * 200 = 3800 per um above s = 1.5.
    EXPECT_NEAR(critical_area(layout, fault_kind::short_circuit, 2.0),
                3800.0 * 0.5, 1e-9);
    // Opens: slope N * L = 4000 above w = 1.0.
    EXPECT_NEAR(critical_area(layout, fault_kind::open_circuit, 1.4),
                4000.0 * 0.4, 1e-6);
}

TEST(CriticalArea, CappedAtLayoutArea) {
    const wire_array_layout layout = standard_layout();
    const double giant = 1e6;
    EXPECT_DOUBLE_EQ(
        critical_area(layout, fault_kind::short_circuit, giant),
        layout.area());
}

TEST(CriticalArea, SingleWireHasNoShortMechanism) {
    wire_array_layout layout = standard_layout();
    layout.line_count = 1;
    EXPECT_DOUBLE_EQ(
        critical_area(layout, fault_kind::short_circuit, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(
        average_critical_area(layout, fault_kind::short_circuit,
                              defect_size_distribution{0.5, 4.0}),
        0.0);
}

TEST(AverageCriticalArea, ClosedFormMatchesQuadrature) {
    const wire_array_layout layout = standard_layout();
    for (double p : {3.0, 4.07, 5.0}) {
        const defect_size_distribution d{0.8, p};
        for (const fault_kind kind :
             {fault_kind::short_circuit, fault_kind::open_circuit}) {
            const double analytic =
                average_critical_area(layout, kind, d);
            const double numeric =
                average_critical_area_numeric(layout, kind, d, 1 << 15);
            EXPECT_NEAR(numeric / analytic, 1.0, 2e-4)
                << "p=" << p << " kind=" << static_cast<int>(kind);
        }
    }
}

TEST(AverageCriticalArea, HandlesPEqualTwoTail) {
    // p = 2 triggers the logarithmic antiderivative branch.
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{0.8, 2.0};
    const double analytic =
        average_critical_area(layout, fault_kind::short_circuit, d);
    const double numeric = average_critical_area_numeric(
        layout, fault_kind::short_circuit, d, 1 << 15);
    EXPECT_NEAR(numeric / analytic, 1.0, 2e-4);
}

TEST(AverageCriticalArea, GrowsWhenSpacingShrinks) {
    const defect_size_distribution d{0.8, 4.0};
    wire_array_layout tight = standard_layout();
    tight.line_spacing = 0.8;
    wire_array_layout loose = standard_layout();
    loose.line_spacing = 2.5;
    EXPECT_GT(
        average_critical_area(tight, fault_kind::short_circuit, d),
        average_critical_area(loose, fault_kind::short_circuit, d));
}

TEST(AverageCriticalArea, BoundedByLayoutArea) {
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{50.0, 3.0};  // huge defects
    const double avg =
        average_critical_area(layout, fault_kind::short_circuit, d);
    EXPECT_LE(avg, layout.area() * (1.0 + 1e-12));
    EXPECT_GT(avg, 0.0);
}

TEST(ExpectedFaults, ScalesLinearlyWithDensity) {
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{0.8, 4.0};
    const double one = expected_faults(layout, d, 1e-6);
    const double ten = expected_faults(layout, d, 1e-5);
    EXPECT_NEAR(ten / one, 10.0, 1e-9);
}

TEST(ExpectedFaults, FractionInterpolatesMechanisms) {
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{0.8, 4.0};
    const double all_shorts = expected_faults(layout, d, 1e-5, 1.0);
    const double all_opens = expected_faults(layout, d, 1e-5, 0.0);
    const double half = expected_faults(layout, d, 1e-5, 0.5);
    EXPECT_NEAR(half, 0.5 * (all_shorts + all_opens), 1e-12);
}

TEST(LayoutYield, ExponentialInFaults) {
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{0.8, 4.0};
    const double mu = expected_faults(layout, d, 2e-6);
    EXPECT_NEAR(layout_yield(layout, d, 2e-6), std::exp(-mu), 1e-12);
}

TEST(ExpectedFaults, RejectsBadInputs) {
    const wire_array_layout layout = standard_layout();
    const defect_size_distribution d{0.8, 4.0};
    EXPECT_THROW((void)expected_faults(layout, d, -1.0), std::invalid_argument);
    EXPECT_THROW((void)expected_faults(layout, d, 1.0, 1.5),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::yield
