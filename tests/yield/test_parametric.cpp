// Tests for the parametric yield model.

#include "yield/parametric.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(NormalCdf, KnownValues) {
    EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(standard_normal_cdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(standard_normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
    EXPECT_NEAR(standard_normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(ParameterSpec, CenteredWindowPassProbability) {
    // +-3 sigma window: ~99.73%.
    parameter_spec spec;
    spec.mean = 0.0;
    spec.sigma = 1.0;
    spec.lower = -3.0;
    spec.upper = 3.0;
    EXPECT_NEAR(spec.pass_probability().value(), 0.9973002039367398, 1e-9);
    EXPECT_NEAR(spec.cpk(), 1.0, 1e-12);
}

TEST(ParameterSpec, OneSidedWindow) {
    parameter_spec spec;
    spec.mean = 10.0;
    spec.sigma = 2.0;
    spec.upper = 12.0;  // lower unbounded
    EXPECT_NEAR(spec.pass_probability().value(),
                standard_normal_cdf(1.0), 1e-9);
}

TEST(ParameterSpec, OffCenterMeanLowersYield) {
    parameter_spec centered;
    centered.lower = -3.0;
    centered.upper = 3.0;
    parameter_spec shifted = centered;
    shifted.mean = 1.5;
    EXPECT_GT(centered.pass_probability().value(),
              shifted.pass_probability().value());
    EXPECT_GT(centered.cpk(), shifted.cpk());
}

TEST(ParameterSpec, RejectsNonPositiveSigma) {
    parameter_spec spec;
    spec.sigma = 0.0;
    EXPECT_THROW((void)spec.pass_probability(), std::invalid_argument);
    EXPECT_THROW((void)spec.cpk(), std::invalid_argument);
}

TEST(ParametricModel, EmptyModelYieldsOne) {
    const parametric_yield_model model;
    EXPECT_DOUBLE_EQ(model.yield().value(), 1.0);
    EXPECT_EQ(model.dominant_loss(), nullptr);
}

TEST(ParametricModel, IndependentParametersMultiply) {
    parametric_yield_model model;
    parameter_spec a;
    a.name = "delay";
    a.lower = -2.0;
    a.upper = 2.0;
    parameter_spec b;
    b.name = "power";
    b.lower = -1.0;
    b.upper = 1.0;
    model.add_parameter(a);
    model.add_parameter(b);
    EXPECT_NEAR(model.yield().value(),
                a.pass_probability().value() * b.pass_probability().value(),
                1e-12);
}

TEST(ParametricModel, DominantLossIsTightestWindow) {
    parametric_yield_model model;
    parameter_spec loose;
    loose.name = "loose";
    loose.lower = -4.0;
    loose.upper = 4.0;
    parameter_spec tight;
    tight.name = "tight";
    tight.lower = -0.5;
    tight.upper = 0.5;
    model.add_parameter(loose);
    model.add_parameter(tight);
    ASSERT_NE(model.dominant_loss(), nullptr);
    EXPECT_EQ(model.dominant_loss()->name, "tight");
}

TEST(ParametricModel, RejectsEmptyWindow) {
    parametric_yield_model model;
    parameter_spec spec;
    spec.lower = 1.0;
    spec.upper = 1.0;
    EXPECT_THROW((void)model.add_parameter(spec), std::invalid_argument);
}

TEST(CompositeYield, MultipliesComponents) {
    EXPECT_NEAR(
        composite_yield(probability{0.8}, probability{0.9}).value(), 0.72,
        1e-12);
}

}  // namespace
}  // namespace silicon::yield
