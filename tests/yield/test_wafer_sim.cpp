// Tests for the whole-wafer Monte-Carlo yield simulation.

#include "yield/wafer_sim.hpp"

#include "yield/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

geometry::wafer six_inch() { return geometry::wafer::six_inch(); }
geometry::die medium_die() {
    return geometry::die::square(millimeters{12.0});
}

TEST(GammaSample, MeanAndVarianceMatchShape) {
    splitmix64 rng{11};
    for (double shape : {0.5, 1.0, 2.0, 8.0}) {
        const int n = 40000;
        double sum = 0.0;
        double sum2 = 0.0;
        for (int i = 0; i < n; ++i) {
            const double g = gamma_sample(shape, rng);
            sum += g;
            sum2 += g * g;
        }
        const double mean = sum / n;
        const double var = sum2 / n - mean * mean;
        EXPECT_NEAR(mean, shape, 0.05 * shape + 0.02) << shape;
        EXPECT_NEAR(var, shape, 0.12 * shape + 0.05) << shape;
    }
}

TEST(GammaSample, RejectsNonPositiveShape) {
    splitmix64 rng{1};
    EXPECT_THROW((void)gamma_sample(0.0, rng), std::invalid_argument);
}

TEST(WaferSim, ZeroDensityYieldsEverything) {
    wafer_sim_config config;
    config.wafers = 10;
    config.defects_per_cm2 = 0.0;
    const wafer_sim_result result =
        simulate_wafers(six_inch(), medium_die(), config);
    EXPECT_DOUBLE_EQ(result.mean_yield, 1.0);
    EXPECT_DOUBLE_EQ(result.yield_stddev, 0.0);
    EXPECT_EQ(result.total_defects, 0u);
}

TEST(WaferSim, UniformProcessMatchesPoissonModel) {
    // Per-die expected faults = D * A_die (fault probability 1); mean
    // yield over many wafers approaches exp(-D A).
    wafer_sim_config config;
    config.wafers = 300;
    config.defects_per_cm2 = 0.5;
    config.seed = 42;
    const geometry::die d = medium_die();
    const wafer_sim_result result =
        simulate_wafers(six_inch(), d, config);
    const double area_cm2 =
        d.area().to_square_centimeters().value();
    const double expected = std::exp(-config.defects_per_cm2 * area_cm2);
    EXPECT_NEAR(result.mean_yield, expected, 0.02);
}

TEST(WaferSim, FaultProbabilityThinsDefects) {
    wafer_sim_config all;
    all.wafers = 200;
    all.defects_per_cm2 = 0.5;
    all.fault_probability = 1.0;
    wafer_sim_config half = all;
    half.fault_probability = 0.5;
    const auto y_all = simulate_wafers(six_inch(), medium_die(), all);
    const auto y_half = simulate_wafers(six_inch(), medium_die(), half);
    EXPECT_GT(y_half.mean_yield, y_all.mean_yield);
    const double area_cm2 =
        medium_die().area().to_square_centimeters().value();
    EXPECT_NEAR(y_half.mean_yield, std::exp(-0.25 * area_cm2), 0.02);
}

TEST(WaferSim, ClusteringRaisesMeanYieldAndSpread) {
    // The negative-binomial prediction: at equal mean density, clustered
    // defects concentrate on fewer wafers, raising mean yield while
    // widening the wafer-to-wafer spread.
    wafer_sim_config uniform;
    uniform.wafers = 400;
    uniform.defects_per_cm2 = 1.0;
    uniform.seed = 7;
    wafer_sim_config clustered = uniform;
    clustered.process = defect_process::clustered;
    clustered.cluster_alpha = 1.0;

    const auto u = simulate_wafers(six_inch(), medium_die(), uniform);
    const auto c = simulate_wafers(six_inch(), medium_die(), clustered);
    EXPECT_GT(c.mean_yield, u.mean_yield);
    EXPECT_GT(c.yield_stddev, 2.0 * u.yield_stddev);
}

TEST(WaferSim, ClusteredMeanMatchesNegativeBinomial) {
    wafer_sim_config config;
    config.wafers = 600;
    config.defects_per_cm2 = 1.0;
    config.process = defect_process::clustered;
    config.cluster_alpha = 2.0;
    config.seed = 99;
    const geometry::die d = medium_die();
    const auto result = simulate_wafers(six_inch(), d, config);

    const double area_cm2 = d.area().to_square_centimeters().value();
    const negative_binomial_model nb{config.cluster_alpha};
    const double predicted =
        nb.yield(config.defects_per_cm2 * area_cm2).value();
    EXPECT_NEAR(result.mean_yield, predicted, 0.03);
}

TEST(WaferSim, MapCountsMatchDieGrid) {
    wafer_sim_config config;
    config.wafers = 1;
    config.defects_per_cm2 = 1.0;
    config.seed = 3;
    const auto result =
        simulate_wafers(six_inch(), medium_die(), config);
    long mapped = 0;
    for (char ch : result.last_wafer_map) {
        if (ch == '#' || ch == 'x') {
            ++mapped;
        }
    }
    EXPECT_EQ(mapped, result.dies_per_wafer);
    EXPECT_GT(result.dies_per_wafer, 50);
}

TEST(WaferSim, Deterministic) {
    wafer_sim_config config;
    config.wafers = 20;
    config.defects_per_cm2 = 0.8;
    const auto a = simulate_wafers(six_inch(), medium_die(), config);
    const auto b = simulate_wafers(six_inch(), medium_die(), config);
    EXPECT_EQ(a.wafer_yields, b.wafer_yields);
}

TEST(WaferSim, RejectsBadInputs) {
    wafer_sim_config config;
    config.wafers = 0;
    EXPECT_THROW(
        (void)simulate_wafers(six_inch(), medium_die(), config),
        std::invalid_argument);
    config.wafers = 1;
    config.defects_per_cm2 = -1.0;
    EXPECT_THROW(
        (void)simulate_wafers(six_inch(), medium_die(), config),
        std::invalid_argument);
    config.defects_per_cm2 = 1.0;
    config.fault_probability = 2.0;
    EXPECT_THROW(
        (void)simulate_wafers(six_inch(), medium_die(), config),
        std::invalid_argument);
    config.fault_probability = 1.0;
    EXPECT_THROW(
        (void)simulate_wafers(six_inch(),
                              geometry::die::square(millimeters{500.0}),
                              config),
        std::invalid_argument);
}

}  // namespace
}  // namespace silicon::yield
