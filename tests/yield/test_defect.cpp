// Tests for the defect size distribution (Fig. 5).

#include "yield/defect.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(DefectDistribution, RejectsBadParameters) {
    EXPECT_THROW((void)(defect_size_distribution{0.0, 3.0}), std::invalid_argument);
    EXPECT_THROW((void)(defect_size_distribution{1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW((void)(defect_size_distribution{1.0, 3.0, -1.0}),
                 std::invalid_argument);
}

TEST(DefectDistribution, PdfIsContinuousAtR0) {
    const defect_size_distribution d{0.5, 4.0};
    const double below = d.pdf(0.5 - 1e-12);
    const double above = d.pdf(0.5 + 1e-12);
    EXPECT_NEAR(below, above, 1e-6 * below);
}

TEST(DefectDistribution, PdfZeroForNonPositiveRadius) {
    const defect_size_distribution d{0.5, 4.0};
    EXPECT_DOUBLE_EQ(d.pdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
}

TEST(DefectDistribution, PdfIntegratesToOne) {
    const defect_size_distribution d{0.8, 4.07};
    // Trapezoid over the body + analytic tail check via cdf at a large r.
    EXPECT_NEAR(d.cdf(1e6), 1.0, 1e-9);
}

TEST(DefectDistribution, CdfMonotone) {
    const defect_size_distribution d{0.6, 3.5};
    double previous = -1.0;
    for (double r = 0.0; r < 10.0; r += 0.05) {
        const double c = d.cdf(r);
        EXPECT_GE(c, previous);
        previous = c;
    }
}

TEST(DefectDistribution, SurvivalComplementsCdf) {
    const defect_size_distribution d{0.6, 4.5};
    for (double r : {0.1, 0.4, 0.6, 1.0, 3.0, 10.0}) {
        EXPECT_NEAR(d.survival(r), 1.0 - d.cdf(r), 1e-12) << r;
    }
}

TEST(DefectDistribution, TailDecaysAsPowerLaw) {
    const defect_size_distribution d{0.5, 4.0};
    // f(2r)/f(r) = 2^-p on the tail.
    const double ratio = d.pdf(4.0) / d.pdf(2.0);
    EXPECT_NEAR(ratio, std::pow(2.0, -4.0), 1e-12);
}

TEST(DefectDistribution, MassesSumToOne) {
    const defect_size_distribution d{0.7, 4.2, 1.0};
    EXPECT_NEAR(d.tail_mass() + d.cdf(d.r0()), 1.0, 1e-12);
}

TEST(DefectDistribution, MomentZeroIsOne) {
    const defect_size_distribution d{0.5, 4.0};
    EXPECT_DOUBLE_EQ(d.moment(0), 1.0);
}

TEST(DefectDistribution, MeanMatchesQuadrature) {
    const defect_size_distribution d{0.5, 4.07};
    // Simpson over [0, 200] captures essentially all mass for p > 2.
    double integral = 0.0;
    const int n = 200000;
    const double h = 200.0 / n;
    for (int i = 0; i <= n; ++i) {
        const double r = i * h;
        const double w = (i == 0 || i == n) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
        integral += w * r * d.pdf(r);
    }
    integral *= h / 3.0;
    EXPECT_NEAR(d.mean(), integral, 1e-3 * d.mean());
}

TEST(DefectDistribution, MomentDivergesWhenPTooSmall) {
    const defect_size_distribution d{0.5, 2.5};
    EXPECT_NO_THROW((void)d.moment(1));
    EXPECT_THROW((void)d.moment(2), std::domain_error);
}

TEST(DefectDistribution, QuantileInvertsCdf) {
    const defect_size_distribution d{0.5, 4.0};
    for (double u : {0.01, 0.2, 0.5, 0.8, 0.99, 0.9999}) {
        const double r = d.quantile(u);
        EXPECT_NEAR(d.cdf(r), u, 1e-10) << u;
    }
}

TEST(DefectDistribution, QuantileRejectsOutOfRange) {
    const defect_size_distribution d{0.5, 4.0};
    EXPECT_THROW((void)d.quantile(-0.1), std::invalid_argument);
    EXPECT_THROW((void)d.quantile(1.0), std::invalid_argument);
}

TEST(DefectDistribution, SamplingMatchesMean) {
    const defect_size_distribution d{0.5, 4.5};
    const auto radii = d.sample(200000, 42);
    double sum = 0.0;
    for (double r : radii) {
        sum += r;
    }
    const double sample_mean = sum / static_cast<double>(radii.size());
    EXPECT_NEAR(sample_mean, d.mean(), 0.01 * d.mean());
}

TEST(DefectDistribution, SamplingIsDeterministic) {
    const defect_size_distribution d{0.5, 4.0};
    EXPECT_EQ(d.sample(100, 7), d.sample(100, 7));
    EXPECT_NE(d.sample(100, 7), d.sample(100, 8));
}

TEST(SplitMix64, KnownFirstValue) {
    // Reference value of SplitMix64 seeded with 0 (public test vector).
    splitmix64 rng{0};
    EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64, DoublesInUnitInterval) {
    splitmix64 rng{123};
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.next_double();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

// Parameterized property: normalization holds across the (r0, p, q) space.
class DefectNormalization
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DefectNormalization, CdfReachesOne) {
    const auto [r0, p, q] = GetParam();
    const defect_size_distribution d{r0, p, q};
    EXPECT_NEAR(d.cdf(1e9), 1.0, 1e-6);
    EXPECT_NEAR(d.tail_mass() + d.cdf(d.r0()), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSpace, DefectNormalization,
    ::testing::Combine(::testing::Values(0.1, 0.5, 2.0),
                       ::testing::Values(2.5, 4.07, 5.0),
                       ::testing::Values(0.0, 1.0, 2.0)));

}  // namespace
}  // namespace silicon::yield
