// Tests for the repairable-memory yield model.

#include "yield/redundancy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(PoissonCdf, KnownValues) {
    EXPECT_NEAR(poisson_cdf(0, 1.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(poisson_cdf(1, 1.0), 2.0 * std::exp(-1.0), 1e-12);
    EXPECT_NEAR(poisson_cdf(2, 2.0), std::exp(-2.0) * (1.0 + 2.0 + 2.0),
                1e-12);
}

TEST(PoissonCdf, NegativeKIsZero) {
    EXPECT_DOUBLE_EQ(poisson_cdf(-1, 2.0), 0.0);
}

TEST(PoissonCdf, LargeKApproachesOne) {
    EXPECT_NEAR(poisson_cdf(100, 5.0), 1.0, 1e-12);
}

TEST(PoissonCdf, LargeMeanDoesNotOverflow) {
    const double cdf = poisson_cdf(1000, 1000.0);
    EXPECT_GT(cdf, 0.4);
    EXPECT_LT(cdf, 0.6);  // median of Poisson(1000) is ~1000
}

TEST(PoissonCdf, RejectsNegativeMean) {
    EXPECT_THROW((void)poisson_cdf(1, -0.5), std::invalid_argument);
}

TEST(RedundantMemory, NoSparesEqualsPlainPoisson) {
    const redundant_memory_model m{square_centimeters{1.0},
                                   square_centimeters{0.2}, 0};
    const double d = 0.8;
    EXPECT_NEAR(m.yield(d).value(),
                std::exp(-1.0 * d) * std::exp(-0.2 * d), 1e-12);
    EXPECT_NEAR(m.yield(d).value(), m.yield_without_repair(d).value(),
                1e-12);
}

TEST(RedundantMemory, SparesImproveYield) {
    const square_centimeters array{1.5};
    const square_centimeters periphery{0.3};
    const double d = 1.0;
    double previous = 0.0;
    for (int spares : {0, 1, 2, 4, 8}) {
        const redundant_memory_model m{array, periphery, spares};
        const double y = m.yield(d).value();
        EXPECT_GT(y, previous) << spares;
        previous = y;
    }
}

TEST(RedundantMemory, RepairGainAboveOne) {
    const redundant_memory_model m{square_centimeters{2.0},
                                   square_centimeters{0.2}, 4};
    EXPECT_GT(m.repair_gain(1.0), 1.0);
}

TEST(RedundantMemory, PeripheryFaultsAreFatal) {
    // Same total area; moving area from array to periphery hurts when
    // spares exist.
    const double d = 1.0;
    const redundant_memory_model protected_mostly{
        square_centimeters{1.8}, square_centimeters{0.2}, 4};
    const redundant_memory_model exposed{
        square_centimeters{0.2}, square_centimeters{1.8}, 4};
    EXPECT_GT(protected_mostly.yield(d).value(),
              exposed.yield(d).value());
}

TEST(RedundantMemory, ZeroDensityPerfectYield) {
    const redundant_memory_model m{square_centimeters{1.0},
                                   square_centimeters{0.5}, 2};
    EXPECT_DOUBLE_EQ(m.yield(0.0).value(), 1.0);
}

TEST(RedundantMemory, ManySparesApproachPeripheryLimit) {
    // With unlimited repair the array no longer matters.
    const redundant_memory_model m{square_centimeters{3.0},
                                   square_centimeters{0.4}, 200};
    const double d = 1.2;
    EXPECT_NEAR(m.yield(d).value(), std::exp(-0.4 * d), 1e-9);
}

TEST(RedundantMemory, RejectsBadConstruction) {
    EXPECT_THROW((void)(redundant_memory_model{square_centimeters{0.0},
                                         square_centimeters{0.1}, 1}),
                 std::invalid_argument);
    EXPECT_THROW((void)(redundant_memory_model{square_centimeters{1.0},
                                         square_centimeters{0.1}, -1}),
                 std::invalid_argument);
}

TEST(RedundantMemory, RejectsNegativeDensity) {
    const redundant_memory_model m{square_centimeters{1.0},
                                   square_centimeters{0.1}, 1};
    EXPECT_THROW((void)m.yield(-0.1), std::invalid_argument);
}

// Property: the S.1.2 story — redundancy keeps memory yield high where an
// equal-area logic die collapses.
class RedundancySweep : public ::testing::TestWithParam<double> {};

TEST_P(RedundancySweep, MemoryBeatsEqualAreaLogicDie) {
    const double defect_density = GetParam();
    const redundant_memory_model memory{square_centimeters{2.0},
                                        square_centimeters{0.3}, 8};
    const double logic =
        std::exp(-2.3 * defect_density);  // same 2.3 cm^2, no repair
    EXPECT_GT(memory.yield(defect_density).value(), logic);
}

INSTANTIATE_TEST_SUITE_P(Densities, RedundancySweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace silicon::yield
