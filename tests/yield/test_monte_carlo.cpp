// Tests for the Monte-Carlo defect-injection simulator.

#include "yield/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

wire_array_layout small_layout() {
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.5;
    layout.line_length = 100.0;
    layout.line_count = 10;
    return layout;
}

TEST(DefectPredicate, ShortRequiresBridgingBothWires) {
    const wire_array_layout layout = small_layout();
    // Gap between wire 0 ([0,1]) and wire 1 ([2.5,3.5]); center of gap at
    // y = 1.75.  Diameter 1.5 exactly spans the gap boundary-to-boundary.
    EXPECT_FALSE(defect_causes_fault(layout, fault_kind::short_circuit,
                                     50.0, 1.75, 1.4));
    EXPECT_TRUE(defect_causes_fault(layout, fault_kind::short_circuit,
                                    50.0, 1.75, 1.8));
}

TEST(DefectPredicate, OpenRequiresCoveringFullWireWidth) {
    const wire_array_layout layout = small_layout();
    // Wire 0 spans y in [0, 1]; a defect centered at 0.5 must have
    // diameter >= 1 to sever it.
    EXPECT_FALSE(defect_causes_fault(layout, fault_kind::open_circuit,
                                     50.0, 0.5, 0.9));
    EXPECT_TRUE(defect_causes_fault(layout, fault_kind::open_circuit,
                                    50.0, 0.5, 1.1));
}

TEST(DefectPredicate, OutsideWireLengthIsBenign) {
    const wire_array_layout layout = small_layout();
    EXPECT_FALSE(defect_causes_fault(layout, fault_kind::short_circuit,
                                     -1.0, 1.75, 5.0));
    EXPECT_FALSE(defect_causes_fault(layout, fault_kind::short_circuit,
                                     101.0, 1.75, 5.0));
}

TEST(PoissonSample, MeanZeroAlwaysZero) {
    splitmix64 rng{1};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(poisson_sample(0.0, rng), 0u);
    }
}

TEST(PoissonSample, RejectsNegativeMean) {
    splitmix64 rng{1};
    EXPECT_THROW((void)poisson_sample(-1.0, rng), std::invalid_argument);
}

TEST(PoissonSample, SampleMomentsMatchSmallMean) {
    splitmix64 rng{99};
    const double mu = 3.0;
    const int n = 200000;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double k = static_cast<double>(poisson_sample(mu, rng));
        sum += k;
        sum2 += k * k;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, mu, 0.03);
    EXPECT_NEAR(var, mu, 0.06);
}

TEST(PoissonSample, SampleMomentsMatchLargeMean) {
    // Exercises the recursive halving path (mu > 30).
    splitmix64 rng{7};
    const double mu = 250.0;
    const int n = 20000;
    double sum = 0.0;
    double sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double k = static_cast<double>(poisson_sample(mu, rng));
        sum += k;
        sum2 += k * k;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, mu, 0.5);
    EXPECT_NEAR(var, mu, 8.0);
}

TEST(Simulation, RejectsBadConfig) {
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.5, 4.0};
    monte_carlo_config config;
    config.dies = 0;
    EXPECT_THROW((void)simulate_layout_yield(layout, sizes, config),
                 std::invalid_argument);
    config.dies = 10;
    config.defects_per_um2 = -1.0;
    EXPECT_THROW((void)simulate_layout_yield(layout, sizes, config),
                 std::invalid_argument);
    config.defects_per_um2 = 1e-6;
    config.extra_material_fraction = 1.5;
    EXPECT_THROW((void)simulate_layout_yield(layout, sizes, config),
                 std::invalid_argument);
}

TEST(Simulation, ZeroDensityYieldsEverything) {
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.5, 4.0};
    monte_carlo_config config;
    config.dies = 500;
    config.defects_per_um2 = 0.0;
    const monte_carlo_result result =
        simulate_layout_yield(layout, sizes, config);
    EXPECT_EQ(result.good_dies, result.dies);
    EXPECT_DOUBLE_EQ(result.yield, 1.0);
    EXPECT_EQ(result.defects_thrown, 0u);
}

TEST(Simulation, Deterministic) {
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.5, 4.0};
    monte_carlo_config config;
    config.dies = 2000;
    config.defects_per_um2 = 5e-5;
    const auto a = simulate_layout_yield(layout, sizes, config);
    const auto b = simulate_layout_yield(layout, sizes, config);
    EXPECT_EQ(a.good_dies, b.good_dies);
    EXPECT_EQ(a.defects_thrown, b.defects_thrown);
    config.seed = 777;
    const auto c = simulate_layout_yield(layout, sizes, config);
    EXPECT_NE(a.good_dies, c.good_dies);
}

TEST(Simulation, MatchesAnalyticYieldWithinError) {
    // The headline validation: MC yield agrees with exp(-D * A_crit_avg).
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.6, 4.07};
    monte_carlo_config config;
    config.dies = 40000;
    config.defects_per_um2 = 2e-4;
    config.extra_material_fraction = 0.5;
    config.seed = 2024;

    const monte_carlo_result mc =
        simulate_layout_yield(layout, sizes, config);
    const double analytic = layout_yield(
        layout, sizes, config.defects_per_um2,
        config.extra_material_fraction);
    EXPECT_NEAR(mc.yield, analytic, 3.0 * mc.std_error);
}

TEST(Simulation, ObservedFaultRateMatchesExpectedFaults) {
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.6, 4.07};
    monte_carlo_config config;
    config.dies = 40000;
    config.defects_per_um2 = 2e-4;
    config.seed = 5;

    const monte_carlo_result mc =
        simulate_layout_yield(layout, sizes, config);
    const double expected = expected_faults(
        layout, sizes, config.defects_per_um2,
        config.extra_material_fraction);
    EXPECT_NEAR(mc.observed_faults_per_die(), expected,
                0.08 * expected + 0.003);
}

TEST(Simulation, AllShortsConfigurationProducesNoOpens) {
    const wire_array_layout layout = small_layout();
    const defect_size_distribution sizes{0.6, 4.0};
    monte_carlo_config config;
    config.dies = 5000;
    config.defects_per_um2 = 1e-4;
    config.extra_material_fraction = 1.0;
    const monte_carlo_result mc =
        simulate_layout_yield(layout, sizes, config);
    EXPECT_EQ(mc.opens, 0u);
    EXPECT_GT(mc.shorts, 0u);
}

}  // namespace
}  // namespace silicon::yield
