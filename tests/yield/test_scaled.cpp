// Tests for the lambda-scaled Eq. (7) model and the reference yield form.

#include "yield/scaled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(ScaledPoisson, RejectsBadParameters) {
    EXPECT_THROW((void)(scaled_poisson_model{-1.0, 4.0}), std::invalid_argument);
    EXPECT_THROW((void)(scaled_poisson_model{1.0, 2.0}), std::invalid_argument);
}

TEST(ScaledPoisson, EffectiveDensityScalesAsLambdaToMinusP) {
    const scaled_poisson_model m{1.72, 4.07};
    const double d1 = m.effective_defect_density(microns{1.0});
    const double d05 = m.effective_defect_density(microns{0.5});
    EXPECT_NEAR(d1, 1.72, 1e-12);
    EXPECT_NEAR(d05 / d1, std::pow(2.0, 4.07), 1e-9);
}

TEST(ScaledPoisson, YieldAtUnitLambdaIsPlainPoisson) {
    const scaled_poisson_model m{2.0, 4.0};
    EXPECT_NEAR(m.yield(square_centimeters{0.5}, microns{1.0}).value(),
                std::exp(-1.0), 1e-12);
}

TEST(ScaledPoisson, TransistorFormMatchesAreaForm) {
    const scaled_poisson_model m = scaled_poisson_model::fig8_calibration();
    const double n_tr = 1e5;
    const double dd = 152.0;
    const microns lambda{0.8};
    const double area_cm2 = n_tr * dd * 0.8 * 0.8 * 1e-8;
    EXPECT_NEAR(
        m.yield_for_transistors(n_tr, dd, lambda).value(),
        m.yield(square_centimeters{area_cm2}, lambda).value(), 1e-12);
}

TEST(ScaledPoisson, ShrinkingLambdaAtFixedTransistorCountCutsYield) {
    // Eq. (7): exponent ~ 1/lambda^(p-2); with N_tr fixed, smaller
    // lambda means smaller die but disproportionately more killer
    // defects.
    const scaled_poisson_model m = scaled_poisson_model::fig8_calibration();
    const double y08 =
        m.yield_for_transistors(1e6, 152.0, microns{0.8}).value();
    const double y05 =
        m.yield_for_transistors(1e6, 152.0, microns{0.5}).value();
    EXPECT_GT(y08, y05);
}

TEST(ScaledPoisson, RequiredDInvertsYield) {
    const double p = 4.07;
    const square_centimeters area{2.0};
    const microns lambda{0.5};
    const double d =
        scaled_poisson_model::required_d(probability{0.6}, area, lambda, p);
    const scaled_poisson_model m{d, p};
    EXPECT_NEAR(m.yield(area, lambda).value(), 0.6, 1e-12);
}

TEST(ScaledPoisson, RequiredDRejectsZeroTarget) {
    EXPECT_THROW((void)scaled_poisson_model::required_d(
                     probability{0.0}, square_centimeters{1.0},
                     microns{0.5}, 4.0),
                 std::domain_error);
}

TEST(ReferenceYield, ReproducesY0AtReferenceArea) {
    const reference_die_yield m{probability{0.7}};
    EXPECT_NEAR(m.yield(square_centimeters{1.0}).value(), 0.7, 1e-15);
}

TEST(ReferenceYield, PowerLawInArea) {
    const reference_die_yield m{probability{0.7}};
    EXPECT_NEAR(m.yield(square_centimeters{2.0}).value(), 0.49, 1e-12);
    EXPECT_NEAR(m.yield(square_centimeters{0.5}).value(),
                std::sqrt(0.7), 1e-12);
}

TEST(ReferenceYield, ZeroAreaYieldsCertainty) {
    const reference_die_yield m{probability{0.5}};
    EXPECT_DOUBLE_EQ(m.yield(square_centimeters{0.0}).value(), 1.0);
}

TEST(ReferenceYield, EquivalentPoissonDensityRoundTrips) {
    const reference_die_yield m{probability{0.7},
                                square_centimeters{2.0}};
    const double d0 = m.equivalent_defect_density();
    // Y(A) = exp(-A * D0).
    for (double a : {0.5, 1.0, 2.0, 4.0}) {
        EXPECT_NEAR(m.yield(square_centimeters{a}).value(),
                    std::exp(-a * d0), 1e-12)
            << a;
    }
}

TEST(ReferenceYield, RejectsZeroY0) {
    EXPECT_THROW((void)reference_die_yield{probability{0.0}},
                 std::invalid_argument);
}

TEST(ReferenceYield, CustomReferenceArea) {
    const reference_die_yield m{probability{0.9},
                                square_centimeters{0.5}};
    EXPECT_NEAR(m.yield(square_centimeters{0.5}).value(), 0.9, 1e-15);
    EXPECT_NEAR(m.yield(square_centimeters{1.0}).value(), 0.81, 1e-12);
}

// Property: Eq. (7) yield is monotone in every argument direction that
// the physics dictates.
class ScaledPoissonSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaledPoissonSweep, MonotoneInAreaAndDensity) {
    const double lambda = GetParam();
    const scaled_poisson_model m{1.72, 4.07};
    double previous = 2.0;
    for (double area = 0.0; area <= 3.0; area += 0.25) {
        const double y =
            m.yield(square_centimeters{area}, microns{lambda}).value();
        if (previous == 0.0) {
            // Underflowed to zero already; monotonicity is saturated.
            EXPECT_DOUBLE_EQ(y, 0.0);
            continue;
        }
        EXPECT_LT(y, previous) << "area " << area;
        previous = y;
    }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ScaledPoissonSweep,
                         ::testing::Values(0.25, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace silicon::yield
