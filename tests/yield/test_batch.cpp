// test_batch.cpp — bit-exactness of the SoA yield kernels against the
// scalar models.
//
// Contract (yield/batch.hpp): for every lane, the kernel output is
// bit-identical to the scalar model's result, and lanes whose inputs
// would make the scalar path throw come back as quiet NaN instead.

#include "yield/batch.hpp"

#include "core/units.hpp"
#include "yield/models.hpp"
#include "yield/scaled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace yield = silicon::yield;
using silicon::microns;
using silicon::probability;
using silicon::square_centimeters;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();

/// Scalar reference evaluation: the kernel contract maps every scalar
/// throw to a NaN lane.
template <typename Fn>
double scalar_or_nan(Fn&& fn) {
    try {
        return fn();
    } catch (...) {
        return knan;
    }
}

::testing::AssertionResult lanes_bit_equal(double expected, double actual,
                                           std::size_t lane) {
    if (std::isnan(expected) && std::isnan(actual)) {
        return ::testing::AssertionSuccess();
    }
    std::uint64_t eb = 0;
    std::uint64_t ab = 0;
    std::memcpy(&eb, &expected, sizeof eb);
    std::memcpy(&ab, &actual, sizeof ab);
    if (eb == ab) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "lane " << lane << ": expected " << expected << " (0x"
           << std::hex << eb << "), got " << actual << " (0x" << ab << ")";
}

TEST(YieldBatch, PoissonMatchesScalarBitForBit) {
    const std::vector<double> faults = {
        0.0,   -0.0,  1e-300, 5e-324, 0.5,  1.0,  2.75, 700.0,
        745.0, 746.0, 1000.0, kinf,   -1.0, -0.5, knan, 1e308,
    };
    std::vector<double> out(faults.size(), 0.0);
    yield::batch::poisson_yield(faults.data(), out.data(), faults.size());

    const yield::poisson_model model;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const double expected = scalar_or_nan(
            [&] { return model.yield(faults[i]).value(); });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "expected_faults=" << faults[i];
    }
}

TEST(YieldBatch, ScaledPoissonMatchesScalarBitForBit) {
    struct lane {
        double area, lambda, d, p;
    };
    std::vector<lane> lanes = {
        {1.0, 1.0, 1.72, 4.07},   // Fig. 8 calibration at the reference
        {2.5, 0.5, 1.72, 4.07},   // small feature: huge D_eff
        {0.0, 0.8, 1.72, 4.07},   // zero area -> Y = 1
        {1.0, 0.8, 0.0, 4.07},    // perfect line -> Y = 1
        {1.0, 1e-3, 1.72, 4.07},  // underflowing yield
        {1.0, -0.5, 1.72, 4.07},  // invalid lambda
        {1.0, 0.0, 1.72, 4.07},   // lambda = 0 invalid
        {1.0, 0.8, -1.0, 4.07},   // invalid d
        {1.0, 0.8, 1.72, 2.0},    // p must exceed 2
        {1.0, 0.8, 1.72, 1.5},    // p must exceed 2
        {-1.0, 0.8, 1.72, 4.07},  // negative area
        {knan, 0.8, 1.72, 4.07},  // NaN area
        {1.0, knan, 1.72, 4.07},  // NaN lambda
        {1.0, kinf, 1.72, 4.07},  // infinite lambda
        {kinf, 0.8, 1.72, 4.07},  // infinite area
        {1.0, 0.8, kinf, 4.07},   // infinite d
    };
    std::mt19937_64 rng{0xba7c4u};
    std::uniform_real_distribution<double> area{0.0, 4.0};
    std::uniform_real_distribution<double> lam{0.05, 2.0};
    std::uniform_real_distribution<double> dd{0.0, 5.0};
    std::uniform_real_distribution<double> pp{2.1, 6.0};
    for (int i = 0; i < 200; ++i) {
        lanes.push_back({area(rng), lam(rng), dd(rng), pp(rng)});
    }

    std::vector<double> a, l, d, p;
    for (const lane& x : lanes) {
        a.push_back(x.area);
        l.push_back(x.lambda);
        d.push_back(x.d);
        p.push_back(x.p);
    }
    std::vector<double> out(lanes.size(), 0.0);
    yield::batch::scaled_poisson_yield(a.data(), l.data(), d.data(),
                                       p.data(), out.data(), lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane& x = lanes[i];
        const double expected = scalar_or_nan([&] {
            const yield::scaled_poisson_model model{x.d, x.p};
            return model
                .yield(square_centimeters{x.area}, microns{x.lambda})
                .value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "area=" << x.area << " lambda=" << x.lambda << " d=" << x.d
            << " p=" << x.p;
    }
}

/// Shared adversarial fault grid for the single-column models: edge
/// values around the murphy linearization knee, overflow/underflow,
/// and every invalid shape the scalar guard rejects.
std::vector<double> fault_grid() {
    std::vector<double> faults = {
        0.0,   -0.0,  1e-300, 5e-324, 1e-10, 1e-9,  2e-9, 0.5,
        1.0,   2.75,  700.0,  745.0,  746.0, 1000.0, kinf, -1.0,
        -0.5,  knan,  1e308,  0.1,
    };
    std::mt19937_64 rng{0xfa017u};
    std::uniform_real_distribution<double> f{0.0, 20.0};
    for (int i = 0; i < 200; ++i) {
        faults.push_back(f(rng));
    }
    return faults;
}

TEST(YieldBatch, MurphyMatchesScalarBitForBit) {
    const std::vector<double> faults = fault_grid();
    std::vector<double> out(faults.size(), 0.0);
    yield::batch::murphy_yield(faults.data(), out.data(), faults.size());

    const yield::murphy_model model;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const double expected =
            scalar_or_nan([&] { return model.yield(faults[i]).value(); });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "expected_faults=" << faults[i];
    }
}

TEST(YieldBatch, SeedsMatchesScalarBitForBit) {
    const std::vector<double> faults = fault_grid();
    std::vector<double> out(faults.size(), 0.0);
    yield::batch::seeds_yield(faults.data(), out.data(), faults.size());

    const yield::seeds_model model;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const double expected =
            scalar_or_nan([&] { return model.yield(faults[i]).value(); });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "expected_faults=" << faults[i];
    }
}

TEST(YieldBatch, BoseEinsteinMatchesScalarBitForBit) {
    const std::vector<double> faults = fault_grid();
    std::vector<double> out(faults.size(), 0.0);
    for (const int steps : {1, 10, 37}) {
        yield::batch::bose_einstein_yield(faults.data(), steps, out.data(),
                                          faults.size());
        const yield::bose_einstein_model model{steps};
        for (std::size_t i = 0; i < faults.size(); ++i) {
            const double expected =
                scalar_or_nan([&] { return model.yield(faults[i]).value(); });
            EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
                << "steps=" << steps << " expected_faults=" << faults[i];
        }
    }
}

TEST(YieldBatch, BoseEinsteinInvalidStepsYieldsAllNaN) {
    const std::vector<double> faults = {0.0, 0.5, 1.0};
    std::vector<double> out(faults.size(), 0.0);
    yield::batch::bose_einstein_yield(faults.data(), 0, out.data(),
                                      faults.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(std::isnan(out[i])) << "lane " << i;
    }
}

TEST(YieldBatch, NegativeBinomialMatchesScalarBitForBit) {
    struct lane {
        double faults, alpha;
    };
    std::vector<lane> lanes = {
        {0.5, 2.0},    // the classic clustering midpoint
        {0.0, 1.0},    // zero faults -> Y = 1
        {1.0, 1e-12},  // tiny alpha
        {1.0, 1e12},   // huge alpha (approaches Poisson)
        {1.0, 0.0},    // alpha must be > 0
        {1.0, -2.0},   // negative alpha
        {-1.0, 2.0},   // negative faults
        {knan, 2.0},   //
        {1.0, knan},   //
        {kinf, 2.0},   //
        {1.0, kinf},   //
        {746.0, 0.5},  // deep underflow
    };
    std::mt19937_64 rng{0xa1b2u};
    std::uniform_real_distribution<double> f{0.0, 20.0};
    std::uniform_real_distribution<double> a{0.05, 8.0};
    for (int i = 0; i < 200; ++i) {
        lanes.push_back({f(rng), a(rng)});
    }

    std::vector<double> faults, alpha;
    for (const lane& x : lanes) {
        faults.push_back(x.faults);
        alpha.push_back(x.alpha);
    }
    std::vector<double> out(lanes.size(), 0.0);
    yield::batch::negative_binomial_yield(faults.data(), alpha.data(),
                                          out.data(), lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane& x = lanes[i];
        const double expected = scalar_or_nan([&] {
            const yield::negative_binomial_model model{x.alpha};
            return model.yield(x.faults).value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "faults=" << x.faults << " alpha=" << x.alpha;
    }
}

TEST(YieldBatch, ReferenceYieldMatchesScalarBitForBit) {
    struct lane {
        double area, y0, a0;
    };
    std::vector<lane> lanes = {
        {1.0, 0.7, 1.0},    // the paper's S2.3 anchor
        {2.5, 0.7, 1.0},    //
        {0.0, 0.7, 1.0},    // zero area -> Y = 1
        {1.0, 1.0, 1.0},    // perfect reference yield
        {500.0, 0.1, 1.0},  // deep underflow
        {1.0, 0.0, 1.0},    // y0 must be > 0
        {1.0, -0.2, 1.0},   // y0 out of range
        {1.0, 1.2, 1.0},    // y0 out of range
        {1.0, 0.7, 0.0},    // a0 must be > 0
        {1.0, 0.7, -1.0},   // a0 negative
        {-1.0, 0.7, 1.0},   // negative area
        {knan, 0.7, 1.0},   //
        {1.0, knan, 1.0},   //
        {1.0, 0.7, knan},   //
        {kinf, 0.7, 1.0},   //
        {1.0, 0.7, kinf},   //
    };
    std::mt19937_64 rng{0x4ef0u};
    std::uniform_real_distribution<double> area{0.0, 6.0};
    std::uniform_real_distribution<double> y{0.01, 1.0};
    std::uniform_real_distribution<double> ref{0.1, 3.0};
    for (int i = 0; i < 200; ++i) {
        lanes.push_back({area(rng), y(rng), ref(rng)});
    }

    std::vector<double> a, y0, a0;
    for (const lane& x : lanes) {
        a.push_back(x.area);
        y0.push_back(x.y0);
        a0.push_back(x.a0);
    }
    std::vector<double> out(lanes.size(), 0.0);
    yield::batch::reference_yield(a.data(), y0.data(), a0.data(), out.data(),
                                  lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane& x = lanes[i];
        const double expected = scalar_or_nan([&] {
            const yield::reference_die_yield model{
                probability{x.y0}, square_centimeters{x.a0}};
            return model.yield(square_centimeters{x.area}).value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "area=" << x.area << " y0=" << x.y0 << " a0=" << x.a0;
    }
}

}  // namespace
