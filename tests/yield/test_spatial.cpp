// Tests for the radial yield profile and edge-exclusion optimizer.

#include "yield/spatial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

geometry::wafer six_inch() { return geometry::wafer::six_inch(); }
geometry::die small_die() {
    return geometry::die::square(millimeters{8.0});
}

TEST(RadialProfile, CenterAndEdgeValues) {
    radial_defect_profile profile;
    profile.center_density = 0.5;
    profile.edge_severity = 2.0;
    profile.exponent = 4.0;
    EXPECT_DOUBLE_EQ(
        profile.density_at(centimeters{0.0}, centimeters{7.5}), 0.5);
    EXPECT_NEAR(profile.density_at(centimeters{7.5}, centimeters{7.5}),
                1.5, 1e-12);
    // Halfway out: 0.5 * (1 + 2 * 0.5^4) = 0.5625.
    EXPECT_NEAR(profile.density_at(centimeters{3.75}, centimeters{7.5}),
                0.5625, 1e-12);
}

TEST(RadialProfile, RejectsBadParameters) {
    radial_defect_profile profile;
    profile.exponent = 0.5;
    EXPECT_THROW(
        (void)profile.density_at(centimeters{1.0}, centimeters{7.5}),
        std::invalid_argument);
}

TEST(SpatialYield, CenterDiesBeatEdgeDies) {
    radial_defect_profile profile;
    profile.center_density = 0.5;
    profile.edge_severity = 3.0;
    const spatial_yield_result r =
        evaluate_spatial_yield(six_inch(), small_die(), profile);
    EXPECT_GT(r.gross_dies, 100);
    EXPECT_GT(r.center_yield, r.edge_yield);
    EXPECT_GT(r.average_yield, r.edge_yield);
    EXPECT_LT(r.average_yield, r.center_yield);
}

TEST(SpatialYield, FlatProfileGivesUniformYield) {
    radial_defect_profile profile;
    profile.center_density = 0.8;
    profile.edge_severity = 0.0;
    const spatial_yield_result r =
        evaluate_spatial_yield(six_inch(), small_die(), profile);
    const double expected = std::exp(
        -small_die().area().to_square_centimeters().value() * 0.8);
    EXPECT_NEAR(r.center_yield, expected, 1e-12);
    EXPECT_NEAR(r.edge_yield, expected, 1e-12);
    EXPECT_NEAR(r.average_yield, expected, 1e-12);
}

TEST(SpatialYield, ExpectedGoodIsSumOfDieYields) {
    radial_defect_profile profile;
    const spatial_yield_result r =
        evaluate_spatial_yield(six_inch(), small_die(), profile);
    double sum = 0.0;
    for (const positioned_die_yield& die : r.dies) {
        sum += die.yield.value();
        EXPECT_LE(die.radius_mm, 76.0);  // inside the wafer
    }
    EXPECT_NEAR(sum, r.expected_good_dies, 1e-9);
}

TEST(SpatialYield, RejectsOversizedDie) {
    radial_defect_profile profile;
    EXPECT_THROW(
        (void)evaluate_spatial_yield(
            six_inch(), geometry::die::square(millimeters{400.0}),
            profile),
        std::invalid_argument);
}

TEST(EdgeExclusion, SteepProfileFavorsExclusion) {
    // With a savage rim and a real penalty for probing dead dies, the
    // optimizer must trim something.
    radial_defect_profile profile;
    profile.center_density = 0.3;
    profile.edge_severity = 30.0;
    profile.exponent = 8.0;
    const edge_exclusion_choice choice = choose_edge_exclusion(
        six_inch(), small_die(), profile, /*bad_die_penalty=*/1.0);
    EXPECT_GT(choice.best_exclusion.value(), 0.0);
    EXPECT_EQ(choice.sweep.size(), 16u);
}

TEST(EdgeExclusion, ZeroPenaltyFlatProfileKeepsEverything) {
    radial_defect_profile profile;
    profile.edge_severity = 0.0;
    const edge_exclusion_choice choice = choose_edge_exclusion(
        six_inch(), small_die(), profile, /*bad_die_penalty=*/0.0);
    EXPECT_DOUBLE_EQ(choice.best_exclusion.value(), 0.0);
}

TEST(EdgeExclusion, RejectsBadArguments) {
    radial_defect_profile profile;
    EXPECT_THROW((void)choose_edge_exclusion(six_inch(), small_die(),
                                             profile, -1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)choose_edge_exclusion(six_inch(), small_die(),
                                             profile, 0.2,
                                             centimeters{7.5}),
                 std::invalid_argument);
    EXPECT_THROW((void)choose_edge_exclusion(six_inch(), small_die(),
                                             profile, 0.2,
                                             centimeters{1.0}, 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::yield
