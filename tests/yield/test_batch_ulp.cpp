// test_batch_ulp.cpp — fast_math yield kernels vs the bit-exact scalar
// kernels (yield/batch.hpp, "fast_math variants" block).
//
// Three contracts per kernel family, each over mixed valid/invalid
// lanes (negative, NaN, infinite, zero, subnormal, huge):
//
//   * classification identity — a lane is NaN on the fast path exactly
//     when it is NaN on the scalar path (guard lanes are masked before
//     the transcendental, so they serialize as the same JSON nulls);
//   * ULP drift — valid lanes agree with the scalar kernel to within
//     kMaxUlp (= 4) units in the last place;
//   * split determinism — sub-range calls reproduce the full-range
//     bytes exactly (what makes fast_math sweeps thread-count stable).
//
// Plus the branch pins: murphy's f < 1e-9 linearization has no
// transcendental and must be bit-identical, and seeds_yield_fast is
// the scalar kernel by definition.

#include "yield/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <vector>

namespace batch = silicon::yield::batch;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kMaxUlp = 4;

std::uint64_t total_order_key(double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof u);
    return (u >> 63) != 0 ? ~u : u | 0x8000000000000000ull;
}

std::uint64_t ulp_distance(double a, double b) {
    const std::uint64_t ka = total_order_key(a);
    const std::uint64_t kb = total_order_key(b);
    return ka > kb ? ka - kb : kb - ka;
}

using kernel_fn =
    std::function<void(const double*, double*, std::size_t)>;

/// The shared contract: classification identity, bounded drift, split
/// determinism — for any (scalar, fast) kernel pair over `faults`.
void expect_fast_matches_scalar(const std::vector<double>& xs,
                                const kernel_fn& scalar,
                                const kernel_fn& fast,
                                std::uint64_t max_ulp = kMaxUlp) {
    const std::size_t n = xs.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    scalar(xs.data(), ref.data(), n);
    fast(xs.data(), got.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
        const bool rn = std::isnan(ref[i]);
        const bool gn = std::isnan(got[i]);
        EXPECT_EQ(rn, gn) << "lane " << i << " (x=" << xs[i]
                          << "): scalar " << ref[i] << ", fast " << got[i];
        if (rn || gn) {
            continue;
        }
        EXPECT_LE(ulp_distance(ref[i], got[i]), max_ulp)
            << "lane " << i << " (x=" << xs[i] << "): scalar " << ref[i]
            << ", fast " << got[i];
    }

    // Split determinism: odd cuts reproduce the full-range bytes.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 1, 3, 7, 131, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            fast(xs.data() + lo, parts.data() + lo, hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0)
        << "sub-range fast calls differ from the full-range call";
}

/// Mixed valid/invalid fault grid shared by the single-column kernels.
std::vector<double> fault_grid() {
    std::vector<double> xs = {
        0.0,   -0.0,  5e-324, 1e-300, 1e-10,  1e-9,  2e-9, 0.5,
        1.0,   2.75,  10.0,   100.0,  700.0,  745.0, -1.0, -0.5,
        -1e-9, knan,  kinf,   -kinf,  1e308,  0.25,
    };
    std::mt19937_64 rng{0xfa57u};
    std::uniform_real_distribution<double> uni{0.0, 8.0};
    for (int i = 0; i < 2000; ++i) {
        xs.push_back(uni(rng));
    }
    return xs;
}

TEST(YieldBatchUlp, PoissonFastMatchesScalarWithinUlp) {
    expect_fast_matches_scalar(fault_grid(), batch::poisson_yield,
                               batch::poisson_yield_fast);
}

TEST(YieldBatchUlp, MurphyFastWithinUlpOfTruth) {
    // The fast path evaluates ((-expm1(-l))/l)^2 — deliberately NOT the
    // scalar form (1 - exp(-l))/l, which loses ~2/l ULP to cancellation
    // as l -> 0.  A vector-vs-scalar ULP bound is therefore meaningless
    // below l ~ 1 (the scalar value is the inaccurate one); the
    // accuracy contract is pinned against the correctly-rounded
    // long-double evaluation of the same mathematical function instead,
    // plus classification identity and split determinism vs scalar.
    const std::vector<double> xs = fault_grid();
    const std::size_t n = xs.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::murphy_yield(xs.data(), ref.data(), n);
    batch::murphy_yield_fast(xs.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i]))
            << "lane " << i << " (x=" << xs[i] << ")";
        if (std::isnan(got[i]) || xs[i] == 0.0) {
            continue;  // l = 0 short-circuits to 1 on both paths
        }
        const long double l = xs[i];
        const long double t = std::expm1(-l) / -l;
        const double truth = static_cast<double>(t * t);
        EXPECT_LE(ulp_distance(truth, got[i]), kMaxUlp)
            << "lane " << i << " (x=" << xs[i] << "): truth " << truth
            << ", fast " << got[i];
    }
    // Split determinism.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 1, 3, 7, 131, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            batch::murphy_yield_fast(xs.data() + lo, parts.data() + lo,
                                     hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0);
}

TEST(YieldBatchUlp, MurphyLinearizationBranchIsBitIdentical) {
    // f < 1e-9 evaluates (1 - f/2)^2 on both paths — no transcendental,
    // so the fast kernel must reproduce the scalar bits exactly.
    std::vector<double> xs = {0.0, 5e-324, 1e-300, 1e-15, 1e-10,
                              9.99e-10, 5e-10, 2.5e-13};
    std::mt19937_64 rng{0x11aeau};
    std::uniform_real_distribution<double> uni{0.0, 1e-9};
    for (int i = 0; i < 500; ++i) {
        xs.push_back(uni(rng));
    }
    std::vector<double> ref(xs.size());
    std::vector<double> got(xs.size());
    batch::murphy_yield(xs.data(), ref.data(), xs.size());
    batch::murphy_yield_fast(xs.data(), got.data(), xs.size());
    EXPECT_EQ(
        std::memcmp(ref.data(), got.data(), xs.size() * sizeof(double)), 0);
}

TEST(YieldBatchUlp, SeedsFastIsBitIdentical) {
    const std::vector<double> xs = fault_grid();
    std::vector<double> ref(xs.size());
    std::vector<double> got(xs.size());
    batch::seeds_yield(xs.data(), ref.data(), xs.size());
    batch::seeds_yield_fast(xs.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (std::isnan(ref[i])) {
            EXPECT_TRUE(std::isnan(got[i])) << "lane " << i;
            continue;
        }
        EXPECT_EQ(std::memcmp(&ref[i], &got[i], sizeof(double)), 0)
            << "lane " << i;
    }
}

TEST(YieldBatchUlp, BoseEinsteinFastMatchesScalarWithinUlp) {
    for (const int steps : {1, 7, 12}) {
        SCOPED_TRACE(steps);
        expect_fast_matches_scalar(
            fault_grid(),
            [steps](const double* x, double* out, std::size_t n) {
                batch::bose_einstein_yield(x, steps, out, n);
            },
            [steps](const double* x, double* out, std::size_t n) {
                batch::bose_einstein_yield_fast(x, steps, out, n);
            });
    }
    // Invalid step count: every lane NaN on both paths.
    const std::vector<double> xs = {0.5, 1.0};
    std::vector<double> ref(xs.size());
    std::vector<double> got(xs.size());
    batch::bose_einstein_yield(xs.data(), 0, ref.data(), xs.size());
    batch::bose_einstein_yield_fast(xs.data(), 0, got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(std::isnan(ref[i]));
        EXPECT_TRUE(std::isnan(got[i]));
    }
}

TEST(YieldBatchUlp, NegativeBinomialFastMatchesScalarWithinUlp) {
    std::vector<double> faults = fault_grid();
    std::vector<double> alpha(faults.size(), 2.0);
    // Invalid and adversarial clustering values on otherwise-valid
    // fault lanes.
    alpha[7] = 0.0;
    alpha[8] = -1.0;
    alpha[9] = knan;
    alpha[10] = kinf;
    alpha[11] = 1e-3;
    alpha[12] = 50.0;

    const auto scalar = [&](const double* x, double* out, std::size_t n) {
        // n lanes starting at some offset into faults — recover the
        // offset so alpha stays aligned with its fault lane.
        const std::size_t off = static_cast<std::size_t>(x - faults.data());
        batch::negative_binomial_yield(x, alpha.data() + off, out, n);
    };
    const auto fast = [&](const double* x, double* out, std::size_t n) {
        const std::size_t off = static_cast<std::size_t>(x - faults.data());
        batch::negative_binomial_yield_fast(x, alpha.data() + off, out, n);
    };
    expect_fast_matches_scalar(faults, scalar, fast);
}

TEST(YieldBatchUlp, ScaledPoissonFastMatchesScalarWithinUlp) {
    struct lane {
        double area, lambda, d, p;
    };
    std::vector<lane> lanes = {
        {1.0, 1.0, 1.72, 4.07},   {2.5, 0.5, 1.72, 4.07},
        {0.0, 0.8, 1.72, 4.07},   {1.0, 0.8, 0.0, 4.07},
        {1.0, 1e-3, 1.72, 4.07},  {1.0, -0.5, 1.72, 4.07},
        {1.0, 0.0, 1.72, 4.07},   {1.0, 0.8, -1.0, 4.07},
        {1.0, 0.8, 1.72, 2.0},    {-1.0, 0.8, 1.72, 4.07},
        {knan, 0.8, 1.72, 4.07},  {1.0, knan, 1.72, 4.07},
        {1.0, kinf, 1.72, 4.07},  {kinf, 0.8, 1.72, 4.07},
        {1.0, 0.8, kinf, 4.07},   {1.0, 0.8, 1.72, knan},
    };
    std::mt19937_64 rng{0x5ca1edu};
    std::uniform_real_distribution<double> area{0.0, 4.0};
    std::uniform_real_distribution<double> lam{0.05, 2.0};
    std::uniform_real_distribution<double> dd{0.0, 5.0};
    std::uniform_real_distribution<double> pp{2.1, 6.0};
    for (int i = 0; i < 2000; ++i) {
        lanes.push_back({area(rng), lam(rng), dd(rng), pp(rng)});
    }

    std::vector<double> a;
    std::vector<double> l;
    std::vector<double> d;
    std::vector<double> p;
    for (const lane& x : lanes) {
        a.push_back(x.area);
        l.push_back(x.lambda);
        d.push_back(x.d);
        p.push_back(x.p);
    }
    const std::size_t n = lanes.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::scaled_poisson_yield(a.data(), l.data(), d.data(), p.data(),
                                ref.data(), n);
    batch::scaled_poisson_yield_fast(a.data(), l.data(), d.data(), p.data(),
                                     got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i])) << "lane " << i;
        if (std::isnan(ref[i]) || std::isnan(got[i])) {
            continue;
        }
        // Y = exp(-u), u = A*D/lambda^p: the pow feeds the exp, so the
        // few-ULP relative difference between the two paths' u is
        // amplified by |u| in the result (the condition number of exp
        // — the scalar path drifts from the true value by the same
        // factor).  Well-conditioned lanes (u <= 1/2) must meet the
        // flat kMaxUlp bound from DESIGN.md §15; beyond that the bound
        // scales linearly with u.
        const double u =
            a[i] * (d[i] / std::pow(l[i], p[i]));
        const std::uint64_t bound =
            u <= 0.5 ? kMaxUlp
                     : kMaxUlp + static_cast<std::uint64_t>(12.0 * u);
        EXPECT_LE(ulp_distance(ref[i], got[i]), bound)
            << "lane " << i << " (u=" << u << "): scalar " << ref[i]
            << ", fast " << got[i];
    }
    // Split determinism across all four columns.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 5, 6, 133, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            batch::scaled_poisson_yield_fast(
                a.data() + lo, l.data() + lo, d.data() + lo, p.data() + lo,
                parts.data() + lo, hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0);
}

TEST(YieldBatchUlp, ReferenceFastMatchesScalarWithinUlp) {
    struct lane {
        double area, y0, a0;
    };
    std::vector<lane> lanes = {
        {1.9, 0.7, 1.0},  {0.0, 0.7, 1.0},   {1.0, 1.0, 1.0},
        {1.0, 0.0, 1.0},  {1.0, -0.1, 1.0},  {1.0, 1.1, 1.0},
        {1.0, 0.7, 0.0},  {1.0, 0.7, -1.0},  {1.0, 0.7, kinf},
        {-1.0, 0.7, 1.0}, {kinf, 0.7, 1.0},  {knan, 0.7, 1.0},
        {1.0, knan, 1.0}, {1.0, 0.7, knan},  {40.0, 0.99, 0.25},
    };
    std::mt19937_64 rng{0xf00du};
    std::uniform_real_distribution<double> area{0.0, 10.0};
    std::uniform_real_distribution<double> y0{0.05, 1.0};
    std::uniform_real_distribution<double> a0{0.1, 4.0};
    for (int i = 0; i < 2000; ++i) {
        lanes.push_back({area(rng), y0(rng), a0(rng)});
    }

    std::vector<double> a;
    std::vector<double> y;
    std::vector<double> r0;
    for (const lane& x : lanes) {
        a.push_back(x.area);
        y.push_back(x.y0);
        r0.push_back(x.a0);
    }
    const std::size_t n = lanes.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::reference_yield(a.data(), y.data(), r0.data(), ref.data(), n);
    batch::reference_yield_fast(a.data(), y.data(), r0.data(), got.data(),
                                n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i])) << "lane " << i;
        if (!std::isnan(ref[i]) && !std::isnan(got[i])) {
            EXPECT_LE(ulp_distance(ref[i], got[i]), kMaxUlp)
                << "lane " << i;
        }
    }
}

}  // namespace
