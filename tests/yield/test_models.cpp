// Tests for the classic yield model family.

#include "yield/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::yield {
namespace {

TEST(Poisson, MatchesExponential) {
    const poisson_model m;
    EXPECT_DOUBLE_EQ(m.yield(0.0).value(), 1.0);
    EXPECT_NEAR(m.yield(1.0).value(), std::exp(-1.0), 1e-15);
    EXPECT_NEAR(m.yield(2.5).value(), std::exp(-2.5), 1e-15);
}

TEST(Poisson, AreaDensityOverloadMultiplies) {
    const poisson_model m;
    EXPECT_NEAR(
        m.yield(square_centimeters{2.0}, 0.5).value(),
        std::exp(-1.0), 1e-15);
}

TEST(Murphy, KnownValues) {
    const murphy_model m;
    EXPECT_DOUBLE_EQ(m.yield(0.0).value(), 1.0);
    const double l = 2.0;
    const double expected =
        std::pow((1.0 - std::exp(-l)) / l, 2.0);
    EXPECT_NEAR(m.yield(l).value(), expected, 1e-15);
}

TEST(Murphy, SmallLambdaSeriesLimit) {
    const murphy_model m;
    // For tiny l, Y ~ (1 - l/2)^2.
    const double l = 1e-12;
    EXPECT_NEAR(m.yield(l).value(), 1.0 - l, 1e-13);
}

TEST(Seeds, KnownValues) {
    const seeds_model m;
    EXPECT_DOUBLE_EQ(m.yield(0.0).value(), 1.0);
    EXPECT_DOUBLE_EQ(m.yield(1.0).value(), 0.5);
    EXPECT_DOUBLE_EQ(m.yield(3.0).value(), 0.25);
}

TEST(BoseEinstein, OneStepEqualsSeeds) {
    const bose_einstein_model be{1};
    const seeds_model seeds;
    for (double l : {0.1, 0.5, 1.0, 3.0}) {
        EXPECT_NEAR(be.yield(l).value(), seeds.yield(l).value(), 1e-15);
    }
}

TEST(BoseEinstein, ManyStepsApproachPoisson) {
    const bose_einstein_model be{100000};
    const poisson_model poisson;
    for (double l : {0.1, 0.5, 1.0, 2.0}) {
        EXPECT_NEAR(be.yield(l).value(), poisson.yield(l).value(), 1e-4);
    }
}

TEST(BoseEinstein, RejectsNonPositiveSteps) {
    EXPECT_THROW((void)bose_einstein_model{0}, std::invalid_argument);
}

TEST(NegativeBinomial, AlphaOneEqualsSeeds) {
    const negative_binomial_model nb{1.0};
    const seeds_model seeds;
    for (double l : {0.1, 1.0, 4.0}) {
        EXPECT_NEAR(nb.yield(l).value(), seeds.yield(l).value(), 1e-15);
    }
}

TEST(NegativeBinomial, LargeAlphaApproachesPoisson) {
    const negative_binomial_model nb{1e7};
    const poisson_model poisson;
    for (double l : {0.2, 1.0, 2.0}) {
        EXPECT_NEAR(nb.yield(l).value(), poisson.yield(l).value(), 1e-5);
    }
}

TEST(NegativeBinomial, RejectsNonPositiveAlpha) {
    EXPECT_THROW((void)negative_binomial_model{0.0}, std::invalid_argument);
    EXPECT_THROW((void)negative_binomial_model{-1.0}, std::invalid_argument);
}

TEST(AllModels, RejectNegativeFaultCount) {
    for (const auto& model : standard_model_family()) {
        EXPECT_THROW((void)model->yield(-0.1), std::invalid_argument)
            << model->name();
    }
}

TEST(AllModels, OrderingAtFixedLambda) {
    // Clustered models are always at least as optimistic as Poisson:
    // Y_poisson <= Y_murphy <= Y_neg_binomial(alpha) <= Y_seeds for l > 0.
    const poisson_model poisson;
    const murphy_model murphy;
    const seeds_model seeds;
    const negative_binomial_model nb{2.0};
    for (double l : {0.3, 1.0, 2.0, 5.0}) {
        EXPECT_LT(poisson.yield(l).value(), murphy.yield(l).value()) << l;
        EXPECT_LT(murphy.yield(l).value(), seeds.yield(l).value()) << l;
        EXPECT_LT(poisson.yield(l).value(), nb.yield(l).value()) << l;
        EXPECT_LT(nb.yield(l).value(), seeds.yield(l).value()) << l;
    }
}

TEST(StandardFamily, HasFiveMembersWithDistinctNames) {
    const auto family = standard_model_family();
    ASSERT_EQ(family.size(), 5u);
    for (std::size_t i = 0; i < family.size(); ++i) {
        for (std::size_t j = i + 1; j < family.size(); ++j) {
            EXPECT_NE(family[i]->name(), family[j]->name());
        }
    }
}

// Property: every model is monotone non-increasing in the fault count and
// maps 0 to certainty.
class YieldModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(YieldModelProperty, MonotoneAndNormalized) {
    const auto family = standard_model_family();
    const auto& model = family[static_cast<std::size_t>(GetParam())];
    EXPECT_DOUBLE_EQ(model->yield(0.0).value(), 1.0);
    double previous = 1.0;
    for (double l = 0.0; l <= 20.0; l += 0.25) {
        const double y = model->yield(l).value();
        EXPECT_LE(y, previous + 1e-15) << model->name() << " at " << l;
        EXPECT_GE(y, 0.0);
        previous = y;
    }
}

INSTANTIATE_TEST_SUITE_P(Family, YieldModelProperty,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace silicon::yield
