// Tests for the redundancy design optimizer.

#include "yield/memory_design.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::yield {
namespace {

memory_design dram_design() {
    memory_design design;
    design.base_array_area = square_centimeters{1.2};
    design.periphery_area = square_centimeters{0.2};
    design.area_per_spare_fraction = 0.004;
    return design;
}

TEST(MemoryDesign, OptimumIsInteriorAtRealisticDensity) {
    const redundancy_choice choice =
        optimize_redundancy(dram_design(), 1.5);
    EXPECT_GT(choice.best.spares, 0);
    EXPECT_LT(choice.best.spares, 64);
    EXPECT_GT(choice.improvement, 0.1);  // spares save real silicon
}

TEST(MemoryDesign, ZeroDensityWantsNoSpares) {
    const redundancy_choice choice =
        optimize_redundancy(dram_design(), 0.0);
    EXPECT_EQ(choice.best.spares, 0);
    EXPECT_DOUBLE_EQ(choice.improvement, 0.0);
}

TEST(MemoryDesign, HigherDensityWantsMoreSpares) {
    const redundancy_choice low =
        optimize_redundancy(dram_design(), 0.5);
    const redundancy_choice high =
        optimize_redundancy(dram_design(), 3.0);
    EXPECT_GE(high.best.spares, low.best.spares);
}

TEST(MemoryDesign, ExpensiveSparesLowerTheOptimum) {
    memory_design cheap = dram_design();
    cheap.area_per_spare_fraction = 0.001;
    memory_design pricey = dram_design();
    pricey.area_per_spare_fraction = 0.05;
    const redundancy_choice with_cheap = optimize_redundancy(cheap, 1.5);
    const redundancy_choice with_pricey =
        optimize_redundancy(pricey, 1.5);
    EXPECT_GE(with_cheap.best.spares, with_pricey.best.spares);
}

TEST(MemoryDesign, SweepIsConsistent) {
    const redundancy_choice choice =
        optimize_redundancy(dram_design(), 1.0, 16);
    ASSERT_EQ(choice.sweep.size(), 17u);
    for (const redundancy_point& point : choice.sweep) {
        EXPECT_NEAR(point.area_per_good_die_cm2,
                    point.total_area.value() / point.yield.value(),
                    1e-12);
        EXPECT_GE(point.area_per_good_die_cm2,
                  choice.best.area_per_good_die_cm2 - 1e-12);
    }
    // Area grows monotonically with spares.
    for (std::size_t i = 1; i < choice.sweep.size(); ++i) {
        EXPECT_GT(choice.sweep[i].total_area.value(),
                  choice.sweep[i - 1].total_area.value());
        EXPECT_GE(choice.sweep[i].yield.value(),
                  choice.sweep[i - 1].yield.value());
    }
}

TEST(MemoryDesign, RejectsBadInputs) {
    memory_design bad = dram_design();
    bad.base_array_area = square_centimeters{0.0};
    EXPECT_THROW((void)optimize_redundancy(bad, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)optimize_redundancy(dram_design(), -1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)optimize_redundancy(dram_design(), 1.0, -1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::yield
