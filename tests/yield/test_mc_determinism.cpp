// Thread-count-invariance tests: the deterministic execution engine must
// make Monte-Carlo yield, the wafer simulator and grid evaluation return
// *bit-identical* results for every parallelism level, plus the 100k-die
// statistical regression against the closed form of Eqs. (6)/(7).

#include "analysis/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "yield/critical_area.hpp"
#include "yield/monte_carlo.hpp"
#include "yield/wafer_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace silicon::yield {
namespace {

// 0 resolves to hardware concurrency, so this covers {1, 2, 7, hw}.
const std::vector<unsigned> kParallelisms{1, 2, 7, 0};

wire_array_layout test_layout() {
    wire_array_layout layout;
    layout.line_width = 1.0;
    layout.line_spacing = 1.5;
    layout.line_length = 100.0;
    layout.line_count = 10;
    return layout;
}

TEST(ThreadCountInvariance, MonteCarloIsBitIdentical) {
    const wire_array_layout layout = test_layout();
    const defect_size_distribution sizes{0.6, 4.07};
    monte_carlo_config config;
    config.dies = 20000;
    config.defects_per_um2 = 2e-4;
    config.seed = 9001;

    config.parallelism = 1;
    const monte_carlo_result serial =
        simulate_layout_yield(layout, sizes, config);
    for (unsigned parallelism : kParallelisms) {
        config.parallelism = parallelism;
        const monte_carlo_result run =
            simulate_layout_yield(layout, sizes, config);
        EXPECT_EQ(run.dies, serial.dies) << "parallelism=" << parallelism;
        EXPECT_EQ(run.good_dies, serial.good_dies)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.defects_thrown, serial.defects_thrown)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.shorts, serial.shorts)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.opens, serial.opens)
            << "parallelism=" << parallelism;
        // Exact double comparison on purpose: the contract is
        // bit-identity, not closeness.
        EXPECT_EQ(run.yield, serial.yield)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.std_error, serial.std_error)
            << "parallelism=" << parallelism;
    }
}

TEST(ThreadCountInvariance, MonteCarloSeedStillMatters) {
    const wire_array_layout layout = test_layout();
    const defect_size_distribution sizes{0.6, 4.07};
    monte_carlo_config config;
    config.dies = 5000;
    config.defects_per_um2 = 2e-4;
    config.seed = 1;
    const monte_carlo_result a =
        simulate_layout_yield(layout, sizes, config);
    config.seed = 2;
    const monte_carlo_result b =
        simulate_layout_yield(layout, sizes, config);
    EXPECT_NE(a.defects_thrown, b.defects_thrown);
}

TEST(ThreadCountInvariance, WaferSimIsBitIdentical) {
    const geometry::wafer w = geometry::wafer::six_inch();
    const geometry::die d = geometry::die::square(millimeters{12.0});
    wafer_sim_config config;
    config.wafers = 150;
    config.defects_per_cm2 = 1.2;
    config.process = defect_process::clustered;
    config.cluster_alpha = 2.0;
    config.seed = 77;

    config.parallelism = 1;
    const wafer_sim_result serial = simulate_wafers(w, d, config);
    for (unsigned parallelism : kParallelisms) {
        config.parallelism = parallelism;
        const wafer_sim_result run = simulate_wafers(w, d, config);
        EXPECT_EQ(run.total_defects, serial.total_defects)
            << "parallelism=" << parallelism;
        ASSERT_EQ(run.wafer_yields.size(), serial.wafer_yields.size());
        for (std::size_t i = 0; i < serial.wafer_yields.size(); ++i) {
            EXPECT_EQ(run.wafer_yields[i], serial.wafer_yields[i])
                << "parallelism=" << parallelism << " wafer=" << i;
        }
        EXPECT_EQ(run.mean_yield, serial.mean_yield)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.yield_stddev, serial.yield_stddev)
            << "parallelism=" << parallelism;
        EXPECT_EQ(run.last_wafer_map, serial.last_wafer_map)
            << "parallelism=" << parallelism;
    }
}

TEST(ThreadCountInvariance, GridEvaluateIsBitIdentical) {
    const std::vector<double> xs = analysis::linspace(0.1, 2.0, 37);
    const std::vector<double> ys = analysis::linspace(-1.0, 1.0, 29);
    const auto f = [](double x, double y) {
        return std::exp(-x * y) * std::sin(3.0 * x + y) / x;
    };
    const analysis::grid serial = analysis::grid::evaluate(xs, ys, f, 1);
    for (unsigned parallelism : kParallelisms) {
        const analysis::grid run =
            analysis::grid::evaluate(xs, ys, f, parallelism);
        ASSERT_EQ(run.values.size(), serial.values.size());
        for (std::size_t i = 0; i < serial.values.size(); ++i) {
            EXPECT_EQ(run.values[i], serial.values[i])
                << "parallelism=" << parallelism << " index=" << i;
        }
    }
}

TEST(ThreadCountInvariance, SweepIsBitIdentical) {
    const std::vector<double> xs = analysis::logspace(0.5, 50.0, 101);
    const auto f = [](double x) { return std::log(x) / (1.0 + x * x); };
    const analysis::series serial = analysis::sweep("s", xs, f, 1);
    for (unsigned parallelism : kParallelisms) {
        const analysis::series run = analysis::sweep("s", xs, f, parallelism);
        ASSERT_EQ(run.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(run.points()[i], serial.points()[i])
                << "parallelism=" << parallelism << " index=" << i;
        }
    }
}

TEST(StatisticalRegression, ParallelMonteCarloMatchesClosedFormAt100kDies) {
    // Tightened agreement assertion on the new fast path: at 100k dies
    // the parallel MC yield must sit within 3 binomial standard errors
    // of the analytical critical-area / Eq. (6)-(7) closed form.
    const wire_array_layout layout = test_layout();
    const defect_size_distribution sizes{0.6, 4.07};
    monte_carlo_config config;
    config.dies = 100000;
    config.defects_per_um2 = 2e-4;
    config.extra_material_fraction = 0.5;
    config.seed = 2026;
    config.parallelism = 0;  // hardware concurrency

    const monte_carlo_result mc =
        simulate_layout_yield(layout, sizes, config);
    const double analytic =
        layout_yield(layout, sizes, config.defects_per_um2,
                     config.extra_material_fraction);
    ASSERT_GT(mc.std_error, 0.0);
    EXPECT_NEAR(mc.yield, analytic, 3.0 * mc.std_error);
}

}  // namespace
}  // namespace silicon::yield
