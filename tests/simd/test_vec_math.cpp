// test_vec_math.cpp — ULP-drift harness for the dispatched array
// transcendentals (simd/math.hpp).
//
// Three contracts, each pinned against adversarial inputs:
//
//   * accuracy — every lane is within kMaxUlp (= 4) units in the last
//     place of the correctly-rounded long-double reference, across the
//     full argument range including results that overflow, underflow
//     gradually into subnormals, or sit on the small-argument branch
//     cuts;
//   * IEEE specials — NaN propagation, signed zeros and infinities
//     follow the documented table (pow's negative-base domain is the
//     one deliberate deviation from libm: always NaN);
//   * split determinism — evaluating any sub-range partition of a
//     buffer produces bytes identical to one full-range call, which is
//     what lets the engine shard fast_math sweeps across threads.
//
// The same assertions run on every backend: scalar fallback (libm per
// lane) trivially satisfies them, AVX2/NEON must earn them.  CI runs
// this suite once with dispatch forced to scalar and once with the
// vector path on (SILICON_SIMD).

#include "simd/dispatch.hpp"
#include "simd/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace simd = silicon::simd;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kMaxUlp = 4;

/// Monotone total-order key: distance between keys counts the number
/// of representable doubles between two values (sign-aware).
std::uint64_t total_order_key(double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof u);
    return (u >> 63) != 0 ? ~u : u | 0x8000000000000000ull;
}

std::uint64_t ulp_distance(double a, double b) {
    const bool an = std::isnan(a);
    const bool bn = std::isnan(b);
    if (an || bn) {
        return an == bn ? 0 : std::numeric_limits<std::uint64_t>::max();
    }
    const std::uint64_t ka = total_order_key(a);
    const std::uint64_t kb = total_order_key(b);
    return ka > kb ? ka - kb : kb - ka;
}

::testing::AssertionResult lane_within_ulp(double x, double actual,
                                           double reference,
                                           std::uint64_t bound) {
    const std::uint64_t d = ulp_distance(actual, reference);
    if (d <= bound) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "x=" << x << ": got " << actual << ", reference "
           << reference << ", " << d << " ULP apart (bound " << bound
           << ")";
}

double ref_exp(double x) {
    return static_cast<double>(std::exp(static_cast<long double>(x)));
}
double ref_expm1(double x) {
    return static_cast<double>(std::expm1(static_cast<long double>(x)));
}
double ref_pow(double b, double e) {
    return static_cast<double>(std::pow(static_cast<long double>(b),
                                        static_cast<long double>(e)));
}

/// Adversarial exp/expm1 arguments: the overflow and total-underflow
/// thresholds, the subnormal-result band, branch cuts near 0, and the
/// IEEE specials.
std::vector<double> hard_args() {
    return {
        0.0,     -0.0,     1.0,      -1.0,     0.5,      -0.5,
        1e-17,   -1e-17,   1e-300,   -1e-300,  5e-324,   -5e-324,
        700.0,   709.0,    709.78,   710.0,    1000.0,   -1000.0,
        -700.0,  -708.0,   -709.0,   -740.0,   -744.0,   -745.0,
        -745.13, -746.0,   36.7,     -36.7,    kinf,     -kinf,
        knan,    0.125,    -0.125,   2.5e-8,   -2.5e-8,
    };
}

std::vector<double> uniform_grid(double lo, double hi, std::size_t n,
                                 std::uint64_t seed) {
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{lo, hi};
    std::vector<double> xs(n);
    for (double& x : xs) {
        x = uni(rng);
    }
    return xs;
}

TEST(VecMath, ExpWithinUlpBoundOfLongDouble) {
    std::vector<double> xs = hard_args();
    const std::vector<double> dense = uniform_grid(-746.0, 710.0, 20000, 0x5eed1u);
    xs.insert(xs.end(), dense.begin(), dense.end());
    // Subnormal-result band: exp(x) for x in (-745.2, -708.3).
    const std::vector<double> sub = uniform_grid(-745.1, -708.4, 4000, 0x5eed2u);
    xs.insert(xs.end(), sub.begin(), sub.end());

    std::vector<double> out(xs.size());
    simd::exp_lanes(xs.data(), out.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(lane_within_ulp(xs[i], out[i], ref_exp(xs[i]), kMaxUlp))
            << "lane " << i;
    }
}

TEST(VecMath, Expm1WithinUlpBoundOfLongDouble) {
    std::vector<double> xs = hard_args();
    const std::vector<double> dense = uniform_grid(-60.0, 710.0, 20000, 0xab1eu);
    xs.insert(xs.end(), dense.begin(), dense.end());
    // Branch-cut band around 0 where expm1(x) ~ x.
    const std::vector<double> tiny = uniform_grid(-1e-8, 1e-8, 4000, 0xab2eu);
    xs.insert(xs.end(), tiny.begin(), tiny.end());

    std::vector<double> out(xs.size());
    simd::expm1_lanes(xs.data(), out.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(
            lane_within_ulp(xs[i], out[i], ref_expm1(xs[i]), kMaxUlp))
            << "lane " << i;
    }
}

TEST(VecMath, ExpSpecials) {
    const std::vector<double> xs = {knan, kinf, -kinf, 0.0, -0.0};
    std::vector<double> out(xs.size());
    simd::exp_lanes(xs.data(), out.data(), xs.size());
    EXPECT_TRUE(std::isnan(out[0]));
    EXPECT_EQ(out[1], kinf);
    EXPECT_EQ(out[2], 0.0);
    EXPECT_EQ(out[3], 1.0);
    EXPECT_EQ(out[4], 1.0);
}

TEST(VecMath, Expm1Specials) {
    const std::vector<double> xs = {knan, kinf, -kinf, 0.0, -0.0};
    std::vector<double> out(xs.size());
    simd::expm1_lanes(xs.data(), out.data(), xs.size());
    EXPECT_TRUE(std::isnan(out[0]));
    EXPECT_EQ(out[1], kinf);
    EXPECT_EQ(out[2], -1.0);
    EXPECT_EQ(out[3], 0.0);
    EXPECT_EQ(out[4], 0.0);
    EXPECT_TRUE(std::signbit(out[4]));  // expm1(-0) = -0
}

TEST(VecMath, PowWithinUlpBoundOfLongDouble) {
    struct lane {
        double base, expo;
    };
    std::vector<lane> lanes = {
        // Near-1 bases with huge exponents: the double-double log is
        // what keeps these inside the bound.
        {1.0 + 1e-15, 1e15},
        {1.0 - 1e-15, 1e15},
        {1.0 + 1e-16, -4.5e15},
        {0.9999999999999, 1e12},
        // Results near the overflow/underflow boundaries.
        {10.0, 307.5},
        {10.0, -307.6},
        {10.0, -320.0},  // subnormal result
        {2.0, 1023.5},
        {2.0, -1074.0},
        // Subnormal and huge bases.
        {5e-324, 0.5},
        {1e-300, 1.01},
        {1e300, 1.02},
        // Yield-model shapes: (1 + l/a)^-a, Y0^A.
        {1.0000001, -2.0},
        {0.7, 1.9},
        {0.95, 0.02},
        {1.5, -2.5},
    };
    std::mt19937_64 rng{0x90dau};
    std::uniform_real_distribution<double> log_base{-7.0, 7.0};
    std::uniform_real_distribution<double> expo{-40.0, 40.0};
    for (int i = 0; i < 20000; ++i) {
        lanes.push_back({std::pow(10.0, log_base(rng)), expo(rng)});
    }

    std::vector<double> b;
    std::vector<double> e;
    for (const lane& l : lanes) {
        b.push_back(l.base);
        e.push_back(l.expo);
    }
    std::vector<double> out(lanes.size());
    simd::pow_lanes(b.data(), e.data(), out.data(), lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        EXPECT_TRUE(lane_within_ulp(b[i], out[i], ref_pow(b[i], e[i]),
                                    kMaxUlp))
            << "base=" << b[i] << " expo=" << e[i] << " lane " << i;
    }
}

TEST(VecMath, PowSpecialsTable) {
    // The documented table (math.hpp): pow(x,0)=pow(1,y)=1 for any x/y
    // including NaN; zero and infinite bases split on the exponent
    // sign; negative bases are always NaN (the deliberate deviation
    // from libm's integer-exponent carve-out); NaN otherwise
    // propagates.
    struct row {
        double base, expo, want;
    };
    const std::vector<row> rows = {
        {knan, 0.0, 1.0},   {kinf, 0.0, 1.0},   {0.0, 0.0, 1.0},
        {2.5, 0.0, 1.0},    {1.0, knan, 1.0},   {1.0, kinf, 1.0},
        {1.0, -kinf, 1.0},  {1.0, 42.0, 1.0},   {0.0, 2.0, 0.0},
        {0.0, kinf, 0.0},   {0.0, -2.0, kinf},  {0.0, -kinf, kinf},
        {kinf, 2.0, kinf},  {kinf, kinf, kinf}, {kinf, -2.0, 0.0},
        {kinf, -kinf, 0.0}, {0.5, kinf, 0.0},   {0.5, -kinf, kinf},
        {2.0, kinf, kinf},  {2.0, -kinf, 0.0},
    };
    const std::vector<row> nan_rows = {
        {knan, 2.0, knan},  {2.0, knan, knan},  {knan, knan, knan},
        {-2.0, 2.0, knan},  {-2.0, 2.5, knan},  {-1.0, 3.0, knan},
        {-kinf, 2.0, knan}, {-5e-324, 1.0, knan},
    };

    std::vector<double> b;
    std::vector<double> e;
    for (const row& r : rows) {
        b.push_back(r.base);
        e.push_back(r.expo);
    }
    for (const row& r : nan_rows) {
        b.push_back(r.base);
        e.push_back(r.expo);
    }
    std::vector<double> out(b.size());
    simd::pow_lanes(b.data(), e.data(), out.data(), b.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(out[i], rows[i].want)
            << "pow(" << rows[i].base << ", " << rows[i].expo << ")";
    }
    for (std::size_t i = 0; i < nan_rows.size(); ++i) {
        EXPECT_TRUE(std::isnan(out[rows.size() + i]))
            << "pow(" << nan_rows[i].base << ", " << nan_rows[i].expo
            << ") should be NaN";
    }
}

/// Sub-range partitions must reproduce the full-range bytes exactly —
/// tails go through the same padded vector math, never libm.
template <typename Full, typename Split>
void expect_split_identical(std::size_t n, Full&& full, Split&& split) {
    std::vector<double> whole(n);
    std::vector<double> parts(n);
    full(whole);
    // Deliberately misaligned cuts: 1, 3, then a large odd chunk.
    const std::size_t cuts[] = {0, 1, 3, 131, 132, 517, n};
    for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            split(parts, lo, hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(whole.data(), parts.data(), n * sizeof(double)),
              0);
}

TEST(VecMath, SplitsAreBitIdentical) {
    const std::size_t n = 1003;
    const std::vector<double> xs = uniform_grid(-700.0, 700.0, n, 0xc0dedu);
    const std::vector<double> bs = uniform_grid(0.01, 100.0, n, 0xc1dedu);
    const std::vector<double> es = uniform_grid(-30.0, 30.0, n, 0xc2dedu);

    expect_split_identical(
        n, [&](std::vector<double>& out) {
            simd::exp_lanes(xs.data(), out.data(), n);
        },
        [&](std::vector<double>& out, std::size_t lo, std::size_t len) {
            simd::exp_lanes(xs.data() + lo, out.data() + lo, len);
        });
    expect_split_identical(
        n, [&](std::vector<double>& out) {
            simd::expm1_lanes(xs.data(), out.data(), n);
        },
        [&](std::vector<double>& out, std::size_t lo, std::size_t len) {
            simd::expm1_lanes(xs.data() + lo, out.data() + lo, len);
        });
    expect_split_identical(
        n, [&](std::vector<double>& out) {
            simd::pow_lanes(bs.data(), es.data(), out.data(), n);
        },
        [&](std::vector<double>& out, std::size_t lo, std::size_t len) {
            simd::pow_lanes(bs.data() + lo, es.data() + lo, out.data() + lo,
                            len);
        });
}

TEST(VecMath, GuardLanesDoNotPerturbNeighbours) {
    // A NaN / overflow / negative-base lane must not change the bytes
    // of any other lane (the fast kernels rely on this to mask guard
    // lanes in place).
    const std::size_t n = 64;
    std::vector<double> clean = uniform_grid(-50.0, 50.0, n, 0xfacadeu);
    std::vector<double> dirty = clean;
    dirty[5] = knan;
    dirty[17] = kinf;
    dirty[18] = -kinf;
    dirty[33] = 1e308;

    std::vector<double> out_clean(n);
    std::vector<double> out_dirty(n);
    simd::exp_lanes(clean.data(), out_clean.data(), n);
    simd::exp_lanes(dirty.data(), out_dirty.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i == 5 || i == 17 || i == 18 || i == 33) {
            continue;
        }
        EXPECT_EQ(std::memcmp(&out_clean[i], &out_dirty[i], sizeof(double)),
                  0)
            << "lane " << i << " perturbed by a special neighbour";
    }
}

TEST(VecMath, ActiveTargetAnswersAllEntryPoints) {
    // Smoke: whatever backend dispatch picked, all three entry points
    // produce finite values on a benign grid.
    const std::vector<double> xs = {0.1, 0.2, 0.3, 0.4, 0.5};
    std::vector<double> out(xs.size());
    simd::exp_lanes(xs.data(), out.data(), xs.size());
    for (const double y : out) {
        EXPECT_TRUE(std::isfinite(y));
    }
    simd::expm1_lanes(xs.data(), out.data(), xs.size());
    for (const double y : out) {
        EXPECT_TRUE(std::isfinite(y));
    }
    simd::pow_lanes(xs.data(), xs.data(), out.data(), xs.size());
    for (const double y : out) {
        EXPECT_TRUE(std::isfinite(y));
    }
    // And the resolved target is a printable, supported one.
    EXPECT_TRUE(simd::host_supports(simd::active_target()));
}

}  // namespace
