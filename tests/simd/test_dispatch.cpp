// test_dispatch.cpp — one-time CPU dispatch resolution
// (simd/dispatch.hpp).
//
// active_target() latches on first call, so the SILICON_SIMD override
// matrix cannot be probed in-process: instead this binary re-executes
// itself (via /proc/self/exe) with the variable forced and a marker
// test filtered in, and asserts on the "active=<name>" line the child
// prints.  Demotion is the part worth pinning — forcing "avx2" on a
// host without AVX2+FMA (or "neon" on x86-64) must silently resolve
// to scalar, never crash or SIGILL.

#include "simd/dispatch.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

namespace simd = silicon::simd;

namespace {

simd::target best_hardware_target() {
    if (simd::host_supports(simd::target::avx2)) {
        return simd::target::avx2;
    }
    if (simd::host_supports(simd::target::neon)) {
        return simd::target::neon;
    }
    return simd::target::scalar;
}

std::string self_exe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) {
        return {};
    }
    buf[static_cast<std::size_t>(n)] = '\0';
    return std::string{buf};
}

/// Re-run this binary with SILICON_SIMD=<forced>, filtered down to the
/// marker test, and return the target name it resolved.
std::string child_active_target(const std::string& forced) {
    const std::string exe = self_exe();
    if (exe.empty()) {
        return {};
    }
    const std::string cmd =
        "SILICON_SIMD=" + forced + " SILICON_DISPATCH_CHILD=1 '" + exe +
        "' --gtest_filter=Dispatch.ChildPrintsActiveTarget 2>/dev/null";
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
        return {};
    }
    std::string output;
    char chunk[256];
    while (std::fgets(chunk, sizeof chunk, pipe) != nullptr) {
        output += chunk;
    }
    const int status = ::pclose(pipe);
    if (status != 0) {
        return "child-failed";
    }
    const std::size_t pos = output.find("active=");
    if (pos == std::string::npos) {
        return {};
    }
    std::string name = output.substr(pos + 7);
    if (const std::size_t nl = name.find('\n'); nl != std::string::npos) {
        name.resize(nl);
    }
    return name;
}

TEST(Dispatch, ChildPrintsActiveTarget) {
    if (std::getenv("SILICON_DISPATCH_CHILD") == nullptr) {
        GTEST_SKIP() << "marker test driven by the subprocess matrix";
    }
    std::printf("active=%s\n", simd::to_string(simd::active_target()));
}

TEST(Dispatch, ScalarAlwaysSupported) {
    EXPECT_TRUE(simd::host_supports(simd::target::scalar));
}

TEST(Dispatch, ActiveTargetIsStableAndRunnable) {
    const simd::target first = simd::active_target();
    const simd::target second = simd::active_target();
    EXPECT_EQ(first, second);
    EXPECT_TRUE(simd::host_supports(first));
}

TEST(Dispatch, TargetNames) {
    EXPECT_STREQ(simd::to_string(simd::target::scalar), "scalar");
    EXPECT_STREQ(simd::to_string(simd::target::avx2), "avx2");
    EXPECT_STREQ(simd::to_string(simd::target::neon), "neon");
}

TEST(Dispatch, OverrideScalarForcesScalar) {
    EXPECT_EQ(child_active_target("scalar"), "scalar");
}

TEST(Dispatch, OverrideAvx2DemotesWhenUnsupported) {
    const char* want =
        simd::host_supports(simd::target::avx2) ? "avx2" : "scalar";
    EXPECT_EQ(child_active_target("avx2"), want);
}

TEST(Dispatch, OverrideNeonDemotesWhenUnsupported) {
    const char* want =
        simd::host_supports(simd::target::neon) ? "neon" : "scalar";
    EXPECT_EQ(child_active_target("neon"), want);
}

TEST(Dispatch, UnknownOverrideFallsBackToDetection) {
    EXPECT_EQ(child_active_target("quantum"),
              simd::to_string(best_hardware_target()));
}

}  // namespace
