// Tests for the packaging cost model.

#include "cost/assembly.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::cost {
namespace {

TEST(PackageCost, BasePlusPins) {
    package_spec spec;
    spec.base_cost = dollars{2.0};
    spec.cost_per_pin = dollars{0.05};
    spec.pins = 100;
    EXPECT_NEAR(package_cost(spec).value(), 7.0, 1e-12);
}

TEST(PackageCost, RejectsNegativePins) {
    package_spec spec;
    spec.pins = -1;
    EXPECT_THROW((void)package_cost(spec), std::invalid_argument);
}

TEST(PackagedPart, AssemblyYieldInflatesCost) {
    package_spec spec;
    spec.base_cost = dollars{1.0};
    spec.cost_per_pin = dollars{0.0};
    spec.pins = 0;
    spec.assembly_yield = probability{0.5};
    EXPECT_NEAR(packaged_part_cost(dollars{9.0}, spec).value(), 20.0,
                1e-12);
}

TEST(PackagedPart, PerfectAssemblyAddsOnlyPackage) {
    package_spec spec;
    spec.base_cost = dollars{3.0};
    spec.cost_per_pin = dollars{0.02};
    spec.pins = 50;
    spec.assembly_yield = probability{1.0};
    EXPECT_NEAR(packaged_part_cost(dollars{10.0}, spec).value(), 14.0,
                1e-12);
}

TEST(PackagedPart, RejectsZeroAssemblyYield) {
    package_spec spec;
    spec.assembly_yield = probability{0.0};
    EXPECT_THROW((void)packaged_part_cost(dollars{10.0}, spec),
                 std::domain_error);
}

TEST(PackagedPart, RejectsNegativeDieCost) {
    EXPECT_THROW((void)packaged_part_cost(dollars{-1.0}, package_spec{}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace silicon::cost
