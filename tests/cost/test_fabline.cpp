// Tests for the fabline capacity/utilization model.

#include "cost/fabline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::cost {
namespace {

fabline tiny_line() {
    return fabline{{{"litho", dollars{100.0}, 10.0},
                    {"etch", dollars{50.0}, 20.0}},
                   100.0};
}

wafer_recipe tiny_recipe(double litho_passes, double etch_passes) {
    return {"tiny", {litho_passes, etch_passes}};
}

TEST(Fabline, RejectsBadConstruction) {
    EXPECT_THROW((void)(fabline{{}, 100.0}), std::invalid_argument);
    EXPECT_THROW((void)(fabline{{{"a", dollars{1.0}, 0.0}}, 100.0}),
                 std::invalid_argument);
    EXPECT_THROW((void)(fabline{{{"a", dollars{1.0}, 1.0}}, 0.0}),
                 std::invalid_argument);
}

TEST(Fabline, RequiredHoursAccumulateAcrossProducts) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(10.0, 5.0), 100.0},  // 100 wafers
        {tiny_recipe(20.0, 0.0), 50.0},
    };
    const auto hours = line.required_hours(mix);
    // litho: 100*10/10 + 50*20/10 = 100 + 100 = 200 h.
    EXPECT_DOUBLE_EQ(hours[0], 200.0);
    // etch: 100*5/20 = 25 h.
    EXPECT_DOUBLE_EQ(hours[1], 25.0);
}

TEST(Fabline, RejectsMismatchedRecipe) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {{"bad", {1.0}}, 10.0}};
    EXPECT_THROW((void)line.required_hours(mix), std::invalid_argument);
}

TEST(Fabline, SizeLineCoversDemand) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(10.0, 5.0), 100.0}};
    // litho needs 100 h / (100 h * 0.95) = 1.05 -> 2 tools.
    const auto tools = line.size_line(mix);
    EXPECT_EQ(tools[0], 2);
    EXPECT_EQ(tools[1], 1);
}

TEST(Fabline, SizeLineZeroToolsForUnusedGroups) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(10.0, 0.0), 10.0}};
    const auto tools = line.size_line(mix);
    EXPECT_EQ(tools[1], 0);
}

TEST(Fabline, AnalyzeComputesUtilizationAndCost) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(10.0, 5.0), 100.0}};
    const fabline_report report = line.analyze(mix, {2, 1});
    EXPECT_DOUBLE_EQ(report.total_wafers, 100.0);
    // Owned: litho 2*100 h * $100 + etch 1*100 h * $50 = $25000.
    EXPECT_DOUBLE_EQ(report.period_cost.value(), 25000.0);
    EXPECT_DOUBLE_EQ(report.cost_per_wafer.value(), 250.0);
    EXPECT_NEAR(report.groups[0].utilization, 0.5, 1e-12);
    EXPECT_NEAR(report.groups[1].utilization, 0.25, 1e-12);
    EXPECT_NEAR(report.bottleneck_utilization, 0.5, 1e-12);
}

TEST(Fabline, AnalyzeRejectsOverCapacity) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(100.0, 0.0), 100.0}};  // 1000 litho hours needed
    EXPECT_THROW((void)line.analyze(mix, {1, 1}), std::invalid_argument);
}

TEST(Fabline, AnalyzeRejectsDemandWithNoTools) {
    const fabline line = tiny_line();
    const std::vector<product_demand> mix = {
        {tiny_recipe(1.0, 1.0), 10.0}};
    EXPECT_THROW((void)line.analyze(mix, {1, 0}), std::invalid_argument);
}

TEST(Fabline, HigherVolumeLowersCostPerWafer) {
    const fabline line = tiny_line();
    const fabline_report small = line.analyze_sized(
        {{tiny_recipe(10.0, 5.0), 20.0}});
    const fabline_report large = line.analyze_sized(
        {{tiny_recipe(10.0, 5.0), 2000.0}});
    EXPECT_GT(small.cost_per_wafer.value(),
              large.cost_per_wafer.value());
}

TEST(GenericCmos, HasEightGroups) {
    const fabline line = fabline::generic_cmos();
    EXPECT_EQ(line.groups().size(), 8u);
    EXPECT_EQ(line.groups().front().name, "lithography");
}

TEST(GenericRecipe, MatchesGenericLineWidth) {
    const wafer_recipe recipe = fabline::generic_recipe(0.8, 3);
    EXPECT_EQ(recipe.passes.size(),
              fabline::generic_cmos().groups().size());
    // Litho passes dominate and must be positive.
    EXPECT_GT(recipe.passes[0], 10.0);
}

TEST(GenericRecipe, FinerProcessDemandsMore) {
    const wafer_recipe coarse = fabline::generic_recipe(1.2, 2);
    const wafer_recipe fine = fabline::generic_recipe(0.35, 4);
    double coarse_total = 0.0;
    double fine_total = 0.0;
    for (std::size_t i = 0; i < coarse.passes.size(); ++i) {
        coarse_total += coarse.passes[i];
        fine_total += fine.passes[i];
    }
    EXPECT_GT(fine_total, coarse_total);
}

}  // namespace
}  // namespace silicon::cost
