// test_batch_ulp.cpp — fast_math cost kernels vs the bit-exact scalar
// kernels (cost/batch.hpp, "fast_math variants" block).
//
// Same three contracts as tests/yield/test_batch_ulp.cpp: NaN
// classification identity over mixed valid/invalid lanes, bounded ULP
// drift on valid lanes, and split determinism.  Scenario #2 chains
// pow -> exp -> pow, so its drift bound is the composed kMaxUlp.

#include "cost/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace batch = silicon::cost::batch;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kMaxUlp = 4;

std::uint64_t total_order_key(double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof u);
    return (u >> 63) != 0 ? ~u : u | 0x8000000000000000ull;
}

std::uint64_t ulp_distance(double a, double b) {
    const std::uint64_t ka = total_order_key(a);
    const std::uint64_t kb = total_order_key(b);
    return ka > kb ? ka - kb : kb - ka;
}

void expect_lanes_match(const std::vector<double>& ref,
                        const std::vector<double>& got,
                        std::uint64_t max_ulp) {
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i]))
            << "lane " << i << ": scalar " << ref[i] << ", fast "
            << got[i];
        if (std::isnan(ref[i]) || std::isnan(got[i])) {
            continue;
        }
        EXPECT_LE(ulp_distance(ref[i], got[i]), max_ulp)
            << "lane " << i << ": scalar " << ref[i] << ", fast "
            << got[i];
    }
}

/// Scenario input columns: mostly the paper's operating range, with
/// invalid lanes (lambda <= 0, C0 <= 0, X < 1, radius <= 0, Y0 out of
/// (0,1], NaN/inf everywhere) scattered in.
struct scenario_grid {
    std::vector<double> lambda, c0, x, r, dd, y0;

    std::size_t size() const { return lambda.size(); }

    void push(double l, double c, double xx, double rr, double d,
              double y) {
        lambda.push_back(l);
        c0.push_back(c);
        x.push_back(xx);
        r.push_back(rr);
        dd.push_back(d);
        y0.push_back(y);
    }

    batch::scenario_columns columns() const {
        batch::scenario_columns cols;
        cols.lambda_um = lambda.data();
        cols.c0_usd = c0.data();
        cols.x = x.data();
        cols.wafer_radius_cm = r.data();
        cols.design_density = dd.data();
        cols.y0 = y0.data();
        return cols;
    }

    batch::scenario_columns columns_at(std::size_t off) const {
        batch::scenario_columns cols;
        cols.lambda_um = lambda.data() + off;
        cols.c0_usd = c0.data() + off;
        cols.x = x.data() + off;
        cols.wafer_radius_cm = r.data() + off;
        cols.design_density = dd.data() + off;
        cols.y0 = y0.data() + off;
        return cols;
    }
};

scenario_grid make_grid() {
    scenario_grid g;
    // Adversarial lanes first.
    g.push(0.0, 500.0, 1.2, 7.5, 30.0, 0.7);    // lambda = 0
    g.push(-0.5, 500.0, 1.2, 7.5, 30.0, 0.7);   // negative lambda
    g.push(knan, 500.0, 1.2, 7.5, 30.0, 0.7);   // NaN lambda
    g.push(kinf, 500.0, 1.2, 7.5, 30.0, 0.7);   // infinite lambda
    g.push(0.5, 0.0, 1.2, 7.5, 30.0, 0.7);      // C0 = 0
    g.push(0.5, -100.0, 1.2, 7.5, 30.0, 0.7);   // negative C0
    g.push(0.5, knan, 1.2, 7.5, 30.0, 0.7);     // NaN C0
    g.push(0.5, 500.0, 0.9, 7.5, 30.0, 0.7);    // X < 1
    g.push(0.5, 500.0, knan, 7.5, 30.0, 0.7);   // NaN X
    g.push(0.5, 500.0, 1.2, 0.0, 30.0, 0.7);    // radius = 0
    g.push(0.5, 500.0, 1.2, -2.0, 30.0, 0.7);   // negative radius
    g.push(0.5, 500.0, 1.2, 7.5, knan, 0.7);    // NaN density
    g.push(0.5, 500.0, 1.2, 7.5, 30.0, 0.0);    // Y0 = 0 (scenario2)
    g.push(0.5, 500.0, 1.2, 7.5, 30.0, 1.1);    // Y0 > 1 (scenario2)
    g.push(0.5, 500.0, 1.2, 7.5, 30.0, knan);   // NaN Y0 (scenario2)
    g.push(1e-6, 500.0, 1.5, 7.5, 30.0, 0.7);   // huge cost exponent
    g.push(5e-324, 500.0, 1.2, 7.5, 30.0, 0.7); // subnormal lambda
    g.push(1e4, 500.0, 1.2, 7.5, 30.0, 0.7);    // enormous lambda
    // Then the operating range.
    std::mt19937_64 rng{0x0c05u};
    std::uniform_real_distribution<double> lam{0.3, 1.5};
    std::uniform_real_distribution<double> c0{100.0, 2000.0};
    std::uniform_real_distribution<double> x{1.0, 2.0};
    std::uniform_real_distribution<double> r{5.0, 15.0};
    std::uniform_real_distribution<double> dd{10.0, 400.0};
    std::uniform_real_distribution<double> y0{0.3, 1.0};
    for (int i = 0; i < 2000; ++i) {
        g.push(lam(rng), c0(rng), x(rng), r(rng), dd(rng), y0(rng));
    }
    return g;
}

TEST(CostBatchUlp, PureWaferCostFastMatchesScalarWithinUlp) {
    const scenario_grid g = make_grid();
    const std::size_t n = g.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::pure_wafer_cost(g.c0.data(), g.x.data(), g.lambda.data(), 0.2,
                           ref.data(), n);
    batch::pure_wafer_cost_fast(g.c0.data(), g.x.data(), g.lambda.data(),
                                0.2, got.data(), n);
    expect_lanes_match(ref, got, kMaxUlp);

    // Split determinism.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 1, 9, 250, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            batch::pure_wafer_cost_fast(g.c0.data() + lo, g.x.data() + lo,
                                        g.lambda.data() + lo, 0.2,
                                        parts.data() + lo, hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0);
}

TEST(CostBatchUlp, Scenario1FastMatchesScalarWithinUlp) {
    const scenario_grid g = make_grid();
    const std::size_t n = g.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::scenario1_cost_per_transistor(g.columns(), ref.data(), n);
    batch::scenario1_cost_per_transistor_fast(g.columns(), got.data(), n);
    expect_lanes_match(ref, got, kMaxUlp);
}

TEST(CostBatchUlp, Scenario2FastMatchesScalarWithinUlp) {
    const scenario_grid g = make_grid();
    const std::size_t n = g.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    batch::scenario2_cost_per_transistor(g.columns(), ref.data(), n);
    batch::scenario2_cost_per_transistor_fast(g.columns(), got.data(), n);
    expect_lanes_match(ref, got, kMaxUlp);

    // Split determinism across all six columns.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 4, 5, 77, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            batch::scenario2_cost_per_transistor_fast(
                g.columns_at(lo), parts.data() + lo, hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0);
}

}  // namespace
