// Tests for the fab investment NPV model.

#include "cost/investment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::cost {
namespace {

fab_investment healthy_plan() {
    fab_investment plan;
    plan.capital = dollars{1000e6};
    plan.life_quarters = 24;
    plan.wafers_per_quarter = 60000.0;
    plan.ramp_quarters = 4;
    plan.utilization = 0.9;
    plan.margin_per_wafer = dollars{2200.0};
    plan.margin_erosion_per_quarter = 0.03;
    plan.discount_rate_per_quarter = 0.03;
    return plan;
}

TEST(Investment, HealthyPlanPaysBack) {
    const investment_result r = evaluate_investment(healthy_plan());
    EXPECT_GT(r.npv.value(), 0.0);
    EXPECT_GE(r.payback_quarter, 4);   // not instantaneous
    EXPECT_LT(r.payback_quarter, 24);  // but within the horizon
    EXPECT_EQ(r.quarters.size(), 24u);
}

TEST(Investment, QuartersAreInternallyConsistent) {
    const investment_result r = evaluate_investment(healthy_plan());
    double cumulative = -1000e6;
    for (const quarter_cash_flow& q : r.quarters) {
        cumulative += q.discounted.value();
        EXPECT_NEAR(q.cumulative_npv.value(), cumulative, 1.0);
        EXPECT_LE(q.discounted.value(), q.cash.value());
    }
    EXPECT_NEAR(r.npv.value(), cumulative, 1.0);
}

TEST(Investment, RampLimitsEarlyVolume) {
    const investment_result r = evaluate_investment(healthy_plan());
    EXPECT_LT(r.quarters[0].wafers, r.quarters[6].wafers);
    EXPECT_NEAR(r.quarters[10].wafers, 60000.0 * 0.9, 1.0);
}

TEST(Investment, MarginErosionCompounds) {
    const investment_result r = evaluate_investment(healthy_plan());
    EXPECT_NEAR(r.quarters[1].margin_per_wafer.value(),
                2200.0 * 0.97, 1e-9);
    EXPECT_LT(r.quarters.back().margin_per_wafer.value(),
              r.quarters.front().margin_per_wafer.value());
}

TEST(Investment, ThinMarginsNeverPayBack) {
    fab_investment thin = healthy_plan();
    thin.margin_per_wafer = dollars{150.0};
    const investment_result r = evaluate_investment(thin);
    EXPECT_LT(r.npv.value(), 0.0);
    EXPECT_EQ(r.payback_quarter, -1);
    EXPECT_DOUBLE_EQ(r.internal_utilization_breakeven, 1.0);
}

TEST(Investment, BreakevenUtilizationIsConsistent) {
    const investment_result r = evaluate_investment(healthy_plan());
    ASSERT_GT(r.internal_utilization_breakeven, 0.0);
    ASSERT_LT(r.internal_utilization_breakeven, 0.9);
    fab_investment at_breakeven = healthy_plan();
    at_breakeven.utilization = r.internal_utilization_breakeven;
    EXPECT_NEAR(investment_npv(at_breakeven).value(), 0.0, 1e4);
}

TEST(Investment, NpvMonotoneInUtilization) {
    double previous = -2e9;
    for (double u : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        fab_investment plan = healthy_plan();
        plan.utilization = u;
        const double npv = investment_npv(plan).value();
        EXPECT_GT(npv, previous);
        previous = npv;
    }
}

TEST(Investment, HigherDiscountRateLowersNpv) {
    fab_investment cheap_capital = healthy_plan();
    cheap_capital.discount_rate_per_quarter = 0.01;
    fab_investment dear_capital = healthy_plan();
    dear_capital.discount_rate_per_quarter = 0.06;
    EXPECT_GT(investment_npv(cheap_capital).value(),
              investment_npv(dear_capital).value());
}

TEST(Investment, RejectsBadInputs) {
    fab_investment plan = healthy_plan();
    plan.capital = dollars{0.0};
    EXPECT_THROW((void)evaluate_investment(plan), std::invalid_argument);
    plan = healthy_plan();
    plan.life_quarters = 0;
    EXPECT_THROW((void)evaluate_investment(plan), std::invalid_argument);
    plan = healthy_plan();
    plan.utilization = 0.0;
    EXPECT_THROW((void)evaluate_investment(plan), std::invalid_argument);
    plan = healthy_plan();
    plan.margin_erosion_per_quarter = 1.0;
    EXPECT_THROW((void)evaluate_investment(plan), std::invalid_argument);
    plan = healthy_plan();
    plan.discount_rate_per_quarter = -0.1;
    EXPECT_THROW((void)evaluate_investment(plan), std::invalid_argument);
}

}  // namespace
}  // namespace silicon::cost
