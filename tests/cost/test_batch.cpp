// test_batch.cpp — bit-exactness of the SoA cost kernels against the
// scalar wafer-cost model and scenario evaluators.
//
// Contract (cost/batch.hpp): kernel lanes are bit-identical to the
// scalar path; inputs the scalar path rejects (by throwing) come back
// as quiet NaN lanes.

#include "cost/batch.hpp"

#include "core/scenario.hpp"
#include "core/units.hpp"
#include "cost/wafer_cost.hpp"
#include "geometry/wafer.hpp"
#include "yield/scaled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace core = silicon::core;
namespace cost = silicon::cost;
namespace geometry = silicon::geometry;
namespace yield = silicon::yield;
using silicon::centimeters;
using silicon::dollars;
using silicon::microns;
using silicon::probability;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();

template <typename Fn>
double scalar_or_nan(Fn&& fn) {
    try {
        return fn();
    } catch (...) {
        return knan;
    }
}

::testing::AssertionResult lanes_bit_equal(double expected, double actual,
                                           std::size_t lane) {
    if (std::isnan(expected) && std::isnan(actual)) {
        return ::testing::AssertionSuccess();
    }
    std::uint64_t eb = 0;
    std::uint64_t ab = 0;
    std::memcpy(&eb, &expected, sizeof eb);
    std::memcpy(&ab, &actual, sizeof ab);
    if (eb == ab) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "lane " << lane << ": expected " << expected << " (0x"
           << std::hex << eb << "), got " << actual << " (0x" << ab << ")";
}

struct scenario_lane {
    double lambda = 0.5;
    double c0 = 500.0;
    double x = 1.2;
    double radius = 7.5;
    double density = 30.0;
    double y0 = 0.7;
};

std::vector<scenario_lane> scenario_lanes() {
    std::vector<scenario_lane> lanes;
    lanes.push_back({});                                   // paper defaults
    lanes.push_back({1.0, 500.0, 1.2, 7.5, 30.0, 0.7});    // reference node
    lanes.push_back({0.35, 1500.0, 2.4, 10.0, 200.0, 0.5});
    lanes.push_back({2.0, 500.0, 1.1, 7.5, 30.0, 0.9});    // older node
    lanes.push_back({0.5, 500.0, 1.0, 7.5, 30.0, 0.7});    // X = 1 flat cost
    lanes.push_back({0.5, 500.0, 1.2, 7.5, 0.0, 0.7});     // zero density
    // Lanes the scalar path rejects.
    lanes.push_back({0.0, 500.0, 1.2, 7.5, 30.0, 0.7});    // lambda = 0
    lanes.push_back({-0.5, 500.0, 1.2, 7.5, 30.0, 0.7});   // lambda < 0
    lanes.push_back({0.5, 0.0, 1.2, 7.5, 30.0, 0.7});      // c0 = 0
    lanes.push_back({0.5, -10.0, 1.2, 7.5, 30.0, 0.7});    // c0 < 0
    lanes.push_back({0.5, 500.0, 0.9, 7.5, 30.0, 0.7});    // x < 1
    lanes.push_back({0.5, 500.0, 1.2, 0.0, 30.0, 0.7});    // radius = 0
    lanes.push_back({0.5, 500.0, 1.2, -1.0, 30.0, 0.7});   // radius < 0
    lanes.push_back({0.5, 500.0, 1.2, 7.5, 30.0, 0.0});    // y0 = 0
    lanes.push_back({0.5, 500.0, 1.2, 7.5, 30.0, 1.5});    // y0 > 1
    lanes.push_back({knan, 500.0, 1.2, 7.5, 30.0, 0.7});
    lanes.push_back({0.5, knan, 1.2, 7.5, 30.0, 0.7});
    lanes.push_back({0.5, 500.0, knan, 7.5, 30.0, 0.7});
    lanes.push_back({0.5, 500.0, 1.2, knan, 30.0, 0.7});
    lanes.push_back({0.5, 500.0, 1.2, 7.5, knan, 0.7});
    lanes.push_back({0.5, 500.0, 1.2, 7.5, 30.0, knan});
    lanes.push_back({kinf, 500.0, 1.2, 7.5, 30.0, 0.7});
    lanes.push_back({0.5, kinf, 1.2, 7.5, 30.0, 0.7});
    // Overflow in the wafer-cost escalation: pow blows up to inf.
    lanes.push_back({1e-6, 1e300, 2.4, 7.5, 30.0, 0.7});
    // Tiny lambda under scenario 2: yield underflows toward 1 (die area
    // shrinks to ~0) while cost escalates.
    lanes.push_back({0.05, 500.0, 1.8, 7.5, 200.0, 0.7});

    std::mt19937_64 rng{0xc057u};
    std::uniform_real_distribution<double> lam{0.05, 2.5};
    std::uniform_real_distribution<double> c0{50.0, 5000.0};
    std::uniform_real_distribution<double> x{1.0, 2.5};
    std::uniform_real_distribution<double> r{2.0, 15.0};
    std::uniform_real_distribution<double> dd{1.0, 400.0};
    std::uniform_real_distribution<double> y{0.05, 1.0};
    for (int i = 0; i < 200; ++i) {
        lanes.push_back(
            {lam(rng), c0(rng), x(rng), r(rng), dd(rng), y(rng)});
    }
    return lanes;
}

struct soa {
    std::vector<double> lambda, c0, x, radius, density, y0;
    cost::batch::scenario_columns columns() const {
        cost::batch::scenario_columns c;
        c.lambda_um = lambda.data();
        c.c0_usd = c0.data();
        c.x = x.data();
        c.wafer_radius_cm = radius.data();
        c.design_density = density.data();
        c.y0 = y0.data();
        return c;
    }
};

soa to_soa(const std::vector<scenario_lane>& lanes) {
    soa s;
    for (const scenario_lane& lane : lanes) {
        s.lambda.push_back(lane.lambda);
        s.c0.push_back(lane.c0);
        s.x.push_back(lane.x);
        s.radius.push_back(lane.radius);
        s.density.push_back(lane.density);
        s.y0.push_back(lane.y0);
    }
    return s;
}

TEST(CostBatch, PureWaferCostMatchesScalarBitForBit) {
    struct lane {
        double c0, x, lambda;
    };
    std::vector<lane> lanes = {
        {500.0, 1.2, 1.0},  {500.0, 1.2, 0.5},  {1500.0, 2.4, 0.35},
        {500.0, 1.0, 0.2},  {500.0, 1.2, 2.0},  {0.0, 1.2, 0.5},
        {-5.0, 1.2, 0.5},   {500.0, 0.5, 0.5},  {500.0, 1.2, -1.0},
        {knan, 1.2, 0.5},   {500.0, knan, 0.5}, {500.0, 1.2, knan},
        {1e300, 2.4, 1e-6}, {kinf, 1.2, 0.5},   {500.0, 1.2, kinf},
    };
    std::mt19937_64 rng{0xc0ffeeu};
    std::uniform_real_distribution<double> c0{50.0, 5000.0};
    std::uniform_real_distribution<double> x{1.0, 2.5};
    std::uniform_real_distribution<double> lam{0.05, 2.5};
    for (int i = 0; i < 200; ++i) {
        lanes.push_back({c0(rng), x(rng), lam(rng)});
    }

    std::vector<double> c0s, xs, ls;
    for (const lane& l : lanes) {
        c0s.push_back(l.c0);
        xs.push_back(l.x);
        ls.push_back(l.lambda);
    }
    std::vector<double> out(lanes.size(), 0.0);
    cost::batch::pure_wafer_cost(c0s.data(), xs.data(), ls.data(), 0.2,
                                 out.data(), lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const lane& l = lanes[i];
        const double expected = scalar_or_nan([&] {
            const cost::wafer_cost_model model{dollars{l.c0}, l.x};
            return model.pure_wafer_cost(microns{l.lambda}).value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "c0=" << l.c0 << " x=" << l.x << " lambda=" << l.lambda;
    }
}

TEST(CostBatch, Scenario1MatchesScalarBitForBit) {
    const std::vector<scenario_lane> lanes = scenario_lanes();
    const soa s = to_soa(lanes);
    std::vector<double> out(lanes.size(), 0.0);
    cost::batch::scenario1_cost_per_transistor(s.columns(), out.data(),
                                               lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const scenario_lane& lane = lanes[i];
        const double expected = scalar_or_nan([&] {
            core::scenario1 scenario;
            scenario.wafer_cost =
                cost::wafer_cost_model{dollars{lane.c0}, lane.x};
            scenario.wafer = geometry::wafer{centimeters{lane.radius}};
            scenario.design_density = lane.density;
            return scenario.cost_per_transistor(microns{lane.lambda})
                .value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "lambda=" << lane.lambda << " c0=" << lane.c0
            << " x=" << lane.x << " r=" << lane.radius
            << " dd=" << lane.density;
    }
}

TEST(CostBatch, Scenario2MatchesScalarBitForBit) {
    const std::vector<scenario_lane> lanes = scenario_lanes();
    const soa s = to_soa(lanes);
    std::vector<double> out(lanes.size(), 0.0);
    cost::batch::scenario2_cost_per_transistor(s.columns(), out.data(),
                                               lanes.size());

    for (std::size_t i = 0; i < lanes.size(); ++i) {
        const scenario_lane& lane = lanes[i];
        const double expected = scalar_or_nan([&] {
            core::scenario2 scenario;
            scenario.wafer_cost =
                cost::wafer_cost_model{dollars{lane.c0}, lane.x};
            scenario.wafer = geometry::wafer{centimeters{lane.radius}};
            scenario.design_density = lane.density;
            scenario.yield =
                yield::reference_die_yield{probability{lane.y0}};
            return scenario.cost_per_transistor(microns{lane.lambda})
                .value();
        });
        EXPECT_TRUE(lanes_bit_equal(expected, out[i], i))
            << "lambda=" << lane.lambda << " c0=" << lane.c0
            << " x=" << lane.x << " r=" << lane.radius
            << " dd=" << lane.density << " y0=" << lane.y0;
    }
}

}  // namespace
