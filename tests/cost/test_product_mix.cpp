// Tests for the mono-vs-multi product mix comparison.

#include "cost/product_mix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::cost {
namespace {

TEST(DiverseMix, ProducesRequestedCount) {
    const auto mix = diverse_mix(5, 100.0);
    ASSERT_EQ(mix.size(), 5u);
    for (const product_demand& demand : mix) {
        EXPECT_DOUBLE_EQ(demand.wafers_per_period, 100.0);
        EXPECT_EQ(demand.recipe.passes.size(), 8u);
    }
}

TEST(DiverseMix, RecipesDiffer) {
    const auto mix = diverse_mix(4, 10.0);
    EXPECT_NE(mix[0].recipe.passes, mix[1].recipe.passes);
    EXPECT_NE(mix[1].recipe.passes, mix[2].recipe.passes);
}

TEST(DiverseMix, RejectsBadInputs) {
    EXPECT_THROW((void)diverse_mix(0, 10.0), std::invalid_argument);
    EXPECT_THROW((void)diverse_mix(3, 0.0), std::invalid_argument);
}

TEST(MonoVsMulti, LowVolumeMixCostsMore) {
    const fabline line = fabline::generic_cmos();
    const wafer_recipe mono = fabline::generic_recipe(0.8, 2);
    const mix_comparison cmp = compare_mono_vs_multi(
        line, mono, 20000.0, diverse_mix(8, 60.0));
    EXPECT_GT(cmp.cost_ratio, 1.5);
    EXPECT_GT(cmp.mono.average_utilization,
              cmp.multi.average_utilization);
}

TEST(MonoVsMulti, PaperSevenXReachableAtVeryLowVolume) {
    // [12]'s extreme: very low-volume diverse mix vs. a tuned mega line.
    const fabline line = fabline::generic_cmos();
    const wafer_recipe mono = fabline::generic_recipe(0.8, 2);
    const mix_comparison cmp = compare_mono_vs_multi(
        line, mono, 50000.0, diverse_mix(10, 8.0));
    EXPECT_GT(cmp.cost_ratio, 4.0);
    EXPECT_LT(cmp.cost_ratio, 40.0);
}

TEST(MonoVsMulti, HighVolumeMixApproachesMonoCost) {
    const fabline line = fabline::generic_cmos();
    const wafer_recipe mono = fabline::generic_recipe(0.8, 2);
    const mix_comparison cmp = compare_mono_vs_multi(
        line, mono, 20000.0, diverse_mix(4, 20000.0));
    EXPECT_LT(cmp.cost_ratio, 1.6);
}

TEST(MonoVsMulti, RejectsEmptyMix) {
    const fabline line = fabline::generic_cmos();
    const wafer_recipe mono = fabline::generic_recipe(0.8, 2);
    EXPECT_THROW((void)compare_mono_vs_multi(line, mono, 100.0, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)
        compare_mono_vs_multi(line, mono, 0.0, diverse_mix(2, 10.0)),
        std::invalid_argument);
}

}  // namespace
}  // namespace silicon::cost
