// Tests for the equipment cost-of-ownership model.

#include "cost/ownership.hpp"

#include "cost/product_mix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace silicon::cost {
namespace {

tool_cost_inputs stepper() {
    tool_cost_inputs t;
    t.name = "stepper";
    t.purchase_price = dollars{5e6};
    t.depreciation_years = 5.0;
    t.install_fraction = dollars{0.15};
    t.floor_space_m2 = 30.0;
    t.floor_cost_per_m2_year = dollars{2000.0};
    t.maintenance_fraction_per_year = 0.08;
    t.consumables_per_hour = dollars{5.0};
    t.operators_per_tool = 0.25;
    t.operator_cost_per_hour = dollars{30.0};
    t.scheduled_hours_per_year = 8000.0;
    t.wafers_per_hour = 20.0;
    return t;
}

TEST(Ownership, HandComputedRate) {
    // depreciation: 5M * 1.15 / 5y = 1.15M/y; maintenance 0.4M/y;
    // floor 60k/y; total fixed 1.61M / 8000h = 201.25/h;
    // + labor 7.50 + consumables 5 = 213.75/h.
    EXPECT_NEAR(ownership_per_hour(stepper()).value(), 213.75, 1e-9);
}

TEST(Ownership, CostPerWaferPass) {
    EXPECT_NEAR(cost_per_wafer_pass(stepper()).value(), 213.75 / 20.0,
                1e-9);
}

TEST(Ownership, RateScalesWithPurchasePrice) {
    tool_cost_inputs cheap = stepper();
    cheap.purchase_price = dollars{1e6};
    EXPECT_LT(ownership_per_hour(cheap).value(),
              ownership_per_hour(stepper()).value());
}

TEST(Ownership, MoreScheduledHoursLowerRate) {
    tool_cost_inputs lazy = stepper();
    lazy.scheduled_hours_per_year = 4000.0;
    EXPECT_GT(ownership_per_hour(lazy).value(),
              ownership_per_hour(stepper()).value());
}

TEST(Ownership, RejectsBadInputs) {
    tool_cost_inputs bad = stepper();
    bad.depreciation_years = 0.0;
    EXPECT_THROW((void)ownership_per_hour(bad), std::invalid_argument);
    bad = stepper();
    bad.scheduled_hours_per_year = 0.0;
    EXPECT_THROW((void)ownership_per_hour(bad), std::invalid_argument);
    bad = stepper();
    bad.wafers_per_hour = 0.0;
    EXPECT_THROW((void)cost_per_wafer_pass(bad), std::invalid_argument);
}

TEST(Ownership, MakeToolGroupCarriesRateAndThroughput) {
    const tool_group group = make_tool_group(stepper());
    EXPECT_EQ(group.name, "stepper");
    EXPECT_NEAR(group.ownership_per_hour.value(), 213.75, 1e-9);
    EXPECT_DOUBLE_EQ(group.wafers_per_hour, 20.0);
}

TEST(Ownership, GenericToolSetMatchesFablineGroups) {
    const auto tools = generic_cmos_tool_costs();
    const fabline reference = fabline::generic_cmos();
    ASSERT_EQ(tools.size(), reference.groups().size());
    for (std::size_t i = 0; i < tools.size(); ++i) {
        EXPECT_EQ(tools[i].name, reference.groups()[i].name);
        EXPECT_DOUBLE_EQ(tools[i].wafers_per_hour,
                         reference.groups()[i].wafers_per_hour);
    }
}

TEST(Ownership, DerivedRatesInSameBallparkAsAssumed) {
    // The derived COO line should price wafers within ~2x of the
    // hand-assumed generic line (its rates were picked to be realistic).
    const fabline derived = derived_cmos_fabline();
    const fabline assumed = fabline::generic_cmos();
    const wafer_recipe recipe = fabline::generic_recipe(0.8, 2);
    const auto d = derived.analyze_sized({{recipe, 20000.0}});
    const auto a = assumed.analyze_sized({{recipe, 20000.0}});
    EXPECT_GT(d.cost_per_wafer.value(), 0.4 * a.cost_per_wafer.value());
    EXPECT_LT(d.cost_per_wafer.value(), 2.5 * a.cost_per_wafer.value());
}

TEST(Ownership, EquipmentPriceEscalationRaisesWaferCost) {
    // The Sec. III.A.b mechanism: pricier equipment -> pricier wafers.
    const wafer_recipe recipe = fabline::generic_recipe(0.5, 3);
    const auto base = derived_cmos_fabline(1.0).analyze_sized(
        {{recipe, 20000.0}});
    const auto escalated = derived_cmos_fabline(1.6).analyze_sized(
        {{recipe, 20000.0}});
    EXPECT_GT(escalated.cost_per_wafer.value(),
              1.2 * base.cost_per_wafer.value());
}

TEST(Ownership, RejectsNonPositiveFactor) {
    EXPECT_THROW((void)derived_cmos_fabline(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace silicon::cost
