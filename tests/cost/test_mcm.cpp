// Tests for the MCM / known-good-die system cost model.

#include "cost/mcm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::cost {
namespace {

mcm_die typical_die() {
    mcm_die die;
    die.name = "asic";
    die.cost = dollars{15.0};
    die.sort_escape = probability{0.05};
    die.attach_yield = probability{0.99};
    return die;
}

TEST(McmDie, SlotYieldComposes) {
    const mcm_die die = typical_die();
    EXPECT_NEAR(die.slot_yield().value(), 0.95 * 0.99, 1e-12);
}

TEST(Mcm, RejectsEmptyModule) {
    mcm_config config;
    EXPECT_THROW((void)evaluate_mcm(config, mcm_strategy::bare),
                 std::invalid_argument);
}

TEST(Mcm, BareYieldIsProductOfSlotYields) {
    const mcm_config config = uniform_module(4, typical_die());
    const mcm_result result = evaluate_mcm(config, mcm_strategy::bare);
    EXPECT_NEAR(result.module_yield.value(),
                std::pow(0.95 * 0.99, 4.0), 1e-12);
}

TEST(Mcm, BareCostPerGoodExceedsAttempt) {
    const mcm_config config = uniform_module(4, typical_die());
    const mcm_result result = evaluate_mcm(config, mcm_strategy::bare);
    EXPECT_GT(result.cost_per_good_module.value(),
              result.cost_per_attempt.value());
}

TEST(Mcm, KgdImprovesYieldOverBare) {
    const mcm_config config = uniform_module(6, typical_die());
    const mcm_result bare = evaluate_mcm(config, mcm_strategy::bare);
    const mcm_result kgd = evaluate_mcm(config, mcm_strategy::kgd);
    EXPECT_GT(kgd.module_yield.value(), bare.module_yield.value());
    // But KGD pays the tester bill on every die.
    EXPECT_GT(kgd.cost_per_attempt.value(), bare.cost_per_attempt.value());
}

TEST(Mcm, SmartSubstrateAlwaysEventuallyGood) {
    const mcm_config config = uniform_module(6, typical_die());
    const mcm_result smart =
        evaluate_mcm(config, mcm_strategy::smart_substrate);
    EXPECT_DOUBLE_EQ(smart.cost_per_attempt.value(),
                     smart.cost_per_good_module.value());
    EXPECT_GT(smart.expected_rework_operations, 0.0);
}

TEST(Mcm, BareCollapsesForLargeModules) {
    // With 5% escapes per die, a 20-die bare module is hopeless and the
    // smart substrate wins decisively.
    const mcm_config config = uniform_module(20, typical_die());
    const mcm_result bare = evaluate_mcm(config, mcm_strategy::bare);
    const mcm_result smart =
        evaluate_mcm(config, mcm_strategy::smart_substrate);
    EXPECT_GT(bare.cost_per_good_module.value(),
              2.0 * smart.cost_per_good_module.value());
}

TEST(Mcm, KgdPremiumDominatesSmallModules) {
    // For a 2-die module with good dies, bare assembly is cheapest.
    mcm_die reliable = typical_die();
    reliable.sort_escape = probability{0.01};
    const mcm_config config = uniform_module(2, reliable);
    const mcm_result bare = evaluate_mcm(config, mcm_strategy::bare);
    const mcm_result kgd = evaluate_mcm(config, mcm_strategy::kgd);
    EXPECT_LT(bare.cost_per_good_module.value(),
              kgd.cost_per_good_module.value());
}

TEST(Mcm, CompareReturnsAllThreeStrategies) {
    const auto results = compare_mcm_strategies(
        uniform_module(4, typical_die()));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].strategy, mcm_strategy::bare);
    EXPECT_EQ(results[1].strategy, mcm_strategy::kgd);
    EXPECT_EQ(results[2].strategy, mcm_strategy::smart_substrate);
}

TEST(Mcm, StrategyNames) {
    EXPECT_EQ(to_string(mcm_strategy::bare), "bare");
    EXPECT_EQ(to_string(mcm_strategy::kgd), "known-good-die");
    EXPECT_EQ(to_string(mcm_strategy::smart_substrate), "smart substrate");
}

TEST(Mcm, UniformModuleRejectsZeroCount) {
    EXPECT_THROW((void)uniform_module(0, typical_die()), std::invalid_argument);
}

TEST(Mcm, ImpossibleSlotThrows) {
    mcm_die dead = typical_die();
    dead.attach_yield = probability{0.0};
    const mcm_config config = uniform_module(2, dead);
    EXPECT_THROW((void)evaluate_mcm(config, mcm_strategy::smart_substrate),
                 std::domain_error);
    EXPECT_THROW((void)evaluate_mcm(config, mcm_strategy::bare),
                 std::domain_error);
}

// Property: there is a crossover die count where smart substrate becomes
// cheaper than bare.
TEST(Mcm, CrossoverExistsInDieCount) {
    bool bare_wins_somewhere = false;
    bool smart_wins_somewhere = false;
    for (int n = 1; n <= 16; ++n) {
        const mcm_config config = uniform_module(n, typical_die());
        const double bare =
            evaluate_mcm(config, mcm_strategy::bare)
                .cost_per_good_module.value();
        const double smart =
            evaluate_mcm(config, mcm_strategy::smart_substrate)
                .cost_per_good_module.value();
        if (bare < smart) {
            bare_wins_somewhere = true;
        }
        if (smart < bare) {
            smart_wins_somewhere = true;
        }
    }
    EXPECT_TRUE(bare_wins_somewhere);
    EXPECT_TRUE(smart_wins_somewhere);
}

}  // namespace
}  // namespace silicon::cost
