// Tests for the test economics model.

#include "cost/test_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::cost {
namespace {

tester_spec default_tester() {
    tester_spec tester;
    tester.rate_per_hour = dollars{1800.0};  // $0.50 per second
    tester.seconds_fixed = 0.5;
    tester.seconds_per_megavector = 1.0;
    return tester;
}

test_program default_program() {
    test_program program;
    program.transistors = 1e6;
    program.fault_coverage = 0.95;
    program.vectors_per_kilotransistor = 2.0;
    return program;
}

TEST(TestSeconds, GrowsWithTransistorCount) {
    const tester_spec tester = default_tester();
    test_program small = default_program();
    small.transistors = 1e5;
    test_program large = default_program();
    large.transistors = 1e7;
    EXPECT_GT(test_seconds(tester, large), test_seconds(tester, small));
}

TEST(TestSeconds, FixedTimeFloorsTheCost) {
    const tester_spec tester = default_tester();
    test_program tiny = default_program();
    tiny.transistors = 100.0;
    tiny.vectors_per_kilotransistor = 0.0;
    EXPECT_NEAR(test_seconds(tester, tiny), tester.seconds_fixed, 1e-12);
}

TEST(TestSeconds, RejectsBadInputs) {
    const tester_spec tester = default_tester();
    test_program program = default_program();
    program.transistors = 0.0;
    EXPECT_THROW((void)test_seconds(tester, program), std::invalid_argument);
}

TEST(TestCostPerDie, ScalesWithTesterRate) {
    test_program program = default_program();
    tester_spec cheap = default_tester();
    tester_spec pricey = default_tester();
    pricey.rate_per_hour = dollars{3600.0};
    EXPECT_NEAR(test_cost_per_die(pricey, program).value(),
                test_cost_per_die(cheap, program).value() * 2.0, 1e-12);
}

TEST(DefectLevel, WilliamsBrownKnownValues) {
    // DL = 1 - Y^(1-T).
    EXPECT_NEAR(defect_level(probability{0.5}, 0.0).value(), 0.5, 1e-12);
    EXPECT_NEAR(defect_level(probability{0.5}, 1.0).value(), 0.0, 1e-12);
    EXPECT_NEAR(defect_level(probability{0.9}, 0.9).value(),
                1.0 - std::pow(0.9, 0.1), 1e-12);
}

TEST(DefectLevel, HigherCoverageFewerEscapes) {
    double previous = 1.0;
    for (double t : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        const double dl = defect_level(probability{0.6}, t).value();
        EXPECT_LE(dl, previous);
        previous = dl;
    }
}

TEST(DefectLevel, RejectsBadCoverage) {
    EXPECT_THROW((void)defect_level(probability{0.5}, -0.1),
                 std::invalid_argument);
    EXPECT_THROW((void)defect_level(probability{0.5}, 1.1),
                 std::invalid_argument);
}

TEST(ProbeCost, AllocatedOverGoodDiesOnly) {
    const tester_spec tester = default_tester();
    const test_program program = default_program();
    const dollars per_die = test_cost_per_die(tester, program);
    const dollars per_good =
        probe_cost_per_good_die(tester, program, probability{0.5});
    EXPECT_NEAR(per_good.value(), per_die.value() * 2.0, 1e-12);
}

TEST(ProbeCost, RejectsZeroYield) {
    EXPECT_THROW((void)probe_cost_per_good_die(default_tester(),
                                         default_program(),
                                         probability{0.0}),
                 std::domain_error);
}

TEST(Economics, LowCoverageCheapOnTesterExpensiveInField) {
    const tester_spec tester = default_tester();
    const probability yield{0.6};
    const dollars field{200.0};

    test_program sloppy = default_program();
    sloppy.fault_coverage = 0.5;
    test_program thorough = default_program();
    thorough.fault_coverage = 0.999;
    thorough.vectors_per_kilotransistor = 8.0;  // more patterns

    const test_economics cheap =
        evaluate_test_economics(tester, sloppy, yield, field);
    const test_economics good =
        evaluate_test_economics(tester, thorough, yield, field);

    EXPECT_LT(cheap.probe_per_good_die.value(),
              good.probe_per_good_die.value());
    EXPECT_GT(cheap.shipped_defect_level.value(),
              good.shipped_defect_level.value());
    EXPECT_GT(cheap.escape_cost_per_shipped_die.value(),
              good.escape_cost_per_shipped_die.value());
}

TEST(Economics, TotalIsSumOfComponents) {
    const test_economics e = evaluate_test_economics(
        default_tester(), default_program(), probability{0.7},
        dollars{100.0});
    EXPECT_NEAR(e.total_per_shipped_die.value(),
                e.probe_per_good_die.value() +
                    e.final_per_good_die.value() +
                    e.escape_cost_per_shipped_die.value(),
                1e-12);
}

TEST(ApplyDft, ImprovesCoverageAndCompressesVectors) {
    const test_program base = default_program();
    const test_program dft = apply_dft(base, 0.999, 4.0);
    EXPECT_DOUBLE_EQ(dft.fault_coverage, 0.999);
    EXPECT_DOUBLE_EQ(dft.vectors_per_kilotransistor,
                     base.vectors_per_kilotransistor / 4.0);
}

TEST(ApplyDft, RejectsRegression) {
    const test_program base = default_program();
    EXPECT_THROW((void)apply_dft(base, 0.5, 2.0), std::invalid_argument);
    EXPECT_THROW((void)apply_dft(base, 0.99, 0.5), std::invalid_argument);
}

TEST(Economics, DftCutsTotalCostOfTest) {
    // The Sec. VI question: does BIST/DFT pay?  With escape costs in the
    // model, the higher-coverage compressed program wins.
    const tester_spec tester = default_tester();
    const probability yield{0.6};
    const dollars field{500.0};
    const test_program base = default_program();
    const test_program dft = apply_dft(base, 0.999, 4.0);
    const test_economics before =
        evaluate_test_economics(tester, base, yield, field);
    const test_economics after =
        evaluate_test_economics(tester, dft, yield, field);
    EXPECT_LT(after.total_per_shipped_die.value(),
              before.total_per_shipped_die.value());
}

}  // namespace
}  // namespace silicon::cost
