// Tests for the Eq. (2)/(3) wafer cost model.

#include "cost/wafer_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace silicon::cost {
namespace {

TEST(WaferCost, ReferencePointIsC0) {
    const wafer_cost_model m{dollars{500.0}, 1.8};
    EXPECT_DOUBLE_EQ(m.pure_wafer_cost(microns{1.0}).value(), 500.0);
}

TEST(WaferCost, OneGenerationCostsOneX) {
    // 1.0 um -> 0.8 um is exactly one 0.2 um generation: cost = C_0 * X.
    const wafer_cost_model m{dollars{700.0}, 1.4};
    EXPECT_NEAR(m.pure_wafer_cost(microns{0.8}).value(), 700.0 * 1.4,
                1e-9);
}

TEST(WaferCost, Table3Row13WaferCost) {
    // Row 13: C_0 = 600, X = 1.8, lambda = 0.25 -> 3.75 generations.
    const wafer_cost_model m{dollars{600.0}, 1.8};
    EXPECT_NEAR(m.pure_wafer_cost(microns{0.25}).value(),
                600.0 * std::pow(1.8, 3.75), 1e-6);
}

TEST(WaferCost, OlderTechnologyIsCheaper) {
    const wafer_cost_model m{dollars{500.0}, 1.8};
    EXPECT_LT(m.pure_wafer_cost(microns{1.5}).value(), 500.0);
}

TEST(WaferCost, GenerationsFromReference) {
    const wafer_cost_model m{dollars{500.0}, 1.5};
    EXPECT_NEAR(m.generations_from_reference(microns{0.6}), 2.0, 1e-12);
    EXPECT_NEAR(m.generations_from_reference(microns{1.4}), -2.0, 1e-12);
}

TEST(WaferCost, CustomGenerationStep) {
    const wafer_cost_model m{dollars{500.0}, 2.0, microns{0.25}};
    EXPECT_NEAR(m.pure_wafer_cost(microns{0.5}).value(),
                500.0 * std::pow(2.0, 2.0), 1e-9);
}

TEST(WaferCost, XOneIsFlat) {
    const wafer_cost_model m{dollars{500.0}, 1.0};
    EXPECT_DOUBLE_EQ(m.pure_wafer_cost(microns{0.25}).value(), 500.0);
}

TEST(WaferCost, VolumeSpreadsOverhead) {
    const wafer_cost_model m{dollars{500.0}, 1.8};
    const dollars with_overhead = m.wafer_cost_at_volume(
        microns{1.0}, dollars{1e6}, 10000.0);
    EXPECT_NEAR(with_overhead.value(), 500.0 + 100.0, 1e-9);
}

TEST(WaferCost, ZeroOverheadIgnoresVolume) {
    const wafer_cost_model m{dollars{500.0}, 1.8};
    EXPECT_DOUBLE_EQ(
        m.wafer_cost_at_volume(microns{1.0}, dollars{0.0}, 0.0).value(),
        500.0);
}

TEST(WaferCost, OverheadDominatesAtLowVolume) {
    // The ASIC-vs-uP overhead span the paper quotes ($100K-$100M): at
    // 1000 wafers, a $100M overhead adds $100K per wafer.
    const wafer_cost_model m{dollars{800.0}, 1.8};
    const dollars low = m.wafer_cost_at_volume(
        microns{0.8}, dollars{100e6}, 1000.0);
    EXPECT_GT(low.value(), 100000.0);
}

TEST(WaferCost, RejectsBadConstruction) {
    EXPECT_THROW((void)(wafer_cost_model{dollars{0.0}, 1.5}),
                 std::invalid_argument);
    EXPECT_THROW((void)(wafer_cost_model{dollars{500.0}, 0.9}),
                 std::invalid_argument);
    EXPECT_THROW((void)(wafer_cost_model{dollars{500.0}, 1.5, microns{0.0}}),
                 std::invalid_argument);
}

TEST(WaferCost, RejectsBadVolume) {
    const wafer_cost_model m{dollars{500.0}, 1.8};
    EXPECT_THROW((void)m.wafer_cost_at_volume(microns{1.0}, dollars{1.0}, 0.0),
                 std::invalid_argument);
}

TEST(ExtractX, RecoversTheRate) {
    const wafer_cost_model m{dollars{500.0}, 1.7};
    const double x = wafer_cost_model::extract_x(
        microns{1.0}, m.pure_wafer_cost(microns{1.0}),
        microns{0.5}, m.pure_wafer_cost(microns{0.5}));
    EXPECT_NEAR(x, 1.7, 1e-9);
}

TEST(ExtractX, RejectsDegenerateObservations) {
    EXPECT_THROW((void)wafer_cost_model::extract_x(microns{0.5}, dollars{100.0},
                                             microns{0.5}, dollars{200.0}),
                 std::invalid_argument);
}

// Property: cost is monotone non-increasing in lambda for X > 1.
class WaferCostMonotone : public ::testing::TestWithParam<double> {};

TEST_P(WaferCostMonotone, ShrinkingFeatureRaisesCost) {
    const wafer_cost_model m{dollars{500.0}, GetParam()};
    double previous = 0.0;
    for (double lambda = 1.2; lambda >= 0.2; lambda -= 0.1) {
        const double c = m.pure_wafer_cost(microns{lambda}).value();
        EXPECT_GT(c, previous) << lambda;
        previous = c;
    }
}

INSTANTIATE_TEST_SUITE_P(XValues, WaferCostMonotone,
                         ::testing::Values(1.1, 1.4, 1.8, 2.4));

}  // namespace
}  // namespace silicon::cost
