// test_model.cpp — the multi-die cost composition (chiplet/model.hpp)
// and its SoA batch kernel (chiplet/batch.hpp).
//
// Three layers of contract:
//   * model identities — the breakdown's fields compose exactly as the
//     header documents (bill = dies + substrate + bonding, module
//     yield divides it, monolithic is the n = 1 special-case-free
//     path);
//   * validation taxonomy — invalid_argument for out-of-range
//     parameters, domain_error for infeasible configurations (the
//     serve layer maps these to bad_param / domain_error);
//   * kernel bit-exactness — lanes equal the scalar path bit for bit,
//     scalar throws become quiet NaN, and sub-ranges compose.

#include "chiplet/batch.hpp"
#include "chiplet/model.hpp"

#include "cost/test_cost.hpp"
#include "cost/wafer_cost.hpp"
#include "core/units.hpp"
#include "geometry/gross_die.hpp"
#include "geometry/wafer.hpp"
#include "yield/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

namespace chiplet = silicon::chiplet;
namespace cost = silicon::cost;
namespace geometry = silicon::geometry;
namespace yield = silicon::yield;
using silicon::centimeters;
using silicon::dollars;
using silicon::microns;
using silicon::millimeters;
using silicon::probability;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();

::testing::AssertionResult bits_equal(double expected, double actual,
                                      std::size_t lane) {
    if (std::isnan(expected) && std::isnan(actual)) {
        return ::testing::AssertionSuccess();
    }
    std::uint64_t eb = 0;
    std::uint64_t ab = 0;
    std::memcpy(&eb, &expected, sizeof eb);
    std::memcpy(&ab, &actual, sizeof ab);
    if (eb == ab) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "lane " << lane << ": expected " << expected << " got "
           << actual;
}

TEST(ChipletModel, MonolithicBaselineHasNoMultiDieOverheads) {
    chiplet::chiplet_spec spec;  // defaults: chiplets = 1
    const chiplet::chiplet_breakdown b = chiplet::evaluate_chiplet(spec);

    EXPECT_EQ(b.chiplets, 1);
    EXPECT_DOUBLE_EQ(b.total_area_mm2,
                     spec.logic_area_mm2 + spec.memory_area_mm2 +
                         spec.io_area_mm2);
    // n = 1: no D2D interface area, the die IS the budget.
    EXPECT_DOUBLE_EQ(b.chiplet_area_mm2, b.total_area_mm2);
    EXPECT_DOUBLE_EQ(b.bonding_cost_usd, spec.bonding_cost_per_chiplet);
    EXPECT_DOUBLE_EQ(b.assembly_yield, spec.bond_yield);
}

TEST(ChipletModel, BreakdownComposesExactly) {
    chiplet::chiplet_spec spec;
    spec.chiplets = 4;
    const chiplet::chiplet_breakdown b = chiplet::evaluate_chiplet(spec);

    const double n = static_cast<double>(b.chiplets);
    EXPECT_DOUBLE_EQ(b.cost_per_system_usd,
                     n * (b.die_cost_usd + b.test_cost_per_die_usd) +
                         b.substrate_cost_usd + b.bonding_cost_usd);
    EXPECT_DOUBLE_EQ(b.cost_per_good_system_usd,
                     b.cost_per_system_usd / b.module_yield);
    EXPECT_DOUBLE_EQ(b.module_yield,
                     b.assembly_yield *
                         std::pow(1.0 - b.defect_level, n));
    EXPECT_DOUBLE_EQ(b.assembly_yield,
                     std::pow(spec.bond_yield, n) * b.substrate_yield);
    EXPECT_DOUBLE_EQ(b.bonding_cost_usd,
                     n * spec.bonding_cost_per_chiplet);
    // Each chiplet carries (n - 1) D2D links of interface area.
    EXPECT_DOUBLE_EQ(b.chiplet_area_mm2,
                     b.total_area_mm2 / n +
                         spec.d2d_area_mm2 * (n - 1.0));
}

TEST(ChipletModel, DieYieldIsNegativeBinomialOverBlendedDensity) {
    chiplet::chiplet_spec spec;
    spec.chiplets = 2;
    const chiplet::chiplet_breakdown b = chiplet::evaluate_chiplet(spec);

    const double d2d_mm2 = spec.d2d_area_mm2 * (spec.chiplets - 1.0);
    const double budget_faults =
        (spec.logic_area_mm2 / 100.0) * spec.defects_per_cm2 +
        (spec.memory_area_mm2 / 100.0) *
            (spec.defects_per_cm2 * spec.memory_defect_factor) +
        (spec.io_area_mm2 / 100.0) *
            (spec.defects_per_cm2 * spec.io_defect_factor);
    const double faults = budget_faults / spec.chiplets +
                          (d2d_mm2 / 100.0) * spec.defects_per_cm2;
    const yield::negative_binomial_model model{spec.clustering_alpha};
    EXPECT_DOUBLE_EQ(b.die_yield, model.yield(faults).value());

    // Known-good-die escapes are Williams-Brown at the spec coverage.
    EXPECT_DOUBLE_EQ(b.defect_level,
                     cost::defect_level(probability{b.die_yield},
                                        spec.test_coverage)
                         .value());
}

TEST(ChipletModel, DieCostAmortizesWaferOverYieldedGrossDies) {
    chiplet::chiplet_spec spec;
    const chiplet::chiplet_breakdown b = chiplet::evaluate_chiplet(spec);

    const cost::wafer_cost_model wafer_cost{
        dollars{spec.c0_usd}, spec.x, microns{spec.generation_step_um}};
    EXPECT_DOUBLE_EQ(
        b.wafer_cost_usd,
        wafer_cost.pure_wafer_cost(microns{spec.lambda_um}).value());

    const geometry::wafer w{centimeters{spec.wafer_radius_cm},
                            centimeters{spec.edge_exclusion_cm}};
    const long gross = geometry::gross_dies(
        w, geometry::die::square(millimeters{std::sqrt(b.chiplet_area_mm2)}),
        geometry::gross_die_method::maly_rows);
    EXPECT_DOUBLE_EQ(b.gross_dies_per_wafer, static_cast<double>(gross));
    EXPECT_DOUBLE_EQ(b.die_cost_usd,
                     b.wafer_cost_usd /
                         (b.gross_dies_per_wafer * b.die_yield));
}

TEST(ChipletModel, SubstrateOptionsPriceAndYieldTheirArea) {
    chiplet::chiplet_spec spec;

    spec.substrate = chiplet::substrate_kind::organic;
    const chiplet::chiplet_breakdown organic =
        chiplet::evaluate_chiplet(spec);
    EXPECT_DOUBLE_EQ(organic.substrate_yield, 1.0);
    EXPECT_DOUBLE_EQ(
        organic.substrate_cost_usd,
        spec.substrate_cost_per_cm2 * organic.package_area_cm2);
    EXPECT_DOUBLE_EQ(organic.package_area_cm2,
                     spec.package_area_factor *
                         (organic.total_area_mm2 / 100.0));

    spec.substrate = chiplet::substrate_kind::rdl;
    const chiplet::chiplet_breakdown rdl = chiplet::evaluate_chiplet(spec);
    EXPECT_DOUBLE_EQ(rdl.substrate_yield,
                     std::exp(-rdl.package_area_cm2 *
                              spec.rdl_defects_per_cm2));
    EXPECT_DOUBLE_EQ(rdl.substrate_cost_usd,
                     spec.rdl_cost_per_cm2 * rdl.package_area_cm2);

    spec.substrate = chiplet::substrate_kind::interposer;
    const chiplet::chiplet_breakdown si = chiplet::evaluate_chiplet(spec);
    EXPECT_DOUBLE_EQ(si.substrate_yield,
                     std::exp(-si.package_area_cm2 *
                              spec.interposer_defects_per_cm2));
    EXPECT_DOUBLE_EQ(si.substrate_cost_usd,
                     spec.interposer_cost_per_cm2 * si.package_area_cm2);

    // Ascending substrate sophistication is monotonically pricier.
    EXPECT_LT(organic.cost_per_good_system_usd,
              rdl.cost_per_good_system_usd);
    EXPECT_LT(rdl.cost_per_good_system_usd, si.cost_per_good_system_usd);
}

TEST(ChipletModel, OutOfRangeParametersThrowInvalidArgument) {
    const auto rejects = [](auto&& mutate) {
        chiplet::chiplet_spec spec;
        mutate(spec);
        EXPECT_THROW((void)chiplet::evaluate_chiplet(spec),
                     std::invalid_argument);
    };
    rejects([](chiplet::chiplet_spec& s) { s.chiplets = 0; });
    rejects([](chiplet::chiplet_spec& s) { s.chiplets = 17; });
    rejects([](chiplet::chiplet_spec& s) { s.logic_area_mm2 = -1.0; });
    rejects([](chiplet::chiplet_spec& s) {
        s.logic_area_mm2 = s.memory_area_mm2 = s.io_area_mm2 = 0.0;
    });
    rejects([](chiplet::chiplet_spec& s) { s.d2d_area_mm2 = knan; });
    rejects([](chiplet::chiplet_spec& s) { s.bond_yield = 0.0; });
    rejects([](chiplet::chiplet_spec& s) { s.bond_yield = 1.5; });
    rejects([](chiplet::chiplet_spec& s) { s.package_area_factor = 0.5; });
    rejects([](chiplet::chiplet_spec& s) { s.test_coverage = 1.5; });
}

TEST(ChipletModel, InfeasibleConfigurationsThrowDomainError) {
    chiplet::chiplet_spec spec;
    spec.logic_area_mm2 = 90000.0;  // 30 cm die: never fits a 15 cm wafer
    EXPECT_THROW((void)chiplet::evaluate_chiplet(spec), std::domain_error);
}

TEST(ChipletModel, ScaledToTotalPreservesAreaRatios) {
    chiplet::chiplet_spec base;  // 350 / 150 / 100 = 600 total
    const chiplet::chiplet_spec scaled =
        chiplet::scaled_to_total(base, 150.0);
    EXPECT_DOUBLE_EQ(scaled.logic_area_mm2 + scaled.memory_area_mm2 +
                         scaled.io_area_mm2,
                     150.0);
    EXPECT_DOUBLE_EQ(scaled.logic_area_mm2 / scaled.memory_area_mm2,
                     base.logic_area_mm2 / base.memory_area_mm2);
    EXPECT_DOUBLE_EQ(scaled.logic_area_mm2 / scaled.io_area_mm2,
                     base.logic_area_mm2 / base.io_area_mm2);
}

TEST(ChipletModel, CrossoverMatchesChipletActuaryQualitatively) {
    // arXiv:2203.12268's headline result: below a total-area threshold
    // the monolithic die is cheaper; above it the N-way split wins.
    const auto cost_at = [](double total_mm2, int n) {
        chiplet::chiplet_spec spec =
            chiplet::scaled_to_total(chiplet::chiplet_spec{}, total_mm2);
        spec.chiplets = n;
        return chiplet::evaluate_chiplet(spec).cost_per_good_system_usd;
    };
    // Small system: packaging + D2D overheads dominate, mono wins.
    EXPECT_LT(cost_at(50.0, 1), cost_at(50.0, 2));
    EXPECT_LT(cost_at(50.0, 1), cost_at(50.0, 4));
    // Large system: yield loss dominates, finer splits win in order.
    EXPECT_LT(cost_at(600.0, 2), cost_at(600.0, 1));
    EXPECT_LT(cost_at(600.0, 4), cost_at(600.0, 2));
}

TEST(ChipletBatch, KernelLanesBitEqualScalarPath) {
    const chiplet::chiplet_spec base;
    std::vector<double> areas;
    for (double a = 40.0; a <= 1200.0; a += 37.0) {
        areas.push_back(a);
    }
    for (const int n : {1, 2, 4, 8, 16}) {
        std::vector<double> out(areas.size());
        chiplet::batch::cost_per_good_system(base, n, areas.data(),
                                             out.data(), areas.size());
        for (std::size_t i = 0; i < areas.size(); ++i) {
            chiplet::chiplet_spec spec =
                chiplet::scaled_to_total(base, areas[i]);
            spec.chiplets = n;
            const double expected =
                chiplet::evaluate_chiplet(spec).cost_per_good_system_usd;
            EXPECT_TRUE(bits_equal(expected, out[i], i)) << "n=" << n;
        }
    }
}

TEST(ChipletBatch, ScalarThrowsBecomeQuietNaNLanes) {
    const chiplet::chiplet_spec base;
    // Zero/negative/NaN totals throw in the scalar path; a huge total
    // does not fit the wafer (domain_error).  All become NaN lanes.
    const std::vector<double> areas{0.0, -5.0, knan, 1e9, 600.0};
    std::vector<double> out(areas.size(), 0.0);
    chiplet::batch::cost_per_good_system(base, 2, areas.data(), out.data(),
                                         areas.size());
    EXPECT_TRUE(std::isnan(out[0]));
    EXPECT_TRUE(std::isnan(out[1]));
    EXPECT_TRUE(std::isnan(out[2]));
    EXPECT_TRUE(std::isnan(out[3]));
    EXPECT_TRUE(std::isfinite(out[4]));
}

TEST(ChipletBatch, SubRangesComposeBitIdentically) {
    const chiplet::chiplet_spec base;
    std::vector<double> areas;
    for (double a = 40.0; a <= 1000.0; a += 12.5) {
        areas.push_back(a);
    }
    std::vector<double> whole(areas.size());
    chiplet::batch::cost_per_good_system(base, 4, areas.data(),
                                         whole.data(), areas.size());
    std::vector<double> pieces(areas.size());
    const std::size_t split = areas.size() / 3;
    chiplet::batch::cost_per_good_system(base, 4, areas.data(),
                                         pieces.data(), split);
    chiplet::batch::cost_per_good_system(
        base, 4, areas.data() + split, pieces.data() + split,
        areas.size() - split);
    for (std::size_t i = 0; i < areas.size(); ++i) {
        EXPECT_TRUE(bits_equal(whole[i], pieces[i], i));
    }
}

}  // namespace
