// test_batch_fast.cpp — fast_math chiplet kernel vs the scalar SoA
// kernel (chiplet/batch.hpp).
//
// The fast kernel vectorizes the transcendental tail (die yield pow,
// Williams-Brown escape pow, substrate exp, module-yield pow) while
// keeping the Maly gross-die scan and the cost composition scalar, so:
//
//   * NaN classification must be identical to the scalar kernel — a
//     lane is NaN exactly when evaluate_chiplet would throw on it;
//   * finite lanes agree within kMaxUlp (three vector passes feed a
//     scalar composition, so the bound is wider than the
//     single-transcendental yield/cost kernels);
//   * sub-range calls compose bit-identically (partition_explore
//     shards the area grid across threads).

#include "chiplet/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace chiplet = silicon::chiplet;

namespace {

constexpr double knan = std::numeric_limits<double>::quiet_NaN();
constexpr double kinf = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kMaxUlp = 8;

std::uint64_t total_order_key(double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof u);
    return (u >> 63) != 0 ? ~u : u | 0x8000000000000000ull;
}

std::uint64_t ulp_distance(double a, double b) {
    const std::uint64_t ka = total_order_key(a);
    const std::uint64_t kb = total_order_key(b);
    return ka > kb ? ka - kb : kb - ka;
}

/// The partition_explore grid plus invalid lanes: non-positive, NaN,
/// infinite, and absurdly large areas (die no longer fits the wafer).
std::vector<double> area_grid() {
    std::vector<double> areas = {0.0,  -5.0,   knan, kinf,
                                 1e9,  5e-324, 30.0, 1500.0};
    for (int i = 0; i < 160; ++i) {
        areas.push_back(30.0 + (1500.0 - 30.0) * static_cast<double>(i) /
                                   159.0);
    }
    std::mt19937_64 rng{0xc41b1eu};
    std::uniform_real_distribution<double> uni{20.0, 3000.0};
    for (int i = 0; i < 200; ++i) {
        areas.push_back(uni(rng));
    }
    return areas;
}

void expect_fast_matches_scalar(const chiplet::chiplet_spec& spec,
                                int chiplets) {
    const std::vector<double> areas = area_grid();
    const std::size_t n = areas.size();
    std::vector<double> ref(n);
    std::vector<double> got(n);
    chiplet::batch::cost_per_good_system(spec, chiplets, areas.data(),
                                         ref.data(), n);
    chiplet::batch::cost_per_good_system_fast(spec, chiplets, areas.data(),
                                              got.data(), n);

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i]))
            << "lane " << i << " (area=" << areas[i] << "): scalar "
            << ref[i] << ", fast " << got[i];
        if (std::isnan(ref[i]) || std::isnan(got[i])) {
            continue;
        }
        EXPECT_LE(ulp_distance(ref[i], got[i]), kMaxUlp)
            << "lane " << i << " (area=" << areas[i] << "): scalar "
            << ref[i] << ", fast " << got[i];
    }

    // Split determinism.
    std::vector<double> parts(n);
    const std::size_t cuts[] = {0, 1, 3, 50, 51, n};
    for (std::size_t c = 0; c + 1 < sizeof(cuts) / sizeof(cuts[0]); ++c) {
        const std::size_t lo = std::min(cuts[c], n);
        const std::size_t hi = std::min(cuts[c + 1], n);
        if (lo < hi) {
            chiplet::batch::cost_per_good_system_fast(
                spec, chiplets, areas.data() + lo, parts.data() + lo,
                hi - lo);
        }
    }
    EXPECT_EQ(std::memcmp(got.data(), parts.data(), n * sizeof(double)), 0)
        << "sub-range fast calls differ from the full-range call";
}

TEST(ChipletBatchFast, MonolithicMatchesScalarWithinUlp) {
    expect_fast_matches_scalar(chiplet::chiplet_spec{}, 1);
}

TEST(ChipletBatchFast, FourWaySplitMatchesScalarWithinUlp) {
    expect_fast_matches_scalar(chiplet::chiplet_spec{}, 4);
}

TEST(ChipletBatchFast, SubstrateVariantsMatchScalar) {
    for (const chiplet::substrate_kind kind :
         {chiplet::substrate_kind::organic, chiplet::substrate_kind::rdl,
          chiplet::substrate_kind::interposer}) {
        SCOPED_TRACE(static_cast<int>(kind));
        chiplet::chiplet_spec spec;
        spec.substrate = kind;
        expect_fast_matches_scalar(spec, 2);
    }
}

TEST(ChipletBatchFast, InvalidSpecIsAllNaNOnBothPaths) {
    const std::vector<double> areas = {100.0, 400.0, 900.0};
    for (const auto mutate :
         std::vector<void (*)(chiplet::chiplet_spec&)>{
             [](chiplet::chiplet_spec& s) { s.clustering_alpha = -1.0; },
             [](chiplet::chiplet_spec& s) { s.bond_yield = 0.0; },
             [](chiplet::chiplet_spec& s) { s.test_coverage = 1.5; },
             [](chiplet::chiplet_spec& s) { s.wafer_radius_cm = 0.0; },
             [](chiplet::chiplet_spec& s) { s.package_area_factor = 0.5; },
             [](chiplet::chiplet_spec& s) { s.c0_usd = -1.0; },
         }) {
        chiplet::chiplet_spec spec;
        mutate(spec);
        std::vector<double> ref(areas.size());
        std::vector<double> got(areas.size());
        chiplet::batch::cost_per_good_system(spec, 2, areas.data(),
                                             ref.data(), areas.size());
        chiplet::batch::cost_per_good_system_fast(
            spec, 2, areas.data(), got.data(), areas.size());
        for (std::size_t i = 0; i < areas.size(); ++i) {
            EXPECT_TRUE(std::isnan(ref[i])) << "lane " << i;
            EXPECT_TRUE(std::isnan(got[i])) << "lane " << i;
        }
    }
    // Out-of-range chiplet counts: all-NaN too.
    for (const int bad : {0, -1, 17}) {
        std::vector<double> got(areas.size());
        chiplet::batch::cost_per_good_system_fast(
            chiplet::chiplet_spec{}, bad, areas.data(), got.data(),
            areas.size());
        for (const double v : got) {
            EXPECT_TRUE(std::isnan(v)) << "chiplets=" << bad;
        }
    }
}

}  // namespace
