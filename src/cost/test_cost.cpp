#include "cost/test_cost.hpp"

#include <cmath>
#include <stdexcept>

namespace silicon::cost {

double test_seconds(const tester_spec& tester, const test_program& program) {
    if (!(program.transistors > 0.0)) {
        throw std::invalid_argument(
            "test_seconds: transistor count must be positive");
    }
    if (!(program.vectors_per_kilotransistor >= 0.0)) {
        throw std::invalid_argument(
            "test_seconds: vector density must be >= 0");
    }
    if (!(tester.seconds_fixed >= 0.0) ||
        !(tester.seconds_per_megavector >= 0.0)) {
        throw std::invalid_argument("test_seconds: negative tester times");
    }
    // Pattern count: vectors/ktr * ktr, each applied through a scan chain
    // of depth ~log2(N_tr); expressed in megavectors of tester time.
    const double kilotransistors = program.transistors / 1e3;
    const double vectors =
        program.vectors_per_kilotransistor * kilotransistors;
    const double scan_depth = std::log2(program.transistors);
    const double megavectors = vectors * scan_depth / 1e6;
    return tester.seconds_fixed +
           tester.seconds_per_megavector * megavectors;
}

dollars test_cost_per_die(const tester_spec& tester,
                          const test_program& program) {
    const double seconds = test_seconds(tester, program);
    return dollars{tester.rate_per_hour.value() * seconds / 3600.0};
}

probability defect_level(probability yield, double coverage) {
    if (!(coverage >= 0.0 && coverage <= 1.0)) {
        throw std::invalid_argument(
            "defect_level: coverage must be in [0,1]");
    }
    if (yield.value() <= 0.0) {
        // Everything that passes an imperfect test on a zero-yield lot is
        // an escape.
        return probability{coverage < 1.0 ? 1.0 : 0.0};
    }
    return probability::clamped(
        1.0 - std::pow(yield.value(), 1.0 - coverage));
}

dollars probe_cost_per_good_die(const tester_spec& tester,
                                const test_program& program,
                                probability yield) {
    if (yield.value() <= 0.0) {
        throw std::domain_error(
            "probe_cost_per_good_die: yield must be positive to allocate "
            "cost to good dies");
    }
    const dollars per_die = test_cost_per_die(tester, program);
    return dollars{per_die.value() / yield.value()};
}

test_economics evaluate_test_economics(const tester_spec& tester,
                                       const test_program& program,
                                       probability yield,
                                       dollars field_cost_per_escape) {
    if (field_cost_per_escape.value() < 0.0) {
        throw std::invalid_argument(
            "evaluate_test_economics: field cost must be >= 0");
    }
    test_economics economics;
    economics.probe_per_good_die =
        probe_cost_per_good_die(tester, program, yield);

    // Probe screens with coverage T; the packaged population's defect
    // level is DL.  Final test re-screens with the same coverage, so the
    // shipped defect level composes: a fault escapes only if it escapes
    // both screens, each with probability Y^(1-T)-style survival.
    const probability after_probe = defect_level(yield, program.fault_coverage);
    // Population entering final test: fraction (1 - DL) truly good.
    const probability good_fraction = after_probe.complement();

    // Final test cost, allocated per truly good (shippable) part.
    const dollars final_per_tested = test_cost_per_die(tester, program);
    economics.final_per_good_die =
        dollars{final_per_tested.value() / good_fraction.value()};

    // Escapes after both screens: a faulty die passes both independent
    // applications of coverage T: DL_total = 1 - Y^((1-T)^2) evaluated on
    // the original yield.
    const double residual_exponent =
        (1.0 - program.fault_coverage) * (1.0 - program.fault_coverage);
    economics.shipped_defect_level = probability::clamped(
        yield.value() <= 0.0
            ? 1.0
            : 1.0 - std::pow(yield.value(), residual_exponent));

    economics.escape_cost_per_shipped_die =
        dollars{economics.shipped_defect_level.value() *
                field_cost_per_escape.value()};
    economics.total_per_shipped_die =
        economics.probe_per_good_die + economics.final_per_good_die +
        economics.escape_cost_per_shipped_die;
    return economics;
}

test_program apply_dft(const test_program& base, double coverage_with_dft,
                       double compression) {
    if (!(coverage_with_dft >= base.fault_coverage &&
          coverage_with_dft <= 1.0)) {
        throw std::invalid_argument(
            "apply_dft: DFT coverage must improve on the base and stay "
            "within [0,1]");
    }
    if (!(compression >= 1.0)) {
        throw std::invalid_argument(
            "apply_dft: compression must be >= 1");
    }
    test_program with_dft = base;
    with_dft.fault_coverage = coverage_with_dft;
    with_dft.vectors_per_kilotransistor =
        base.vectors_per_kilotransistor / compression;
    return with_dft;
}

}  // namespace silicon::cost
