#include "cost/ownership.hpp"

#include <stdexcept>

namespace silicon::cost {

dollars ownership_per_hour(const tool_cost_inputs& inputs) {
    if (!(inputs.depreciation_years > 0.0)) {
        throw std::invalid_argument(
            "ownership_per_hour: depreciation life must be positive");
    }
    if (!(inputs.scheduled_hours_per_year > 0.0)) {
        throw std::invalid_argument(
            "ownership_per_hour: scheduled hours must be positive");
    }
    if (inputs.purchase_price.value() < 0.0) {
        throw std::invalid_argument(
            "ownership_per_hour: purchase price must be >= 0");
    }
    const double installed =
        inputs.purchase_price.value() *
        (1.0 + inputs.install_fraction.value());
    const double depreciation_per_year =
        installed / inputs.depreciation_years;
    const double maintenance_per_year =
        inputs.purchase_price.value() *
        inputs.maintenance_fraction_per_year;
    const double floor_per_year =
        inputs.floor_space_m2 * inputs.floor_cost_per_m2_year.value();
    const double fixed_per_hour =
        (depreciation_per_year + maintenance_per_year + floor_per_year) /
        inputs.scheduled_hours_per_year;
    const double labor_per_hour =
        inputs.operators_per_tool * inputs.operator_cost_per_hour.value();
    return dollars{fixed_per_hour + labor_per_hour +
                   inputs.consumables_per_hour.value()};
}

dollars cost_per_wafer_pass(const tool_cost_inputs& inputs) {
    if (!(inputs.wafers_per_hour > 0.0)) {
        throw std::invalid_argument(
            "cost_per_wafer_pass: throughput must be positive");
    }
    return dollars{ownership_per_hour(inputs).value() /
                   inputs.wafers_per_hour};
}

tool_group make_tool_group(const tool_cost_inputs& inputs) {
    return tool_group{inputs.name, ownership_per_hour(inputs),
                      inputs.wafers_per_hour};
}

std::vector<tool_cost_inputs> generic_cmos_tool_costs() {
    // Purchase prices: early-90s ballpark from trade press; throughputs
    // match fabline::generic_cmos so the two lines are comparable.
    const auto make = [](std::string name, double price_musd,
                         double wafers_per_hour, double floor_m2) {
        tool_cost_inputs t;
        t.name = std::move(name);
        t.purchase_price = dollars{price_musd * 1e6};
        t.wafers_per_hour = wafers_per_hour;
        t.floor_space_m2 = floor_m2;
        return t;
    };
    return {
        make("lithography", 5.0, 20.0, 30.0),
        make("etch", 2.0, 15.0, 25.0),
        make("implant", 3.0, 25.0, 35.0),
        make("deposition", 2.0, 12.0, 25.0),
        make("diffusion", 1.0, 40.0, 20.0),
        make("cmp", 1.5, 18.0, 20.0),
        make("clean", 0.5, 60.0, 15.0),
        make("metrology", 1.2, 30.0, 15.0),
    };
}

fabline derived_cmos_fabline(double equipment_price_factor,
                             double hours_per_period) {
    if (!(equipment_price_factor > 0.0)) {
        throw std::invalid_argument(
            "derived_cmos_fabline: price factor must be positive");
    }
    std::vector<tool_group> groups;
    for (tool_cost_inputs inputs : generic_cmos_tool_costs()) {
        inputs.purchase_price =
            inputs.purchase_price * equipment_price_factor;
        groups.push_back(make_tool_group(inputs));
    }
    return fabline{std::move(groups), hours_per_period};
}

}  // namespace silicon::cost
